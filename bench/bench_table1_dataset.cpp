// Reproduces Table 1: the six driver-behaviour classes, which modalities
// were collected for each, and the per-class frame counts.
//
// The data-collection component here is the synthetic generator (the
// paper's dataset is private; see DESIGN.md). This harness regenerates the
// inventory at the paper's exact per-class counts, verifies the
// modality-availability rules (classes without phone use carry no
// class-specific IMU data and count as IMU "Normal Driving"), and prints
// the table. Frames themselves are rendered at a spot-check scale so the
// harness stays fast.
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "core/dataset.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;

  const double spot_check_scale = argc > 1 ? std::atof(argv[1]) : 0.01;

  // The inventory at full paper counts (no rendering needed).
  util::Table table({"Class", "Description", "Data Types", "Frame Count"});
  const char* modalities[6] = {"Image, IMU", "Image, IMU", "Image, IMU",
                               "Image, --",  "Image, --",  "Image, --"};
  for (int c = 0; c < vision::kDriverClassCount; ++c) {
    table.add_row({std::to_string(c + 1),
                   vision::driver_class_name(
                       static_cast<vision::DriverClass>(c)),
                   modalities[c],
                   std::to_string(core::kPaperFrameCounts[
                       static_cast<std::size_t>(c)])});
  }
  std::cout << "Table 1 -- driver behaviour classes (paper counts):\n"
            << table.render();
  const int total = std::accumulate(core::kPaperFrameCounts.begin(),
                                    core::kPaperFrameCounts.end(), 0);
  std::cout << "Total frames: " << total << "\n\n";

  // Spot-check generation: actually render a proportional sample and
  // verify counts, pairing, and the modality rules.
  core::DatasetConfig cfg;
  cfg.scale = spot_check_scale;
  const core::Dataset data = core::generate_dataset(cfg);
  const auto expected = core::scaled_counts(cfg.scale);

  std::array<int, 6> got{};
  std::array<int, 6> imu_normal{};
  for (int i = 0; i < data.size(); ++i) {
    const auto c = static_cast<std::size_t>(data.labels[static_cast<std::size_t>(i)]);
    ++got[c];
    if (data.imu_labels[static_cast<std::size_t>(i)] == 0) ++imu_normal[c];
  }

  util::Table check({"Class", "expected", "generated", "IMU=Normal"});
  bool ok = true;
  for (int c = 0; c < 6; ++c) {
    const auto idx = static_cast<std::size_t>(c);
    check.add_row({vision::driver_class_name(
                       static_cast<vision::DriverClass>(c)),
                   std::to_string(expected[idx]), std::to_string(got[idx]),
                   std::to_string(imu_normal[idx])});
    ok = ok && (expected[idx] == got[idx]);
    // Classes 4-6 (paper numbering) must be all-IMU-normal; talking and
    // texting must have none.
    if (c == 1 || c == 2) {
      ok = ok && (imu_normal[idx] == 0);
    } else {
      ok = ok && (imu_normal[idx] == got[idx]);
    }
  }
  std::cout << "Generated spot-check at scale " << cfg.scale << " ("
            << data.size() << " paired frames + IMU windows):\n"
            << check.render();
  table.save_csv("results/table1_inventory.csv");
  std::cout << "\nInventory check: " << (ok ? "OK" : "MISS") << "\n";
  return ok ? 0 : 1;
}
