// Ablation A7: fine-tuning initialisation.
//
// The paper initialises its frame CNN from a pre-trained model "due to
// the large amount of time required for training deep networks" and
// because labelled driving data is scarce. This ablation measures what
// that buys on the substrate: at a low-data scale, a CNN fine-tuned from
// the auxiliary 18-class pose task versus the same CNN from scratch.
#include <cstdlib>
#include <iostream>

#include "core/darnet.hpp"
#include "core/pretrain.hpp"
#include "nn/trainer.hpp"
#include "util/table.hpp"

namespace {

using namespace darnet;

double train_cnn_and_eval(bool pretrain, const core::Dataset& train_data,
                          const core::Dataset& eval_data, int epochs) {
  engine::FrameCnnConfig cfg;  // 6-class default
  cfg.seed = 21;
  nn::Sequential cnn = engine::build_frame_cnn(cfg);
  if (pretrain) {
    const auto report = core::pretrain_frame_cnn(cnn, cfg.input_size);
    std::cout << "  pretrained on 18-class aux task in "
              << util::fmt(report.seconds, 1) << "s ("
              << report.params_transferred << " tensors transferred)\n";
  }
  nn::Sgd opt(0.03, 0.9, 1e-4);
  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.shuffle_seed = 5;
  nn::train_classifier(cnn, opt, train_data.frames, train_data.labels, tc);
  return nn::evaluate(cnn, eval_data.frames, eval_data.labels, 6).accuracy();
}

}  // namespace

int main(int argc, char** argv) {
  // Deliberately low-data: the regime where the paper's fine-tuning
  // rationale applies.
  core::DatasetConfig data_cfg;
  data_cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.004;
  data_cfg.seed = 50;
  const core::Dataset data = core::generate_dataset(data_cfg);
  const auto split = core::split_dataset(data, 0.8, 9);
  std::cout << "Low-data regime: " << split.train.size() << " train / "
            << split.eval.size() << " eval frames\n";

  const int epochs = 8;
  const double scratch =
      train_cnn_and_eval(false, split.train, split.eval, epochs);
  const double finetuned =
      train_cnn_and_eval(true, split.train, split.eval, epochs);

  util::Table table({"Initialisation", "CNN Hit@1"});
  table.add_row({"random (He) init", util::fmt_pct(scratch)});
  table.add_row({"fine-tuned from aux pose task", util::fmt_pct(finetuned)});
  std::cout << "\nAblation A7 -- fine-tuning initialisation ("
            << epochs << " epochs each):\n"
            << table.render();
  table.save_csv("results/ablation_pretrain.csv");

  const bool helps = finetuned >= scratch;
  std::cout << "\nShape check (fine-tuning >= scratch in low data): "
            << (helps ? "OK" : "MISS") << "\n";
  return helps ? 0 : 1;
}
