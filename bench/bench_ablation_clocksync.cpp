// Ablation A2: the master-slave clock synchronisation protocol.
//
// Sweeps device clock drift x sync period (including "never", i.e. the
// protocol disabled) and reports the residual timestamp error of the
// phone agent plus the effect on cross-stream alignment. The paper syncs
// every 5 seconds "because the system clock is highly susceptible to
// drift"; this ablation quantifies what that choice buys.
#include <cmath>
#include <iostream>

#include "collection/agent.hpp"
#include "collection/controller.hpp"
#include "util/table.hpp"

namespace {

using namespace darnet::collection;

struct RunResult {
  double clock_error_abs;
  double aligned_rows;
};

RunResult run(double drift_ppm, double sync_period_s, double horizon_s) {
  Simulation sim;
  LinkConfig link_cfg;
  VirtualLink up(sim, link_cfg, 3);
  VirtualLink down(sim, link_cfg, 4);

  ControllerConfig ctrl_cfg;
  ctrl_cfg.clock_sync_period_s = sync_period_s;
  Controller controller(sim, ctrl_cfg);

  AgentConfig agent_cfg;
  agent_cfg.agent_id = 1;
  agent_cfg.clock_drift_ppm = drift_ppm;
  agent_cfg.clock_initial_offset_s = 0.05;
  agent_cfg.latency_compensation_s = link_cfg.base_latency_s;
  CollectionAgent agent(sim, agent_cfg, up);

  up.set_receiver([&](std::vector<std::uint8_t> b) {
    controller.on_message(b);
  });
  down.set_receiver([&](std::vector<std::uint8_t> b) { agent.on_message(b); });
  controller.attach_agent(1, down);

  agent.add_sensor(std::make_unique<CallbackSensor>(
      "sig", 0.025,
      [&sim](SimTime) {
        return std::vector<float>{static_cast<float>(sim.now())};
      }));

  controller.start();
  agent.start();
  sim.run_until(horizon_s);

  // Alignment quality: the stream's value IS true time, so after
  // interpolation the residual |value - grid_time| measures how well the
  // agent's timestamps track reality.
  std::vector<double> grid;
  const auto rows =
      controller.store().aligned({"sig"}, 1.0, horizon_s - 1.0, 0.25, 0.0,
                                 &grid);
  double err = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    err += std::abs(rows[i][0] - grid[i]);
  }
  return {std::abs(agent.clock_error_now()),
          rows.empty() ? 0.0 : err / static_cast<double>(rows.size())};
}

}  // namespace

int main() {
  const double horizon = 60.0;
  const double drifts[] = {100.0, 500.0, 2000.0};
  const double periods[] = {1.0, 5.0, 20.0, 1e9};  // 1e9 = sync disabled

  darnet::util::Table table({"Drift (ppm)", "Sync period", "Residual clock "
                             "error", "Mean alignment error"});
  double err_synced = 0.0, err_never = 0.0;
  for (double drift : drifts) {
    for (double period : periods) {
      const RunResult r = run(drift, period, horizon);
      const std::string period_name =
          period > 1e8 ? "never" : darnet::util::fmt(period, 0) + " s";
      table.add_row({darnet::util::fmt(drift, 0), period_name,
                     darnet::util::fmt(r.clock_error_abs * 1e3, 2) + " ms",
                     darnet::util::fmt(r.aligned_rows * 1e3, 2) + " ms"});
      if (drift == 2000.0 && period == 5.0) err_synced = r.clock_error_abs;
      if (drift == 2000.0 && period > 1e8) err_never = r.clock_error_abs;
    }
  }
  std::cout << "Ablation A2 -- clock sync (60 s session, initial offset "
               "50 ms):\n"
            << table.render();
  table.save_csv("results/ablation_clocksync.csv");

  // At the paper's 5 s period the error must be bounded by roughly
  // drift * period + latency slop; disabled, it keeps growing.
  const bool ok = err_synced < 0.03 && err_never > 5.0 * err_synced;
  std::cout << "\nShape check (5s sync bounds error; disabled grows): "
            << (ok ? "OK" : "MISS") << "\n";
  return ok ? 0 : 1;
}
