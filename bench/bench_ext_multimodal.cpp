// Extension E1 (paper conclusion: "our ensemble learning approach is
// extensible to adding more modalities"): a third modality joins the
// ensemble without retraining the CNN or the RNN -- exactly the
// modularity benefit Section 3.3 claims for the 1-to-1 stream/model
// registry.
//
// The third modality is a steering-wheel grip sensor (capacitive grip
// pads are a real production sensor): grip state {both-hands, one-hand,
// none} separates normal driving from the one-handed behaviours that the
// IMU cannot see (eating, hair/makeup map to IMU "normal"), and reaching
// (no hands near the rim) from everything else.
#include <cstdlib>
#include <iostream>

#include "bayes/multimodal.hpp"
#include "core/darnet.hpp"
#include "nn/trainer.hpp"
#include "privacy/privacy.hpp"
#include "svm/svm.hpp"
#include "util/table.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

/// Grip classes: 0 both hands, 1 one hand off, 2 no hand on the rim.
int grip_class_of(int image_class) {
  switch (image_class) {
    case 0:
      return 0;  // normal: both hands (mostly)
    case 5:
      return 2;  // reaching: hand fully off toward the passenger side
    default:
      return 1;  // one hand occupied by phone/cup/hair
  }
}

/// Synthetic grip-pressure features per sample: mean left/right pad
/// pressure with overlap noise (normal driving includes one-hand resting
/// spells, so grip is informative but imperfect).
Tensor generate_grip_features(std::span<const int> labels, util::Rng& rng,
                              std::vector<int>* grip_labels) {
  const int n = static_cast<int>(labels.size());
  Tensor features({n, 2});
  for (int i = 0; i < n; ++i) {
    const int g = grip_class_of(labels[static_cast<std::size_t>(i)]);
    if (grip_labels) grip_labels->push_back(g);
    double left = 0.0, right = 0.0;
    switch (g) {
      case 0:
        left = rng.gaussian(0.85, 0.22);
        right = rng.gaussian(0.80, 0.25);
        // Resting spells: one hand drops off in a quarter of normal time.
        if (rng.chance(0.25)) right = rng.gaussian(0.15, 0.12);
        break;
      case 1:
        left = rng.gaussian(0.80, 0.22);
        right = rng.gaussian(0.10, 0.10);
        if (rng.chance(0.5)) std::swap(left, right);
        break;
      case 2:
        left = rng.gaussian(0.15, 0.12);
        right = rng.gaussian(0.08, 0.08);
        break;
      default:
        break;
    }
    features.at(i, 0) = static_cast<float>(left);
    features.at(i, 1) = static_cast<float>(right);
  }
  return features;
}

}  // namespace

int main(int argc, char** argv) {
  core::DatasetConfig data_cfg;
  data_cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.025;
  data_cfg.seed = 88;
  const core::Dataset data = core::generate_dataset(data_cfg);
  const auto split = core::split_dataset(data, 0.8, 17);

  // Train the deployed two-modality system unchanged.
  core::DarNet darnet{core::DarNetConfig{}};
  darnet.train(split.train);
  const double two_mod =
      darnet.evaluate(split.eval, engine::ArchitectureKind::kCnnRnn)
          .accuracy();

  // New device: grip sensor + its own model, trained independently
  // ("new devices can be incorporated into the network without requiring
  // the existing models to be retrained").
  util::Rng rng(99);
  std::vector<int> grip_train_labels, grip_eval_labels;
  const Tensor grip_train =
      generate_grip_features(split.train.labels, rng, &grip_train_labels);
  const Tensor grip_eval =
      generate_grip_features(split.eval.labels, rng, &grip_eval_labels);
  svm::LinearSvm grip_model(2, 3);
  grip_model.fit(grip_train, grip_train_labels);
  int grip_correct = 0;
  const auto grip_preds = grip_model.predict(grip_eval);
  for (std::size_t i = 0; i < grip_preds.size(); ++i) {
    if (grip_preds[i] == grip_eval_labels[i]) ++grip_correct;
  }

  // Three-parent Bayesian networks over CNN + RNN + grip.
  engine::NeuralClassifier cnn(engine::borrow(darnet.frame_cnn()), 6, "cnn");
  engine::NeuralClassifier rnn(engine::borrow(darnet.imu_rnn()), 3, "rnn");
  bayes::ModalityMap cnn_map = bayes::MultiModalCombiner::identity_map(6);
  bayes::ModalityMap rnn_map{{0, 1, 2, 0, 0, 0}, 3};
  bayes::ModalityMap grip_map{{0, 1, 1, 1, 1, 2}, 3};
  bayes::MultiModalCombiner three(6, {cnn_map, rnn_map, grip_map});

  const std::vector<Tensor> train_probs{
      cnn.probabilities(split.train.frames),
      rnn.probabilities(split.train.imu_windows),
      grip_model.probabilities(grip_train)};
  three.fit(train_probs, split.train.labels);

  auto accuracy_of = [&](std::span<const Tensor> probs,
                         const bayes::MultiModalCombiner& combiner) {
    const auto preds = combiner.predict(probs);
    int correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == split.eval.labels[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(preds.size());
  };

  const std::vector<Tensor> eval_probs{
      cnn.probabilities(split.eval.frames),
      rnn.probabilities(split.eval.imu_windows),
      grip_model.probabilities(grip_eval)};
  const double three_mod = accuracy_of(eval_probs, three);

  // The regime where the extra modality earns its keep: privacy mode
  // degrades the camera (medium distortion), so the visual evidence
  // weakens and grip compensates for the classes the IMU cannot see.
  const Tensor distorted_train = privacy::apply_distortion(
      split.train.frames, privacy::DistortionLevel::kMedium);
  const Tensor distorted_eval = privacy::apply_distortion(
      split.eval.frames, privacy::DistortionLevel::kMedium);
  const std::vector<Tensor> weak_train_probs{
      cnn.probabilities(distorted_train),
      rnn.probabilities(split.train.imu_windows),
      grip_model.probabilities(grip_train)};
  bayes::MultiModalCombiner three_weak(6, {cnn_map, rnn_map, grip_map});
  three_weak.fit(weak_train_probs, split.train.labels);
  bayes::MultiModalCombiner two_weak(6, {cnn_map, rnn_map});
  const std::vector<Tensor> weak_train_two{weak_train_probs[0],
                                           weak_train_probs[1]};
  two_weak.fit(weak_train_two, split.train.labels);

  const std::vector<Tensor> weak_eval_probs{
      cnn.probabilities(distorted_eval),
      rnn.probabilities(split.eval.imu_windows),
      grip_model.probabilities(grip_eval)};
  const std::vector<Tensor> weak_eval_two{weak_eval_probs[0],
                                          weak_eval_probs[1]};
  const double two_weak_acc = accuracy_of(weak_eval_two, two_weak);
  const double three_weak_acc = accuracy_of(weak_eval_probs, three_weak);

  util::Table table({"Ensemble", "full camera", "privacy-distorted camera"});
  table.add_row({"CNN+RNN (paper's deployment)", util::fmt_pct(two_mod),
                 util::fmt_pct(two_weak_acc)});
  table.add_row({"CNN+RNN+grip (3-parent BN)", util::fmt_pct(three_mod),
                 util::fmt_pct(three_weak_acc)});
  table.add_row({"grip sensor alone (3 classes)",
                 util::fmt_pct(static_cast<double>(grip_correct) /
                               static_cast<double>(grip_preds.size())),
                 "--"});
  std::cout << "Extension E1 -- adding a modality without retraining ("
            << split.eval.size() << " eval samples):\n"
            << table.render();
  table.save_csv("results/ext_multimodal.csv");

  // With a strong camera the correlated grip evidence adds little (it can
  // even double-count against naive fusion); once privacy weakens the
  // camera, the third modality must recover a clear margin.
  const bool robustness = three_weak_acc > two_weak_acc + 0.02;
  const bool sane = three_mod > two_mod - 0.06;
  std::cout << "\nShape checks:\n"
            << "  grip recovers accuracy under privacy distortion: "
            << (robustness ? "OK" : "MISS") << "\n"
            << "  full-camera ensembles comparable:                "
            << (sane ? "OK" : "MISS") << "\n";
  return (robustness && sane) ? 0 : 1;
}
