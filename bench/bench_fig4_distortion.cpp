// Reproduces Figure 4: example frames at each privacy distortion level
// (undistorted, 100x100, 50x50, 25x25 in the paper's 300x300 geometry;
// 48 / 16 / 8 / 4 here -- the same 3x/6x/12x linear reductions).
//
// Emits PGM images under ./fig4_out/ and ASCII previews to stdout, and
// checks that information loss grows monotonically with the level.
#include <filesystem>
#include <iostream>

#include "privacy/privacy.hpp"
#include "util/table.hpp"
#include "vision/renderer.hpp"

int main() {
  using namespace darnet;
  using privacy::DistortionLevel;

  const std::filesystem::path out_dir = "fig4_out";
  std::filesystem::create_directories(out_dir);

  util::Rng rng(77);
  vision::RenderConfig render;
  render.prop_visibility = 1.0;  // keep the phone visible in the exemplar
  const vision::Image frame =
      vision::render_driver_scene(vision::DriverClass::kTalking, render, rng);

  const DistortionLevel levels[] = {
      DistortionLevel::kNone, DistortionLevel::kLow, DistortionLevel::kMedium,
      DistortionLevel::kHigh};

  util::Table table(
      {"Level", "Size", "Wire bytes", "Reduction", "Reconstruction L2"});
  double prev_loss = -1.0;
  bool monotone = true;
  std::size_t full_bytes = 0;

  for (DistortionLevel level : levels) {
    privacy::DistortionModule module(level);
    const privacy::TaggedFrame tagged = module.process(frame);
    const vision::Image rebuilt =
        privacy::reconstruct(tagged, frame.width());

    double loss = 0.0;
    for (int y = 0; y < frame.height(); ++y) {
      for (int x = 0; x < frame.width(); ++x) {
        const double d = frame.at(x, y) - rebuilt.at(x, y);
        loss += d * d;
      }
    }
    if (loss < prev_loss) monotone = false;
    prev_loss = loss;

    const std::size_t bytes = privacy::wire_bytes(tagged);
    if (level == DistortionLevel::kNone) full_bytes = bytes;

    const std::string name =
        std::to_string(tagged.image.width()) + "x" +
        std::to_string(tagged.image.height());
    table.add_row({privacy::distortion_name(level), name,
                   std::to_string(bytes),
                   util::fmt(static_cast<double>(full_bytes) / static_cast<double>(bytes), 1) + "x",
                   util::fmt(loss, 1)});

    const std::string path =
        (out_dir / ("frame_" + name + ".pgm")).string();
    vision::write_pgm(path, tagged.image);

    std::cout << "--- " << privacy::distortion_name(level) << " (" << name
              << ", reconstructed preview) ---\n"
              << vision::to_ascii(rebuilt, 40) << "\n";
  }

  std::cout << "Figure 4 -- distortion levels (PGMs in " << out_dir.string()
            << "/):\n"
            << table.render();
  table.save_csv("results/fig4_distortion.csv");
  std::cout << "\nShape check (loss monotone in level): "
            << (monotone ? "OK" : "MISS") << "\n";
  return monotone ? 0 : 1;
}
