// Ablation A1: the Bayesian-network combiner (the paper's novelty claim)
// against naive fusion rules -- mean, product, max -- on the Table-2 setup.
//
// The BN learns per-class CPTs from training true positives, which lets it
// weigh the IMU verdict differently for IMU-visible classes (talking,
// texting) than for classes whose IMU evidence is uninformative (eating,
// hair/makeup, reaching all map to "normal"). Naive rules apply the same
// arithmetic everywhere.
#include <cstdlib>
#include <iostream>

#include "core/darnet.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;
  using tensor::Tensor;

  core::DatasetConfig data_cfg;
  data_cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.03;
  data_cfg.seed = 44;
  const core::Dataset data = core::generate_dataset(data_cfg);
  const auto split = core::split_dataset(data, 0.8, 13);

  core::DarNet darnet{core::DarNetConfig{}};
  darnet.train(split.train);

  // Model outputs on the eval set, fused four ways.
  engine::NeuralClassifier cnn(engine::borrow(darnet.frame_cnn()), 6, "cnn");
  engine::NeuralClassifier rnn(engine::borrow(darnet.imu_rnn()), 3, "rnn");
  const Tensor p_img = cnn.probabilities(split.eval.frames);
  const Tensor p_imu = rnn.probabilities(split.eval.imu_windows);
  const auto map = bayes::ClassMap::darnet_default();

  auto accuracy_of = [&](const Tensor& fused) {
    int correct = 0;
    for (int i = 0; i < fused.dim(0); ++i) {
      const int pred = tensor::argmax(std::span<const float>(
          fused.data() + static_cast<std::size_t>(i) * 6, 6));
      if (pred == split.eval.labels[static_cast<std::size_t>(i)]) ++correct;
    }
    return static_cast<double>(correct) / fused.dim(0);
  };

  util::Table table({"Combiner", "Hit@1"});
  const double bn_acc = darnet.evaluate(split.eval,
                                        engine::ArchitectureKind::kCnnRnn)
                            .accuracy();
  table.add_row({"Bayesian network (paper)", util::fmt_pct(bn_acc)});

  double best_naive = 0.0;
  const std::pair<bayes::FusionRule, const char*> rules[] = {
      {bayes::FusionRule::kMean, "mean"},
      {bayes::FusionRule::kProduct, "product"},
      {bayes::FusionRule::kMax, "max"}};
  for (const auto& [rule, name] : rules) {
    const double acc = accuracy_of(bayes::fuse(rule, map, p_img, p_imu));
    best_naive = std::max(best_naive, acc);
    table.add_row({name, util::fmt_pct(acc)});
  }
  const double cnn_acc = accuracy_of(p_img);
  table.add_row({"no fusion (CNN only)", util::fmt_pct(cnn_acc)});

  std::cout << "Ablation A1 -- fusion rule on the Table-2 setup ("
            << split.eval.size() << " eval samples):\n"
            << table.render();
  table.save_csv("results/ablation_combiner.csv");

  // The paper's claim is that BN fusion strengthens classification, not
  // that it dominates every fusion rule; the check requires the BN to be
  // competitive (within 2 points of the best naive rule) and to deliver
  // the large gain over no fusion.
  const bool bn_competitive = bn_acc >= best_naive - 0.02;
  const bool fusion_helps = bn_acc > cnn_acc + 0.03;
  std::cout << "\nShape checks:\n"
            << "  BN within 2pts of best rule: "
            << (bn_competitive ? "OK" : "MISS") << "\n"
            << "  BN fusion beats no fusion:   "
            << (fusion_helps ? "OK" : "MISS") << "\n";
  return (bn_competitive && fusion_helps) ? 0 : 1;
}
