// Serving-tier benchmark: does micro-batching earn its complexity?
//
// The frame model is a dense stand-in sized like the paper's fine-tuned
// Inception-V3 (tens of MB of weights): a single-request pass is
// DRAM-bound streaming the weight matrix past one activation row, while
// the register-tiled GEMM (tensor/ops.cpp, 4-row tiles) reuses every
// loaded weight across the batch rows of a fused pass. That weight-traffic
// amortisation -- not FLOPs -- is what micro-batching buys on a CPU
// server, and it is why batch 8 must clear 2x:
//
//  1. Throughput (saturated closed loop): N requests submitted as fast as
//     admission allows, wall-clocked from first submit to drain, at
//     max_batch 1 vs max_batch 8. Acceptance: >= 2x at batch 8.
//  2. Latency (sequential open loop, max_batch 8): one request in flight
//     at a time, so every batch flushes on the max_delay_us timer -- the
//     worst case the batching window adds. Acceptance: p99 <= max_delay_us
//     + single-batch latency, where single-batch latency is the p99 of
//     the same open loop with a zero batching window (i.e. the full
//     submit -> wake -> fused pass -> scatter -> future round trip, so
//     scheduler wake jitter sits on both sides of the inequality). The
//     two legs are sampled in strict alternation and best-of-kReps is
//     taken on the window-leg p99 with the bound from the same rep, so
//     shared-VM load drift hits both distributions identically.
//
// Prints a human table plus a JSON blob (checked in as BENCH_serve.json);
// exits non-zero if either acceptance criterion is missed.
#include <algorithm>
#include <cstdio>
#include <future>
#include <iostream>
#include <memory>
#include <vector>

#include "engine/engine.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "serve/serve.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

constexpr int kFrameFeatures = 4096;
constexpr int kHidden = 4096;  // 4096x4096: 67 MB of fp32 weights
constexpr int kClasses = 6;
constexpr int kRequests = 128;
constexpr int kSessions = 16;
constexpr int kReps = 3;
constexpr std::int64_t kMaxDelayUs = 2000;

std::shared_ptr<engine::EnsembleClassifier> make_ensemble() {
  util::Rng rng(1234);
  auto model = std::make_shared<nn::Sequential>();
  model->emplace<nn::Dense>(kFrameFeatures, kHidden, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Dense>(kHidden, kClasses, rng);
  auto frames = std::make_shared<engine::NeuralClassifier>(model, kClasses,
                                                           "dense-v3");
  return std::make_shared<engine::EnsembleClassifier>(
      frames, nullptr, bayes::ClassMap::darnet_default());
}

struct Inputs {
  std::vector<Tensor> frames;  // [1, kFrameFeatures] each
};

engine::ClassifyRequest nth_request(const Inputs& inputs, int i) {
  engine::ClassifyRequest request;
  request.session_id = static_cast<std::uint64_t>(i % kSessions);
  request.frame = inputs.frames[static_cast<std::size_t>(i % kRequests)];
  return request;
}

/// Saturated closed loop: submit everything, drain, wall-clock the lot.
/// Returns requests/second (best of kReps).
double throughput_rps(const std::shared_ptr<engine::EnsembleClassifier>& e,
                      const Inputs& inputs, int max_batch) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    serve::ShardConfig config;
    config.max_batch = max_batch;
    config.max_delay_us = 0;  // saturation: flush as fast as possible
    config.queue_capacity = kRequests;
    config.shed_oldest = false;  // any overflow would be a bench bug
    serve::Server server(e, config);

    std::vector<std::future<serve::Response>> futures;
    futures.reserve(kRequests);
    util::Stopwatch timer;
    for (int i = 0; i < kRequests; ++i) {
      auto sub = server.submit(nth_request(inputs, i));
      if (sub.admit != serve::Admit::kAccepted) {
        std::cerr << "bench_serve: request " << i << " not accepted\n";
        std::exit(2);
      }
      futures.push_back(std::move(sub.response));
    }
    server.drain();
    const double seconds = timer.seconds();
    for (auto& f : futures) {
      if (f.get().status != serve::Status::kOk) {
        std::cerr << "bench_serve: request not served\n";
        std::exit(2);
      }
    }
    best = std::max(best, static_cast<double>(kRequests) / seconds);
  }
  return best;
}

struct LatencyStats {
  double p50_us{0.0};
  double p99_us{0.0};
};

LatencyStats percentiles(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  LatencyStats stats;
  stats.p50_us = samples[samples.size() / 2];
  stats.p99_us = samples[(samples.size() * 99) / 100];
  return stats;
}

/// Sequential open loop at max_batch 8: one request in flight at a time,
/// full submit -> future round trips. Two servers are sampled in strict
/// alternation -- one with the max_delay_us batching window, one with a
/// zero window (= single-batch latency) -- so VM noise, cache state and
/// load drift hit both distributions identically and the comparison
/// isolates what the batching window itself adds.
struct OpenLoop {
  LatencyStats window;  // max_delay_us batching window
  LatencyStats single;  // zero window: submit -> wake -> pass -> future
};

OpenLoop open_loop_latency(
    const std::shared_ptr<engine::EnsembleClassifier>& e,
    const Inputs& inputs) {
  serve::ShardConfig config;
  config.max_batch = 8;
  config.queue_capacity = kRequests;
  config.max_delay_us = kMaxDelayUs;
  serve::Server windowed(e, config);
  config.max_delay_us = 0;
  serve::Server immediate(e, config);

  const auto round_trip_us = [&](serve::Server& server, int i) {
    util::Stopwatch timer;
    auto sub = server.submit(nth_request(inputs, i));
    const serve::Response response = sub.response.get();
    if (response.status != serve::Status::kOk) {
      std::cerr << "bench_serve: latency request not served\n";
      std::exit(2);
    }
    return timer.seconds() * 1e6;
  };

  // Warm both servers (first passes pay cold-cache weight streaming and
  // thread wakeup; neither belongs in either leg's distribution).
  for (int i = 0; i < 8; ++i) {
    round_trip_us((i % 2 == 0) ? windowed : immediate, i);
  }

  // Best-of-kReps on the window-leg p99 (the same rep-selection rule the
  // throughput section uses), with the bound built from the winning rep's
  // OWN single-batch p99 so both sides of the inequality saw the same
  // noise regime.
  const int n = 150;  // per leg per rep
  OpenLoop best;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<double> window_us;
    std::vector<double> single_us;
    window_us.reserve(static_cast<std::size_t>(n));
    single_us.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < 2 * n; ++i) {
      const bool window_leg = (i % 2 == 0);
      const double us =
          round_trip_us(window_leg ? windowed : immediate, i);
      (window_leg ? window_us : single_us).push_back(us);
    }
    OpenLoop result;
    result.window = percentiles(std::move(window_us));
    result.single = percentiles(std::move(single_us));
    if (rep == 0 || result.window.p99_us < best.window.p99_us) {
      best = result;
    }
  }
  windowed.drain();
  immediate.drain();
  return best;
}

}  // namespace

int main() {
  auto ensemble = make_ensemble();
  util::Rng rng(99);
  Inputs inputs;
  inputs.frames.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    inputs.frames.push_back(
        Tensor::uniform({1, kFrameFeatures}, 1.0f, rng));
  }

  std::cout << "bench_serve: " << kRequests << " requests, Dense("
            << kFrameFeatures << "->" << kHidden << ")->ReLU->Dense("
            << kHidden << "->" << kClasses
            << ") frame model (67 MB of weights), best of " << kReps
            << " reps\n\n";

  const double rps1 = throughput_rps(ensemble, inputs, 1);
  const double rps8 = throughput_rps(ensemble, inputs, 8);
  const double speedup = rps8 / rps1;
  const OpenLoop loop = open_loop_latency(ensemble, inputs);
  const LatencyStats single = loop.single;
  const LatencyStats lat = loop.window;
  const double bound_us = static_cast<double>(kMaxDelayUs) + single.p99_us;

  std::printf("  throughput  max_batch=1   %10.0f req/s\n", rps1);
  std::printf("  throughput  max_batch=8   %10.0f req/s   (%.2fx)\n", rps8,
              speedup);
  std::printf("  single-batch round trip   %10.0f us p50, %.0f us p99\n",
              single.p50_us, single.p99_us);
  std::printf("  latency     p50           %10.0f us\n", lat.p50_us);
  std::printf("  latency     p99           %10.0f us   (bound: "
              "max_delay %lld + single batch %.0f = %.0f us)\n",
              lat.p99_us, static_cast<long long>(kMaxDelayUs),
              single.p99_us, bound_us);

  const bool throughput_ok = speedup >= 2.0;
  const bool latency_ok = lat.p99_us <= bound_us;
  std::printf("\n  criteria: batching speedup >= 2x: %s; p99 <= window + "
              "single batch: %s\n",
              throughput_ok ? "PASS" : "FAIL", latency_ok ? "PASS" : "FAIL");

  std::printf(
      "\n{\n"
      "  \"benchmark\": \"bench/bench_serve.cpp\",\n"
      "  \"requests\": %d,\n"
      "  \"throughput_rps\": {\"max_batch_1\": %.1f, \"max_batch_8\": "
      "%.1f},\n"
      "  \"batching_speedup\": %.2f,\n"
      "  \"latency_us\": {\"single_batch_p99\": %.1f, \"p50\": %.1f, "
      "\"p99\": %.1f, \"bound_max_delay_plus_single_batch\": %.1f},\n"
      "  \"criteria\": {\"speedup_ge_2x\": %s, \"p99_within_bound\": %s}\n"
      "}\n",
      kRequests, rps1, rps8, speedup, single.p99_us, lat.p50_us, lat.p99_us,
      bound_us, throughput_ok ? "true" : "false",
      latency_ok ? "true" : "false");

  return throughput_ok && latency_ok ? 0 : 1;
}
