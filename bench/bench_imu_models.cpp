// Reproduces the §5.2 in-text result: on the IMU sequence dataset alone,
// the deep bidirectional LSTM outperforms the SVM baseline
// (paper: RNN 97.44% vs SVM 95.37%).
//
// Workload: balanced windows over the five phone orientations (texting
// L/R, talking L/R, pocket), mapped onto the three IMU classes. 80/20
// split; the BiLSTM and the linear SVM see identical windows.
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "engine/architectures.hpp"
#include "imu/imu.hpp"
#include "imu/features.hpp"
#include "nn/trainer.hpp"
#include "svm/svm.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;

  const int per_orientation = argc > 1 ? std::atoi(argv[1]) : 260;
  const std::uint64_t seed = 21;

  // Balanced over the five orientations (so the three classes arrive in a
  // 2:2:1 ratio of texting:talking:pocket windows).
  std::vector<imu::PhoneOrientation> orientations;
  std::vector<int> labels;
  for (int o = 0; o < 5; ++o) {
    for (int i = 0; i < per_orientation; ++i) {
      const auto orientation = static_cast<imu::PhoneOrientation>(o);
      orientations.push_back(orientation);
      labels.push_back(static_cast<int>(imu::imu_class_of(orientation)));
    }
  }

  util::Rng rng(seed);
  util::Stopwatch watch;
  const imu::ImuGenConfig gen;
  const tensor::Tensor windows =
      imu::generate_windows(orientations, gen, rng);
  std::cout << "Generated " << labels.size() << " IMU windows ("
            << imu::kWindowSteps << " steps x " << imu::kImuChannels
            << " channels) in " << util::fmt(watch.seconds(), 1) << "s\n";

  // Shuffled 80/20 split.
  std::vector<std::size_t> order(labels.size());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  const std::size_t cut = order.size() * 8 / 10;
  const std::span<const std::size_t> train_idx(order.data(), cut);
  const std::span<const std::size_t> eval_idx(order.data() + cut,
                                              order.size() - cut);
  const tensor::Tensor x_train = nn::gather_rows(windows, train_idx);
  const tensor::Tensor x_eval = nn::gather_rows(windows, eval_idx);
  std::vector<int> y_train, y_eval;
  for (auto i : train_idx) y_train.push_back(labels[i]);
  for (auto i : eval_idx) y_eval.push_back(labels[i]);

  // BiLSTM.
  watch.reset();
  nn::Sequential rnn = engine::build_imu_rnn(engine::ImuRnnConfig{});
  {
    nn::Adam opt(0.004);
    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.batch_size = 32;
    tc.shuffle_seed = seed;
    nn::train_classifier(rnn, opt, x_train, y_train, tc);
  }
  const auto rnn_cm = nn::evaluate(rnn, x_eval, y_eval, imu::kImuClassCount);
  const double rnn_seconds = watch.seconds();

  // Linear SVM on the flattened windows.
  watch.reset();
  svm::LinearSvm model(imu::kWindowSteps * imu::kImuChannels,
                       imu::kImuClassCount);
  model.fit(imu::flatten_windows(x_train), y_train);
  const auto svm_preds = model.predict(imu::flatten_windows(x_eval));
  nn::ConfusionMatrix svm_cm(imu::kImuClassCount);
  for (std::size_t i = 0; i < svm_preds.size(); ++i) {
    svm_cm.add(y_eval[i], svm_preds[i]);
  }
  const double svm_seconds = watch.seconds();

  // Linear SVM on statistical summary features (the classical feature
  // representation; the paper does not specify its SVM features).
  watch.reset();
  svm::LinearSvm feat_model(imu::kSummaryFeatureCount, imu::kImuClassCount);
  feat_model.fit(imu::summarize_windows(x_train), y_train);
  const auto feat_preds = feat_model.predict(imu::summarize_windows(x_eval));
  nn::ConfusionMatrix feat_cm(imu::kImuClassCount);
  for (std::size_t i = 0; i < feat_preds.size(); ++i) {
    feat_cm.add(y_eval[i], feat_preds[i]);
  }
  const double feat_seconds = watch.seconds();

  util::Table table({"Model", "Hit@1 (measured)", "Hit@1 (paper)", "train s"});
  table.add_row({"RNN (BiLSTM)", util::fmt_pct(rnn_cm.accuracy()), "97.44%",
                 util::fmt(rnn_seconds, 1)});
  table.add_row({"SVM (linear, raw window)", util::fmt_pct(svm_cm.accuracy()),
                 "95.37%", util::fmt(svm_seconds, 1)});
  table.add_row({"SVM (linear, summary features)",
                 util::fmt_pct(feat_cm.accuracy()), "--",
                 util::fmt(feat_seconds, 1)});
  std::cout << "\nIMU-sequence-only Top-1 (cf. Section 5.2 in-text):\n"
            << table.render();
  table.save_csv("results/imu_models.csv");

  std::cout << "\nRNN confusion (rows: Normal/Talking/Texting):\n"
            << rnn_cm.render();
  std::cout << "\nSVM confusion:\n" << svm_cm.render();

  const bool shape_holds = rnn_cm.accuracy() > svm_cm.accuracy();
  std::cout << "\nShape check (RNN > SVM): " << (shape_holds ? "OK" : "MISS")
            << "\n";
  return shape_holds ? 0 : 1;
}
