// Shard-scaling benchmark for the serve::Router tier (PR 9).
//
// Two legs:
//
//  1. Scaling: a saturated closed loop -- kRequests submitted round-robin
//     across kSessions as fast as admission allows -- wall-clocked from
//     first submit to drain at 1, 2 and 4 shards. Aggregate
//     requests/second per shard count plus the speedup vs 1 shard. The
//     shards are genuinely independent servers (own worker, own queue,
//     own replica), so on a machine with >= 4 free cores the 4-shard
//     curve should clear kScalingGate (3.5x); on the shared single-vCPU
//     CI box the measurement records what overlap the scheduler actually
//     grants, and the JSON carries the core count so the number can be
//     read in context rather than lied about.
//  2. Hot-swap gate (hard acceptance, any machine): mid-traffic
//     swap_snapshot to same-architecture replicas on 4 shards must lose
//     nothing -- every request resolves kOk (zero dropped), every
//     session maps to the same shard before and after (zero misrouted;
//     the ring depends only on shard count), and every session's verdict
//     stream stays bit-identical to the single-threaded
//     StreamingClassifier reference across the flip.
//
// Prints a human table plus a JSON blob (checked in as BENCH_shard.json);
// exits non-zero if the hot-swap gate fails or any request is dropped.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <vector>

#include "engine/engine.hpp"
#include "engine/streaming.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "parallel/pool.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

constexpr int kFrameFeatures = 256;
constexpr int kHidden = 256;
constexpr int kClasses = 6;
constexpr int kRequests = 512;
constexpr int kSessions = 64;
constexpr int kReps = 3;
constexpr double kScalingGate = 3.5;  // 4-shard speedup target (>= 4 cores)

std::shared_ptr<engine::EnsembleClassifier> make_ensemble() {
  util::Rng rng(1234);
  auto model = std::make_shared<nn::Sequential>();
  model->emplace<nn::Dense>(kFrameFeatures, kHidden, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Dense>(kHidden, kClasses, rng);
  auto frames = std::make_shared<engine::NeuralClassifier>(model, kClasses,
                                                           "dense-shard");
  return std::make_shared<engine::EnsembleClassifier>(
      frames, nullptr, bayes::ClassMap::darnet_default());
}

serve::Router::Snapshot make_snapshot(int shards, std::uint64_t version) {
  serve::Router::Snapshot snapshot;
  snapshot.version = version;
  for (int s = 0; s < shards; ++s) {
    // Same seed: bit-identical weights, distinct objects per shard.
    snapshot.replicas.push_back(make_ensemble());
  }
  return snapshot;
}

serve::RouterConfig make_config(int shards) {
  serve::RouterConfig config;
  config.shards = shards;
  config.shard.max_batch = 8;
  config.shard.max_delay_us = 0;  // saturation: flush as fast as possible
  config.shard.queue_capacity = kRequests;
  config.shard.shed_oldest = false;  // any overflow would be a bench bug
  return config;
}

/// Saturated closed loop through the router; requests/second, best of
/// kReps (best-of so shared-VM load spikes cannot manufacture speedups).
double throughput_rps(const std::vector<Tensor>& frames, int shards) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    serve::Router router(make_snapshot(shards, 1), make_config(shards));
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(kRequests);
    util::Stopwatch timer;
    for (int i = 0; i < kRequests; ++i) {
      engine::ClassifyRequest request;
      request.session_id = static_cast<std::uint64_t>(i % kSessions);
      request.frame = frames[static_cast<std::size_t>(i % kSessions)];
      auto sub = router.submit(std::move(request));
      if (sub.admit != serve::Admit::kAccepted) {
        std::cerr << "bench_shard: request " << i << " not accepted\n";
        std::exit(2);
      }
      futures.push_back(std::move(sub.response));
    }
    router.drain();
    const double seconds = timer.seconds();
    for (auto& future : futures) {
      if (future.get().status != serve::Status::kOk) {
        std::cerr << "bench_shard: request dropped\n";
        std::exit(2);
      }
    }
    best = std::max(best, static_cast<double>(kRequests) / seconds);
  }
  return best;
}

struct SwapGate {
  bool zero_dropped{true};
  bool zero_misrouted{true};
  bool bit_identical{true};
  std::uint64_t swaps_applied{0};
};

/// Mid-traffic snapshot flip on 4 shards vs the single-threaded
/// reference streams.
SwapGate hot_swap_gate() {
  constexpr int kSwapShards = 4;
  constexpr int kSwapSessions = 32;
  constexpr int kSteps = 30;

  auto reference_ensemble = make_ensemble();
  util::Rng rng(91);
  std::vector<std::vector<Tensor>> frames(kSwapSessions);
  std::vector<std::vector<engine::StreamingVerdict>> reference(
      kSwapSessions);
  for (int s = 0; s < kSwapSessions; ++s) {
    engine::StreamingClassifier stream(reference_ensemble,
                                       engine::StreamingConfig{});
    for (int t = 0; t < kSteps; ++t) {
      frames[s].push_back(
          Tensor::uniform({1, kFrameFeatures}, 1.0f, rng));
      reference[s].push_back(stream.step(frames[s][t], Tensor{}));
    }
  }

  serve::Router router(make_snapshot(kSwapShards, 1),
                       make_config(kSwapShards));
  std::vector<int> shard_before(kSwapSessions);
  for (int s = 0; s < kSwapSessions; ++s) {
    shard_before[s] = router.shard_for(static_cast<std::uint64_t>(s));
  }

  SwapGate gate;
  std::vector<std::vector<std::future<serve::Response>>> futures(
      kSwapSessions);
  for (int t = 0; t < kSteps; ++t) {
    if (t == kSteps / 2) router.swap_snapshot(make_snapshot(kSwapShards, 2));
    for (int s = 0; s < kSwapSessions; ++s) {
      auto sub = router.submit([&] {
        engine::ClassifyRequest request;
        request.session_id = static_cast<std::uint64_t>(s);
        request.frame = frames[s][static_cast<std::size_t>(t)];
        return request;
      }());
      if (sub.admit != serve::Admit::kAccepted) gate.zero_dropped = false;
      futures[s].push_back(std::move(sub.response));
    }
  }
  router.drain();

  for (int s = 0; s < kSwapSessions; ++s) {
    if (router.shard_for(static_cast<std::uint64_t>(s)) !=
        shard_before[s]) {
      gate.zero_misrouted = false;
    }
    for (int t = 0; t < kSteps; ++t) {
      serve::Response response = futures[s][static_cast<std::size_t>(t)].get();
      if (response.status != serve::Status::kOk) {
        gate.zero_dropped = false;
        continue;
      }
      const auto& got = response.result.verdict;
      const auto& want = reference[s][static_cast<std::size_t>(t)];
      if (got.predicted != want.predicted ||
          got.distribution.numel() != want.distribution.numel()) {
        gate.bit_identical = false;
        continue;
      }
      for (std::size_t i = 0; i < want.distribution.numel(); ++i) {
        if (got.distribution[i] != want.distribution[i]) {
          gate.bit_identical = false;
        }
      }
    }
  }
  gate.swaps_applied = router.stats().snapshot_swaps;
  return gate;
}

}  // namespace

int main() {
  util::Rng rng(7);
  std::vector<Tensor> frames;
  frames.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    frames.push_back(Tensor::uniform({1, kFrameFeatures}, 1.0f, rng));
  }

  const int cores = parallel::thread_count();
  std::printf("bench_shard: %d requests, %d sessions, Dense %d->%d->%d, "
              "%d hardware threads\n\n",
              kRequests, kSessions, kFrameFeatures, kHidden, kClasses,
              cores);

  const std::vector<int> shard_counts = {1, 2, 4};
  std::vector<double> rps;
  std::printf("  %-8s %12s %10s\n", "shards", "rps", "speedup");
  for (const int shards : shard_counts) {
    rps.push_back(throughput_rps(frames, shards));
    std::printf("  %-8d %12.1f %9.2fx\n", shards, rps.back(),
                rps.back() / rps.front());
  }
  const double speedup4 = rps.back() / rps.front();

  const SwapGate gate = hot_swap_gate();
  std::printf("\n  hot-swap gate: dropped=%s misrouted=%s "
              "bit_identical=%s swaps=%llu\n",
              gate.zero_dropped ? "none" : "SOME",
              gate.zero_misrouted ? "none" : "SOME",
              gate.bit_identical ? "yes" : "NO",
              static_cast<unsigned long long>(gate.swaps_applied));

  const bool scaling_ok = speedup4 >= kScalingGate;
  const bool swap_ok = gate.zero_dropped && gate.zero_misrouted &&
                       gate.bit_identical && gate.swaps_applied == 1;

  std::printf("\n{\n");
  std::printf("  \"benchmark\": \"bench/bench_shard.cpp\",\n");
  std::printf("  \"requests\": %d,\n", kRequests);
  std::printf("  \"sessions\": %d,\n", kSessions);
  std::printf("  \"hardware_threads\": %d,\n", cores);
  std::printf("  \"throughput_rps\": {\"shards_1\": %.1f, \"shards_2\": "
              "%.1f, \"shards_4\": %.1f},\n",
              rps[0], rps[1], rps[2]);
  std::printf("  \"speedup_4_shards\": %.2f,\n", speedup4);
  std::printf("  \"hot_swap\": {\"zero_dropped\": %s, \"zero_misrouted\": "
              "%s, \"bit_identical\": %s, \"swaps_applied\": %llu},\n",
              gate.zero_dropped ? "true" : "false",
              gate.zero_misrouted ? "true" : "false",
              gate.bit_identical ? "true" : "false",
              static_cast<unsigned long long>(gate.swaps_applied));
  std::printf("  \"criteria\": {\"speedup_4_shards_ge_3p5\": %s, "
              "\"hot_swap_gate\": %s}\n",
              scaling_ok ? "true" : "false", swap_ok ? "true" : "false");
  std::printf("}\n");

  if (!swap_ok) {
    std::fprintf(stderr, "bench_shard: hot-swap gate FAILED\n");
    return 1;
  }
  if (!scaling_ok) {
    // Scaling is machine-dependent (shards are independent OS threads);
    // report, but only hard-fail when the cores to scale onto exist.
    if (cores >= 4) {
      std::fprintf(stderr, "bench_shard: scaling gate FAILED with %d "
                           "hardware threads\n",
                   cores);
      return 1;
    }
    std::fprintf(stderr, "bench_shard: scaling gate skipped (%d hardware "
                         "thread(s) < 4)\n",
                 cores);
  }
  return 0;
}
