// Performance microbenchmarks (google-benchmark): the numeric kernels and
// middleware hot paths that set DarNet's throughput ceiling on one core.
#include <benchmark/benchmark.h>

#include "bayes/combiner.hpp"
#include "collection/messages.hpp"
#include "collection/store.hpp"
#include "core/dataset.hpp"
#include "privacy/privacy.hpp"
#include "imu/imu.hpp"
#include "engine/architectures.hpp"
#include "nn/conv2d.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "parallel/pool.hpp"
#include "tensor/arena.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "vision/renderer.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  const Tensor a = Tensor::uniform({n, n}, 1.0f, rng);
  const Tensor b = Tensor::uniform({n, n}, 1.0f, rng);
  for (auto _ : state) {
    Tensor c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2DForward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2D conv(8, 16, 3, 1, rng);
  const Tensor x = Tensor::uniform({4, 8, 24, 24}, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2DForward);

void BM_Conv2DTrainStep(benchmark::State& state) {
  util::Rng rng(3);
  nn::Conv2D conv(8, 16, 3, 1, rng);
  const Tensor x = Tensor::uniform({4, 8, 24, 24}, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    Tensor gx = conv.backward(y);
    benchmark::DoNotOptimize(gx.data());
    nn::zero_grads(conv);
  }
}
BENCHMARK(BM_Conv2DTrainStep);

void BM_Conv2DForwardDirect(benchmark::State& state) {
  // Small plane (6x6 -> 36 output pixels) stays under the im2col dispatch
  // threshold and exercises the direct sliding-window fallback.
  util::Rng rng(2);
  nn::Conv2D conv(8, 16, 3, 1, rng);
  const Tensor x = Tensor::uniform({4, 8, 6, 6}, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel("direct-kernel fallback path");
}
BENCHMARK(BM_Conv2DForwardDirect);

void BM_TrainEpoch(benchmark::State& state) {
  // End-to-end supervised epoch of the frame CNN on a synthetic minibatch
  // stream: gathers, forward, backward, clip, optimizer step.
  engine::FrameCnnConfig cfg;
  nn::Sequential cnn = engine::build_frame_cnn(cfg);
  util::Rng rng(12);
  const int n = 64;
  const Tensor x = Tensor::uniform({n, 1, 48, 48}, 0.5f, rng);
  std::vector<int> labels(n);
  for (auto& y : labels) y = static_cast<int>(rng.uniform_index(6));
  nn::Sgd optimizer(0.03, 0.9, 1e-4);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 32;
  for (auto _ : state) {
    const double loss = nn::train_classifier(cnn, optimizer, x, labels, tc);
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("one epoch, 64 frames, batch 32");
}
BENCHMARK(BM_TrainEpoch);

void BM_DatasetGeneration(benchmark::State& state) {
  core::DatasetConfig cfg;
  cfg.scale = 0.002;
  cfg.parallel = state.range(0) != 0;
  for (auto _ : state) {
    core::Dataset data = core::generate_dataset(cfg);
    benchmark::DoNotOptimize(data.frames.data());
  }
  state.SetLabel(cfg.parallel ? "per-row forked RNG streams"
                              : "serial single-stream (seed layout)");
}
BENCHMARK(BM_DatasetGeneration)->Arg(0)->Arg(1);

void BM_FrameCnnInference(benchmark::State& state) {
  engine::FrameCnnConfig cfg;
  nn::Sequential cnn = engine::build_frame_cnn(cfg);
  util::Rng rng(4);
  const Tensor frame = Tensor::uniform({1, 1, 48, 48}, 0.5f, rng);
  // Serving configuration: a scratch arena scopes the steady-state loop
  // (engine/serve install one per thread), so post-warm-up iterations are
  // heap-free.
  tensor::Arena arena;
  tensor::ArenaScope scope(arena);
  for (auto _ : state) {
    Tensor p = cnn.forward(frame, false);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetLabel(std::string("per-frame latency, kernels=") +
                 tensor::kernels::isa_name(tensor::kernels::active()));
}
BENCHMARK(BM_FrameCnnInference);

void BM_BiLstmWindowInference(benchmark::State& state) {
  nn::Sequential rnn = engine::build_imu_rnn(engine::ImuRnnConfig{});
  util::Rng rng(5);
  const Tensor window =
      Tensor::uniform({1, imu::kWindowSteps, imu::kImuChannels}, 1.0f, rng);
  for (auto _ : state) {
    Tensor p = rnn.forward(window, false);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetLabel("per-window IMU classification latency");
}
BENCHMARK(BM_BiLstmWindowInference);

void BM_SceneRender(benchmark::State& state) {
  util::Rng rng(6);
  vision::RenderConfig cfg;
  int cls = 0;
  for (auto _ : state) {
    vision::Image img = vision::render_driver_scene(
        static_cast<vision::DriverClass>(cls), cfg, rng);
    benchmark::DoNotOptimize(img.pixels().data());
    cls = (cls + 1) % vision::kDriverClassCount;
  }
}
BENCHMARK(BM_SceneRender);

void BM_StoreIngest(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    collection::TimeSeriesStore store;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      store.append("s", {i * 0.025, {1.0f, 2.0f, 3.0f}, 0});
    }
    benchmark::DoNotOptimize(store.total_tuples());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_StoreIngest);

void BM_BiLstmTrainStep(benchmark::State& state) {
  nn::Sequential rnn = engine::build_imu_rnn(engine::ImuRnnConfig{});
  util::Rng rng(8);
  const Tensor batch =
      Tensor::uniform({8, imu::kWindowSteps, imu::kImuChannels}, 1.0f, rng);
  for (auto _ : state) {
    Tensor out = rnn.forward(batch, true);
    Tensor g = rnn.backward(out);
    benchmark::DoNotOptimize(g.data());
    nn::zero_grads(rnn);
  }
}
BENCHMARK(BM_BiLstmTrainStep);

void BM_ImuTraceGeneration(benchmark::State& state) {
  util::Rng rng(9);
  int o = 0;
  for (auto _ : state) {
    auto trace = darnet::imu::generate_trace(
        static_cast<darnet::imu::PhoneOrientation>(o % 5), {}, rng);
    benchmark::DoNotOptimize(trace.data());
    ++o;
  }
}
BENCHMARK(BM_ImuTraceGeneration);

void BM_DistortionRoundTrip(benchmark::State& state) {
  util::Rng rng(10);
  const vision::Image frame = vision::render_driver_scene(
      vision::DriverClass::kTexting, {}, rng);
  darnet::privacy::DistortionModule module(
      darnet::privacy::DistortionLevel::kMedium);
  for (auto _ : state) {
    const auto tagged = module.process(frame);
    const auto rebuilt = darnet::privacy::reconstruct(tagged, 48);
    benchmark::DoNotOptimize(rebuilt.pixels().data());
  }
}
BENCHMARK(BM_DistortionRoundTrip);

void BM_MessageEncodeDecode(benchmark::State& state) {
  collection::DataBatch batch;
  batch.agent_id = 1;
  for (int i = 0; i < 10; ++i) {
    batch.readings.push_back(
        {"imu.accel", i * 0.025, {1.0f, 2.0f, 3.0f}, 0});
  }
  for (auto _ : state) {
    const auto bytes = collection::encode(batch);
    const auto decoded = collection::decode_batch(bytes);
    benchmark::DoNotOptimize(decoded.readings.size());
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_BayesianCombine(benchmark::State& state) {
  util::Rng rng(11);
  darnet::bayes::BayesianCombiner combiner(
      darnet::bayes::ClassMap::darnet_default());
  const int n = 64;
  Tensor p_img = tensor::softmax_rows(Tensor::uniform({n, 6}, 2.0f, rng));
  Tensor p_imu = tensor::softmax_rows(Tensor::uniform({n, 3}, 2.0f, rng));
  std::vector<int> labels(n);
  for (auto& y : labels) y = static_cast<int>(rng.uniform_index(6));
  combiner.fit(p_img, p_imu, labels);
  for (auto _ : state) {
    Tensor fused = combiner.combine(p_img, p_imu);
    benchmark::DoNotOptimize(fused.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BayesianCombine);

void BM_StoreAlignedQuery(benchmark::State& state) {
  collection::TimeSeriesStore store;
  util::Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    store.append("a", {i * 0.025, {static_cast<float>(rng.uniform())}, 0});
    store.append("b", {i * 0.025 + 0.003,
                       {static_cast<float>(rng.uniform()), 1.0f}, 0});
  }
  for (auto _ : state) {
    const auto rows = store.aligned({"a", "b"}, 10.0, 90.0, 0.25, 0.2);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_StoreAlignedQuery);

}  // namespace

// Record the pool width alongside the numbers: every ns/op in the JSON
// output is only meaningful relative to the thread count it ran with.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "darnet_threads", std::to_string(darnet::parallel::thread_count()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
