// Analyzer wall-time benchmark: evidence behind the < 10s budget the
// `analyze` CI leg enforces (tools/ci/check.sh, docs/STATIC_ANALYSIS.md
// "Performance").
//
// Runs `analyze::analyze_tree` over the repo several times and records
// min/mean/max wall seconds plus what the run saw: files/functions
// indexed, static lock edges, effect-table sizes (may-block /
// reads-clock function counts) and per-rule finding counts *before*
// baseline suppression (the baseline is a reporting concern; the rules'
// raw output is what costs time). The JSON blob is checked in as
// BENCH_analyze.json.
//
// Acceptance gates (exit non-zero on miss):
//  1. Budget: every run completes inside the 10s wall-time budget.
//  2. Determinism: per-rule finding counts are identical across runs.
//  3. Shape: the tree actually indexed (> 50 files, > 200 functions) --
//     a path typo must not pass as an instant "benchmark".
//
// Usage: bench_analyze [repo_root] [out_path]
//   repo_root  tree to analyze (default "."); the CI bench-smoke leg
//              passes the checkout root explicitly
//   out_path   where to write the JSON ("-" = stdout only;
//              default BENCH_analyze.json in the current directory)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "tools/analyze/rules.hpp"

namespace {

constexpr int kRuns = 5;
constexpr double kBudgetSeconds = 10.0;

// Full rule catalogue, so zero-count rules still appear in the JSON and
// a rule rename shows up as a count moving between keys.
const char* const kRules[] = {
    "lock-order",           "guarded-by",
    "hot-path-alloc-transitive", "unchecked-status",
    "blocking-under-lock",  "time-source-purity",
    "unchecked-posix-io",   "stale-baseline",
};

}  // namespace

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_analyze.json";

  std::vector<double> wall_s;
  std::map<std::string, int> counts;
  darnet::analyze::AnalysisResult last;
  for (int run = 0; run < kRuns; ++run) {
    const auto t0 = std::chrono::steady_clock::now();
    darnet::analyze::AnalysisResult res = darnet::analyze::analyze_tree(root);
    const auto t1 = std::chrono::steady_clock::now();
    wall_s.push_back(std::chrono::duration<double>(t1 - t0).count());

    std::map<std::string, int> run_counts;
    for (const char* rule : kRules) run_counts[rule] = 0;
    for (const auto& f : res.findings) ++run_counts[f.rule];
    if (run == 0) {
      counts = run_counts;
    } else if (run_counts != counts) {
      std::cerr << "bench_analyze: GATE MISS -- per-rule finding counts "
                   "differ between runs (analyzer is nondeterministic)\n";
      return 1;
    }
    last = std::move(res);
  }

  double min_s = wall_s[0], max_s = wall_s[0], sum_s = 0.0;
  for (double s : wall_s) {
    if (s < min_s) min_s = s;
    if (s > max_s) max_s = s;
    sum_s += s;
  }
  const double mean_s = sum_s / static_cast<double>(wall_s.size());

  int may_block = 0, reads_clock = 0;
  for (const auto& e : last.effects) {
    if (e.may_block) ++may_block;
    if (e.reads_clock) ++reads_clock;
  }

  std::string json;
  char buf[256];
  json += "{\n  \"bench\": \"analyze\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"runs\": %d,\n  \"files_indexed\": %d,\n"
                "  \"functions_indexed\": %d,\n  \"lock_edges\": %d,\n",
                kRuns, last.files_indexed, last.functions_indexed,
                static_cast<int>(last.lock_edges.size()));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"wall_seconds\": {\"min\": %.6f, \"mean\": %.6f, "
                "\"max\": %.6f},\n  \"budget_seconds\": %.1f,\n",
                min_s, mean_s, max_s, kBudgetSeconds);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"effects\": {\"may_block\": %d, \"reads_clock\": %d},\n",
                may_block, reads_clock);
  json += buf;
  json += "  \"findings_per_rule\": {\n";
  for (std::size_t i = 0; i < std::size(kRules); ++i) {
    std::snprintf(buf, sizeof(buf), "    \"%s\": %d%s\n", kRules[i],
                  counts[kRules[i]], i + 1 < std::size(kRules) ? "," : "");
    json += buf;
  }
  json += "  }\n}\n";

  std::printf("bench_analyze: %d files, %d functions, %d effect rows; "
              "wall %.3fs min / %.3fs mean / %.3fs max (budget %.1fs)\n",
              last.files_indexed, last.functions_indexed,
              static_cast<int>(last.effects.size()), min_s, mean_s, max_s,
              kBudgetSeconds);

  if (out_path != "-") {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_analyze: cannot write " << out_path << "\n";
      return 2;
    }
    out << json;
  } else {
    std::cout << json;
  }

  if (max_s > kBudgetSeconds) {
    std::cerr << "bench_analyze: GATE MISS -- slowest run " << max_s
              << "s exceeds the " << kBudgetSeconds << "s budget\n";
    return 1;
  }
  if (last.files_indexed <= 50 || last.functions_indexed <= 200) {
    std::cerr << "bench_analyze: GATE MISS -- indexed only "
              << last.files_indexed << " files / " << last.functions_indexed
              << " functions; wrong root?\n";
    return 1;
  }
  return 0;
}
