// Reproduces Table 2: ensemble Top-1 classification on the 6-class
// multimodal dataset.
//
//   Paper:  CNN+RNN 87.02%   CNN+SVM 86.23%   CNN 73.88%
//
// Workload: the Table-1-proportioned synthetic dataset (80/20 split),
// frame CNN trained on images, BiLSTM + SVM on the paired IMU windows,
// per-class Bayesian-network fusion fitted on training outputs. Shape
// target (absolute numbers depend on the synthetic substrate): both
// ensembles beat the CNN alone by a double-digit margin, and CNN+RNN edges
// CNN+SVM.
#include <cstdlib>
#include <iostream>

#include "core/darnet.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;

  core::DatasetConfig data_cfg;
  data_cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.04;
  data_cfg.seed = 42;

  util::Stopwatch watch;
  const core::Dataset data = core::generate_dataset(data_cfg);
  const auto split = core::split_dataset(data, 0.8, 7);
  std::cout << "Dataset: " << data.size() << " paired samples at scale "
            << data_cfg.scale << " of the paper's "
            << core::kPaperTotalFrames << " frames (" << split.train.size()
            << " train / " << split.eval.size() << " eval), generated in "
            << util::fmt(watch.seconds(), 1) << "s\n";

  core::DarNet darnet{core::DarNetConfig{}};
  watch.reset();
  const auto report = darnet.train(split.train);
  std::cout << "Training: " << util::fmt(report.train_seconds, 1)
            << "s (CNN loss " << util::fmt(report.cnn_final_loss, 3)
            << ", RNN loss " << util::fmt(report.rnn_final_loss, 3) << ")\n\n";

  const double paper[] = {87.02, 86.23, 73.88};
  const engine::ArchitectureKind kinds[] = {
      engine::ArchitectureKind::kCnnRnn, engine::ArchitectureKind::kCnnSvm,
      engine::ArchitectureKind::kCnnOnly};

  double acc[3] = {};
  util::Table table({"Model", "Hit@1 (measured)", "Hit@1 (paper)"});
  for (int i = 0; i < 3; ++i) {
    const auto cm = darnet.evaluate(split.eval, kinds[i]);
    acc[i] = cm.accuracy();
    table.add_row({engine::architecture_name(kinds[i]),
                   util::fmt_pct(acc[i]), util::fmt(paper[i], 2) + "%"});
  }
  std::cout << "Table 2 -- ensemble model Top-1 classification:\n"
            << table.render();
  table.save_csv("results/table2_ensemble.csv");

  const bool ensembles_win =
      acc[0] > acc[2] + 0.05 && acc[1] > acc[2] + 0.05;
  const bool rnn_edges_svm = acc[0] >= acc[1];
  std::cout << "\nShape checks:\n"
            << "  ensembles beat CNN by >5pts: "
            << (ensembles_win ? "OK" : "MISS") << "\n"
            << "  CNN+RNN >= CNN+SVM:          "
            << (rnn_edges_svm ? "OK" : "MISS") << "\n";
  return (ensembles_win && rnn_edges_svm) ? 0 : 1;
}
