// Exercises the system of Figures 1-2 end to end: collection agents on two
// simulated devices (dashcam tablet + driver's phone) -> virtual links ->
// centralized controller (registration, clock sync every 5 s,
// interpolation-based alignment, smoothing, time-series store) -> the
// analytics engine's Bayesian ensemble, classifying per time-step while a
// scripted driving session plays out (the paper's collection protocol:
// each behaviour held for 15 s).
//
// Reports middleware health (tuple throughput, link latency, residual
// clock error, alignment completeness) and live classification accuracy.
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;

  // Train the analytics models offline first (as the deployment does).
  core::DatasetConfig data_cfg;
  data_cfg.scale = scale;
  data_cfg.seed = 42;
  const core::Dataset data = core::generate_dataset(data_cfg);
  core::DarNet darnet{core::DarNetConfig{}};
  util::Stopwatch watch;
  darnet.train(data);
  std::cout << "Models trained offline on " << data.size() << " samples in "
            << util::fmt(watch.seconds(), 1) << "s\n";

  // One full pass over the paper's script: six behaviours x 15 s.
  const auto script = core::SessionScript::paper_script(1, 15.0);
  core::PipelineConfig cfg;
  cfg.phone_drift_ppm = 250.0;  // realistic commodity-clock drift
  core::StreamingPipeline pipeline(script, cfg);

  watch.reset();
  const auto results =
      pipeline.run(&darnet, engine::ArchitectureKind::kCnnRnn);
  const double wall = watch.seconds();

  const auto& ctrl = pipeline.controller();
  int correct = 0;
  for (const auto& r : results) {
    if (r.predicted == r.actual) ++correct;
  }
  const double live_acc =
      results.empty() ? 0.0
                      : static_cast<double>(correct) / static_cast<double>(results.size());

  util::Table table({"Metric", "Value"});
  table.add_row({"session length", util::fmt(script.total_duration(), 0) + " s"});
  table.add_row({"tuples ingested", std::to_string(ctrl.tuples_received())});
  table.add_row({"batches received", std::to_string(ctrl.batches_received())});
  table.add_row({"camera bytes on link",
                 std::to_string(pipeline.camera_link_stats().bytes_sent)});
  table.add_row({"phone bytes on link",
                 std::to_string(pipeline.phone_link_stats().bytes_sent)});
  table.add_row({"phone link mean latency",
                 util::fmt(pipeline.phone_link_stats().mean_latency_s() * 1e3,
                           2) + " ms"});
  table.add_row({"residual phone clock error",
                 util::fmt(std::abs(pipeline.phone_clock_error()) * 1e3, 2) +
                     " ms"});
  table.add_row({"per-timestep classifications",
                 std::to_string(results.size())});
  table.add_row({"live Top-1 accuracy", util::fmt_pct(live_acc)});
  table.add_row({"simulation wall time", util::fmt(wall, 1) + " s"});
  table.add_row({"realtime factor",
                 util::fmt(script.total_duration() / wall, 1) + "x"});
  std::cout << "\nFigures 1-2 -- end-to-end streaming deployment:\n"
            << table.render();
  table.save_csv("results/fig12_pipeline.csv");

  // Health checks: the middleware must deliver data and classify well
  // above chance while keeping clocks tight.
  const bool flow_ok = ctrl.tuples_received() > 10000 && results.size() > 50;
  const bool clock_ok = std::abs(pipeline.phone_clock_error()) < 0.02;
  const bool acc_ok = live_acc > 0.5;
  std::cout << "\nShape checks:\n"
            << "  data flows through middleware: " << (flow_ok ? "OK" : "MISS")
            << "\n  clock error bounded (<20ms):   "
            << (clock_ok ? "OK" : "MISS")
            << "\n  live accuracy >> chance:       " << (acc_ok ? "OK" : "MISS")
            << "\n";
  return (flow_ok && clock_ok && acc_ok) ? 0 : 1;
}
