// Reproduces Figure 3: the privacy architecture's three transmission paths
// from the vehicle to the remote server, one per distortion level.
//
// A stream of frames is pushed through the distortion module and shipped
// over a bandwidth-limited virtual link per level; the harness reports
// bytes on the wire, the effective reduction factor (paper: ~9x / 25x /
// 144x for 100/50/25 from 300x300; exactly 9x / 36x / 144x in this
// geometry), and end-to-end delivery latency -- the paper's argument that
// down-sampling "not only obfuscates ... but also improves bandwidth".
#include <cstdlib>
#include <iostream>

#include "collection/link.hpp"
#include "privacy/privacy.hpp"
#include "util/table.hpp"
#include "vision/renderer.hpp"

int main(int argc, char** argv) {
  using namespace darnet;
  using privacy::DistortionLevel;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 120;

  util::Rng rng(31);
  vision::RenderConfig render;
  std::vector<vision::Image> stream;
  stream.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    stream.push_back(vision::render_driver_scene(
        static_cast<vision::DriverClass>(i % vision::kDriverClassCount),
        render, rng));
  }

  const DistortionLevel levels[] = {
      DistortionLevel::kNone, DistortionLevel::kLow, DistortionLevel::kMedium,
      DistortionLevel::kHigh};

  util::Table table({"Path", "Frame size", "Bytes sent", "Reduction",
                     "Mean latency", "Paper reduction"});
  const char* paper_reduction[] = {"1x", "~9x", "~25x", "~144x"};

  std::uint64_t full_bytes = 0;
  double latency_none = 0.0, latency_high = 0.0;
  int row = 0;
  for (DistortionLevel level : levels) {
    collection::Simulation sim;
    collection::LinkConfig link_cfg;
    link_cfg.bandwidth_bps = 2.0e6;  // constrained uplink
    link_cfg.base_latency_s = 0.02;
    link_cfg.jitter_s = 0.004;
    collection::VirtualLink link(sim, link_cfg, 7);
    int delivered = 0;
    link.set_receiver([&](std::vector<std::uint8_t>) { ++delivered; });

    privacy::DistortionModule module(level);
    int edge = 0;
    for (const auto& frame : stream) {
      const privacy::TaggedFrame tagged = module.process(frame);
      edge = tagged.image.width();
      // 1 byte per pixel + the 4-byte level tag, as counted by wire_bytes.
      std::vector<std::uint8_t> payload(privacy::wire_bytes(tagged));
      link.send(std::move(payload));
      sim.run_until(sim.now() + 0.25);  // 4 fps frame cadence
    }
    sim.run_until(sim.now() + 5.0);

    const auto& stats = link.stats();
    if (level == DistortionLevel::kNone) {
      full_bytes = stats.bytes_sent;
      latency_none = stats.mean_latency_s();
    }
    if (level == DistortionLevel::kHigh) latency_high = stats.mean_latency_s();
    table.add_row(
        {privacy::distortion_name(level),
         std::to_string(edge) + "x" + std::to_string(edge),
         std::to_string(stats.bytes_sent),
         util::fmt(static_cast<double>(full_bytes) / static_cast<double>(stats.bytes_sent), 1) +
             "x",
         util::fmt(stats.mean_latency_s() * 1e3, 2) + " ms",
         paper_reduction[row]});
    ++row;
  }

  std::cout << "Figure 3 -- privacy transmission paths (" << frames
            << " frames @ 4 fps, 2 Mb/s uplink):\n"
            << table.render();
  table.save_csv("results/fig3_privacy_paths.csv");

  const bool shape = latency_high < latency_none;
  std::cout << "\nShape check (higher distortion -> lower latency): "
            << (shape ? "OK" : "MISS") << "\n";
  return shape ? 0 : 1;
}
