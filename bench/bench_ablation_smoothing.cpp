// Ablation A3: the controller's sliding moving-average smoothing.
//
// The paper smooths because "we expect the data measurements to fall
// within a bounded range of error" on commodity sensors. This ablation
// injects heavy white measurement noise into IMU traces, rebuilds the
// 4 Hz windows through a TimeSeriesStore with varying smoothing windows,
// and measures downstream IMU classification accuracy (linear SVM -- the
// fast model; the effect is about the data path, not the classifier).
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "collection/store.hpp"
#include "imu/imu.hpp"
#include "nn/trainer.hpp"
#include "svm/svm.hpp"
#include "util/table.hpp"

namespace {

using namespace darnet;

/// Build one window by routing a raw trace through the store's smoothing +
/// interpolation path (what the controller does to agent data).
tensor::Tensor window_via_store(const std::vector<imu::ImuSample>& trace,
                                double smoothing_window_s) {
  collection::TimeSeriesStore store;
  for (const auto& s : trace) {
    std::vector<float> row(imu::kImuChannels);
    for (int k = 0; k < 3; ++k) row[static_cast<std::size_t>(k)] = s.accel[k];
    for (int k = 0; k < 3; ++k) {
      row[static_cast<std::size_t>(3 + k)] = s.gyro[k];
    }
    for (int k = 0; k < 3; ++k) {
      row[static_cast<std::size_t>(6 + k)] = s.gravity[k];
    }
    for (int k = 0; k < 4; ++k) {
      row[static_cast<std::size_t>(9 + k)] = s.rotation[k];
    }
    store.append("imu", {s.timestamp_s, std::move(row), 0});
  }
  tensor::Tensor window({imu::kWindowSteps, imu::kImuChannels});
  for (int step = 0; step < imu::kWindowSteps; ++step) {
    const double t = step / imu::kWindowHz;
    const auto values = smoothing_window_s > 0.0
                            ? store.smoothed("imu", t, smoothing_window_s)
                            : store.interpolate("imu", t);
    if (!values) throw std::logic_error("ablation: window gap");
    std::copy(values->begin(), values->end(),
              window.data() +
                  static_cast<std::size_t>(step) * imu::kImuChannels);
  }
  return window;
}

}  // namespace

int main(int argc, char** argv) {
  const int per_orientation = argc > 1 ? std::atoi(argv[1]) : 120;

  // Heavy measurement noise: 4x the default config.
  imu::ImuGenConfig gen;
  gen.sensor_noise *= 4.0;

  // One trace pool, re-windowed per smoothing setting.
  util::Rng rng(55);
  std::vector<std::vector<imu::ImuSample>> traces;
  std::vector<int> labels;
  for (int o = 0; o < 5; ++o) {
    const auto orientation = static_cast<imu::PhoneOrientation>(o);
    for (int i = 0; i < per_orientation; ++i) {
      traces.push_back(imu::generate_trace(orientation, gen, rng));
      labels.push_back(static_cast<int>(imu::imu_class_of(orientation)));
    }
  }
  const auto n = traces.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  const std::size_t cut = n * 8 / 10;

  const double windows_s[] = {0.0, 0.1, 0.25, 0.5, 1.5};
  darnet::util::Table table({"Smoothing window", "IMU Hit@1"});
  double best = 0.0, none = 0.0, huge = 0.0;
  for (double w : windows_s) {
    tensor::Tensor x(
        {static_cast<int>(n), imu::kWindowSteps, imu::kImuChannels});
    const std::size_t stride =
        static_cast<std::size_t>(imu::kWindowSteps) * imu::kImuChannels;
    for (std::size_t i = 0; i < n; ++i) {
      const auto win = window_via_store(traces[i], w);
      std::copy(win.data(), win.data() + stride, x.data() + i * stride);
    }
    // Train/eval split over the same shuffled order for every setting.
    std::vector<int> y_train, y_eval;
    tensor::Tensor x_train = darnet::nn::gather_rows(
        x, std::span<const std::size_t>(order.data(), cut));
    tensor::Tensor x_eval = darnet::nn::gather_rows(
        x, std::span<const std::size_t>(order.data() + cut, n - cut));
    for (std::size_t i = 0; i < cut; ++i) y_train.push_back(labels[order[i]]);
    for (std::size_t i = cut; i < n; ++i) y_eval.push_back(labels[order[i]]);

    svm::LinearSvm model(imu::kWindowSteps * imu::kImuChannels, 3);
    model.fit(imu::flatten_windows(x_train), y_train);
    const auto preds = model.predict(imu::flatten_windows(x_eval));
    int correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == y_eval[i]) ++correct;
    }
    const double acc = static_cast<double>(correct) / static_cast<double>(preds.size());
    best = std::max(best, acc);
    if (w == 0.0) none = acc;
    if (w == 1.5) huge = acc;
    table.add_row({w == 0.0 ? "off" : darnet::util::fmt(w, 2) + " s",
                   darnet::util::fmt_pct(acc)});
  }

  std::cout << "Ablation A3 -- controller smoothing under 4x sensor noise ("
            << n << " windows):\n"
            << table.render();
  table.save_csv("results/ablation_smoothing.csv");

  // Moderate smoothing must help vs none; the point is the hump, but with
  // a modest eval set we only require "some smoothing >= none".
  const bool helps = best > none + 0.01;
  std::cout << "\nShape check (moderate smoothing beats none): "
            << (helps ? "OK" : "MISS") << "  [off=" << darnet::util::fmt_pct(none)
            << " best=" << darnet::util::fmt_pct(best)
            << " 1.5s=" << darnet::util::fmt_pct(huge) << "]\n";
  return helps ? 0 : 1;
}
