// Ablation A4: the controller's local/remote processing decision (§3.2).
//
// Sweeps uplink quality (bandwidth x RTT) and, for each condition,
// compares the per-classification latency of always-local, always-remote,
// and the adaptive policy (with hysteresis). Also shows how the privacy
// level shifts the crossover: a down-sampled payload makes remote viable
// on links where a full frame is not -- the paper's "improves bandwidth
// by transmitting less data".
#include <iostream>

#include "collection/processing.hpp"
#include "privacy/privacy.hpp"
#include "util/table.hpp"

int main() {
  using namespace darnet;
  using collection::ComputeProfile;
  using collection::NetworkEstimator;
  using collection::Placement;
  using collection::ProcessingDecision;

  ComputeProfile profile;  // edge 80 ms vs server 4 ms per classification

  struct Condition {
    const char* name;
    double rtt_s;
    double bandwidth_bps;
  };
  const Condition conditions[] = {
      {"good WiFi (10ms, 20Mb/s)", 0.010, 20e6},
      {"LTE (50ms, 5Mb/s)", 0.050, 5e6},
      {"backhaul-limited (30ms, 200kb/s)", 0.030, 2e5},
      {"congested (150ms, 1Mb/s)", 0.150, 1e6},
      {"edge of coverage (400ms, 100kb/s)", 0.400, 1e5},
  };

  util::Table table({"Network", "local", "remote (full frame)",
                     "adaptive picks", "remote (dCNN-H payload)",
                     "adaptive @ high privacy"});
  bool adaptive_optimal = true;
  for (const auto& cond : conditions) {
    NetworkEstimator net;
    net.observe(cond.rtt_s, cond.bandwidth_bps);

    const double local =
        predicted_latency_s(Placement::kLocal, profile, net);
    const double remote_full =
        predicted_latency_s(Placement::kRemote, profile, net);
    ProcessingDecision decision(profile, 0.0);  // no hysteresis: pure argmin
    const Placement pick = decision.decide(net);
    const double picked = std::min(local, remote_full);
    adaptive_optimal =
        adaptive_optimal &&
        (predicted_latency_s(pick, profile, net) == picked);

    // High privacy: the frame shrinks 144x before transmission.
    ComputeProfile high = profile;
    high.remote_payload_bytes =
        privacy::wire_bytes(privacy::TaggedFrame{
            privacy::DistortionLevel::kHigh, vision::Image(4, 4)});
    const double remote_high =
        predicted_latency_s(Placement::kRemote, high, net);
    ProcessingDecision high_decision(high, 0.0);
    const Placement high_pick = high_decision.decide(net);

    table.add_row({cond.name, util::fmt(local * 1e3, 1) + " ms",
                   util::fmt(remote_full * 1e3, 1) + " ms",
                   collection::placement_name(pick),
                   util::fmt(remote_high * 1e3, 1) + " ms",
                   collection::placement_name(high_pick)});
  }

  std::cout << "Ablation A4 -- processing placement vs network conditions "
               "(per-classification latency):\n"
            << table.render();
  table.save_csv("results/ablation_processing.csv");

  // The qualitative claims: adaptive always matches the faster placement,
  // and shrinking the payload flips at least one condition to remote.
  // On a bandwidth-limited (not RTT-limited) link, shrinking the payload
  // 144x flips the placement from local to remote.
  NetworkEstimator limited;
  limited.observe(0.030, 2e5);
  ComputeProfile high = profile;
  high.remote_payload_bytes = 17;
  const bool privacy_flips =
      predicted_latency_s(Placement::kRemote, high, limited) <
          profile.local_inference_s &&
      predicted_latency_s(Placement::kRemote, profile, limited) >
          profile.local_inference_s;

  std::cout << "\nShape checks:\n"
            << "  adaptive picks the faster side:     "
            << (adaptive_optimal ? "OK" : "MISS") << "\n"
            << "  privacy payload flips a crossover:  "
            << (privacy_flips ? "OK" : "MISS") << "\n";
  return (adaptive_optimal && privacy_flips) ? 0 : 1;
}
