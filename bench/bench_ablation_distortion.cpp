// Ablation A5: the distortion kernel. The paper down-samples with nearest
// neighbour; box averaging transmits the same byte count but integrates
// over source pixels, preserving more usable signal (and averaging away
// sensor noise). This ablation trains a supervised CNN per (kernel,
// level) on the 18-class dataset and compares accuracy at equal
// bandwidth.
#include <cstdlib>
#include <iostream>

#include "core/dataset.hpp"
#include "engine/architectures.hpp"
#include "nn/trainer.hpp"
#include "privacy/privacy.hpp"
#include "util/table.hpp"

using namespace darnet;
using tensor::Tensor;

namespace {

/// Distort a batch with the chosen kernel, reconstructing to full size.
Tensor distort_with(const Tensor& frames, privacy::DistortionLevel level,
                    bool box_average) {
  if (!box_average) return privacy::apply_distortion(frames, level);
  const int n = frames.dim(0);
  const int edge = frames.dim(3);
  const int target = privacy::distorted_size(level, edge);
  Tensor out(frames.shape());
  const std::size_t stride = static_cast<std::size_t>(edge) * edge;
  for (int i = 0; i < n; ++i) {
    const vision::Image clean = vision::from_batch_tensor(frames, i);
    const vision::Image small =
        vision::resize_box_average(clean, target, target);
    const vision::Image rebuilt = vision::resize_nearest(small, edge, edge);
    std::copy(rebuilt.pixels().begin(), rebuilt.pixels().end(),
              out.data() + static_cast<std::size_t>(i) * stride);
  }
  return out;
}

double train_and_eval(const core::FineDataset& train_set,
                      const core::FineDataset& eval_set,
                      privacy::DistortionLevel level, bool box_average) {
  engine::FrameCnnConfig cfg;
  cfg.num_classes = vision::kFineClassCount;
  cfg.dropout = 0.0;
  cfg.seed = 5;
  nn::Sequential model = engine::build_frame_cnn(cfg);
  const Tensor x = distort_with(train_set.frames, level, box_average);
  nn::Sgd opt(0.03, 0.9, 1e-4);
  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 32;
  tc.shuffle_seed = 9;
  nn::train_classifier(model, opt, x, train_set.labels, tc);
  const Tensor ex = distort_with(eval_set.frames, level, box_average);
  return nn::evaluate(model, ex, eval_set.labels, vision::kFineClassCount)
      .accuracy();
}

}  // namespace

int main(int argc, char** argv) {
  const int per_class = argc > 1 ? std::atoi(argv[1]) : 30;
  vision::RenderConfig render;
  render.pixel_noise = 0.05;
  render.pose_noise = 1.0;
  const auto train_set = core::generate_fine_dataset(per_class, render, 301);
  const auto eval_set = core::generate_fine_dataset(12, render, 302);
  std::cout << "18-class dataset: " << train_set.frames.dim(0) << " train / "
            << eval_set.frames.dim(0) << " eval\n";

  util::Table table(
      {"Level", "nearest (paper)", "box average", "bytes on wire"});
  double near_m = 0.0, box_m = 0.0;
  for (auto level :
       {privacy::DistortionLevel::kMedium, privacy::DistortionLevel::kHigh}) {
    const double nn_acc = train_and_eval(train_set, eval_set, level, false);
    const double box_acc = train_and_eval(train_set, eval_set, level, true);
    if (level == privacy::DistortionLevel::kMedium) {
      near_m = nn_acc;
      box_m = box_acc;
    }
    const int edge = privacy::distorted_size(level, render.size);
    table.add_row({privacy::distortion_name(level), util::fmt_pct(nn_acc),
                   util::fmt_pct(box_acc),
                   std::to_string(edge * edge + 1)});
  }
  std::cout << "\nAblation A5 -- distortion kernel at equal bandwidth "
               "(supervised CNN per cell):\n"
            << table.render();
  table.save_csv("results/ablation_distortion.csv");

  // Box averaging should match or beat nearest at the same byte budget.
  const bool box_wins = box_m >= near_m - 0.02;
  std::cout << "\nShape check (box average >= nearest at Medium): "
            << (box_wins ? "OK" : "MISS") << "\n"
            << "Note: the paper uses nearest neighbour; this ablation "
               "quantifies what that choice costs.\n";
  return box_wins ? 0 : 1;
}
