// Reproduces Table 3: privacy-preserving dCNN Top-1 classification on the
// second (18-class) distracted-driver dataset.
//
//   Paper:  CNN 78.87%   dCNN-L 80.00%   dCNN-M 77.78%   dCNN-H 63.13%
//
// Methodology (Section 4.3): the teacher CNN is trained supervised on the
// clean frames; each dCNN student shares the architecture, is initialised
// from the teacher's weights, and is trained *unsupervised* by minimising
// the L2 distance between its output on the distorted frame and the
// teacher's recorded output on the original. Students are evaluated on
// distorted held-out frames.
//
// Shape target: dCNN-L lands within a few points of the teacher, dCNN-M
// degrades but stays far above chance, and dCNN-H collapses by double
// digits. Documented deviation (EXPERIMENTS.md): at this 48px substrate
// the Medium level loses more than the paper's 50x50-of-300 (information
// loss depends on absolute pixel count, not only on the reduction ratio),
// so the measured dCNN-M sits lower relative to the CNN than the paper's
// 1-point gap.
#include <cstdlib>
#include <iostream>

#include "core/dataset.hpp"
#include "engine/architectures.hpp"
#include "nn/trainer.hpp"
#include "privacy/privacy.hpp"
#include "util/serialize.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace darnet;
using tensor::Tensor;

namespace {

nn::Sequential make_model(std::uint64_t seed) {
  engine::FrameCnnConfig cfg;
  cfg.input_size = 48;
  cfg.num_classes = vision::kFineClassCount;
  cfg.dropout = 0.0;  // encourage the mild overfit the paper hypothesises
  cfg.seed = seed;
  return engine::build_frame_cnn(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const int per_class_train = argc > 1 ? std::atoi(argv[1]) : 42;
  const int per_class_eval = 15;

  // The second dataset was recorded with a GoPro Hero 3 -- cleaner capture
  // than the dashcam tablet of the 6-class study.
  vision::RenderConfig render;
  render.pixel_noise = 0.05;
  render.pose_noise = 1.0;
  const core::FineDataset train_set = core::generate_fine_dataset(
      per_class_train, render, 1001);
  const core::FineDataset eval_set = core::generate_fine_dataset(
      per_class_eval, render, 2002);
  std::cout << "18-class dataset: " << train_set.frames.dim(0) << " train / "
            << eval_set.frames.dim(0) << " eval frames (48x48)\n";

  // Teacher.
  util::Stopwatch watch;
  nn::Sequential teacher = make_model(3);
  {
    nn::Sgd opt(0.03, 0.9, 1e-4);
    nn::TrainConfig tc;
    tc.epochs = 16;  // push into mild overfit on the small train set
    tc.batch_size = 32;
    tc.shuffle_seed = 5;
    nn::train_classifier(teacher, opt, train_set.frames, train_set.labels,
                         tc);
  }
  const double teacher_acc =
      nn::evaluate(teacher, eval_set.frames, eval_set.labels,
                   vision::kFineClassCount)
          .accuracy();
  const double teacher_train_acc =
      nn::evaluate(teacher, train_set.frames, train_set.labels,
                   vision::kFineClassCount)
          .accuracy();
  std::cout << "Teacher CNN trained in " << util::fmt(watch.seconds(), 1)
            << "s -- train " << util::fmt_pct(teacher_train_acc) << " / eval "
            << util::fmt_pct(teacher_acc)
            << " (train-eval gap = overfit margin)\n\n";

  const privacy::DistortionLevel levels[] = {privacy::DistortionLevel::kLow,
                                             privacy::DistortionLevel::kMedium,
                                             privacy::DistortionLevel::kHigh};
  const char* names[] = {"dCNN-L", "dCNN-M", "dCNN-H"};
  const double paper[] = {80.00, 77.78, 63.13};

  util::Table table({"Model", "Hit@1 (measured)", "Hit@1 (paper)"});
  table.add_row({"CNN", util::fmt_pct(teacher_acc), "78.87%"});

  double acc[3] = {};
  for (int i = 0; i < 3; ++i) {
    watch.reset();
    nn::Sequential student = make_model(100 + static_cast<std::uint64_t>(i));
    // Paper: "initialize the weights using the CNN trained on the driving
    // dataset".
    util::BinaryWriter w;
    teacher.save_params(w);
    util::BinaryReader r(w.bytes());
    student.load_params(r);

    nn::Sgd opt(0.01, 0.9);  // paper: stochastic gradient descent
    nn::TrainConfig tc;
    tc.epochs = 12;
    tc.batch_size = 32;
    tc.shuffle_seed = 17 + static_cast<std::uint64_t>(i);
    privacy::distill_dcnn(student, teacher, train_set.frames, levels[i], opt,
                          tc);

    // Students see distorted frames in deployment.
    const Tensor distorted_eval =
        privacy::apply_distortion(eval_set.frames, levels[i]);
    acc[i] = nn::evaluate(student, distorted_eval, eval_set.labels,
                          vision::kFineClassCount)
                 .accuracy();
    table.add_row({names[i], util::fmt_pct(acc[i]),
                   util::fmt(paper[i], 2) + "%"});
    std::cout << names[i] << " distilled in " << util::fmt(watch.seconds(), 1)
              << "s\n";
  }

  std::cout << "\nTable 3 -- CNN and dCNN Top-1 classification (18-class "
               "dataset):\n"
            << table.render();
  table.save_csv("results/table3_dcnn.csv");

  const double chance = 1.0 / vision::kFineClassCount;
  const bool low_holds = acc[0] >= teacher_acc - 0.06;
  const bool medium_mid = acc[1] > 3.0 * chance && acc[1] < acc[0];
  const bool high_collapses = acc[2] <= teacher_acc - 0.30 && acc[2] < acc[1];
  std::cout << "\nShape checks:\n"
            << "  dCNN-L within a few pts of CNN:  "
            << (low_holds ? "OK" : "MISS") << "\n"
            << "  dCNN-M degraded but >> chance:   "
            << (medium_mid ? "OK" : "MISS") << "\n"
            << "  dCNN-H collapses:                "
            << (high_collapses ? "OK" : "MISS") << "\n";
  return (low_holds && medium_mid && high_collapses) ? 0 : 1;
}
