// Ablation A6: generalisation to unseen drivers.
//
// The paper's evaluation uses a random 80/20 split over data from only 5
// drivers and flags the small participant pool as a limitation. With
// per-driver style heterogeneity in the generator, this ablation compares
// the standard random split against leave-one-driver-out (train on 4
// drivers, evaluate on the 5th): the gap between the two is the
// "unseen driver" generalisation cost the paper anticipates.
#include <cstdlib>
#include <iostream>

#include "core/darnet.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;

  core::DatasetConfig data_cfg;
  data_cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.025;
  data_cfg.num_drivers = 5;
  data_cfg.seed = 77;
  const core::Dataset data = core::generate_dataset(data_cfg);

  // Random 80/20 split (the paper's protocol).
  double random_acc = 0.0;
  {
    const auto split = core::split_dataset(data, 0.8, 3);
    core::DarNet darnet{core::DarNetConfig{}};
    darnet.train(split.train);
    random_acc = darnet
                     .evaluate(split.eval,
                               engine::ArchitectureKind::kCnnRnn)
                     .accuracy();
  }

  // Leave-one-driver-out (driver 0 held out; one fold keeps the bench
  // affordable -- pass a scale and run more folds for the full picture).
  double lodo_acc = 0.0;
  std::size_t held_out_size = 0;
  {
    const auto split = core::split_leave_one_driver_out(data, 0);
    held_out_size = static_cast<std::size_t>(split.eval.size());
    core::DarNet darnet{core::DarNetConfig{}};
    darnet.train(split.train);
    lodo_acc = darnet
                   .evaluate(split.eval, engine::ArchitectureKind::kCnnRnn)
                   .accuracy();
  }

  util::Table table({"Split", "CNN+RNN Hit@1", "eval samples"});
  table.add_row({"random 80/20 (paper protocol)", util::fmt_pct(random_acc),
                 std::to_string(data.size() / 5)});
  table.add_row({"leave-one-driver-out", util::fmt_pct(lodo_acc),
                 std::to_string(held_out_size)});
  std::cout << "Ablation A6 -- unseen-driver generalisation ("
            << data.size() << " samples, 5 drivers):\n"
            << table.render();
  table.save_csv("results/ablation_drivers.csv");
  std::cout << "\nGeneralisation gap: "
            << util::fmt((random_acc - lodo_acc) * 100.0, 2)
            << " points -- the cost the paper's 'larger participant study' "
               "would amortise.\n";

  // Shape: held-out-driver accuracy is lower than random-split accuracy,
  // but the model must still transfer (well above chance).
  const bool gap_exists = lodo_acc <= random_acc + 0.01;
  const bool transfers = lodo_acc > 2.0 / 6.0;
  std::cout << "\nShape checks:\n"
            << "  unseen driver is harder (or equal): "
            << (gap_exists ? "OK" : "MISS") << "\n"
            << "  model still transfers (>2x chance): "
            << (transfers ? "OK" : "MISS") << "\n";
  return (gap_exists && transfers) ? 0 : 1;
}
