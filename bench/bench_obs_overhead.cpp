// Observability overhead microbenchmarks (google-benchmark).
//
// Two groups:
//   * Primitive costs -- what one macro invocation costs at steady state.
//     These go through the DARNET_* macros, so an obs-off build measures
//     the true compiled-out no-op (expect ~0 ns).
//   * Instrumented-path costs -- the real workloads the <2% overhead
//     budget is stated against (docs/OBSERVABILITY.md, DESIGN.md §8):
//     per-frame CNN inference and a full training epoch, both of which
//     cross the per-layer span + whole-pass timer instrumentation in
//     Sequential and the trainer counters.
//
// Evidence protocol (EXPERIMENTS.md): build twice, once with
// -DDARNET_OBS=ON and once with OFF (both Release), run this binary with
// --benchmark_format=json in each build, and record both runs plus the
// computed ON/OFF ratios in BENCH_obs_overhead.json.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "engine/architectures.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "obs/obs.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Primitive costs.

void BM_CounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    DARNET_COUNTER_ADD("bench/counter_add_total", 1);
  }
  state.SetLabel(obs::enabled() ? "relaxed fetch_add on a per-thread shard"
                                : "compiled-out no-op");
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  double v = 0.0;
  for (auto _ : state) {
    DARNET_GAUGE_SET("bench/gauge_set", v);
    v += 1.0;
  }
  state.SetLabel(obs::enabled() ? "relaxed atomic store"
                                : "compiled-out no-op");
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  std::uint64_t ns = 0;
  for (auto _ : state) {
    DARNET_HISTOGRAM_NS("bench/histogram_record_ns", ns);
    ns += 173;
  }
  state.SetLabel(obs::enabled() ? "bucket + three relaxed adds"
                                : "compiled-out no-op");
}
BENCHMARK(BM_HistogramRecord);

void BM_TimerScope(benchmark::State& state) {
  for (auto _ : state) {
    DARNET_TIMER("bench/timer_scope_ns");
  }
  state.SetLabel(obs::enabled() ? "two clock reads + histogram record"
                                : "compiled-out no-op");
}
BENCHMARK(BM_TimerScope);

void BM_Span(benchmark::State& state) {
  for (auto _ : state) {
    DARNET_SPAN("bench/span_scope");
  }
  if (obs::enabled()) obs::clear_trace();
  state.SetLabel(obs::enabled() ? "two clock reads + ring write"
                                : "compiled-out no-op");
}
BENCHMARK(BM_Span);

// ---------------------------------------------------------------------------
// Instrumented-path costs: identical workloads to bench_perf_micro's
// BM_FrameCnnInference / BM_TrainEpoch, so ON and OFF builds of THIS
// binary isolate the instrumentation cost on the paths that matter.

void BM_FrameCnnForward(benchmark::State& state) {
  engine::FrameCnnConfig cfg;
  nn::Sequential cnn = engine::build_frame_cnn(cfg);
  util::Rng rng(4);
  const Tensor frame = Tensor::uniform({1, 1, 48, 48}, 0.5f, rng);
  for (auto _ : state) {
    Tensor p = cnn.forward(frame, false);
    benchmark::DoNotOptimize(p.data());
  }
  if (obs::enabled()) obs::clear_trace();
  state.SetLabel("per-layer spans + whole-pass timer in Sequential");
}
BENCHMARK(BM_FrameCnnForward);

void BM_TrainEpoch(benchmark::State& state) {
  engine::FrameCnnConfig cfg;
  nn::Sequential cnn = engine::build_frame_cnn(cfg);
  util::Rng rng(12);
  const int n = 64;
  const Tensor x = Tensor::uniform({n, 1, 48, 48}, 0.5f, rng);
  std::vector<int> labels(n);
  for (auto& y : labels) y = static_cast<int>(rng.uniform_index(6));
  nn::Sgd optimizer(0.03, 0.9, 1e-4);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 32;
  for (auto _ : state) {
    const double loss = nn::train_classifier(cnn, optimizer, x, labels, tc);
    benchmark::DoNotOptimize(loss);
  }
  if (obs::enabled()) obs::clear_trace();
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("trainer counters + epoch spans + layer instrumentation");
}
BENCHMARK(BM_TrainEpoch);

}  // namespace

BENCHMARK_MAIN();
