// Reproduces Figure 5: per-class confusion matrices for the three
// architectures -- (a) CNN+RNN (DarNet), (b) CNN+SVM, (c) CNN only.
//
// Qualitative claims checked against the paper's discussion of Figure 5:
//   * the CNN alone heavily confuses texting / talking / normal driving
//     (texting recall as low as 36% in the paper);
//   * adding the IMU modality recovers most of that confusion (texting
//     87% under CNN+RNN);
//   * classes without IMU data (eating, hair/makeup, reaching) do not
//     benefit and may degrade slightly.
#include <cstdlib>
#include <iostream>

#include "core/darnet.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;

  core::DatasetConfig data_cfg;
  data_cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.03;
  data_cfg.seed = 43;

  const core::Dataset data = core::generate_dataset(data_cfg);
  const auto split = core::split_dataset(data, 0.8, 11);
  std::cout << "Dataset: " << split.train.size() << " train / "
            << split.eval.size() << " eval samples\n";

  core::DarNet darnet{core::DarNetConfig{}};
  darnet.train(split.train);

  const engine::ArchitectureKind kinds[] = {
      engine::ArchitectureKind::kCnnRnn, engine::ArchitectureKind::kCnnSvm,
      engine::ArchitectureKind::kCnnOnly};
  const char* panel[] = {"(a) CNN+RNN (DarNet)", "(b) CNN+SVM",
                         "(c) CNN (frame data only)"};

  double cnn_texting_recall = 0.0, rnn_texting_recall = 0.0;
  double trio_confusion_cnn = 0.0, trio_confusion_rnn = 0.0;
  for (int i = 0; i < 3; ++i) {
    const auto cm = darnet.evaluate(split.eval, kinds[i]);
    std::cout << "\nFigure 5" << panel[i]
              << " -- row-normalised confusion matrix (Top-1 "
              << util::fmt_pct(cm.accuracy()) << "):\n"
              << cm.render();

    // Cross-confusion mass among {normal=0, talking=1, texting=2}.
    double trio = 0.0;
    for (int a : {0, 1, 2}) {
      for (int b : {0, 1, 2}) {
        if (a != b) trio += cm.confusion_rate(a, b);
      }
    }
    if (kinds[i] == engine::ArchitectureKind::kCnnOnly) {
      cnn_texting_recall = cm.class_recall(2);
      trio_confusion_cnn = trio;
    }
    if (kinds[i] == engine::ArchitectureKind::kCnnRnn) {
      rnn_texting_recall = cm.class_recall(2);
      trio_confusion_rnn = trio;
    }
  }

  std::cout << "\nQualitative claims (cf. paper Section 5.2):\n";
  util::Table claims({"Claim", "Paper", "Measured", "Holds"});
  const bool texting_improves =
      rnn_texting_recall > cnn_texting_recall + 0.10;
  claims.add_row({"IMU lifts texting recall", "36% -> 87%",
                  util::fmt_pct(cnn_texting_recall) + " -> " +
                      util::fmt_pct(rnn_texting_recall),
                  texting_improves ? "yes" : "NO"});
  const bool trio_shrinks = trio_confusion_rnn < trio_confusion_cnn * 0.7;
  claims.add_row({"normal/talking/texting confusion shrinks",
                  "majority eliminated",
                  util::fmt(trio_confusion_cnn, 2) + " -> " +
                      util::fmt(trio_confusion_rnn, 2),
                  trio_shrinks ? "yes" : "NO"});
  std::cout << claims.render();

  const bool ok = texting_improves && trio_shrinks;
  std::cout << "\nShape check: " << (ok ? "OK" : "MISS") << "\n";
  return ok ? 0 : 1;
}
