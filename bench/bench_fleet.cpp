// Fleet-scale workload benchmark: scaling curves for the deterministic
// simulator (ROADMAP item 1, docs/SIMULATION.md).
//
// Runs the scenario catalogue across fleet sizes {1, 10, 100, 1000,
// 10000} (the 10k point is steady-state only; larger fleets get shorter
// horizons so the whole sweep stays in tens of seconds of wall time) and
// records per-scale capture-to-verdict latency percentiles, loss,
// reordering and out-of-sequence counts. The JSON blob is checked in as
// BENCH_fleet.json; because every quantity is simulated-time-derived,
// regenerating it on any machine with the same seed must reproduce it
// bit-for-bit (see the determinism contract in docs/SIMULATION.md).
//
// Acceptance gates (exit non-zero on miss):
//  1. Determinism: the steady scenario re-run with the same seed exports
//     a bit-identical metrics JSON.
//  2. Shape: at the largest common scale, the burst scenario's p99
//     latency is >= steady's p99 (a 10x burst through a thin pipe must
//     not be free).
//  3. Loss: scenarios configured with link loss (burst, churn) observe
//     messages_dropped > 0 at fleet sizes >= 100.
//
// Usage: bench_fleet [max_sessions] [out_path]
//   max_sessions  cap the sweep (default 10000); the CI bench-smoke leg
//                 runs "bench_fleet 10 /dev/null" for a fast sanity pass
//   out_path      where to write the JSON ("-" = stdout only;
//                 default BENCH_fleet.json in the current directory)
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace darnet;

constexpr std::uint64_t kSeed = 42;

struct ScalePoint {
  int sessions;
  double duration_s;
};

// Shrinking horizons keep event counts (and wall time) roughly flat as
// the fleet grows; the curves stay comparable because every metric is a
// rate or a distribution, not a raw total.
const ScalePoint kScales[] = {
    {1, 10.0}, {10, 10.0}, {100, 10.0}, {1000, 4.0}, {10000, 2.0},
};

struct Run {
  int sessions{0};
  double duration_s{0.0};
  sim::FleetReport report;
};

sim::FleetReport run_scenario(const sim::Scenario& scenario, int sessions,
                              double duration_s, std::string* json_out) {
  sim::ScenarioConfig config = scenario.make(sessions, kSeed);
  sim::set_duration(config, duration_s);
  sim::FleetSimulator fleet(config);
  fleet.run();
  if (json_out != nullptr) *json_out = fleet.metrics_json();
  return fleet.report();
}

void append_run(std::string& out, const Run& run, bool last) {
  const sim::FleetReport& r = run.report;
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"sessions\": %d, \"duration_s\": %.6f, "
      "\"requests\": %" PRIu64 ", \"served\": %" PRIu64
      ", \"timeouts\": %" PRIu64 ", \"degraded\": %" PRIu64
      ",\n     \"latency_ms\": {\"p50\": %.6f, \"p90\": %.6f, "
      "\"p99\": %.6f, \"max\": %.6f},\n"
      "     \"messages_sent\": %" PRIu64 ", \"messages_dropped\": %" PRIu64
      ", \"messages_reordered\": %" PRIu64 ", \"out_of_order\": %" PRIu64
      ", \"out_of_sequence\": %" PRIu64
      ",\n     \"clock_abs_error_ms\": {\"mean\": %.6f, \"max\": %.6f}}%s\n",
      run.sessions, run.duration_s, r.requests, r.served, r.timeouts,
      r.degraded, r.latency_p50_ms, r.latency_p90_ms, r.latency_p99_ms,
      r.latency_max_ms, r.messages_sent, r.messages_dropped,
      r.messages_reordered, r.messages_out_of_order, r.out_of_sequence,
      r.clock_mean_abs_error_ms, r.clock_max_abs_error_ms,
      last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  int max_sessions = 10000;
  std::string out_path = "BENCH_fleet.json";
  if (argc > 1) max_sessions = std::atoi(argv[1]);
  if (argc > 2) out_path = argv[2];
  if (max_sessions < 1) {
    std::cerr << "bench_fleet: max_sessions must be >= 1\n";
    return 2;
  }

  std::printf("bench_fleet: scenario catalogue x fleet sizes (seed %" PRIu64
              ", max %d sessions)\n\n",
              kSeed, max_sessions);

  // --- Gate 1: determinism. Same seed => bit-identical metrics export.
  const sim::Scenario* steady = sim::find_scenario("steady");
  if (steady == nullptr) {
    std::cerr << "bench_fleet: steady scenario missing from catalogue\n";
    return 2;
  }
  const int parity_sessions = std::min(100, max_sessions);
  std::string json_a;
  std::string json_b;
  run_scenario(*steady, parity_sessions, 5.0, &json_a);
  run_scenario(*steady, parity_sessions, 5.0, &json_b);
  const bool determinism_ok = json_a == json_b && !json_a.empty();
  std::printf("  determinism (steady, %d sessions, re-run): %s\n",
              parity_sessions, determinism_ok ? "bit-identical" : "DIVERGED");

  // --- The sweep: every scenario at every scale (10k steady-only).
  std::vector<std::pair<std::string, std::vector<Run>>> curves;
  for (const auto& scenario : sim::scenarios()) {
    std::vector<Run> runs;
    for (const ScalePoint& scale : kScales) {
      if (scale.sessions > max_sessions) continue;
      if (scale.sessions > 1000 && scenario.name != "steady") continue;
      Run run;
      run.sessions = scale.sessions;
      run.duration_s = scale.duration_s;
      run.report =
          run_scenario(scenario, scale.sessions, scale.duration_s, nullptr);
      runs.push_back(std::move(run));
    }
    std::printf("  %-14s", scenario.name.c_str());
    for (const Run& run : runs) {
      std::printf("  [%5d] p50=%.0fms p99=%.0fms drop=%" PRIu64
                  " oos=%" PRIu64,
                  run.sessions, run.report.latency_p50_ms,
                  run.report.latency_p99_ms, run.report.messages_dropped,
                  run.report.out_of_sequence);
    }
    std::printf("\n");
    curves.emplace_back(scenario.name, std::move(runs));
  }

  // --- Gate 2: burst p99 >= steady p99 at the largest common scale.
  bool shape_ok = true;
  {
    const std::vector<Run>* steady_runs = nullptr;
    const std::vector<Run>* burst_runs = nullptr;
    for (const auto& [name, runs] : curves) {
      if (name == "steady") steady_runs = &runs;
      if (name == "burst") burst_runs = &runs;
    }
    if (steady_runs != nullptr && burst_runs != nullptr &&
        !burst_runs->empty()) {
      const Run& burst_top = burst_runs->back();
      for (const Run& run : *steady_runs) {
        if (run.sessions == burst_top.sessions) {
          shape_ok = burst_top.report.latency_p99_ms >=
                     run.report.latency_p99_ms;
          std::printf("\n  shape: burst p99 %.1fms >= steady p99 %.1fms at "
                      "%d sessions: %s\n",
                      burst_top.report.latency_p99_ms,
                      run.report.latency_p99_ms, burst_top.sessions,
                      shape_ok ? "PASS" : "FAIL");
        }
      }
    }
  }

  // --- Gate 3: configured link loss is actually observed at scale.
  bool loss_ok = true;
  for (const auto& [name, runs] : curves) {
    if (name != "burst" && name != "churn") continue;
    for (const Run& run : runs) {
      if (run.sessions < 100) continue;
      if (run.report.messages_dropped == 0) {
        std::printf("  loss: %s at %d sessions observed zero drops: FAIL\n",
                    name.c_str(), run.sessions);
        loss_ok = false;
      }
    }
  }
  if (loss_ok) std::printf("  loss: lossy scenarios observe drops: PASS\n");

  // --- JSON export (deterministic: fixed order, fixed formatting).
  std::string json = "{\n  \"benchmark\": \"bench/bench_fleet.cpp\",\n";
  {
    char head[256];
    std::snprintf(head, sizeof(head),
                  "  \"seed\": %" PRIu64 ",\n  \"max_sessions\": %d,\n"
                  "  \"determinism_bit_identical\": %s,\n"
                  "  \"scenarios\": {\n",
                  kSeed, max_sessions, determinism_ok ? "true" : "false");
    json += head;
  }
  for (std::size_t i = 0; i < curves.size(); ++i) {
    json += "  \"" + curves[i].first + "\": [\n";
    for (std::size_t j = 0; j < curves[i].second.size(); ++j) {
      append_run(json, curves[i].second[j],
                 j + 1 == curves[i].second.size());
    }
    json += (i + 1 == curves.size()) ? "  ]\n" : "  ],\n";
  }
  json += "  },\n";
  {
    char tail[128];
    std::snprintf(tail, sizeof(tail),
                  "  \"criteria\": {\"determinism\": %s, "
                  "\"burst_p99_ge_steady\": %s, \"loss_observed\": %s}\n}\n",
                  determinism_ok ? "true" : "false",
                  shape_ok ? "true" : "false", loss_ok ? "true" : "false");
    json += tail;
  }

  if (out_path == "-") {
    std::cout << "\n" << json;
  } else {
    std::ofstream file(out_path);
    if (!file) {
      std::cerr << "bench_fleet: cannot write '" << out_path << "'\n";
      return 2;
    }
    file << json;
    std::printf("\n  wrote %s\n", out_path.c_str());
  }

  const bool ok = determinism_ok && shape_ok && loss_ok;
  std::printf("\n  criteria: determinism %s; burst shape %s; loss %s\n",
              determinism_ok ? "PASS" : "FAIL", shape_ok ? "PASS" : "FAIL",
              loss_ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
