#!/usr/bin/env bash
# tools/ci/check.sh -- build and test the full correctness matrix.
#
# Legs (each: configure + build + ctest, warnings-as-errors everywhere):
#   default  Release, invariants compiled out (the shipping configuration)
#   checked  Release + DARNET_CHECKED=ON (invariants active at full speed)
#   asan     Debug + AddressSanitizer  (checked: Debug defaults CHECKED=ON)
#   ubsan    Debug + UndefinedBehaviorSanitizer, -fno-sanitize-recover
#   tsan     Debug + ThreadSanitizer (the parallel:: subsystem gate)
#   obs      Release + DARNET_OBS=ON explicit (metrics/trace instrumentation
#            active; includes test_obs and the darnet_lint docs-drift check
#            that every registered metric/span name matches
#            docs/OBSERVABILITY.md)
#   obs-off  Release + DARNET_OBS=OFF (macros compile to unevaluated no-ops;
#            proves the tree builds and all tests -- including the bit-parity
#            goldens -- pass without the instrumentation)
#   serve    serving-tier smoke: build examples/serve_demo (Release,
#            observability on) and run it with DARNET_OBS_DUMP set,
#            asserting it exits 0 and writes a non-empty metrics.json --
#            the end-to-end proof that the serve/* instrumentation flows
#   sim-smoke
#            fleet-simulator smoke: build tools/sim/fleet_simulator
#            (Release, observability on) and run the steady scenario at
#            100 sessions with DARNET_OBS_DUMP set, asserting exit 0, a
#            non-empty deterministic metrics export, and sim/* + serve/*
#            names in the registry snapshot -- the end-to-end proof that
#            the simulated fleet drives the production serving stack
#            (docs/SIMULATION.md)
#   sync-stress
#            concurrency-correctness stress: Debug + ThreadSanitizer with
#            DARNET_CHECKED=ON explicit, building only the lock-heavy
#            suites (test_sync, test_serve, test_parallel) and repeating
#            them until-fail:2 -- the lock-order graph, held-lock stack
#            and CV watchdog run under tsan at the same time
#   analyze  static-analysis gate: build darnet_analyze alone (Release)
#            and run it over the tree in --format=json mode. The leg is
#            green only when the analyzer reports zero non-baselined
#            findings; a baseline suppression whose finding has been fixed
#            trips the stale-baseline rule and turns the leg red, so the
#            baseline can only shrink to match the tree. Wall-clock
#            seconds land in check_summary.json like every other leg;
#            the analyzer run itself is gated at < 10s (measured ~50ms
#            -- see EXPERIMENTS.md and BENCH_analyze.json) and its own
#            seconds land as top-level "analyze_run_seconds", so the
#            leg's time is otherwise all build.
#   bench-smoke
#            build EVERY bench target (Release, observability on) and run
#            each binary once in its cheapest configuration, so a kernel
#            or API refactor cannot silently break the bench tree between
#            evidence refreshes. The google-benchmark harnesses run with
#            --benchmark_min_time=0.01 (the installed benchmark release
#            predates the "1x" iteration syntax, so a small wall-clock
#            bound is the portable one-iteration ask) and must exit 0.
#            The experiment harnesses run at tiny argv scales; their
#            qualitative paper gates are only meaningful at the full
#            scales recorded in EXPERIMENTS.md, so smoke accepts exit 0
#            (gate met) or 1 (gate missed at smoke scale) and fails on
#            anything else -- crashes, sanity aborts (exit >= 2), signals.
#
# Usage:
#   tools/ci/check.sh                # run every leg
#   tools/ci/check.sh checked ubsan  # run a subset
#   JOBS=4 tools/ci/check.sh         # override build parallelism
#
# Exits nonzero if ANY leg fails to configure, build, or pass its tests.
# Besides the human-readable "=== matrix summary ===", the script writes
# ${BUILD_ROOT}/check_summary.json: one entry per requested leg with
# status (pass/fail), the failing stage if any, and wall-clock seconds.

set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
BUILD_ROOT="${BUILD_ROOT:-${ROOT}/build-matrix}"

ALL_LEGS=(default checked asan ubsan tsan obs obs-off serve sim-smoke
          http-smoke sync-stress analyze bench-smoke)
LEGS=("$@")
if [ "${#LEGS[@]}" -eq 0 ]; then
  LEGS=("${ALL_LEGS[@]}")
fi

FAILED=()
PASSED=()
declare -A LEG_SECONDS
# Wall-time budget for the analyzer binary itself (not the leg's build);
# the measured run is ~0.05s, so tripping this means something regressed
# by two orders of magnitude. Seconds land in check_summary.json.
ANALYZE_BUDGET_S=10
ANALYZE_RUN_SECONDS=""

run_leg() {
  leg_name="$1"
  shift
  leg_dir="${BUILD_ROOT}/${leg_name}"
  echo
  echo "=== [${leg_name}] configure ==="
  if ! cmake -B "${leg_dir}" -S "${ROOT}" -DDARNET_WERROR=ON "$@"; then
    FAILED+=("${leg_name} (configure)")
    return 1
  fi
  echo "=== [${leg_name}] build (-j${JOBS}) ==="
  if ! cmake --build "${leg_dir}" -j "${JOBS}"; then
    FAILED+=("${leg_name} (build)")
    return 1
  fi
  echo "=== [${leg_name}] test ==="
  if ! ctest --test-dir "${leg_dir}" --output-on-failure; then
    FAILED+=("${leg_name} (test)")
    return 1
  fi
  PASSED+=("${leg_name}")
  return 0
}

# Serving-tier smoke leg: no ctest run -- build serve_demo in a Release +
# observability configuration, run it with DARNET_OBS_DUMP, and assert the
# demo succeeds and the metrics snapshot it dumps is non-empty.
run_serve_smoke() {
  leg_dir="${BUILD_ROOT}/serve"
  echo
  echo "=== [serve] configure ==="
  if ! cmake -B "${leg_dir}" -S "${ROOT}" -DDARNET_WERROR=ON \
       -DCMAKE_BUILD_TYPE=Release -DDARNET_OBS=ON; then
    FAILED+=("serve (configure)")
    return 1
  fi
  echo "=== [serve] build serve_demo (-j${JOBS}) ==="
  if ! cmake --build "${leg_dir}" -j "${JOBS}" --target serve_demo; then
    FAILED+=("serve (build)")
    return 1
  fi
  echo "=== [serve] smoke ==="
  obs_dir="$(mktemp -d)"
  if ! DARNET_OBS_DUMP="${obs_dir}" "${leg_dir}/examples/serve_demo"; then
    echo "serve_demo exited nonzero" >&2
    rm -rf "${obs_dir}"
    FAILED+=("serve (smoke)")
    return 1
  fi
  if ! [ -s "${obs_dir}/metrics.json" ]; then
    echo "serve_demo did not write a non-empty ${obs_dir}/metrics.json" >&2
    rm -rf "${obs_dir}"
    FAILED+=("serve (smoke: metrics.json)")
    return 1
  fi
  if ! grep -q 'serve/' "${obs_dir}/metrics.json"; then
    echo "metrics.json contains no serve/* names" >&2
    rm -rf "${obs_dir}"
    FAILED+=("serve (smoke: serve/* metrics)")
    return 1
  fi
  rm -rf "${obs_dir}"
  PASSED+=("serve")
  return 0
}

# sim-smoke leg: the fleet simulator end to end. Build fleet_simulator in
# a Release + observability configuration, run the steady scenario at 100
# sessions, and assert it exits 0, writes a non-empty metrics export, and
# pushes sim/* and serve/* names through the obs registry.
run_sim_smoke() {
  leg_dir="${BUILD_ROOT}/sim-smoke"
  echo
  echo "=== [sim-smoke] configure ==="
  if ! cmake -B "${leg_dir}" -S "${ROOT}" -DDARNET_WERROR=ON \
       -DCMAKE_BUILD_TYPE=Release -DDARNET_OBS=ON; then
    FAILED+=("sim-smoke (configure)")
    return 1
  fi
  echo "=== [sim-smoke] build fleet_simulator (-j${JOBS}) ==="
  if ! cmake --build "${leg_dir}" -j "${JOBS}" --target fleet_simulator; then
    FAILED+=("sim-smoke (build)")
    return 1
  fi
  echo "=== [sim-smoke] smoke ==="
  sim_dir="$(mktemp -d)"
  if ! DARNET_OBS_DUMP="${sim_dir}" \
       "${leg_dir}/tools/sim/fleet_simulator" --scenario=steady \
       --sessions=100 --out="${sim_dir}/fleet.json"; then
    echo "fleet_simulator exited nonzero" >&2
    rm -rf "${sim_dir}"
    FAILED+=("sim-smoke (run)")
    return 1
  fi
  if ! [ -s "${sim_dir}/fleet.json" ]; then
    echo "fleet_simulator wrote no metrics export" >&2
    rm -rf "${sim_dir}"
    FAILED+=("sim-smoke (metrics export)")
    return 1
  fi
  if ! grep -q '"latency_ms"' "${sim_dir}/fleet.json"; then
    echo "fleet.json has no latency_ms section" >&2
    rm -rf "${sim_dir}"
    FAILED+=("sim-smoke (metrics export)")
    return 1
  fi
  if ! grep -q 'sim/' "${sim_dir}/metrics.json" || \
     ! grep -q 'serve/' "${sim_dir}/metrics.json"; then
    echo "obs registry snapshot lacks sim/* or serve/* names" >&2
    rm -rf "${sim_dir}"
    FAILED+=("sim-smoke (obs registry)")
    return 1
  fi
  rm -rf "${sim_dir}"
  PASSED+=("sim-smoke")
  return 0
}

# http-smoke leg: the HTTP edge end to end over real loopback TCP. Build
# http_demo in a Release + observability configuration and run it: the
# demo boots a 2-shard Router behind http::Edge on an ephemeral port and
# drives /healthz, /classify (with a mid-traffic snapshot hot swap and a
# quota 429) and /metrics with the in-repo client, exiting nonzero on any
# miss. The leg additionally asserts the /metrics body the demo prints
# carries the documented http/* and route/* rows.
run_http_smoke() {
  leg_dir="${BUILD_ROOT}/http-smoke"
  echo
  echo "=== [http-smoke] configure ==="
  if ! cmake -B "${leg_dir}" -S "${ROOT}" -DDARNET_WERROR=ON \
       -DCMAKE_BUILD_TYPE=Release -DDARNET_OBS=ON; then
    FAILED+=("http-smoke (configure)")
    return 1
  fi
  echo "=== [http-smoke] build http_demo (-j${JOBS}) ==="
  if ! cmake --build "${leg_dir}" -j "${JOBS}" --target http_demo; then
    FAILED+=("http-smoke (build)")
    return 1
  fi
  echo "=== [http-smoke] smoke ==="
  http_log="$(mktemp)"
  if ! "${leg_dir}/examples/http_demo" > "${http_log}" 2>&1; then
    cat "${http_log}"
    echo "http_demo exited nonzero" >&2
    rm -f "${http_log}"
    FAILED+=("http-smoke (run)")
    return 1
  fi
  cat "${http_log}"
  if ! grep -q 'http/requests_total' "${http_log}" || \
     ! grep -q 'route/requests_routed_total' "${http_log}"; then
    echo "http_demo /metrics body lacks http/* or route/* rows" >&2
    rm -f "${http_log}"
    FAILED+=("http-smoke (obs registry)")
    return 1
  fi
  rm -f "${http_log}"
  PASSED+=("http-smoke")
  return 0
}

# bench-smoke leg: the bench tree must build and every harness must run
# end to end. Experiment harnesses take their cheapest argv scale and may
# miss their full-scale qualitative gates (exit 1); anything beyond that
# (exit >= 2, crash, signal) fails the leg.
run_bench_smoke() {
  leg_dir="${BUILD_ROOT}/bench-smoke"
  echo
  echo "=== [bench-smoke] configure ==="
  if ! cmake -B "${leg_dir}" -S "${ROOT}" -DDARNET_WERROR=ON \
       -DCMAKE_BUILD_TYPE=Release -DDARNET_OBS=ON; then
    FAILED+=("bench-smoke (configure)")
    return 1
  fi
  # Every add_executable under bench/ -- new harnesses are picked up
  # automatically, so the leg cannot silently go stale.
  bench_targets="$(sed -n \
      's/^\(darnet_bench(\|add_executable(\)\(bench_[a-z0-9_]*\).*/\2/p' \
      "${ROOT}/bench/CMakeLists.txt" | sort -u)"
  if [ -z "${bench_targets}" ]; then
    echo "bench-smoke: no bench targets found in bench/CMakeLists.txt" >&2
    FAILED+=("bench-smoke (target discovery)")
    return 1
  fi
  echo "=== [bench-smoke] build all bench targets (-j${JOBS}) ==="
  # shellcheck disable=SC2086  # word splitting over target names intended
  if ! cmake --build "${leg_dir}" -j "${JOBS}" \
       $(printf -- '--target %s ' ${bench_targets}); then
    FAILED+=("bench-smoke (build)")
    return 1
  fi
  echo "=== [bench-smoke] run each harness once ==="
  smoke_bad=0
  for target in ${bench_targets}; do
    bin="${leg_dir}/bench/${target}"
    case "${target}" in
      # google-benchmark harnesses: no qualitative gate, must exit 0.
      bench_perf_micro|bench_obs_overhead)
        args="--benchmark_min_time=0.01"
        ok_status="0" ;;
      # Experiment harnesses: cheapest argv scale; gate miss (1) is fine.
      bench_table1_dataset)      args="0.01";  ok_status="0 1" ;;
      bench_table2_ensemble)     args="0.01";  ok_status="0 1" ;;
      bench_fig5_confusion)      args="0.01";  ok_status="0 1" ;;
      bench_imu_models)          args="40";    ok_status="0 1" ;;
      bench_table3_dcnn)         args="6";     ok_status="0 1" ;;
      bench_fig12_pipeline)      args="0.005"; ok_status="0 1" ;;
      bench_fig3_privacy_paths)  args="20";    ok_status="0 1" ;;
      bench_ablation_combiner)   args="0.01";  ok_status="0 1" ;;
      bench_ablation_smoothing)  args="30";    ok_status="0 1" ;;
      bench_ablation_distortion) args="5";     ok_status="0 1" ;;
      bench_ablation_drivers)    args="0.01";  ok_status="0 1" ;;
      bench_ablation_pretrain)   args="0.002"; ok_status="0 1" ;;
      bench_ext_multimodal)      args="0.01";  ok_status="0 1" ;;
      # Fleet simulator sweep: 10 sessions max, JSON to /dev/null; the
      # determinism + shape gates must hold even at smoke scale.
      bench_fleet)               args="10 /dev/null"; ok_status="0" ;;
      # Analyzer budget bench: full tree, JSON to /dev/null; the budget,
      # determinism and shape gates must hold on every machine.
      bench_analyze)             args="${ROOT} /dev/null"; ok_status="0" ;;
      *)                         args="";      ok_status="0 1" ;;
    esac
    # shellcheck disable=SC2086
    "${bin}" ${args} > /dev/null 2>&1
    status=$?
    case " ${ok_status} " in
      *" ${status} "*)
        echo "  ${target}: ok (exit ${status})" ;;
      *)
        echo "  ${target}: FAILED (exit ${status})" >&2
        smoke_bad=1 ;;
    esac
  done
  if [ "${smoke_bad}" -ne 0 ]; then
    FAILED+=("bench-smoke (run)")
    return 1
  fi
  PASSED+=("bench-smoke")
  return 0
}

# analyze leg: the cross-file static analyzer as a CI gate. Builds only
# the darnet_analyze binary and runs it over the tree in JSON mode with
# the checked-in baseline applied. Exit 0 means zero non-baselined
# findings AND zero stale suppressions (the default run fails on both).
run_analyze() {
  leg_dir="${BUILD_ROOT}/analyze"
  echo
  echo "=== [analyze] configure ==="
  if ! cmake -B "${leg_dir}" -S "${ROOT}" -DDARNET_WERROR=ON \
       -DCMAKE_BUILD_TYPE=Release; then
    FAILED+=("analyze (configure)")
    return 1
  fi
  echo "=== [analyze] build darnet_analyze (-j${JOBS}) ==="
  if ! cmake --build "${leg_dir}" -j "${JOBS}" --target darnet_analyze; then
    FAILED+=("analyze (build)")
    return 1
  fi
  echo "=== [analyze] run ==="
  out="${leg_dir}/analyze_findings.json"
  t0=$(date +%s%N)
  rc=0
  "${leg_dir}/tools/analyze/darnet_analyze" "${ROOT}" --format=json \
      > "${out}" || rc=$?
  t1=$(date +%s%N)
  analyze_ms=$(( (t1 - t0) / 1000000 ))
  ANALYZE_RUN_SECONDS=$(printf '%d.%03d' $((analyze_ms / 1000)) \
                               $((analyze_ms % 1000)))
  echo "analyzer wall time: ${ANALYZE_RUN_SECONDS}s (budget ${ANALYZE_BUDGET_S}s)"
  if [ "${rc}" -ne 0 ]; then
    echo "darnet_analyze reported findings (JSON mirrored to ${out}):" >&2
    cat "${out}" >&2
    FAILED+=("analyze (findings)")
    return 1
  fi
  if [ "${analyze_ms}" -gt $((ANALYZE_BUDGET_S * 1000)) ]; then
    echo "analyzer run took ${ANALYZE_RUN_SECONDS}s, over the" \
         "${ANALYZE_BUDGET_S}s budget (docs/STATIC_ANALYSIS.md:" \
         "shard the index_dirs walk before touching rule logic)" >&2
    FAILED+=("analyze (budget)")
    return 1
  fi
  PASSED+=("analyze")
  return 0
}

# sync-stress leg: tsan + checked invariants on the lock-heavy suites
# only, repeated so rare interleavings (teardown races, CV handoffs) get
# more than one chance to bite.
run_sync_stress() {
  leg_dir="${BUILD_ROOT}/sync-stress"
  echo
  echo "=== [sync-stress] configure ==="
  if ! cmake -B "${leg_dir}" -S "${ROOT}" -DDARNET_WERROR=ON \
       -DCMAKE_BUILD_TYPE=Debug -DDARNET_SANITIZE=thread \
       -DDARNET_CHECKED=ON; then
    FAILED+=("sync-stress (configure)")
    return 1
  fi
  echo "=== [sync-stress] build (-j${JOBS}) ==="
  if ! cmake --build "${leg_dir}" -j "${JOBS}" \
       --target test_sync --target test_serve --target test_parallel; then
    FAILED+=("sync-stress (build)")
    return 1
  fi
  echo "=== [sync-stress] stress ==="
  if ! ctest --test-dir "${leg_dir}" --output-on-failure \
       -R '^(test_sync|test_serve|test_parallel)$' \
       --repeat until-fail:2; then
    FAILED+=("sync-stress (test)")
    return 1
  fi
  PASSED+=("sync-stress")
  return 0
}

for leg in "${LEGS[@]}"; do
  leg_start=${SECONDS}
  case "${leg}" in
    default)
      run_leg default -DCMAKE_BUILD_TYPE=Release -DDARNET_CHECKED=OFF
      ;;
    checked)
      run_leg checked -DCMAKE_BUILD_TYPE=Release -DDARNET_CHECKED=ON
      ;;
    asan)
      run_leg asan -DCMAKE_BUILD_TYPE=Debug -DDARNET_SANITIZE=address
      ;;
    ubsan)
      run_leg ubsan -DCMAKE_BUILD_TYPE=Debug -DDARNET_SANITIZE=undefined
      ;;
    tsan)
      run_leg tsan -DCMAKE_BUILD_TYPE=Debug -DDARNET_SANITIZE=thread
      ;;
    obs)
      run_leg obs -DCMAKE_BUILD_TYPE=Release -DDARNET_OBS=ON
      ;;
    obs-off)
      run_leg obs-off -DCMAKE_BUILD_TYPE=Release -DDARNET_OBS=OFF
      ;;
    serve)
      run_serve_smoke
      ;;
    sim-smoke)
      run_sim_smoke
      ;;
    http-smoke)
      run_http_smoke
      ;;
    sync-stress)
      run_sync_stress
      ;;
    analyze)
      run_analyze
      ;;
    bench-smoke)
      run_bench_smoke
      ;;
    *)
      echo "check.sh: unknown leg '${leg}'" \
           "(expected: ${ALL_LEGS[*]})" >&2
      exit 2
      ;;
  esac
  LEG_SECONDS["${leg}"]=$((SECONDS - leg_start))
done

echo
echo "=== matrix summary ==="
for leg in "${PASSED[@]+"${PASSED[@]}"}"; do
  echo "  PASS ${leg} (${LEG_SECONDS[${leg}]:-0}s)"
done
for leg in "${FAILED[@]+"${FAILED[@]}"}"; do
  echo "  FAIL ${leg}"
done

# Machine-readable mirror of the matrix summary.
write_summary_json() {
  summary="${BUILD_ROOT}/check_summary.json"
  mkdir -p "${BUILD_ROOT}"
  {
    echo '{'
    echo '  "legs": ['
    first=1
    for leg in "${LEGS[@]}"; do
      status="fail"
      stage=""
      for p in "${PASSED[@]+"${PASSED[@]}"}"; do
        [ "${p}" = "${leg}" ] && status="pass"
      done
      for f in "${FAILED[@]+"${FAILED[@]}"}"; do
        case "${f}" in
          "${leg} ("*)
            stage="${f#"${leg} ("}"
            stage="${stage%)}"
            ;;
        esac
      done
      [ "${first}" -eq 0 ] && printf ',\n'
      first=0
      printf '    {"leg": "%s", "status": "%s", "wall_seconds": %d' \
             "${leg}" "${status}" "${LEG_SECONDS[${leg}]:-0}"
      if [ -n "${stage}" ]; then
        printf ', "stage": "%s"' "${stage}"
      fi
      printf '}'
    done
    printf '\n  ],\n'
    if [ -n "${ANALYZE_RUN_SECONDS}" ]; then
      printf '  "analyze_run_seconds": %s,\n' "${ANALYZE_RUN_SECONDS}"
    fi
    if [ "${#FAILED[@]}" -eq 0 ]; then
      echo '  "all_green": true'
    else
      echo '  "all_green": false'
    fi
    echo '}'
  } > "${summary}"
  echo "wrote ${summary}"
}
write_summary_json

if [ "${#FAILED[@]}" -ne 0 ]; then
  exit 1
fi
echo "all legs green"
