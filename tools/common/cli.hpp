// darnet::cli -- the one command-line contract for the repo's tools.
//
// Every tool binary (fleet_simulator, darnet_lint, darnet_analyze)
// parses its command line through this header so the conventions stay
// converged instead of drifting per tool:
//
//   --key=value   valued flag, exactly this shape (no "--key value")
//   --switch      bare boolean flag
//   --format=FMT  output format: text (default) or json
//   --out=PATH    write the tool's primary artefact there ("-" = stdout)
//   --seed=S      master seed, where the tool is randomised
//   --list        enumerate what the tool can run/check, then exit 0
//   --help | -h   print the usage synopsis and exit 0
//   --dump-*=PATH debug artefact escape hatch: dump an internal table
//                 (e.g. darnet_analyze --dump-effects=FILE) as JSON to
//                 PATH. Never part of the pass/fail contract -- the
//                 exit code is unchanged by what a dump contains, and 2
//                 is returned only if PATH itself is unwritable.
//
// Exit-code contract (all tools, documented once, here):
//   0  success -- a clean lint/analyze run, or a completed simulation
//   1  findings remain, or the run completed but failed its own gate
//   2  usage error (unknown flag, bad value) or an I/O failure
//
// The parser is deliberately tiny: a registry of accepted flag names, a
// single pass over argv, and typed lookups with defaults. Unknown flags
// are hard usage errors -- a typo must not silently change behaviour.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace darnet::cli {

class Parser {
 public:
  /// `usage` is the one-line synopsis printed on --help and usage errors.
  Parser(std::string tool, std::string usage)
      : tool_(std::move(tool)), usage_(std::move(usage)) {}

  /// Registers a valued `--name=...` flag. Chains.
  Parser& flag(std::string name) {
    valued_.insert(std::move(name));
    return *this;
  }

  /// Registers a bare `--name` switch. Chains.
  Parser& toggle(std::string name) {
    switches_.insert(std::move(name));
    return *this;
  }

  /// Single pass over argv. Returns false -- after printing the error
  /// and the usage synopsis to stderr -- on an unregistered flag, a
  /// switch given a value (or vice versa), or more than
  /// `max_positionals` bare operands. Callers exit 2 on false.
  [[nodiscard]] bool parse(int argc, char** argv,
                           std::size_t max_positionals = 0) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        help_ = true;
        std::printf("%s\n", usage_.c_str());
        continue;
      }
      if (arg.rfind("--", 0) == 0) {
        const std::size_t eq = arg.find('=');
        const std::string name =
            eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
        if (eq != std::string::npos && valued_.count(name) != 0) {
          values_.emplace_back(name, arg.substr(eq + 1));
          continue;
        }
        if (eq == std::string::npos && switches_.count(name) != 0) {
          seen_.insert(name);
          continue;
        }
        return fail("unknown or malformed flag '" + arg + "'");
      }
      positionals_.push_back(arg);
    }
    if (positionals_.size() > max_positionals) {
      return fail("too many operands");
    }
    return true;
  }

  /// --help / -h was seen (usage already printed; callers exit 0).
  [[nodiscard]] bool help() const noexcept { return help_; }

  /// A registered switch was present.
  [[nodiscard]] bool on(std::string_view name) const {
    return seen_.count(std::string(name)) != 0;
  }

  /// Last value given for a flag, or `fallback` when absent.
  [[nodiscard]] std::string get(std::string_view name,
                                std::string fallback) const {
    for (auto it = values_.rbegin(); it != values_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return fallback;
  }

  [[nodiscard]] int get_int(std::string_view name, int fallback) const {
    const std::string value = get(name, "");
    return value.empty() ? fallback : std::atoi(value.c_str());
  }

  [[nodiscard]] std::uint64_t get_u64(std::string_view name,
                                      std::uint64_t fallback) const {
    const std::string value = get(name, "");
    return value.empty() ? fallback
                         : std::strtoull(value.c_str(), nullptr, 10);
  }

  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const {
    const std::string value = get(name, "");
    return value.empty() ? fallback : std::atof(value.c_str());
  }

  /// Validated lookup of the converged --format flag: sets `json` and
  /// returns true for "text", "json" or absent; usage error otherwise
  /// (callers exit 2).
  [[nodiscard]] bool format(bool& json) {
    const std::string value = get("format", "text");
    if (value == "text") {
      json = false;
      return true;
    }
    if (value == "json") {
      json = true;
      return true;
    }
    return fail("--format must be text or json");
  }

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

 private:
  bool fail(const std::string& message) const {
    std::fprintf(stderr, "%s: %s\n%s\n", tool_.c_str(), message.c_str(),
                 usage_.c_str());
    return false;
  }

  std::string tool_;
  std::string usage_;
  std::set<std::string> valued_;
  std::set<std::string> switches_;
  std::set<std::string> seen_;
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> positionals_;
  bool help_{false};
};

}  // namespace darnet::cli
