// fleet_simulator: run a named fleet scenario and export its metrics.
//
// The scenario engine behind ROADMAP item 1: thousands of simulated
// vehicles stream frame+IMU traffic through the collection middleware
// into the serving tier on one deterministic event queue. Same seed =>
// bit-identical metrics export (see docs/SIMULATION.md).
//
// Usage (flags and exit codes follow tools/common/cli.hpp):
//   fleet_simulator [--scenario=NAME] [--sessions=N] [--seed=S]
//                   [--duration=SECONDS] [--shards=N]
//                   [--format=text|json] [--out=PATH] [--list]
//
//   --scenario=NAME   scenario to run (default: steady); see --list
//   --sessions=N      fleet size (default: 100)
//   --seed=S          master seed (default: 42)
//   --duration=SECS   re-time the scenario (burst windows etc. scale)
//   --shards=N        override the scenario's serve::Router shard count
//   --format=FMT      text: human summary + JSON; json: JSON only
//   --out=PATH        write the metrics JSON there ("-" = stdout only)
//   --list            print the scenario catalogue and exit
//
// With DARNET_OBS_DUMP=<dir> the process-wide obs registry snapshot and
// trace are written there too (sim/* and serve/* metrics included).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.hpp"
#include "sim/fleet.hpp"
#include "tools/common/cli.hpp"

namespace {

void print_catalogue() {
  std::cout << "scenario        what it stresses\n";
  for (const auto& scenario : darnet::sim::scenarios()) {
    std::printf("%-15s %s\n", scenario.name.c_str(),
                scenario.stresses.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace darnet;

  cli::Parser parser(
      "fleet_simulator",
      "usage: fleet_simulator [--scenario=NAME] [--sessions=N] [--seed=S]\n"
      "                       [--duration=SECONDS] [--shards=N]\n"
      "                       [--format=text|json] [--out=PATH] [--list]");
  parser.flag("scenario")
      .flag("sessions")
      .flag("seed")
      .flag("duration")
      .flag("shards")
      .flag("format")
      .flag("out");
  parser.toggle("list");
  bool json_only = false;
  if (!parser.parse(argc, argv) || !parser.format(json_only)) return 2;
  if (parser.help()) return 0;
  if (parser.on("list")) {
    print_catalogue();
    return 0;
  }

  const std::string scenario_name = parser.get("scenario", "steady");
  const std::string out_path = parser.get("out", "");
  const int sessions = parser.get_int("sessions", 100);
  const std::uint64_t seed = parser.get_u64("seed", 42);
  const double duration_s = parser.get_double("duration", -1.0);
  const int shards = parser.get_int("shards", 0);
  if (sessions < 1) {
    std::cerr << "fleet_simulator: --sessions must be >= 1\n";
    return 2;
  }
  if (!parser.get("shards", "").empty() && shards < 1) {
    std::cerr << "fleet_simulator: --shards must be >= 1\n";
    return 2;
  }

  const sim::Scenario* scenario = sim::find_scenario(scenario_name);
  if (scenario == nullptr) {
    std::cerr << "fleet_simulator: unknown scenario '" << scenario_name
              << "'\n\n";
    print_catalogue();
    return 2;
  }

  sim::ScenarioConfig config = scenario->make(sessions, seed);
  if (duration_s > 0.0) sim::set_duration(config, duration_s);
  if (shards >= 1) config.shards = shards;

  if (!json_only) {
    std::cout << "scenario=" << config.name
              << " sessions=" << config.sessions << " seed=" << config.seed
              << " duration=" << config.duration_s
              << "s shards=" << config.shards << "\n";
  }

  sim::FleetSimulator fleet(config);
  fleet.run();
  const std::string json = fleet.metrics_json();

  const sim::FleetReport& report = fleet.report();
  if (!json_only) {
    std::printf(
      "events=%llu requests=%llu served=%llu timeouts=%llu skipped=%llu "
      "degraded=%llu\n"
      "latency_ms p50=%.3f p90=%.3f p99=%.3f max=%.3f\n"
      "link sent=%llu dropped=%llu reordered=%llu out_of_order=%llu "
      "oos_readings=%llu\n"
      "clock |err| mean=%.3fms max=%.3fms over %llu probes\n",
      static_cast<unsigned long long>(report.events_executed),
      static_cast<unsigned long long>(report.requests),
      static_cast<unsigned long long>(report.served),
      static_cast<unsigned long long>(report.timeouts),
      static_cast<unsigned long long>(report.skipped),
      static_cast<unsigned long long>(report.degraded),
      report.latency_p50_ms, report.latency_p90_ms, report.latency_p99_ms,
      report.latency_max_ms,
      static_cast<unsigned long long>(report.messages_sent),
      static_cast<unsigned long long>(report.messages_dropped),
      static_cast<unsigned long long>(report.messages_reordered),
      static_cast<unsigned long long>(report.messages_out_of_order),
      static_cast<unsigned long long>(report.out_of_sequence),
      report.clock_mean_abs_error_ms, report.clock_max_abs_error_ms,
      static_cast<unsigned long long>(report.clock_probes));
  }

  if (out_path.empty() || out_path == "-") {
    std::cout << json;
  } else {
    std::ofstream file(out_path);
    if (!file) {
      std::cerr << "fleet_simulator: cannot write '" << out_path << "'\n";
      return 2;
    }
    file << json;
    if (!json_only) std::cout << "metrics: " << out_path << "\n";
  }

  // Observability dump: sim/* and serve/* flow through the process-wide
  // registry exactly like the production servers.
  if (const char* dump = std::getenv("DARNET_OBS_DUMP");
      dump != nullptr && *dump != '\0' && obs::enabled()) {
    const std::string dir(dump);
    obs::registry().write_json(dir + "/metrics.json");
    obs::write_trace(dir + "/trace.json");
    std::cout << "obs dump: " << dir << "/metrics.json, " << dir
              << "/trace.json\n";
  }

  return report.requests > 0 ? 0 : 1;
}
