// darnet_lint -- the repo's dependency-free C++ lint binary.
//
// Encodes DarNet's tree-wide source invariants (see DESIGN.md
// "Correctness tooling") and enforces them from CTest, so a build that
// violates a convention fails `ctest` the same way a broken unit test
// does. Rules:
//
//   pragma-once      every .hpp must contain `#pragma once`
//   raw-new          no raw `new` expressions (RAII everywhere: value
//                    types, std::make_unique, containers)
//   raw-delete       no `delete` expressions (`= delete` declarations are
//                    allowed and recognised)
//   thread-outside-parallel
//                    no std::thread / std::jthread / std::async outside
//                    src/parallel/ -- the thread pool is the repo's one
//                    concurrency primitive
//   unseeded-rng     no rand()/srand()/std::random_device/std::mt19937 /
//                    default_random_engine -- all randomness flows through
//                    the deterministic util::Rng
//   hot-path-io      no printf-family / std::cout / std::cerr /
//                    <iostream> in src/tensor or src/nn -- hot numeric
//                    paths must not pull in console I/O (diagnostics
//                    belong in darnet::check or util::logging)
//
// Comments, string literals and character literals are stripped before
// matching, so documentation may mention banned constructs freely. The
// linter skips its own directory (tools/lint/) because this rule table
// necessarily spells out every banned token.
//
// Usage: darnet_lint <repo_root>
// Exit status: 0 when clean, 1 on findings, 2 on usage/IO errors.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

/// Replace comments, string literals and char literals with spaces
/// (newlines preserved so line numbers survive).
std::string strip_noncode(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\0' && next != '\n') out[++i] = ' ';
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\0' && next != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find token occurrences with identifier-boundary checks on both ends
/// (only applied where the pattern itself begins/ends with an identifier
/// character). Calls `on_hit(offset)` per occurrence.
void for_each_token(const std::string& code, std::string_view token,
                    const std::function<void(std::size_t)>& on_hit) {
  for (std::size_t pos = code.find(token); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    if (ident_char(token.front()) && pos > 0 && ident_char(code[pos - 1])) {
      continue;
    }
    const std::size_t end = pos + token.size();
    if (ident_char(token.back()) && end < code.size() &&
        ident_char(code[end])) {
      continue;
    }
    on_hit(pos);
  }
}

std::size_t line_of(const std::string& code, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(code.begin(),
                            code.begin() + static_cast<std::ptrdiff_t>(offset),
                            '\n'));
}

/// After `pos + len`, skip whitespace; true when the next character starts
/// an expression operand (identifier, '(' or '['). Distinguishes
/// `new Foo` / `delete p` / `delete[] p` from other uses of the tokens.
bool followed_by_operand(const std::string& code, std::size_t pos,
                         std::size_t len) {
  std::size_t i = pos + len;
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])) != 0) {
    ++i;
  }
  if (i >= code.size()) return false;
  const char c = code[i];
  return ident_char(c) || c == '(' || c == '[' || c == ':';
}

/// True when `delete` at `pos` is a deleted-function declaration
/// (`= delete`), which is allowed.
bool is_deleted_function(const std::string& code, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(code[i - 1])) != 0) {
    --i;
  }
  return i > 0 && code[i - 1] == '=';
}

struct Linter {
  fs::path root;
  std::vector<Finding> findings;

  void report(const fs::path& file, std::size_t line, std::string rule,
              std::string message) {
    findings.push_back(Finding{fs::relative(file, root).generic_string(),
                               line, std::move(rule), std::move(message)});
  }

  void lint_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report(path, 0, "io-error", "cannot open file");
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    const std::string code = strip_noncode(raw);
    const std::string rel = fs::relative(path, root).generic_string();
    const bool is_header = path.extension() == ".hpp";
    const bool in_parallel = rel.starts_with("src/parallel/");
    const bool hot_path =
        rel.starts_with("src/tensor/") || rel.starts_with("src/nn/");

    if (is_header && raw.find("#pragma once") == std::string::npos) {
      report(path, 1, "pragma-once", "header is missing #pragma once");
    }

    for_each_token(code, "new", [&](std::size_t pos) {
      if (!followed_by_operand(code, pos, 3)) return;
      report(path, line_of(code, pos), "raw-new",
             "raw new expression; use value types, containers or "
             "std::make_unique");
    });

    for_each_token(code, "delete", [&](std::size_t pos) {
      if (is_deleted_function(code, pos)) return;
      if (!followed_by_operand(code, pos, 6)) return;
      report(path, line_of(code, pos), "raw-delete",
             "raw delete expression; ownership must be RAII-managed");
    });

    if (!in_parallel) {
      for (const char* token :
           {"std::thread", "std::jthread", "std::async"}) {
        for_each_token(code, token, [&](std::size_t pos) {
          report(path, line_of(code, pos), "thread-outside-parallel",
                 std::string(token) +
                     " outside src/parallel/; build on parallel_for");
        });
      }
    }

    for (const char* token :
         {"std::rand", "srand", "std::random_device", "std::mt19937",
          "std::default_random_engine"}) {
      for_each_token(code, token, [&](std::size_t pos) {
        report(path, line_of(code, pos), "unseeded-rng",
               std::string(token) +
                   "; all randomness must flow through util::Rng with an "
                   "explicit seed");
      });
    }
    for_each_token(code, "rand", [&](std::size_t pos) {
      // Bare C rand(): token `rand` immediately applied as a call.
      if (pos >= 5 && code.compare(pos - 5, 5, "std::") == 0) return;
      std::size_t i = pos + 4;
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])) != 0) {
        ++i;
      }
      if (i < code.size() && code[i] == '(') {
        report(path, line_of(code, pos), "unseeded-rng",
               "C rand(); all randomness must flow through util::Rng");
      }
    });

    if (hot_path) {
      for (const char* token : {"printf", "fprintf", "sprintf", "puts",
                                "std::cout", "std::cerr", "std::clog"}) {
        for_each_token(code, token, [&](std::size_t pos) {
          report(path, line_of(code, pos), "hot-path-io",
                 std::string(token) +
                     " in a tensor/nn hot path; route diagnostics through "
                     "darnet::check or util::logging");
        });
      }
      if (code.find("#include <iostream>") != std::string::npos) {
        report(path, 1, "hot-path-io",
               "<iostream> include in a tensor/nn hot path");
      }
    }
  }

  void run() {
    for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
      const fs::path dir = root / top;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const fs::path& p = entry.path();
        const std::string rel = fs::relative(p, root).generic_string();
        if (rel.starts_with("tools/lint/")) continue;  // the rule table
        const auto ext = p.extension();
        if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
        lint_file(p);
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: darnet_lint <repo_root>\n";
    return 2;
  }
  const fs::path root = fs::path(argv[1]);
  if (!fs::exists(root / "src")) {
    std::cerr << "darnet_lint: " << root.string()
              << " does not look like the repo root (no src/)\n";
    return 2;
  }

  Linter linter;
  linter.root = root;
  linter.run();

  for (const Finding& f : linter.findings) {
    std::cerr << f.file << ':' << f.line << ": [" << f.rule << "] "
              << f.message << '\n';
  }
  if (!linter.findings.empty()) {
    std::cerr << "darnet_lint: " << linter.findings.size()
              << " finding(s)\n";
    return 1;
  }
  std::cout << "darnet_lint: clean\n";
  return 0;
}
