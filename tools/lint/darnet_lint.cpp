// darnet_lint -- the repo's dependency-free C++ lint binary.
//
// Encodes DarNet's tree-wide source invariants (see DESIGN.md
// "Correctness tooling") and enforces them from CTest, so a build that
// violates a convention fails `ctest` the same way a broken unit test
// does. Rules:
//
//   pragma-once      every .hpp must contain `#pragma once`
//   raw-new          no raw `new` expressions (RAII everywhere: value
//                    types, std::make_unique, containers)
//   raw-delete       no `delete` expressions (`= delete` declarations are
//                    allowed and recognised)
//   thread-outside-parallel
//                    no std::thread / std::jthread / std::async outside
//                    src/parallel/ -- the thread pool is the repo's one
//                    concurrency primitive
//   unseeded-rng     no rand()/srand()/std::random_device/std::mt19937 /
//                    default_random_engine -- all randomness flows through
//                    the deterministic util::Rng
//   hot-path-io      no printf-family / std::cout / std::cerr /
//                    <iostream> in src/tensor or src/nn -- hot numeric
//                    paths must not pull in console I/O (diagnostics
//                    belong in darnet::check or util::logging)
//   obs-name-literal every DARNET_COUNTER_ADD / DARNET_GAUGE_SET /
//                    DARNET_HISTOGRAM_NS / DARNET_TIMER / DARNET_SPAN /
//                    DARNET_SPAN_DETAIL call site in src/ must name its
//                    metric with a string literal, so the metric contract
//                    is statically extractable
//   obs-doc-missing  every metric/span name registered in src/ must have
//                    a table row in docs/OBSERVABILITY.md -- the doc is a
//                    checked contract, not a best-effort narrative
//   obs-doc-stale    every name documented in docs/OBSERVABILITY.md must
//                    still be registered somewhere in src/
//   serve-bounded-queue
//                    inside src/serve/, every member push/emplace into an
//                    identifier containing "queue" must have a capacity
//                    guard ("capacity" in the stripped code of the
//                    preceding 8 lines) -- the admission queue must never
//                    grow unboundedly
//
// Comments, string literals and character literals are stripped before
// matching, so documentation may mention banned constructs freely. The
// linter skips its own directory (tools/lint/) because this rule table
// necessarily spells out every banned token.
//
// Usage: darnet_lint <repo_root>
// Exit status: 0 when clean, 1 on findings, 2 on usage/IO errors.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

/// Replace comments, string literals and char literals with spaces
/// (newlines preserved so line numbers survive).
std::string strip_noncode(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\0' && next != '\n') out[++i] = ' ';
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\0' && next != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// Like strip_noncode, but KEEPS string-literal contents: the observability
/// contract check must read metric-name literals out of macro call sites
/// while still ignoring names that only appear in comments.
std::string strip_comments_keep_strings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find token occurrences with identifier-boundary checks on both ends
/// (only applied where the pattern itself begins/ends with an identifier
/// character). Calls `on_hit(offset)` per occurrence.
void for_each_token(const std::string& code, std::string_view token,
                    const std::function<void(std::size_t)>& on_hit) {
  for (std::size_t pos = code.find(token); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    if (ident_char(token.front()) && pos > 0 && ident_char(code[pos - 1])) {
      continue;
    }
    const std::size_t end = pos + token.size();
    if (ident_char(token.back()) && end < code.size() &&
        ident_char(code[end])) {
      continue;
    }
    on_hit(pos);
  }
}

std::size_t line_of(const std::string& code, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(code.begin(),
                            code.begin() + static_cast<std::ptrdiff_t>(offset),
                            '\n'));
}

/// After `pos + len`, skip whitespace; true when the next character starts
/// an expression operand (identifier, '(' or '['). Distinguishes
/// `new Foo` / `delete p` / `delete[] p` from other uses of the tokens.
bool followed_by_operand(const std::string& code, std::size_t pos,
                         std::size_t len) {
  std::size_t i = pos + len;
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])) != 0) {
    ++i;
  }
  if (i >= code.size()) return false;
  const char c = code[i];
  return ident_char(c) || c == '(' || c == '[' || c == ':';
}

/// True when `delete` at `pos` is a deleted-function declaration
/// (`= delete`), which is allowed.
bool is_deleted_function(const std::string& code, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(code[i - 1])) != 0) {
    --i;
  }
  return i > 0 && code[i - 1] == '=';
}

/// Matches the registry's metric-name grammar: lowercase [a-z0-9_]
/// segments joined by '/', at least two segments (`subsystem/verb_noun`).
bool valid_obs_name(std::string_view name) {
  if (name.empty() || name.front() == '/' || name.back() == '/') return false;
  bool slash = false;
  char prev = '\0';
  for (const char c : name) {
    if (c == '/') {
      if (prev == '/') return false;
      slash = true;
    } else if ((c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_') {
      return false;
    }
    prev = c;
  }
  return slash;
}

/// One metric/span registration site found in src/.
struct ObsUse {
  std::string name;
  std::string file;
  std::size_t line;
};

/// The DARNET_* observability macros whose first argument is the
/// registered name. Order matters: longer tokens first so DARNET_SPAN
/// never shadows DARNET_SPAN_DETAIL (for_each_token also boundary-checks).
constexpr const char* kObsMacros[] = {
    "DARNET_COUNTER_ADD", "DARNET_GAUGE_SET", "DARNET_HISTOGRAM_NS",
    "DARNET_TIMER",       "DARNET_SPAN_DETAIL", "DARNET_SPAN",
};

struct Linter {
  fs::path root;
  std::vector<Finding> findings;
  std::vector<ObsUse> obs_uses;

  void report(const fs::path& file, std::size_t line, std::string rule,
              std::string message) {
    findings.push_back(Finding{fs::relative(file, root).generic_string(),
                               line, std::move(rule), std::move(message)});
  }

  void lint_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report(path, 0, "io-error", "cannot open file");
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    const std::string code = strip_noncode(raw);
    const std::string rel = fs::relative(path, root).generic_string();
    const bool is_header = path.extension() == ".hpp";
    const bool in_parallel = rel.starts_with("src/parallel/");
    const bool hot_path =
        rel.starts_with("src/tensor/") || rel.starts_with("src/nn/");

    if (is_header && raw.find("#pragma once") == std::string::npos) {
      report(path, 1, "pragma-once", "header is missing #pragma once");
    }

    for_each_token(code, "new", [&](std::size_t pos) {
      if (!followed_by_operand(code, pos, 3)) return;
      report(path, line_of(code, pos), "raw-new",
             "raw new expression; use value types, containers or "
             "std::make_unique");
    });

    for_each_token(code, "delete", [&](std::size_t pos) {
      if (is_deleted_function(code, pos)) return;
      if (!followed_by_operand(code, pos, 6)) return;
      report(path, line_of(code, pos), "raw-delete",
             "raw delete expression; ownership must be RAII-managed");
    });

    if (!in_parallel) {
      for (const char* token :
           {"std::thread", "std::jthread", "std::async"}) {
        for_each_token(code, token, [&](std::size_t pos) {
          report(path, line_of(code, pos), "thread-outside-parallel",
                 std::string(token) +
                     " outside src/parallel/; build on parallel_for");
        });
      }
    }

    for (const char* token :
         {"std::rand", "srand", "std::random_device", "std::mt19937",
          "std::default_random_engine"}) {
      for_each_token(code, token, [&](std::size_t pos) {
        report(path, line_of(code, pos), "unseeded-rng",
               std::string(token) +
                   "; all randomness must flow through util::Rng with an "
                   "explicit seed");
      });
    }
    for_each_token(code, "rand", [&](std::size_t pos) {
      // Bare C rand(): token `rand` immediately applied as a call.
      if (pos >= 5 && code.compare(pos - 5, 5, "std::") == 0) return;
      std::size_t i = pos + 4;
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])) != 0) {
        ++i;
      }
      if (i < code.size() && code[i] == '(') {
        report(path, line_of(code, pos), "unseeded-rng",
               "C rand(); all randomness must flow through util::Rng");
      }
    });

    if (hot_path) {
      for (const char* token : {"printf", "fprintf", "sprintf", "puts",
                                "std::cout", "std::cerr", "std::clog"}) {
        for_each_token(code, token, [&](std::size_t pos) {
          report(path, line_of(code, pos), "hot-path-io",
                 std::string(token) +
                     " in a tensor/nn hot path; route diagnostics through "
                     "darnet::check or util::logging");
        });
      }
      if (code.find("#include <iostream>") != std::string::npos) {
        report(path, 1, "hot-path-io",
               "<iostream> include in a tensor/nn hot path");
      }
    }

    // Bounded-queue rule for the serving tier: the admission queue is the
    // server's only elastic buffer, and it must stay bounded. Any member
    // push/emplace into an identifier containing "queue" inside src/serve/
    // must be visibly guarded -- the stripped code within the preceding
    // eight lines has to mention "capacity" (e.g. a DARNET_CHECK or an
    // if against queue_capacity).
    if (rel.starts_with("src/serve/")) {
      for (const char* op : {"push", "push_back", "push_front", "emplace",
                             "emplace_back", "emplace_front"}) {
        for_each_token(code, op, [&](std::size_t pos) {
          if (pos == 0 || code[pos - 1] != '.') return;  // member call only
          std::size_t begin = pos - 1;
          while (begin > 0 && ident_char(code[begin - 1])) --begin;
          const std::string receiver = code.substr(begin, pos - 1 - begin);
          if (receiver.find("queue") == std::string::npos) return;
          std::size_t window = begin;
          int lines = 0;
          while (window > 0 && lines < 8) {
            if (code[window - 1] == '\n') ++lines;
            --window;
          }
          if (code.substr(window, begin - window).find("capacity") ==
              std::string::npos) {
            report(path, line_of(code, pos), "serve-bounded-queue",
                   "push into '" + receiver +
                       "' with no capacity guard in the preceding 8 lines; "
                       "the serve admission queue must stay bounded (check "
                       "against queue_capacity before pushing)");
          }
        });
      }
    }

    // Observability contract extraction: collect every metric/span name
    // registered through the DARNET_* macros in src/. src/obs/ is skipped
    // (it defines the macros; it registers nothing itself).
    if (rel.starts_with("src/") && !rel.starts_with("src/obs/")) {
      const std::string with_strings = strip_comments_keep_strings(raw);
      for (const char* macro : kObsMacros) {
        for_each_token(with_strings, macro, [&](std::size_t pos) {
          std::size_t i = pos + std::string_view(macro).size();
          while (i < with_strings.size() &&
                 std::isspace(static_cast<unsigned char>(with_strings[i])) !=
                     0) {
            ++i;
          }
          if (i >= with_strings.size() || with_strings[i] != '(') {
            return;  // macro definition mention, not a call site
          }
          ++i;
          while (i < with_strings.size() &&
                 std::isspace(static_cast<unsigned char>(with_strings[i])) !=
                     0) {
            ++i;
          }
          if (i >= with_strings.size() || with_strings[i] != '"') {
            report(path, line_of(with_strings, pos), "obs-name-literal",
                   std::string(macro) +
                       ": metric/span name must be a string literal so the "
                       "documented contract is statically checkable");
            return;
          }
          const std::size_t open = i + 1;
          const std::size_t close = with_strings.find('"', open);
          if (close == std::string::npos) return;
          obs_uses.push_back(ObsUse{with_strings.substr(open, close - open),
                                    rel, line_of(with_strings, pos)});
        });
      }
    }
  }

  /// Cross-checks the names registered in src/ against the metric tables
  /// in docs/OBSERVABILITY.md. The doc is the authoritative contract:
  /// every registered name must have a row, and every documented name
  /// must still be registered.
  void check_obs_contract() {
    const fs::path doc_path = root / "docs" / "OBSERVABILITY.md";
    std::ifstream in(doc_path, std::ios::binary);
    if (!in) {
      if (!obs_uses.empty()) {
        report(doc_path, 0, "obs-doc-missing",
               "docs/OBSERVABILITY.md does not exist but " +
                   std::to_string(obs_uses.size()) +
                   " metric/span registration(s) were found in src/");
      }
      return;
    }

    // Documented names: backticked `subsystem/name` tokens on table rows
    // (lines whose first non-space character is '|'). File paths never
    // match: the grammar has no '.' so `src/nn/trainer.cpp` is rejected.
    std::map<std::string, std::size_t> documented;  // name -> first line
    std::string line_text;
    std::size_t line_no = 0;
    while (std::getline(in, line_text)) {
      ++line_no;
      const std::size_t first = line_text.find_first_not_of(" \t");
      if (first == std::string::npos || line_text[first] != '|') continue;
      for (std::size_t tick = line_text.find('`');
           tick != std::string::npos; tick = line_text.find('`', tick + 1)) {
        const std::size_t end = line_text.find('`', tick + 1);
        if (end == std::string::npos) break;
        const std::string token = line_text.substr(tick + 1, end - tick - 1);
        if (valid_obs_name(token)) documented.emplace(token, line_no);
        tick = end;
      }
    }

    std::set<std::string> registered;
    for (const ObsUse& use : obs_uses) {
      registered.insert(use.name);
      if (!valid_obs_name(use.name)) {
        report(root / use.file, use.line, "obs-name-literal",
               "metric/span name '" + use.name +
                   "' violates the subsystem/verb_noun grammar "
                   "([a-z0-9_]+, >= 2 '/'-separated segments)");
        continue;
      }
      if (!documented.contains(use.name)) {
        report(root / use.file, use.line, "obs-doc-missing",
               "metric/span '" + use.name +
                   "' is registered here but has no table row in "
                   "docs/OBSERVABILITY.md");
      }
    }
    for (const auto& [name, doc_line] : documented) {
      if (!registered.contains(name)) {
        report(doc_path, doc_line, "obs-doc-stale",
               "documented metric/span '" + name +
                   "' is not registered anywhere in src/");
      }
    }
  }

  void run() {
    for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
      const fs::path dir = root / top;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const fs::path& p = entry.path();
        const std::string rel = fs::relative(p, root).generic_string();
        if (rel.starts_with("tools/lint/")) continue;  // the rule table
        const auto ext = p.extension();
        if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
        lint_file(p);
      }
    }
    check_obs_contract();
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: darnet_lint <repo_root>\n";
    return 2;
  }
  const fs::path root = fs::path(argv[1]);
  if (!fs::exists(root / "src")) {
    std::cerr << "darnet_lint: " << root.string()
              << " does not look like the repo root (no src/)\n";
    return 2;
  }

  Linter linter;
  linter.root = root;
  linter.run();

  for (const Finding& f : linter.findings) {
    std::cerr << f.file << ':' << f.line << ": [" << f.rule << "] "
              << f.message << '\n';
  }
  if (!linter.findings.empty()) {
    std::cerr << "darnet_lint: " << linter.findings.size()
              << " finding(s)\n";
    return 1;
  }
  std::cout << "darnet_lint: clean\n";
  return 0;
}
