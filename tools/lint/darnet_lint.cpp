// darnet_lint -- the repo's dependency-free C++ lint binary.
//
// Encodes DarNet's tree-wide source invariants (see DESIGN.md
// "Correctness tooling") and enforces them from CTest, so a build that
// violates a convention fails `ctest` the same way a broken unit test
// does. Rules:
//
//   pragma-once      every .hpp must contain `#pragma once`
//   raw-new          no raw `new` expressions (RAII everywhere: value
//                    types, std::make_unique, containers). src/sync/ is
//                    exempt: the lock-order checker deliberately
//                    immortalises its graph state (never destroyed) so
//                    locks taken during static/TLS destruction can never
//                    touch a destroyed object
//   raw-delete       no `delete` expressions (`= delete` declarations are
//                    allowed and recognised)
//   thread-outside-parallel
//                    no std::thread / std::jthread / std::async outside
//                    src/parallel/ -- the thread pool is the repo's one
//                    concurrency primitive
//   unseeded-rng     no rand()/srand()/std::random_device/std::mt19937 /
//                    default_random_engine -- all randomness flows through
//                    the deterministic util::Rng
//   hot-path-io      no printf-family / std::cout / std::cerr /
//                    <iostream> in src/tensor or src/nn -- hot numeric
//                    paths must not pull in console I/O (diagnostics
//                    belong in darnet::check or util::logging)
//   hot-path-alloc   no std::vector<float> / std::vector<double> in
//                    src/tensor, src/nn, src/engine or src/serve -- the
//                    inference hot path is zero-alloc in steady state
//                    (test_hotpath_alloc proves it with a counting
//                    allocator), so float buffers there must use
//                    tensor::Storage / tensor::ArenaAlloc, which recycle
//                    through the per-worker arena. Training / eval-only
//                    code that legitimately lives in those directories is
//                    listed in kHotPathAllocExempt with a reason; adding
//                    an entry is a reviewed change, not a comment
//                    annotation
//   obs-name-literal every DARNET_COUNTER_ADD / DARNET_GAUGE_SET /
//                    DARNET_HISTOGRAM_NS / DARNET_TIMER / DARNET_SPAN /
//                    DARNET_SPAN_DETAIL call site in src/ must name its
//                    metric with a string literal, so the metric contract
//                    is statically extractable
//   obs-doc-missing  every metric/span name registered in src/ must have
//                    a table row in docs/OBSERVABILITY.md -- the doc is a
//                    checked contract, not a best-effort narrative
//   obs-doc-stale    every name documented in docs/OBSERVABILITY.md must
//                    still be registered somewhere in src/
//   sim-doc-missing  every scenario registered in src/sim/ (a
//                    register_scenario("name", ...) call) must have a
//                    catalogue table row between the scenarios:begin/end
//                    markers in docs/SIMULATION.md -- the scenario
//                    methodology doc is a checked contract too
//   sim-doc-stale    every scenario documented in that catalogue table
//                    must still be registered in src/sim/
//   serve-bounded-queue
//                    inside src/serve/, every member push/emplace into an
//                    identifier containing "queue" must have a capacity
//                    guard ("capacity" in the stripped code of the
//                    preceding 8 lines) -- the admission queue must never
//                    grow unboundedly
//   sync-raw-primitive
//                    no std::mutex / std::condition_variable /
//                    std::lock_guard / std::unique_lock / std::scoped_lock
//                    (nor their recursive/timed/shared variants) outside
//                    src/sync/ -- all locking flows through sync::Mutex /
//                    sync::Lock / sync::CondVar so checked builds can
//                    track held locks, lock order and CV waits
//   sync-guarded-by  in any class that owns a sync::Mutex or sync::CondVar,
//                    every mutable data member must either carry a
//                    DARNET_GUARDED_BY / DARNET_ATOMIC /
//                    DARNET_THREAD_LOCAL annotation or be a sync primitive
//                    / std::atomic itself -- shared state must declare its
//                    synchronisation discipline
//   sync-assert-held every `REQUIRES: <mu> held` (resp. `free`) comment
//                    attached to a function *definition* must be backed by
//                    a DARNET_ASSERT_HELD(<mu>) (resp.
//                    DARNET_ASSERT_NOT_HELD(<mu>)) in the function body --
//                    lock preconditions are executable, not prose
//   engine-deprecated-shim
//                    any DARNET_ALLOW_DEPRECATED* gate token, anywhere in
//                    the tree: the deprecated engine shim API was deleted
//                    (PR 9), so naming the gate -- or any renamed variant
//                    of it -- is an attempt to resurrect a removed API
//
// Comments, string literals and character literals never trigger a rule:
// the banned-token rules (sync-raw-primitive, hot-path-alloc) and the
// observability extraction walk the token stream produced by the shared
// darnet_analyze lexer, and the remaining text rules run on stripped code.
// That is what lets the linter lint its own directory -- this rule table
// spells out every banned construct, but only inside string literals,
// which are distinct tokens.
//
// Usage: darnet_lint <repo_root> [--format=text|json] [--out=PATH]
//                    [--list]
// Flags and the 0/1/2 exit-code contract follow tools/common/cli.hpp.
// Text findings always go to stderr (the fixture harness keys on that
// shape); --format=json adds a machine-readable findings array on
// stdout, --out writes that rendering to a file, --list prints the rule
// catalogue.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/analyze/lexer.hpp"
#include "tools/common/cli.hpp"

namespace fs = std::filesystem;
namespace analyze = darnet::analyze;

namespace {

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

/// Replace comments, string literals and char literals with spaces
/// (newlines preserved so line numbers survive).
std::string strip_noncode(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\0' && next != '\n') out[++i] = ' ';
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\0' && next != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find token occurrences with identifier-boundary checks on both ends
/// (only applied where the pattern itself begins/ends with an identifier
/// character). Calls `on_hit(offset)` per occurrence.
void for_each_token(const std::string& code, std::string_view token,
                    const std::function<void(std::size_t)>& on_hit) {
  for (std::size_t pos = code.find(token); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    if (ident_char(token.front()) && pos > 0 && ident_char(code[pos - 1])) {
      continue;
    }
    const std::size_t end = pos + token.size();
    if (ident_char(token.back()) && end < code.size() &&
        ident_char(code[end])) {
      continue;
    }
    on_hit(pos);
  }
}

/// hot-path-alloc exemption registry. These files live inside hot-path
/// directories but are never on the steady-state inference path, so the
/// float-vector ban does not apply to them. Keep every entry justified:
/// the registry is the rule's only escape hatch (there is no inline
/// suppression comment), and an unexplained entry defeats the contract.
constexpr std::string_view kHotPathAllocExempt[] = {
    // Training-only: per-epoch shard loss accumulators; allocates once
    // per fit() epoch, never under classify_batch.
    "src/nn/trainer.cpp",
    // Offline eval API: topk_accuracy takes caller-owned score vectors;
    // only tests and the training loop call it.
    "src/nn/metrics.hpp",
    "src/nn/metrics.cpp",
};

bool hot_path_alloc_exempt(const std::string& rel) {
  for (const std::string_view entry : kHotPathAllocExempt) {
    if (rel == entry) return true;
  }
  return false;
}

std::size_t line_of(const std::string& code, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(code.begin(),
                            code.begin() + static_cast<std::ptrdiff_t>(offset),
                            '\n'));
}

/// After `pos + len`, skip whitespace; true when the next character starts
/// an expression operand (identifier, '(' or '['). Distinguishes
/// `new Foo` / `delete p` / `delete[] p` from other uses of the tokens.
bool followed_by_operand(const std::string& code, std::size_t pos,
                         std::size_t len) {
  std::size_t i = pos + len;
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])) != 0) {
    ++i;
  }
  if (i >= code.size()) return false;
  const char c = code[i];
  return ident_char(c) || c == '(' || c == '[' || c == ':';
}

/// True when `delete` at `pos` is a deleted-function declaration
/// (`= delete`), which is allowed.
bool is_deleted_function(const std::string& code, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(code[i - 1])) != 0) {
    --i;
  }
  return i > 0 && code[i - 1] == '=';
}

/// True when `new`/`delete` at `pos` is part of an allocation-function
/// signature (`operator new`, `operator delete[]`, ...), not an
/// expression. Replacement allocators (e.g. the counting allocator in
/// tests/test_hotpath_alloc.cpp) define these legitimately.
bool is_operator_function(const std::string& code, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(code[i - 1])) != 0) {
    --i;
  }
  constexpr std::string_view kOperator = "operator";
  if (i < kOperator.size()) return false;
  if (code.compare(i - kOperator.size(), kOperator.size(), kOperator) != 0) {
    return false;
  }
  const std::size_t before = i - kOperator.size();
  return before == 0 || !ident_char(code[before - 1]);
}

/// Offset of the '}' matching the '{' at `open`, or npos when the file
/// ends first. `code` must already be comment/string-stripped.
std::size_t match_brace(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth == 0) return i;
  }
  return std::string::npos;
}

/// True when `needle(name` appears in `body` with `name` ending at an
/// identifier boundary (so `mu` never matches `DARNET_ASSERT_HELD(mut_x`).
bool contains_call_on(const std::string& body, std::string_view needle,
                      std::string_view name) {
  const std::string pattern = std::string(needle) + "(" + std::string(name);
  for (std::size_t pos = body.find(pattern); pos != std::string::npos;
       pos = body.find(pattern, pos + 1)) {
    const std::size_t end = pos + pattern.size();
    if (end < body.size() && ident_char(body[end])) continue;
    return true;
  }
  return false;
}

/// Matches the registry's metric-name grammar: lowercase [a-z0-9_]
/// segments joined by '/', at least two segments (`subsystem/verb_noun`).
bool valid_obs_name(std::string_view name) {
  if (name.empty() || name.front() == '/' || name.back() == '/') return false;
  bool slash = false;
  char prev = '\0';
  for (const char c : name) {
    if (c == '/') {
      if (prev == '/') return false;
      slash = true;
    } else if ((c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_') {
      return false;
    }
    prev = c;
  }
  return slash;
}

/// One metric/span registration site found in src/.
struct ObsUse {
  std::string name;
  std::string file;
  std::size_t line;
};

/// The DARNET_* observability macros whose first argument is the
/// registered name. Order matters: longer tokens first so DARNET_SPAN
/// never shadows DARNET_SPAN_DETAIL (for_each_token also boundary-checks).
constexpr const char* kObsMacros[] = {
    "DARNET_COUNTER_ADD", "DARNET_GAUGE_SET", "DARNET_HISTOGRAM_NS",
    "DARNET_TIMER",       "DARNET_SPAN_DETAIL", "DARNET_SPAN",
};

struct Linter {
  fs::path root;
  std::vector<Finding> findings;
  std::vector<ObsUse> obs_uses;
  std::vector<ObsUse> scenario_uses;  // register_scenario("name", ...) sites

  void report(const fs::path& file, std::size_t line, std::string rule,
              std::string message) {
    findings.push_back(Finding{fs::relative(file, root).generic_string(),
                               line, std::move(rule), std::move(message)});
  }

  /// sync-guarded-by: for every class/struct body in `code` (stripped)
  /// that owns a sync::Mutex or sync::CondVar, each mutable data member
  /// must declare its synchronisation discipline -- DARNET_GUARDED_BY /
  /// DARNET_ATOMIC / DARNET_THREAD_LOCAL, or be a sync primitive /
  /// std::atomic itself. `const`/`static` members, nested type
  /// definitions and member function declarations are exempt.
  void check_guarded_by(const fs::path& path, const std::string& code) {
    for (const char* kw : {"class", "struct"}) {
      for_each_token(code, kw, [&](std::size_t pos) {
        // Skip `enum class` and template-parameter introducers
        // (`template <class T>`, `<class A, class B>`).
        std::size_t p = pos;
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
          --p;
        }
        if (p > 0 && (code[p - 1] == '<' || code[p - 1] == ',')) return;
        std::size_t w = p;
        while (w > 0 && ident_char(code[w - 1])) --w;
        if (code.compare(w, p - w, "enum") == 0) return;
        // A definition has '{' before the next ';'; anything else
        // (forward declaration, elaborated type specifier) is skipped.
        const std::size_t open = code.find_first_of("{;", pos);
        if (open == std::string::npos || code[open] == ';') return;
        const std::size_t close = match_brace(code, open);
        if (close == std::string::npos) return;
        check_class_body(path, code, open + 1, close);
      });
    }
  }

  /// Analyse one class body [begin, end): split it into top-level member
  /// statements (function bodies and nested brace groups are skipped as
  /// units) and apply the guarded-by contract when the class owns a lock.
  void check_class_body(const fs::path& path, const std::string& code,
                        std::size_t begin, std::size_t end) {
    struct Stmt {
      std::size_t offset;
      std::string text;
    };
    std::vector<Stmt> stmts;
    std::string cur;
    std::size_t cur_off = begin;
    bool have_off = false;
    std::size_t i = begin;
    while (i < end) {
      const char c = code[i];
      if (c == '{') {
        const std::size_t close = match_brace(code, i);
        if (close == std::string::npos || close > end) break;
        std::size_t j = close + 1;
        while (j < end &&
               std::isspace(static_cast<unsigned char>(code[j])) != 0) {
          ++j;
        }
        if (j < end && code[j] == ';') {
          // Brace initializer (`int x_{0};`) or nested type definition:
          // the upcoming ';' terminates the pending statement normally.
          i = close + 1;
          continue;
        }
        // Function body (or similar): the pending text was a definition
        // header, not a member declaration.
        cur.clear();
        have_off = false;
        i = close + 1;
        continue;
      }
      if (c == ';') {
        if (have_off) stmts.push_back(Stmt{cur_off, cur});
        cur.clear();
        have_off = false;
        ++i;
        continue;
      }
      if (!have_off &&
          std::isspace(static_cast<unsigned char>(c)) == 0) {
        cur_off = i;
        have_off = true;
      }
      if (have_off) cur.push_back(c);
      ++i;
    }

    // Pass 1: is this a lock-owning class?
    bool owns_lock = false;
    for (const Stmt& s : stmts) {
      if (s.text.find("sync::Mutex") != std::string::npos ||
          s.text.find("sync::CondVar") != std::string::npos) {
        owns_lock = true;
        break;
      }
    }
    if (!owns_lock) return;

    // Pass 2: every member statement must declare its discipline.
    for (const Stmt& s : stmts) {
      const std::string& t = s.text;
      if (t.find("DARNET_GUARDED_BY") != std::string::npos ||
          t.find("DARNET_ATOMIC") != std::string::npos ||
          t.find("DARNET_THREAD_LOCAL") != std::string::npos ||
          t.find("sync::Mutex") != std::string::npos ||
          t.find("sync::CondVar") != std::string::npos ||
          t.find("std::atomic") != std::string::npos) {
        continue;
      }
      // First word decides declaration kind; access labels are skipped.
      std::size_t p = 0;
      const auto next_word = [&]() {
        while (p < t.size() && !ident_char(t[p])) ++p;
        const std::size_t b = p;
        while (p < t.size() && ident_char(t[p])) ++p;
        return t.substr(b, p - b);
      };
      std::string first = next_word();
      while (first == "public" || first == "private" ||
             first == "protected") {
        first = next_word();
      }
      if (first.empty() || first == "const" || first == "static" ||
          first == "constexpr" || first == "using" || first == "typedef" ||
          first == "friend" || first == "enum" || first == "class" ||
          first == "struct" || first == "template" || first == "inline") {
        continue;
      }
      if (t.find('(') != std::string::npos) continue;  // function decl
      // Condense the statement for the diagnostic.
      std::string shown;
      for (const char c : t) {
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
          if (!shown.empty() && shown.back() != ' ') shown.push_back(' ');
        } else {
          shown.push_back(c);
        }
      }
      if (shown.size() > 48) shown = shown.substr(0, 48) + "...";
      report(path, line_of(code, s.offset), "sync-guarded-by",
             "member `" + shown +
                 "` of a lock-owning class declares no synchronisation "
                 "discipline; annotate it with DARNET_GUARDED_BY(mu) / "
                 "DARNET_ATOMIC / DARNET_THREAD_LOCAL (or make it const)");
    }
  }

  /// sync-assert-held: every `REQUIRES: <mu> held|free` comment that sits
  /// on a function *definition* must be backed by the matching
  /// DARNET_ASSERT_HELD / DARNET_ASSERT_NOT_HELD call in the body. The
  /// marker is read from the raw text (it lives in comments); the body is
  /// located in the stripped code, whose offsets match 1:1.
  void check_assert_held(const fs::path& path, const std::string& raw,
                         const std::string& code) {
    for (std::size_t pos = raw.find("REQUIRES:"); pos != std::string::npos;
         pos = raw.find("REQUIRES:", pos + 1)) {
      std::size_t i = pos + 9;
      while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
      std::size_t b = i;
      while (i < raw.size() && ident_char(raw[i])) ++i;
      const std::string name = raw.substr(b, i - b);
      if (name.empty()) continue;
      while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
      b = i;
      while (i < raw.size() && ident_char(raw[i])) ++i;
      const std::string mode = raw.substr(b, i - b);
      if (mode != "held" && mode != "free") continue;
      // A '{' before the next ';' means the marker sits on a definition;
      // markers on declarations document the contract for callers and
      // are enforced at the definition site instead.
      const std::size_t next = code.find_first_of("{;", i);
      if (next == std::string::npos || code[next] == ';') continue;
      const std::size_t close = match_brace(code, next);
      if (close == std::string::npos) continue;
      const std::string body = code.substr(next, close - next + 1);
      const char* macro =
          mode == "held" ? "DARNET_ASSERT_HELD" : "DARNET_ASSERT_NOT_HELD";
      if (!contains_call_on(body, macro, name)) {
        report(path, line_of(raw, pos), "sync-assert-held",
               "`REQUIRES: " + name + " " + mode +
                   "` on a function definition without a matching " +
                   macro + "(" + name +
                   ") in the body; lock preconditions are executable, not "
                   "prose");
      }
    }
  }

  void lint_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report(path, 0, "io-error", "cannot open file");
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    const std::string code = strip_noncode(raw);
    const std::string rel = fs::relative(path, root).generic_string();
    // Shared tokenizer (tools/analyze): comments and literals are distinct
    // tokens, so the token-stream rules below cannot fire inside either.
    const analyze::LexedFile lexed = analyze::lex(raw, rel);
    const bool is_header = path.extension() == ".hpp";
    const bool in_parallel = rel.starts_with("src/parallel/");
    const bool hot_path =
        rel.starts_with("src/tensor/") || rel.starts_with("src/nn/");

    if (is_header && raw.find("#pragma once") == std::string::npos) {
      report(path, 1, "pragma-once", "header is missing #pragma once");
    }

    // src/sync/ is exempt from raw-new: the lock-order checker
    // immortalises its graph state on purpose (see sync.cpp) so locks
    // taken during static/TLS destruction never touch destroyed objects.
    const bool in_sync = rel.starts_with("src/sync/");
    if (!in_sync) {
      for_each_token(code, "new", [&](std::size_t pos) {
        if (!followed_by_operand(code, pos, 3)) return;
        if (is_operator_function(code, pos)) return;
        report(path, line_of(code, pos), "raw-new",
               "raw new expression; use value types, containers or "
               "std::make_unique");
      });
    }

    for_each_token(code, "delete", [&](std::size_t pos) {
      if (is_deleted_function(code, pos)) return;
      if (is_operator_function(code, pos)) return;
      if (!followed_by_operand(code, pos, 6)) return;
      report(path, line_of(code, pos), "raw-delete",
             "raw delete expression; ownership must be RAII-managed");
    });

    if (!in_parallel) {
      for (const char* token :
           {"std::thread", "std::jthread", "std::async"}) {
        for_each_token(code, token, [&](std::size_t pos) {
          report(path, line_of(code, pos), "thread-outside-parallel",
                 std::string(token) +
                     " outside src/parallel/; build on parallel_for");
        });
      }
    }

    for (const char* token :
         {"std::rand", "srand", "std::random_device", "std::mt19937",
          "std::default_random_engine"}) {
      for_each_token(code, token, [&](std::size_t pos) {
        report(path, line_of(code, pos), "unseeded-rng",
               std::string(token) +
                   "; all randomness must flow through util::Rng with an "
                   "explicit seed");
      });
    }
    for_each_token(code, "rand", [&](std::size_t pos) {
      // Bare C rand(): token `rand` immediately applied as a call.
      if (pos >= 5 && code.compare(pos - 5, 5, "std::") == 0) return;
      std::size_t i = pos + 4;
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])) != 0) {
        ++i;
      }
      if (i < code.size() && code[i] == '(') {
        report(path, line_of(code, pos), "unseeded-rng",
               "C rand(); all randomness must flow through util::Rng");
      }
    });

    if (hot_path) {
      for (const char* token : {"printf", "fprintf", "sprintf", "puts",
                                "std::cout", "std::cerr", "std::clog"}) {
        for_each_token(code, token, [&](std::size_t pos) {
          report(path, line_of(code, pos), "hot-path-io",
                 std::string(token) +
                     " in a tensor/nn hot path; route diagnostics through "
                     "darnet::check or util::logging");
        });
      }
      if (code.find("#include <iostream>") != std::string::npos) {
        report(path, 1, "hot-path-io",
               "<iostream> include in a tensor/nn hot path");
      }
    }

    // Zero-alloc hot path: float/double vectors are banned in the
    // directories the steady-state inference path runs through. The
    // sanctioned replacements (tensor::Storage, tensor::ArenaAlloc<T>)
    // recycle allocations through the per-worker arena, which is what
    // lets test_hotpath_alloc assert zero heap allocations per
    // classify_batch after warm-up. Exemptions live in the registry
    // below -- file-scoped, each with its reason -- so a new vector in
    // these trees is a reviewed decision, never an accident.
    const bool hot_alloc = hot_path || rel.starts_with("src/engine/") ||
                           rel.starts_with("src/serve/");
    if (hot_alloc && !hot_path_alloc_exempt(rel)) {
      const auto& toks = lexed.tokens;
      for (std::size_t i = 0; i + 5 < toks.size(); ++i) {
        if (!analyze::is_ident(toks[i], "std") ||
            !analyze::is_punct(toks[i + 1], "::") ||
            !analyze::is_ident(toks[i + 2], "vector") ||
            !analyze::is_punct(toks[i + 3], "<")) {
          continue;
        }
        const analyze::Token& elem = toks[i + 4];
        if ((!analyze::is_ident(elem, "float") &&
             !analyze::is_ident(elem, "double")) ||
            !analyze::is_punct(toks[i + 5], ">")) {
          continue;
        }
        report(path, static_cast<std::size_t>(toks[i].line), "hot-path-alloc",
               "std::vector<" + elem.text +
                   "> in an inference hot-path directory; use "
                   "tensor::Storage or tensor::ArenaAlloc so the "
                   "steady-state path stays zero-alloc (or add a "
                   "kHotPathAllocExempt entry with a reason)");
      }
    }

    // Bounded-queue rule for the serving tier: the admission queue is the
    // server's only elastic buffer, and it must stay bounded. Any member
    // push/emplace into an identifier containing "queue" inside src/serve/
    // must be visibly guarded -- the stripped code within the preceding
    // eight lines has to mention "capacity" (e.g. a DARNET_CHECK or an
    // if against queue_capacity).
    if (rel.starts_with("src/serve/")) {
      for (const char* op : {"push", "push_back", "push_front", "emplace",
                             "emplace_back", "emplace_front"}) {
        for_each_token(code, op, [&](std::size_t pos) {
          if (pos == 0 || code[pos - 1] != '.') return;  // member call only
          std::size_t begin = pos - 1;
          while (begin > 0 && ident_char(code[begin - 1])) --begin;
          const std::string receiver = code.substr(begin, pos - 1 - begin);
          if (receiver.find("queue") == std::string::npos) return;
          std::size_t window = begin;
          int lines = 0;
          while (window > 0 && lines < 8) {
            if (code[window - 1] == '\n') ++lines;
            --window;
          }
          if (code.substr(window, begin - window).find("capacity") ==
              std::string::npos) {
            report(path, line_of(code, pos), "serve-bounded-queue",
                   "push into '" + receiver +
                       "' with no capacity guard in the preceding 8 lines; "
                       "the serve admission queue must stay bounded (check "
                       "against queue_capacity before pushing)");
          }
        });
      }
    }

    // Concurrency-correctness rules. src/sync/ itself is exempt: it is
    // the one place allowed to name the raw std primitives (it wraps
    // them) and its own classes are the annotation vocabulary.
    if (!in_sync) {
      static const std::set<std::string, std::less<>> kRawPrimitives = {
          "mutex",         "recursive_mutex",
          "timed_mutex",   "recursive_timed_mutex",
          "shared_mutex",  "shared_timed_mutex",
          "condition_variable", "condition_variable_any",
          "lock_guard",    "unique_lock",
          "scoped_lock",   "shared_lock"};
      const auto& toks = lexed.tokens;
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!analyze::is_ident(toks[i], "std") ||
            !analyze::is_punct(toks[i + 1], "::") ||
            toks[i + 2].kind != analyze::Tok::kIdent ||
            !kRawPrimitives.contains(toks[i + 2].text)) {
          continue;
        }
        report(path, static_cast<std::size_t>(toks[i].line),
               "sync-raw-primitive",
               "std::" + toks[i + 2].text +
                   " outside src/sync/; use sync::Mutex / sync::Lock / "
                   "sync::UniqueLock / sync::CondVar so checked builds "
                   "can track held locks and lock order");
      }
      check_guarded_by(path, code);
      check_assert_held(path, raw, code);
    }

    // The deprecated engine shim API was deleted outright (PR 9): no
    // shim declarations remain in src/engine/, so any DARNET_ALLOW_
    // DEPRECATED* gate token anywhere in the tree -- engine shims or a
    // future copycat gate -- is someone trying to resurrect a removed
    // API. Prefix match (start-of-identifier boundary only) so renamed
    // suffixes cannot dodge the ban.
    {
      constexpr std::string_view kGatePrefix = "DARNET_ALLOW_DEPRECATED";
      for (std::size_t pos = code.find(kGatePrefix);
           pos != std::string::npos;
           pos = code.find(kGatePrefix, pos + 1)) {
        if (pos > 0 && ident_char(code[pos - 1])) continue;
        report(path, line_of(code, pos), "engine-deprecated-shim",
               "DARNET_ALLOW_DEPRECATED* gate token; the deprecated "
               "engine shim API is gone -- use ClassifyRequest / "
               "classify_batch and engine::borrow instead of "
               "re-enabling removed shims");
      }
    }

    // Scenario-catalogue contract extraction: every
    // `register_scenario("name", ...)` call in src/sim/ names a scenario
    // that docs/SIMULATION.md must document (and vice versa). The
    // definition site (`const auto register_scenario = [...]`) is not
    // followed by '(' + string, so only call sites are collected.
    if (rel.starts_with("src/sim/")) {
      const auto& toks = lexed.tokens;
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (analyze::is_ident(toks[i], "register_scenario") &&
            analyze::is_punct(toks[i + 1], "(") &&
            toks[i + 2].kind == analyze::Tok::kString) {
          scenario_uses.push_back(ObsUse{
              toks[i + 2].text, rel,
              static_cast<std::size_t>(toks[i].line)});
        }
      }
    }

    // Observability contract extraction: collect every metric/span name
    // registered through the DARNET_* macros in src/. src/obs/ is skipped
    // (it defines the macros; it registers nothing itself).
    if (rel.starts_with("src/") && !rel.starts_with("src/obs/")) {
      const auto& toks = lexed.tokens;
      const auto is_obs_macro = [](const analyze::Token& t) {
        if (t.kind != analyze::Tok::kIdent) return false;
        for (const char* macro : kObsMacros) {
          if (t.text == macro) return true;
        }
        return false;
      };
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (is_obs_macro(toks[i])) {
          if (i + 1 >= toks.size() || !analyze::is_punct(toks[i + 1], "(")) {
            continue;  // macro definition mention, not a call site
          }
          if (i + 2 >= toks.size() ||
              toks[i + 2].kind != analyze::Tok::kString) {
            report(path, static_cast<std::size_t>(toks[i].line),
                   "obs-name-literal",
                   toks[i].text +
                       ": metric/span name must be a string literal so the "
                       "documented contract is statically checkable");
            continue;
          }
          obs_uses.push_back(ObsUse{toks[i + 2].text, rel,
                                    static_cast<std::size_t>(toks[i].line)});
          continue;
        }
        // Direct registry() registrations (used by layers that cannot go
        // through the macros, e.g. src/sync emitting its own metrics):
        // `registry().counter("name")` et al. count as contract uses too.
        if (analyze::is_ident(toks[i], "registry") && i + 6 < toks.size() &&
            analyze::is_punct(toks[i + 1], "(") &&
            analyze::is_punct(toks[i + 2], ")") &&
            analyze::is_punct(toks[i + 3], ".") &&
            (analyze::is_ident(toks[i + 4], "counter") ||
             analyze::is_ident(toks[i + 4], "gauge") ||
             analyze::is_ident(toks[i + 4], "histogram")) &&
            analyze::is_punct(toks[i + 5], "(") &&
            toks[i + 6].kind == analyze::Tok::kString) {
          obs_uses.push_back(ObsUse{toks[i + 6].text, rel,
                                    static_cast<std::size_t>(toks[i].line)});
        }
      }
    }
  }

  /// Cross-checks the names registered in src/ against the metric tables
  /// in docs/OBSERVABILITY.md. The doc is the authoritative contract:
  /// every registered name must have a row, and every documented name
  /// must still be registered.
  void check_obs_contract() {
    const fs::path doc_path = root / "docs" / "OBSERVABILITY.md";
    std::ifstream in(doc_path, std::ios::binary);
    if (!in) {
      if (!obs_uses.empty()) {
        report(doc_path, 0, "obs-doc-missing",
               "docs/OBSERVABILITY.md does not exist but " +
                   std::to_string(obs_uses.size()) +
                   " metric/span registration(s) were found in src/");
      }
      return;
    }

    // Documented names: backticked `subsystem/name` tokens on table rows
    // (lines whose first non-space character is '|'). File paths never
    // match: the grammar has no '.' so `src/nn/trainer.cpp` is rejected.
    std::map<std::string, std::size_t> documented;  // name -> first line
    std::string line_text;
    std::size_t line_no = 0;
    while (std::getline(in, line_text)) {
      ++line_no;
      const std::size_t first = line_text.find_first_not_of(" \t");
      if (first == std::string::npos || line_text[first] != '|') continue;
      for (std::size_t tick = line_text.find('`');
           tick != std::string::npos; tick = line_text.find('`', tick + 1)) {
        const std::size_t end = line_text.find('`', tick + 1);
        if (end == std::string::npos) break;
        const std::string token = line_text.substr(tick + 1, end - tick - 1);
        if (valid_obs_name(token)) documented.emplace(token, line_no);
        tick = end;
      }
    }

    std::set<std::string> registered;
    for (const ObsUse& use : obs_uses) {
      registered.insert(use.name);
      if (!valid_obs_name(use.name)) {
        report(root / use.file, use.line, "obs-name-literal",
               "metric/span name '" + use.name +
                   "' violates the subsystem/verb_noun grammar "
                   "([a-z0-9_]+, >= 2 '/'-separated segments)");
        continue;
      }
      if (!documented.contains(use.name)) {
        report(root / use.file, use.line, "obs-doc-missing",
               "metric/span '" + use.name +
                   "' is registered here but has no table row in "
                   "docs/OBSERVABILITY.md");
      }
    }
    for (const auto& [name, doc_line] : documented) {
      if (!registered.contains(name)) {
        report(doc_path, doc_line, "obs-doc-stale",
               "documented metric/span '" + name +
                   "' is not registered anywhere in src/");
      }
    }
  }

  /// Cross-checks the scenarios registered in src/sim/ against the
  /// catalogue table in docs/SIMULATION.md (the rows between the
  /// `<!-- scenarios:begin -->` / `<!-- scenarios:end -->` markers; the
  /// first backticked token on each row is the scenario name). Both
  /// directions are enforced: an undocumented scenario and a documented
  /// ghost each fail the lint.
  void check_sim_contract() {
    const fs::path doc_path = root / "docs" / "SIMULATION.md";
    std::ifstream in(doc_path, std::ios::binary);
    if (!in) {
      if (!scenario_uses.empty()) {
        report(doc_path, 0, "sim-doc-missing",
               "docs/SIMULATION.md does not exist but " +
                   std::to_string(scenario_uses.size()) +
                   " scenario registration(s) were found in src/sim/");
      }
      return;
    }

    std::map<std::string, std::size_t> documented;  // name -> first line
    std::string line_text;
    std::size_t line_no = 0;
    bool in_catalogue = false;
    while (std::getline(in, line_text)) {
      ++line_no;
      if (line_text.find("<!-- scenarios:begin -->") != std::string::npos) {
        in_catalogue = true;
        continue;
      }
      if (line_text.find("<!-- scenarios:end -->") != std::string::npos) {
        in_catalogue = false;
        continue;
      }
      if (!in_catalogue) continue;
      const std::size_t first = line_text.find_first_not_of(" \t");
      if (first == std::string::npos || line_text[first] != '|') continue;
      const std::size_t tick = line_text.find('`');
      if (tick == std::string::npos) continue;
      const std::size_t end = line_text.find('`', tick + 1);
      if (end == std::string::npos) continue;
      const std::string name = line_text.substr(tick + 1, end - tick - 1);
      if (!name.empty()) documented.emplace(name, line_no);
    }

    std::set<std::string> registered;
    for (const ObsUse& use : scenario_uses) {
      registered.insert(use.name);
      if (!documented.contains(use.name)) {
        report(root / use.file, use.line, "sim-doc-missing",
               "scenario '" + use.name +
                   "' is registered here but has no catalogue row between "
                   "the scenarios:begin/end markers in docs/SIMULATION.md");
      }
    }
    for (const auto& [name, doc_line] : documented) {
      if (!registered.contains(name)) {
        report(doc_path, doc_line, "sim-doc-stale",
               "documented scenario '" + name +
                   "' is not registered anywhere in src/sim/");
      }
    }
  }

  void run() {
    for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
      const fs::path dir = root / top;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const fs::path& p = entry.path();
        const std::string rel = fs::relative(p, root).generic_string();
        // Fixture files deliberately violate one rule each; they are
        // exercised individually by their run_fixtures.sh harnesses.
        if (rel.starts_with("tests/lint_fixtures/")) continue;
        if (rel.starts_with("tests/analyze_fixtures/")) continue;
        const auto ext = p.extension();
        if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
        lint_file(p);
      }
    }
    check_obs_contract();
    check_sim_contract();
  }
};

}  // namespace

/// The --list catalogue: every rule name with its one-line purpose.
/// Names are stable -- fixture dirs under tests/lint_fixtures/ key on
/// them.
constexpr struct {
  const char* name;
  const char* what;
} kRuleCatalogue[] = {
    {"pragma-once", "every header opens with #pragma once"},
    {"raw-new", "manual new outside the make_unique/make_shared idiom"},
    {"raw-delete", "manual delete (ownership must be scoped)"},
    {"thread-outside-parallel", "std::thread anywhere but src/parallel/"},
    {"unseeded-rng", "default-seeded random engine"},
    {"hot-path-io", "iostream inside the numeric hot-path dirs"},
    {"hot-path-alloc", "per-call float/double vector on the hot path"},
    {"serve-bounded-queue", "queue push with no capacity check nearby"},
    {"sync-raw-primitive", "raw std primitives outside src/sync/"},
    {"sync-guarded-by", "lock-owning member without DARNET_GUARDED_BY"},
    {"sync-assert-held", "REQUIRES comment without DARNET_ASSERT_HELD"},
    {"engine-deprecated-shim", "any DARNET_ALLOW_DEPRECATED* gate token"},
    {"obs-name-literal", "metric name off the segment/charset grammar"},
    {"obs-doc-missing", "metric with no docs/OBSERVABILITY.md row"},
    {"obs-doc-stale", "documented metric no longer in the code"},
    {"sim-doc-missing", "scenario with no docs/SIMULATION.md row"},
    {"sim-doc-stale", "documented scenario no longer registered"},
    {"io-error", "a file the linter could not read"},
};

[[nodiscard]] std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

[[nodiscard]] std::string render(const std::vector<Finding>& findings,
                                 bool json) {
  std::string out;
  if (json) {
    out += "{\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      out += i ? ",\n  " : "\n  ";
      out += "{\"file\":\"" + json_escape(f.file) +
             "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
             f.rule + "\",\"message\":\"" + json_escape(f.message) + "\"}";
    }
    out += findings.empty() ? "]}\n" : "\n]}\n";
    return out;
  }
  for (const Finding& f : findings) {
    out += f.file + ':' + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + '\n';
  }
  return out;
}

int main(int argc, char** argv) {
  darnet::cli::Parser parser(
      "darnet_lint",
      "usage: darnet_lint <repo_root> [--format=text|json] [--out=PATH] "
      "[--list]");
  parser.flag("format").flag("out");
  parser.toggle("list");
  bool json = false;
  if (!parser.parse(argc, argv, 1) || !parser.format(json)) return 2;
  if (parser.help()) return 0;
  if (parser.on("list")) {
    for (const auto& rule : kRuleCatalogue) {
      std::printf("%-24s %s\n", rule.name, rule.what);
    }
    return 0;
  }
  if (parser.positionals().empty()) {
    std::cerr << "usage: darnet_lint <repo_root> [--format=text|json] "
                 "[--out=PATH] [--list]\n";
    return 2;
  }
  const fs::path root = fs::path(parser.positionals().front());
  if (!fs::exists(root / "src")) {
    std::cerr << "darnet_lint: " << root.string()
              << " does not look like the repo root (no src/)\n";
    return 2;
  }

  Linter linter;
  linter.root = root;
  linter.run();

  // Text findings go to stderr unconditionally: the fixture harness and
  // CI grep that stream for the [rule] tags.
  std::cerr << render(linter.findings, /*json=*/false);
  if (json) std::cout << render(linter.findings, /*json=*/true);

  const std::string out_path = parser.get("out", "");
  if (!out_path.empty() && out_path != "-") {
    std::ofstream file(out_path, std::ios::binary);
    if (!file) {
      std::cerr << "darnet_lint: cannot write '" << out_path << "'\n";
      return 2;
    }
    file << render(linter.findings, json);
  }

  if (!linter.findings.empty()) {
    std::cerr << "darnet_lint: " << linter.findings.size()
              << " finding(s)\n";
    return 1;
  }
  if (!json) std::cout << "darnet_lint: clean\n";
  return 0;
}
