#include "tools/analyze/index.hpp"

#include <algorithm>

namespace darnet::analyze {
namespace {

bool is_control_keyword(std::string_view t) {
  static const std::set<std::string, std::less<>> kw = {
      "if",    "else",   "for",     "while",  "do",      "switch",
      "case",  "return", "break",   "continue", "goto",  "throw",
      "new",   "delete", "co_return", "co_await", "co_yield"};
  return kw.count(t) > 0;
}

bool is_decl_qualifier(std::string_view t) {
  static const std::set<std::string, std::less<>> kw = {
      "const",    "mutable",  "static", "constexpr", "constinit", "inline",
      "volatile", "unsigned", "signed", "struct",    "class",     "typename",
      "register", "thread_local", "extern"};
  return kw.count(t) > 0;
}

bool never_a_call(std::string_view t) {
  static const std::set<std::string, std::less<>> kw = {
      "if",     "for",    "while",  "switch",  "return", "sizeof",
      "alignof", "alignas", "catch", "new",     "delete", "throw",
      "static_assert", "decltype", "noexcept", "assert"};
  return kw.count(t) > 0;
}

}  // namespace

size_t match_forward(const std::vector<Token>& toks, size_t open,
                     std::string_view open_text, std::string_view close_text) {
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    if (is_punct(toks[j], open_text)) {
      ++depth;
    } else if (is_punct(toks[j], close_text)) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return toks.size();
}

namespace {

struct Indexer {
  Index& idx;
  FileIndex& fx;
  const std::vector<Token>& T;
  int file_id;

  const Token& tok(size_t j) const { return T[j]; }
  bool punct_at(size_t j, std::string_view p) const {
    return j < T.size() && is_punct(T[j], p);
  }
  bool ident_at(size_t j, std::string_view t) const {
    return j < T.size() && is_ident(T[j], t);
  }

  // --- statement-level skipping -------------------------------------------

  // Skip a `[[...]]` attribute at j; returns the index after it (or j).
  size_t skip_attributes(size_t j) const {
    while (punct_at(j, "[") && punct_at(j + 1, "[")) {
      size_t k = j + 2;
      int depth = 2;
      while (k < T.size() && depth > 0) {
        if (is_punct(T[k], "[")) ++depth;
        if (is_punct(T[k], "]")) --depth;
        ++k;
      }
      j = k;
    }
    return j;
  }

  // Skip a balanced `< ... >` starting at j (which must be '<').
  size_t skip_angles(size_t j) const {
    int depth = 0;
    while (j < T.size()) {
      if (is_punct(T[j], "<")) ++depth;
      if (is_punct(T[j], ">")) --depth;
      if (is_punct(T[j], ">>")) depth -= 2;
      ++j;
      if (depth <= 0) break;
    }
    return j;
  }

  // Advance past one declaration statement: to just after the next ';' at
  // depth 0, balancing parens/braces/brackets.
  size_t skip_statement(size_t j, size_t end) const {
    int depth = 0;
    while (j < end) {
      const Token& t = T[j];
      if (t.kind == Tok::kPunct) {
        if (t.text == "(" || t.text == "{" || t.text == "[") ++depth;
        if (t.text == ")" || t.text == "}" || t.text == "]") --depth;
        if (t.text == ";" && depth <= 0) return j + 1;
        if (depth < 0) return j;  // stray close: let the caller see it
      }
      ++j;
    }
    return j;
  }

  // --- function definition detection --------------------------------------

  struct DefMatch {
    std::string name;
    std::string klass_from_qual;  // from A::f pattern, "" if unqualified
    bool ctor_dtor = false;
    size_t paren = 0;      // '(' of the parameter list
    size_t body_open = 0;  // '{'
    size_t chain_begin = 0;  // first token of the name chain
  };

  // Try to match a function definition starting at `st`. On success returns
  // true and fills `m`; the caller resumes after the body.
  bool detect_function(size_t st, size_t end, DefMatch& m) const {
    size_t j = skip_attributes(st);
    if (ident_at(j, "template") && punct_at(j + 1, "<")) {
      j = skip_angles(j + 1);
      j = skip_attributes(j);
    }
    // Scan for the parameter-list '(' — an ident followed by '(' — without
    // crossing tokens that can't precede a function name.
    size_t p = T.size();
    size_t k = j;
    while (k < end) {
      const Token& t = T[k];
      if (t.kind == Tok::kString || t.kind == Tok::kNumber ||
          t.kind == Tok::kChar)
        return false;
      if (t.kind == Tok::kPunct) {
        if (t.text == ";" || t.text == "=" || t.text == "{" || t.text == "}")
          return false;
        if (t.text == "[") {
          size_t k2 = skip_attributes(k);
          if (k2 == k) return false;  // array declarator: not a function
          k = k2;
          continue;
        }
        if (t.text == "<" && k > st && !ident_at(k - 1, "operator")) {
          // Template-argument list inside the return type.
          k = skip_angles(k);
          continue;
        }
        if (t.text == "(") {
          // Candidate only if preceded by an identifier (or operator chain).
          if (k > st && (T[k - 1].kind == Tok::kIdent ||
                         (T[k - 1].kind == Tok::kPunct && has_operator(k)))) {
            p = k;
            break;
          }
          return false;
        }
      }
      ++k;
    }
    if (p >= end) return false;
    size_t close = match_forward(T, p, "(", ")");
    if (close >= end) return false;

    // Trailer: const/noexcept/ref-qualifiers/override/trailing-return, then
    // either '{' (definition), or anything else (declaration).
    size_t q = close + 1;
    while (q < end) {
      const Token& t = T[q];
      if (t.kind == Tok::kIdent) {
        if (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
            t.text == "final" || t.text == "mutable" || t.text == "try") {
          ++q;
          continue;
        }
        return false;  // e.g. a variable name: `int x = f() ...`
      }
      if (t.kind != Tok::kPunct) return false;
      if (t.text == "&" || t.text == "&&") {
        ++q;
        continue;
      }
      if (t.text == "(") {  // noexcept(...)
        q = match_forward(T, q, "(", ")") + 1;
        continue;
      }
      if (t.text == "[") {
        size_t q2 = skip_attributes(q);
        if (q2 == q) return false;
        q = q2;
        continue;
      }
      if (t.text == "->") {  // trailing return type
        ++q;
        while (q < end) {
          const Token& u = T[q];
          if (u.kind == Tok::kIdent || is_punct(u, "::") || is_punct(u, "<") ||
              is_punct(u, ">") || is_punct(u, ">>") || is_punct(u, "*") ||
              is_punct(u, "&") || is_punct(u, ",")) {
            ++q;
            continue;
          }
          break;
        }
        continue;
      }
      if (t.text == ":") {  // ctor-init list: consume until the body '{'
        ++q;
        int depth = 0;
        while (q < end) {
          const Token& u = T[q];
          if (u.kind == Tok::kPunct) {
            if (u.text == "(" || u.text == "[") ++depth;
            if (u.text == ")" || u.text == "]") --depth;
            if (u.text == "{") {
              // A '{' nested inside an initializer's parens is a lambda body
              // or braced argument, never the function body — skip it whole.
              if (depth > 0) {
                q = match_forward(T, q, "{", "}") + 1;
                continue;
              }
              // Brace-init of a member is preceded by an ident or '>'; the
              // body brace follows ')' or '}' of the last initializer.
              if (q > 0 &&
                  (T[q - 1].kind == Tok::kIdent || is_punct(T[q - 1], ">"))) {
                q = match_forward(T, q, "{", "}") + 1;
                continue;
              }
              break;  // the body
            }
            if (u.text == ";") return false;
          }
          ++q;
        }
        continue;
      }
      if (t.text == "{") break;  // the body
      return false;  // ';', '=', ',', ...: a declaration, not a definition
    }
    if (q >= end || !punct_at(q, "{")) return false;

    // Walk the name chain back from '('.
    size_t nk = p - 1;
    std::string name;
    if (T[nk].kind == Tok::kPunct) {
      std::string ops;
      size_t ok = nk;
      while (ok > st && T[ok].kind == Tok::kPunct && T[ok].text != "::") {
        ops = T[ok].text + ops;
        --ok;
      }
      if (!ident_at(ok, "operator")) return false;
      name = "operator" + ops;
      nk = ok;
    } else {
      name = T[nk].text;
      if (nk > st && ident_at(nk - 1, "operator")) {
        // conversion operator (`operator bool`): keep the type as the name.
        nk = nk - 1;
      }
    }
    m.name = name;
    m.ctor_dtor = false;
    m.chain_begin = nk;
    // `~Name` destructor?
    if (nk > st && punct_at(nk - 1, "~")) {
      m.ctor_dtor = true;
      --nk;
      m.chain_begin = nk;
    }
    // Qualifier chain `A::B::name`.
    std::vector<std::string> quals;
    while (nk >= st + 2 && punct_at(nk - 1, "::") &&
           T[nk - 2].kind == Tok::kIdent) {
      quals.push_back(T[nk - 2].text);
      nk -= 2;
      m.chain_begin = nk;
    }
    if (!quals.empty()) {
      m.klass_from_qual = quals.front();  // innermost qualifier
      if (m.name == m.klass_from_qual) m.ctor_dtor = true;
    }
    m.paren = p;
    m.body_open = q;
    return true;
  }

  bool has_operator(size_t paren) const {
    size_t k = paren - 1;
    while (k > 0 && T[k].kind == Tok::kPunct && T[k].text != "::") --k;
    return ident_at(k, "operator");
  }

  // --- member / declaration extraction -------------------------------------

  void record_free_mutex(size_t st, size_t semi, const std::string& enclosing) {
    for (size_t j = st; j + 4 < semi; ++j) {
      if (is_ident(T[j], "sync") && punct_at(j + 1, "::") &&
          ident_at(j + 2, "Mutex") && j + 3 < semi &&
          T[j + 3].kind == Tok::kIdent) {
        std::string var = T[j + 3].text;
        std::string literal;
        if ((punct_at(j + 4, "{") || punct_at(j + 4, "(")) && j + 5 < semi &&
            T[j + 5].kind == Tok::kString) {
          literal = T[j + 5].text;
        }
        idx.free_mutexes.push_back(
            FreeMutex{var, literal, enclosing, fx.lex.path, T[j].line});
        return;
      }
    }
  }

  // Namespace-scope variable declaration: `<type-run> name (= | { | ;)`.
  // Same shape heuristic as function-local declarations.
  void record_global_types(size_t st, size_t semi) {
    if (st >= semi) return;
    size_t stop = semi;
    for (size_t j = st; j < semi; ++j) {
      if (is_punct(T[j], "=") || is_punct(T[j], "{") || is_punct(T[j], "(")) {
        stop = j;
        break;
      }
    }
    if (stop == st) return;
    size_t name_pos = stop;
    while (name_pos-- > st) {
      if (T[name_pos].kind == Tok::kIdent &&
          !is_decl_qualifier(T[name_pos].text))
        break;
    }
    if (name_pos <= st || T[name_pos].kind != Tok::kIdent) return;
    std::vector<std::string> types;
    for (size_t k = st; k < name_pos; ++k) {
      if (T[k].kind == Tok::kIdent && !is_decl_qualifier(T[k].text)) {
        if (is_control_keyword(T[k].text)) return;
        types.push_back(T[k].text);
      }
    }
    if (types.empty()) return;
    auto& slot = idx.global_types[T[name_pos].text];
    if (slot.empty()) slot = std::move(types);
  }

  void extract_member(size_t st, size_t semi, ClassInfo& cls) {
    if (st >= semi) return;
    if (T[st].kind == Tok::kIdent &&
        (T[st].text == "using" || T[st].text == "typedef" ||
         T[st].text == "friend" || T[st].text == "static_assert" ||
         T[st].text == "template"))
      return;

    // sync::Mutex member with optional compile-time name literal.
    for (size_t j = st; j + 3 < semi; ++j) {
      if (is_ident(T[j], "sync") && punct_at(j + 1, "::") &&
          ident_at(j + 2, "Mutex") && T[j + 3].kind == Tok::kIdent) {
        std::string member = T[j + 3].text;
        std::string literal;
        if (j + 5 < semi && (punct_at(j + 4, "{") || punct_at(j + 4, "(")) &&
            T[j + 5].kind == Tok::kString) {
          literal = T[j + 5].text;
        }
        auto& slot = cls.mutex_names[member];
        if (slot.empty()) slot = literal;
        break;
      }
    }

    // DARNET_GUARDED_BY(guard) — guard the last identifier before the macro.
    size_t guard_at = semi;
    for (size_t j = st; j < semi; ++j) {
      if (is_ident(T[j], "DARNET_GUARDED_BY")) {
        guard_at = j;
        break;
      }
    }
    std::string member_name;
    {
      // Name = last identifier before the first of '=', '{', the guard macro,
      // or the end of the statement.
      size_t stop = semi;
      for (size_t j = st; j < semi; ++j) {
        if (is_punct(T[j], "=") || is_punct(T[j], "{")) {
          stop = j;
          break;
        }
        if (j == guard_at) {
          stop = j;
          break;
        }
      }
      for (size_t j = stop; j-- > st;) {
        if (T[j].kind == Tok::kIdent && !is_decl_qualifier(T[j].text)) {
          member_name = T[j].text;
          // Member types: idents before the name, unless this looks like a
          // function declaration ('(' before the name at any nesting).
          bool has_paren = false;
          std::vector<std::string> types;
          for (size_t k = st; k < j; ++k) {
            if (is_punct(T[k], "(")) has_paren = true;
            if (T[k].kind == Tok::kIdent && !is_decl_qualifier(T[k].text))
              types.push_back(T[k].text);
          }
          if (!has_paren && !types.empty() && !cls.member_types.count(member_name))
            cls.member_types[member_name] = std::move(types);
          break;
        }
      }
    }
    if (guard_at < semi && !member_name.empty()) {
      size_t open = guard_at + 1;
      if (punct_at(open, "(")) {
        size_t close = match_forward(T, open, "(", ")");
        std::string guard;
        for (size_t j = open + 1; j < close && j < semi; ++j) {
          if (T[j].kind == Tok::kIdent) guard = T[j].text;
        }
        if (!guard.empty()) cls.guards[member_name] = guard;
      }
    }
  }

  // --- function body scan ---------------------------------------------------

  void scan_body(FunctionInfo& F) {
    size_t b = F.body_begin;
    size_t e = F.body_end;
    std::vector<size_t> brace_stack;  // open '{' indices, innermost last
    brace_stack.push_back(b);
    // Paren owners for failure-path suppression of alloc sites.
    std::vector<std::string> paren_owners;

    for (size_t j = b + 1; j < e; ++j) {
      const Token& t = T[j];
      if (t.kind == Tok::kPunct) {
        if (t.text == "{") brace_stack.push_back(j);
        if (t.text == "}" && brace_stack.size() > 1) brace_stack.pop_back();
        if (t.text == "(") {
          paren_owners.push_back(
              j > 0 && T[j - 1].kind == Tok::kIdent ? T[j - 1].text : "");
        }
        if (t.text == ")" && !paren_owners.empty()) paren_owners.pop_back();
        continue;
      }
      if (t.kind != Tok::kIdent) continue;

      // sync::Lock / sync::UniqueLock acquisition.
      if (t.text == "sync" && punct_at(j + 1, "::") &&
          (ident_at(j + 2, "Lock") || ident_at(j + 2, "UniqueLock")) &&
          j + 3 < e && T[j + 3].kind == Tok::kIdent &&
          (punct_at(j + 4, "(") || punct_at(j + 4, "{"))) {
        std::string var = T[j + 3].text;
        const char* open = is_punct(T[j + 4], "(") ? "(" : "{";
        const char* close = *open == '(' ? ")" : "}";
        size_t expr_end = match_forward(T, j + 4, open, close);
        LockSite site;
        site.tok = j;
        site.line = t.line;
        site.via_call = false;
        site.var = var;
        for (size_t k = j + 5; k < expr_end; ++k) {
          if (T[k].kind == Tok::kIdent) site.mutex_expr_last = T[k].text;
          if (is_punct(T[k], "(")) site.via_call = true;
          if ((is_punct(T[k], ".") || is_punct(T[k], "->")) &&
              site.receiver.empty() && k > j + 5 &&
              T[k - 1].kind == Tok::kIdent) {
            site.receiver = T[j + 5].kind == Tok::kIdent ? T[j + 5].text : "";
          }
        }
        size_t scope_open = brace_stack.back();
        site.scope_end = match_forward(T, scope_open, "{", "}");
        if (site.scope_end > e) site.scope_end = e;
        // Early release via var.unlock() shortens the scope.
        for (size_t k = expr_end; k < site.scope_end; ++k) {
          if (is_ident(T[k], var) && punct_at(k + 1, ".") &&
              ident_at(k + 2, "unlock")) {
            site.scope_end = k;
            break;
          }
        }
        if (!site.mutex_expr_last.empty()) F.locks.push_back(std::move(site));
        j = expr_end;
        continue;
      }

      // DARNET_ASSERT_HELD / DARNET_ASSERT_NOT_HELD.
      if ((t.text == "DARNET_ASSERT_HELD" ||
           t.text == "DARNET_ASSERT_NOT_HELD") &&
          punct_at(j + 1, "(")) {
        size_t close = match_forward(T, j + 1, "(", ")");
        AssertHeldSite a;
        a.not_held = t.text == "DARNET_ASSERT_NOT_HELD";
        a.tok = j;
        for (size_t k = j + 2; k < close; ++k) {
          if (T[k].kind == Tok::kIdent) a.mutex_expr_last = T[k].text;
          if ((is_punct(T[k], ".") || is_punct(T[k], "->")) &&
              a.receiver.empty() && T[j + 2].kind == Tok::kIdent) {
            a.receiver = T[j + 2].text;
          }
        }
        if (!a.mutex_expr_last.empty()) F.asserts.push_back(std::move(a));
        j = close;
        continue;
      }

      // Function-local static named mutex (mutex factories).
      if (t.text == "sync" && punct_at(j + 1, "::") && ident_at(j + 2, "Mutex") &&
          j + 3 < e && T[j + 3].kind == Tok::kIdent) {
        record_free_mutex(j, std::min(e, j + 8), F.name);
      }

      // Allocation sites.
      auto suppressed = [&]() {
        for (const auto& owner : paren_owners) {
          if (owner.rfind("DARNET_CHECK", 0) == 0 || owner == "DARNET_ASSERT" ||
              owner.rfind("DARNET_ASSERT_", 0) == 0)
            return true;
        }
        // Failure path: a `throw` earlier in this statement.
        for (size_t k = j; k-- > b;) {
          if (T[k].kind == Tok::kPunct &&
              (T[k].text == ";" || T[k].text == "{" || T[k].text == "}"))
            break;
          if (is_ident(T[k], "throw")) return true;
        }
        return false;
      };
      if (t.text == "new" && !(j > 0 && ident_at(j - 1, "operator")) &&
          !punct_at(j + 1, "(")) {  // skip `operator new` and placement forms
        if (!suppressed())
          F.allocs.push_back(AllocSite{"new expression", j, t.line});
      }
      if (t.text == "std" && punct_at(j + 1, "::")) {
        if (ident_at(j + 2, "vector") && punct_at(j + 3, "<") &&
            (ident_at(j + 4, "float") || ident_at(j + 4, "double"))) {
          if (!suppressed())
            F.allocs.push_back(AllocSite{
                "std::vector<" + T[j + 4].text + "> construction", j, t.line});
        } else if (ident_at(j + 2, "string") && j + 3 < e &&
                   (T[j + 3].kind == Tok::kIdent || punct_at(j + 3, "(") ||
                    punct_at(j + 3, "{"))) {
          if (!suppressed())
            F.allocs.push_back(AllocSite{"std::string construction", j, t.line});
        } else if (ident_at(j + 2, "to_string")) {
          if (!suppressed())
            F.allocs.push_back(AllocSite{"std::to_string", j, t.line});
        } else if (ident_at(j + 2, "make_unique") ||
                   ident_at(j + 2, "make_shared")) {
          if (!suppressed())
            F.allocs.push_back(
                AllocSite{"std::" + T[j + 2].text, j, t.line});
        }
      }

      // Call sites.
      if (punct_at(j + 1, "(") && !never_a_call(t.text)) {
        CallSite c;
        c.callee = t.text;
        c.tok = j;
        c.line = t.line;
        if (j >= 2 && punct_at(j - 1, "::") && T[j - 2].kind == Tok::kIdent)
          c.qual = T[j - 2].text;
        if (j >= 1 && punct_at(j - 1, "::") &&
            (j < 2 || T[j - 2].kind != Tok::kIdent))
          c.global_qual = true;
        if (j >= 1 && (punct_at(j - 1, ".") || punct_at(j - 1, "->")))
          c.method_like = true;
        if (j >= 2 && (punct_at(j - 1, ".") || punct_at(j - 1, "->")) &&
            T[j - 2].kind == Tok::kIdent) {
          c.receiver = T[j - 2].text;
          if (j >= 4 && (punct_at(j - 3, ".") || punct_at(j - 3, "->")) &&
              T[j - 4].kind == Tok::kIdent)
            c.receiver_owner = T[j - 4].text;
        }
        F.calls.push_back(std::move(c));
      }

      // Simple local declarations: `<type-run> name (= | ; | ( | {)`.
      if (j + 1 < e &&
          (punct_at(j + 1, "=") || punct_at(j + 1, ";") ||
           punct_at(j + 1, "(") || punct_at(j + 1, "{")) &&
          !F.local_types.count(t.text)) {
        std::vector<std::string> types;
        bool ok = true;
        size_t k = j;
        while (k-- > b) {
          const Token& u = T[k];
          if (u.kind == Tok::kIdent) {
            if (is_control_keyword(u.text)) {
              ok = false;
              break;
            }
            if (!is_decl_qualifier(u.text)) types.push_back(u.text);
            continue;
          }
          if (u.kind == Tok::kPunct &&
              (u.text == "::" || u.text == "<" || u.text == ">" ||
               u.text == ">>" || u.text == "*" || u.text == "&" ||
               u.text == "&&" || u.text == ",")) {
            continue;
          }
          // Run boundary: must be a statement boundary to count as a decl.
          ok = (u.kind == Tok::kPunct &&
                (u.text == ";" || u.text == "{" || u.text == "}"));
          break;
        }
        if (ok && !types.empty()) {
          std::reverse(types.begin(), types.end());
          F.local_types[t.text] = std::move(types);
        }
      }
    }
  }

  void record_params(FunctionInfo& F, size_t paren) {
    size_t close = match_forward(T, paren, "(", ")");
    size_t start = paren + 1;
    int depth = 0;
    auto flush = [&](size_t from, size_t to) {
      std::vector<std::string> idents;
      for (size_t k = from; k < to; ++k) {
        if (T[k].kind == Tok::kIdent && !is_decl_qualifier(T[k].text))
          idents.push_back(T[k].text);
        if (is_punct(T[k], "=")) break;  // default argument
      }
      if (idents.size() >= 2) {
        std::string name = idents.back();
        idents.pop_back();
        F.local_types[name] = std::move(idents);
      }
    };
    for (size_t k = paren + 1; k < close; ++k) {
      if (T[k].kind == Tok::kPunct) {
        if (T[k].text == "(" || T[k].text == "<" || T[k].text == "[" ||
            T[k].text == "{")
          ++depth;
        if (T[k].text == ")" || T[k].text == ">" || T[k].text == "]" ||
            T[k].text == "}")
          --depth;
        if (T[k].text == ">>") depth -= 2;
        if (T[k].text == "," && depth == 0) {
          flush(start, k);
          start = k + 1;
        }
      }
    }
    if (start < close) flush(start, close);
  }

  // --- scope walk -----------------------------------------------------------

  // Parse declarations in [i, end). `cls` non-empty inside a class body.
  void parse_scope(size_t i, size_t end, const std::string& cls) {
    ClassInfo* cinfo = nullptr;
    if (!cls.empty()) {
      auto& c = idx.classes[cls];
      if (c.name.empty()) {
        c.name = cls;
        c.file = fx.lex.path;
      }
      cinfo = &c;
    }
    while (i < end) {
      const Token& t = T[i];
      if (t.kind == Tok::kPunct) {
        if (t.text == ";") {
          ++i;
          continue;
        }
        if (t.text == "}") {
          ++i;
          continue;  // tolerated: stray close (unbalanced input)
        }
        if (t.text == "[") {
          size_t i2 = skip_attributes(i);
          if (i2 != i) {
            i = i2;
            continue;
          }
        }
        // Anything else punct-initial at scope level: skip a statement.
        size_t next = skip_statement(i, end);
        i = next > i ? next : i + 1;  // always make progress
        continue;
      }
      if (t.kind != Tok::kIdent) {
        i = skip_statement(i, end);
        continue;
      }
      // Access specifiers inside a class.
      if (cinfo && (t.text == "public" || t.text == "private" ||
                    t.text == "protected") &&
          punct_at(i + 1, ":")) {
        i += 2;
        continue;
      }
      if (t.text == "namespace") {
        size_t j = i + 1;
        while (j < end &&
               (T[j].kind == Tok::kIdent || is_punct(T[j], "::")))
          ++j;
        if (punct_at(j, "{")) {
          size_t close = match_forward(T, j, "{", "}");
          parse_scope(j + 1, std::min(close, end), "");
          i = close + 1;
        } else {
          i = skip_statement(i, end);
        }
        continue;
      }
      if (t.text == "using" || t.text == "typedef" ||
          t.text == "static_assert") {
        if (!cinfo) {
          i = skip_statement(i, end);
          continue;
        }
        // fallthrough for class scope: extract_member ignores these anyway
      }
      if (t.text == "enum") {
        i = skip_statement(i, end);
        continue;
      }
      if ((t.text == "class" || t.text == "struct" || t.text == "union") &&
          !(i > 0 && (is_punct(T[i - 1], "<") || is_punct(T[i - 1], ",")))) {
        // Find the head: up to '{' (definition) or ';' (fwd decl) at depth 0.
        size_t j = i + 1;
        int depth = 0;
        size_t body = end, semi = end, colon = end;
        while (j < end) {
          const Token& u = T[j];
          if (u.kind == Tok::kPunct) {
            if (u.text == "(" || u.text == "<" || u.text == "[") ++depth;
            if (u.text == ")" || u.text == ">" || u.text == "]") --depth;
            if (depth == 0 && u.text == ":" && colon == end) colon = j;
            if (depth == 0 && u.text == "{") {
              body = j;
              break;
            }
            if (depth == 0 && (u.text == ";" || u.text == "=")) {
              semi = j;
              break;
            }
          }
          ++j;
        }
        if (body == end) {
          i = (semi == end) ? end : semi + 1;
          continue;
        }
        // Class name: last plain ident before the base-clause ':' (or '{').
        size_t stop = std::min(colon, body);
        std::string name;
        for (size_t k = stop; k-- > i + 1;) {
          if (T[k].kind == Tok::kIdent && T[k].text != "final" &&
              T[k].text != "alignas") {
            name = T[k].text;
            break;
          }
        }
        size_t close = match_forward(T, body, "{", "}");
        if (!name.empty()) {
          parse_scope(body + 1, std::min(close, end), name);
        }
        i = close + 1;
        continue;
      }
      if (t.text == "extern" && i + 1 < end &&
          T[i + 1].kind == Tok::kString && punct_at(i + 2, "{")) {
        size_t close = match_forward(T, i + 2, "{", "}");
        parse_scope(i + 3, std::min(close, end), cls);
        i = close + 1;
        continue;
      }

      DefMatch m;
      if (detect_function(i, end, m)) {
        FunctionInfo F;
        F.name = m.name;
        F.klass = !cls.empty() ? cls : m.klass_from_qual;
        F.ctor_dtor = m.ctor_dtor || (!cls.empty() && m.name == cls);
        F.file = fx.lex.path;
        F.file_id = file_id;
        F.line = T[m.chain_begin].line;
        F.body_begin = m.body_open;
        F.body_end = match_forward(T, m.body_open, "{", "}");
        for (size_t k = i; k < m.chain_begin; ++k) {
          if (T[k].kind == Tok::kIdent) F.return_type.push_back(T[k].text);
        }
        record_params(F, m.paren);
        scan_body(F);
        size_t resume = F.body_end + 1;
        fx.functions.push_back(std::move(F));
        i = resume;
        continue;
      }

      // Plain declaration statement.
      size_t next = skip_statement(i, end);
      if (cinfo) {
        extract_member(i, next > i ? next - 1 : i, *cinfo);
      } else {
        record_free_mutex(i, next, "");
        record_global_types(i, next > i ? next - 1 : i);
      }
      i = next > i ? next : i + 1;  // always make progress
    }
  }
};

}  // namespace

void index_file(Index& idx, LexedFile lexed) {
  int file_id = static_cast<int>(idx.files.size());
  idx.files.push_back(FileIndex{std::move(lexed), {}});
  FileIndex& fx = idx.files.back();
  Indexer ix{idx, fx, fx.lex.tokens, file_id};
  ix.parse_scope(0, fx.lex.tokens.size(), "");
  for (size_t f = 0; f < fx.functions.size(); ++f) {
    idx.by_name[fx.functions[f].name].push_back(
        {file_id, static_cast<int>(f)});
  }
}

}  // namespace darnet::analyze
