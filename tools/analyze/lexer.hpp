// darnet_analyze lexer: a dependency-free C++ tokenizer that is aware of
// comments, string/char literals (including raw strings and encoding
// prefixes), line continuations, and preprocessor directives.
//
// The lexer is deliberately simpler than a real C++ front end:
//  - Preprocessor directives are recorded out-of-band (Directive list) and do
//    not appear in the token stream.
//  - `#if 0` regions are skipped entirely; every other conditional branch is
//    included (an over-approximation: downstream passes must tolerate seeing
//    both sides of `#if DARNET_CHECKED` style blocks).
//  - Tokens carry no semantic classification beyond the five coarse kinds;
//    keyword/identifier distinctions are made by the consumer.
//
// This is the single tokenizer shared by darnet_analyze and darnet_lint so
// that "does this rule match inside a comment or string literal" has exactly
// one answer in the repo.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace darnet::analyze {

enum class Tok {
  kIdent,   // identifiers and keywords, including macro names
  kNumber,  // integer / floating literals (pp-number)
  kString,  // string literal; text holds the *contents* (no quotes/prefix)
  kChar,    // character literal; text holds the contents
  kPunct,   // operators and punctuation, maximal-munch (e.g. "::", "->")
};

struct Token {
  Tok kind;
  std::string text;
  int line;  // 1-based line of the first character
};

// A preprocessor directive, recorded out-of-band. `name` is the directive
// keyword ("include", "if", "define", ...); `rest` is the remainder of the
// logical line with line splices folded and trailing comments stripped.
struct Directive {
  std::string name;
  std::string rest;
  int line;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  std::vector<std::string> includes;  // targets of #include, quotes/brackets stripped
};

// Lex `source` into tokens. Never throws on malformed input: unterminated
// literals/comments are closed at end-of-file.
LexedFile lex(std::string_view source, std::string path);

// True if `t` is an identifier token with exactly this text.
inline bool is_ident(const Token& t, std::string_view text) {
  return t.kind == Tok::kIdent && t.text == text;
}
// True if `t` is a punctuation token with exactly this text.
inline bool is_punct(const Token& t, std::string_view text) {
  return t.kind == Tok::kPunct && t.text == text;
}

}  // namespace darnet::analyze
