// darnet_analyze semantic rules over the symbol index.
//
// Rule catalogue (names are stable; fixture dirs and baseline entries key on
// them — see docs/STATIC_ANALYSIS.md):
//   lock-order                static mutex acquisition-order extraction;
//                             flags cycles, edges against the documented
//                             hierarchy, and edges out of declared leaves.
//   guarded-by                access to a DARNET_GUARDED_BY(mu) member with
//                             no live sync::Lock on mu and no dominating
//                             DARNET_ASSERT_HELD(mu).
//   hot-path-alloc-transitive call-graph reachability from the inference hot
//                             path roots to an allocating construct not in
//                             the exemption registry.
//   unchecked-status          a call to an in-tree Admit/Status-returning
//                             function used as a bare discarded statement.
//   blocking-under-lock       interprocedural: a call that may block (CondVar
//                             wait, socket send/recv/accept, future::get,
//                             sleep, thread join) is reachable while a
//                             sync::Lock/UniqueLock scope is live. route/*
//                             mutexes are block-free tier (no exemptions).
//   time-source-purity        a direct std::chrono::{steady,system}_clock
//                             ::now() read outside the whitelisted seams
//                             (serve::TimeSource impls, obs epoch, Stopwatch,
//                             checked-build sync watchdogs).
//   unchecked-posix-io        ssize_t/fd return of ::send/::recv/::accept/
//                             ::close discarded as a bare statement in
//                             src/http.
//   stale-baseline            (from report.cpp) suppression matching nothing.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyze/index.hpp"
#include "tools/analyze/report.hpp"

namespace darnet::analyze {

// (file_id, function index) — identifies a FunctionInfo in an Index.
using FnId = std::pair<int, int>;

// Interprocedural effects of one function, computed as a fixpoint over the
// strictly-resolved call graph: a function has an effect if it performs the
// primitive directly or any strictly-resolved callee has the effect.
struct Effects {
  bool may_block = false;    // may wait on a CV/socket/future/sleep/join
  bool reads_clock = false;  // reads std::chrono::{steady,system}_clock::now()
  // Witness chains from this function down to the primitive. The last element
  // describes the primitive itself ("::recv at src/http/http.cpp:204"); the
  // preceding elements are the callee symbols on the path.
  std::vector<std::string> block_path;
  std::vector<std::string> clock_path;
};

// Compute effects for every indexed function (exposed for unit tests and the
// --dump-effects debug artefact).
std::map<FnId, Effects> compute_effects(const Index& idx);

// One edge of the static lock-order graph: while holding `from`, `to` was
// (possibly transitively, through calls) acquired.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;  // site of the inner acquisition or the mediating call
  int line = 0;
  std::string via;   // function whose body holds the outer lock
};

struct AnalysisOptions {
  // Directories under the root to lex+index (repo-relative).
  std::vector<std::string> index_dirs = {"src", "tools", "examples"};
  // Path prefixes to skip entirely (deliberately-broken fixture trees).
  std::vector<std::string> skip_prefixes = {"tests/lint_fixtures/",
                                            "tests/analyze_fixtures/"};
  // Semantic rules run only on files under these prefixes. Tests and bench
  // stay out of scope: test_sync contains deliberate lock inversions (death
  // tests) and gtest macros defeat the approximate parser.
  std::vector<std::string> rule_prefixes = {"src/"};
  // unchecked-status additionally covers examples/ (the public API surface).
  std::vector<std::string> status_rule_prefixes = {"src/", "examples/"};
  // unchecked-posix-io runs only where raw POSIX sockets/fds live.
  std::vector<std::string> posix_io_prefixes = {"src/http/"};
};

// One function's computed effects, flattened for --dump-effects and tests.
struct EffectEntry {
  std::string symbol;  // "Class::function" or "function"
  std::string file;
  int line = 0;
  bool may_block = false;
  bool reads_clock = false;
  std::vector<std::string> block_path;
  std::vector<std::string> clock_path;
};

struct AnalysisResult {
  std::vector<Finding> findings;
  std::vector<LockEdge> lock_edges;  // full static lock-order graph
  std::vector<EffectEntry> effects;  // every function with a non-empty effect
  int files_indexed = 0;
  int functions_indexed = 0;
};

// Lex + index + run every rule over the repo at `root`.
AnalysisResult analyze_tree(const std::filesystem::path& root,
                            const AnalysisOptions& opts = {});

// Individual rule entry points (exposed for tests).
void rule_lock_order(const Index& idx, const AnalysisOptions& opts,
                     std::vector<LockEdge>& edges,
                     std::vector<Finding>& findings);
void rule_guarded_by(const Index& idx, const AnalysisOptions& opts,
                     std::vector<Finding>& findings);
void rule_hot_path_alloc(const Index& idx, const AnalysisOptions& opts,
                         std::vector<Finding>& findings);
void rule_unchecked_status(const Index& idx, const AnalysisOptions& opts,
                           std::vector<Finding>& findings);
void rule_blocking_under_lock(const Index& idx, const AnalysisOptions& opts,
                              const std::map<FnId, Effects>& effects,
                              std::vector<Finding>& findings);
void rule_time_source_purity(const Index& idx, const AnalysisOptions& opts,
                             std::vector<Finding>& findings);
void rule_unchecked_posix_io(const Index& idx, const AnalysisOptions& opts,
                             std::vector<Finding>& findings);

}  // namespace darnet::analyze
