// darnet_analyze semantic rules over the symbol index.
//
// Rule catalogue (names are stable; fixture dirs and baseline entries key on
// them — see docs/STATIC_ANALYSIS.md):
//   lock-order                static mutex acquisition-order extraction;
//                             flags cycles, edges against the documented
//                             hierarchy, and edges out of declared leaves.
//   guarded-by                access to a DARNET_GUARDED_BY(mu) member with
//                             no live sync::Lock on mu and no dominating
//                             DARNET_ASSERT_HELD(mu).
//   hot-path-alloc-transitive call-graph reachability from the inference hot
//                             path roots to an allocating construct not in
//                             the exemption registry.
//   unchecked-status          a call to an in-tree Admit/Status-returning
//                             function used as a bare discarded statement.
//   stale-baseline            (from report.cpp) suppression matching nothing.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "tools/analyze/index.hpp"
#include "tools/analyze/report.hpp"

namespace darnet::analyze {

// One edge of the static lock-order graph: while holding `from`, `to` was
// (possibly transitively, through calls) acquired.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;  // site of the inner acquisition or the mediating call
  int line = 0;
  std::string via;   // function whose body holds the outer lock
};

struct AnalysisOptions {
  // Directories under the root to lex+index (repo-relative).
  std::vector<std::string> index_dirs = {"src", "tools", "examples"};
  // Path prefixes to skip entirely (deliberately-broken fixture trees).
  std::vector<std::string> skip_prefixes = {"tests/lint_fixtures/",
                                            "tests/analyze_fixtures/"};
  // Semantic rules run only on files under these prefixes. Tests and bench
  // stay out of scope: test_sync contains deliberate lock inversions (death
  // tests) and gtest macros defeat the approximate parser.
  std::vector<std::string> rule_prefixes = {"src/"};
  // unchecked-status additionally covers examples/ (the public API surface).
  std::vector<std::string> status_rule_prefixes = {"src/", "examples/"};
};

struct AnalysisResult {
  std::vector<Finding> findings;
  std::vector<LockEdge> lock_edges;  // full static lock-order graph
  int files_indexed = 0;
  int functions_indexed = 0;
};

// Lex + index + run every rule over the repo at `root`.
AnalysisResult analyze_tree(const std::filesystem::path& root,
                            const AnalysisOptions& opts = {});

// Individual rule entry points (exposed for tests).
void rule_lock_order(const Index& idx, const AnalysisOptions& opts,
                     std::vector<LockEdge>& edges,
                     std::vector<Finding>& findings);
void rule_guarded_by(const Index& idx, const AnalysisOptions& opts,
                     std::vector<Finding>& findings);
void rule_hot_path_alloc(const Index& idx, const AnalysisOptions& opts,
                         std::vector<Finding>& findings);
void rule_unchecked_status(const Index& idx, const AnalysisOptions& opts,
                           std::vector<Finding>& findings);

}  // namespace darnet::analyze
