// darnet_analyze symbol index: a per-TU, cross-file-mergeable model of the
// repo extracted from the token stream. Approximate by design — it resolves
// names, not types — but precise enough for the semantic rules:
//
//  - classes (including out-of-line nested definitions `struct A::B { ... }`)
//    with their sync::Mutex members (and the compile-time name literal from
//    `sync::Mutex mu_{"serve/admission"};`), DARNET_GUARDED_BY members, and
//    the declared types of data members (for receiver resolution);
//  - function definitions with body token ranges, lock-acquisition sites
//    (sync::Lock / sync::UniqueLock) with their lexical scope extents,
//    DARNET_ASSERT_HELD sites, call sites (with receiver + qualifier),
//    allocation sites, and local/parameter declared types;
//  - namespace-scope and function-local-static named mutexes (e.g. the
//    `static sync::Mutex mu{"obs/trace"};` inside a mutex-factory function).
//
// Everything is keyed by unqualified names; consumers decide how strictly to
// resolve (see rules.cpp).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/lexer.hpp"

namespace darnet::analyze {

// A sync::Lock / sync::UniqueLock acquisition site inside a function body.
struct LockSite {
  std::string mutex_expr_last;  // last identifier of the mutex expression
  std::string receiver;         // first identifier if expr is x.m / p->m, else ""
  std::string var;              // guard variable name, e.g. `lock`
  bool via_call;                // mutex expression is a call, e.g. trace_mu()
  size_t tok;                   // token index of the `sync` keyword
  size_t scope_end;             // token index of the closing '}' of the scope
                                // (or of `var.unlock()` if earlier)
  int line;
};

struct AssertHeldSite {
  std::string mutex_expr_last;
  std::string receiver;
  bool not_held;  // DARNET_ASSERT_NOT_HELD
  size_t tok;
};

struct CallSite {
  std::string callee;    // unqualified name
  std::string qual;      // immediately-preceding qualifier ident, "" if none
  std::string receiver;  // x in x.f() / p->f(), "" if none
  std::string receiver_owner;  // r in r.x.f() / r->x.f(), "" if not chained
  bool global_qual = false;    // `::f()` with no qualifier ident (POSIX call)
  bool method_like = false;    // preceded by '.'/'->'; receiver may still be
                               // "" when it is an expression (`a.b().f()`)
  size_t tok;            // token index of the callee identifier
  int line;
};

struct AllocSite {
  std::string what;  // human label, e.g. "new expression", "std::string"
  size_t tok;
  int line;
};

struct FunctionInfo {
  std::string name;   // unqualified
  std::string klass;  // owning class name, "" for free functions
  std::string file;
  int line = 0;
  int file_id = -1;  // index into Index::files
  bool ctor_dtor = false;
  size_t body_begin = 0;  // token index of '{'
  size_t body_end = 0;    // token index of matching '}'
  std::vector<std::string> return_type;  // identifier tokens of the return type
  std::vector<LockSite> locks;
  std::vector<AssertHeldSite> asserts;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
  // Declared identifier types of params and simple locals: var -> type idents.
  std::map<std::string, std::vector<std::string>> local_types;
};

struct ClassInfo {
  std::string name;  // unqualified
  // mutex member -> compile-time name literal ("" if none seen).
  std::map<std::string, std::string> mutex_names;
  // guarded member -> guard mutex expression's last identifier.
  std::map<std::string, std::string> guards;
  // data member -> declared type idents (for receiver resolution).
  std::map<std::string, std::vector<std::string>> member_types;
  std::string file;  // file of first definition seen
  int line = 0;
};

// A named mutex declared outside class scope (namespace scope or a
// function-local static), e.g. `sync::Mutex g_pool_mu{"parallel/global_pool"}`.
struct FreeMutex {
  std::string var;
  std::string name_literal;
  // If declared inside a function body, the enclosing function's name — this
  // resolves mutex-factory calls like `sync::Lock lock(trace_mu());`.
  std::string enclosing_function;
  std::string file;
  int line = 0;
};

struct FileIndex {
  LexedFile lex;
  std::vector<FunctionInfo> functions;
};

struct Index {
  std::vector<FileIndex> files;
  // Classes merged across files by unqualified name.
  std::map<std::string, ClassInfo> classes;
  std::vector<FreeMutex> free_mutexes;
  // Namespace-scope variable declarations: var -> declared type idents.
  std::map<std::string, std::vector<std::string>> global_types;
  // Function name -> (file_id, function index) pairs, for call resolution.
  std::map<std::string, std::vector<std::pair<int, int>>> by_name;

  const FunctionInfo& fn(std::pair<int, int> id) const {
    return files[static_cast<size_t>(id.first)]
        .functions[static_cast<size_t>(id.second)];
  }
};

// Index one lexed file into `idx` (appends to idx.files and merges classes).
void index_file(Index& idx, LexedFile lexed);

// Convenience: find the matching close for tokens[open] ('{','(','[' style),
// returning tokens.size() if unbalanced. `open_text`/`close_text` are single
// punctuators.
size_t match_forward(const std::vector<Token>& toks, size_t open,
                     std::string_view open_text, std::string_view close_text);

}  // namespace darnet::analyze
