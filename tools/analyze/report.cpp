#include "tools/analyze/report.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace darnet::analyze {
namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Minimal JSON reader for the baseline file: objects, arrays, strings,
// numbers, bools. Only the shapes parse_baseline needs.
struct JsonReader {
  const std::string& s;
  size_t i = 0;
  std::string err;

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool fail(const std::string& what) {
    if (err.empty()) err = what + " at offset " + std::to_string(i);
    return false;
  }
  bool expect(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool string(std::string& out) {
    ws();
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: out += s[i];
        }
      } else {
        out += s[i];
      }
      ++i;
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;
    return true;
  }
  bool skip_value() {
    ws();
    if (i >= s.size()) return fail("expected value");
    char c = s[i];
    if (c == '"') {
      std::string dummy;
      return string(dummy);
    }
    if (c == '{' || c == '[') {
      char open = c, close = (c == '{') ? '}' : ']';
      int depth = 0;
      bool in_str = false;
      for (; i < s.size(); ++i) {
        if (in_str) {
          if (s[i] == '\\') ++i;
          else if (s[i] == '"') in_str = false;
          continue;
        }
        if (s[i] == '"') in_str = true;
        if (s[i] == open) ++depth;
        if (s[i] == close && --depth == 0) {
          ++i;
          return true;
        }
      }
      return fail("unterminated value");
    }
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])) &&
           s[i] != ',' && s[i] != '}' && s[i] != ']')
      ++i;
    return true;
  }
};

}  // namespace

bool parse_baseline(const std::string& text, std::vector<Suppression>& out,
                    std::string& error) {
  JsonReader r{text, 0, {}};
  if (!r.expect('{')) {
    error = r.err;
    return false;
  }
  r.ws();
  if (r.i < text.size() && text[r.i] == '}') return true;  // empty object
  while (true) {
    std::string key;
    if (!r.string(key)) break;
    if (!r.expect(':')) break;
    if (key != "suppressions") {
      if (!r.skip_value()) break;
    } else {
      if (!r.expect('[')) break;
      r.ws();
      if (r.i < text.size() && text[r.i] == ']') {
        ++r.i;
      } else {
        while (true) {
          if (!r.expect('{')) break;
          Suppression sup;
          r.ws();
          bool first = true;
          while (r.i < text.size() && text[r.i] != '}') {
            if (!first && !r.expect(',')) break;
            first = false;
            std::string k, v;
            if (!r.string(k) || !r.expect(':')) break;
            r.ws();
            if (r.i < text.size() && text[r.i] == '"') {
              if (!r.string(v)) break;
            } else if (!r.skip_value()) {
              break;
            }
            if (k == "rule") sup.rule = v;
            else if (k == "file") sup.file = v;
            else if (k == "symbol") sup.symbol = v;
            else if (k == "reason") sup.reason = v;
            r.ws();
          }
          if (!r.expect('}')) break;
          out.push_back(std::move(sup));
          r.ws();
          if (r.i < text.size() && text[r.i] == ',') {
            ++r.i;
            continue;
          }
          break;
        }
        if (r.err.empty()) r.expect(']');
      }
    }
    r.ws();
    if (r.i < text.size() && text[r.i] == ',') {
      ++r.i;
      continue;
    }
    break;
  }
  if (!r.err.empty()) {
    error = r.err;
    return false;
  }
  return true;
}

void apply_baseline(std::vector<Finding>& findings,
                    const std::vector<Suppression>& baseline,
                    const std::string& baseline_path, bool stale_check) {
  std::vector<bool> used(baseline.size(), false);
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& f : findings) {
    bool suppressed = false;
    for (size_t b = 0; b < baseline.size(); ++b) {
      if (baseline[b].rule == f.rule && baseline[b].file == f.file &&
          baseline[b].symbol == f.symbol) {
        used[b] = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  findings = std::move(kept);
  if (!stale_check) return;
  for (size_t b = 0; b < baseline.size(); ++b) {
    if (used[b]) continue;
    Finding f;
    f.rule = "stale-baseline";
    f.file = baseline_path;
    f.line = 0;
    f.symbol = baseline[b].symbol;
    // Print the entry exactly as it appears in the baseline file so deleting
    // it after a fix is a copy-paste search, not a reconstruction.
    f.message = "suppression no longer matches any finding; delete this entry "
                "from " + baseline_path + ": {\"rule\": \"" + baseline[b].rule +
                "\", \"file\": \"" + baseline[b].file + "\", \"symbol\": \"" +
                baseline[b].symbol + "\"}";
    findings.push_back(std::move(f));
  }
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

std::string format_text(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const auto& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  return os.str();
}

std::string format_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\"findings\":[";
  bool first = true;
  for (const auto& f : findings) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"rule\":";
    json_escape(os, f.rule);
    os << ",\"file\":";
    json_escape(os, f.file);
    os << ",\"line\":" << f.line << ",\"symbol\":";
    json_escape(os, f.symbol);
    os << ",\"message\":";
    json_escape(os, f.message);
    os << "}";
  }
  os << (findings.empty() ? "" : "\n") << "]}\n";
  return os.str();
}

}  // namespace darnet::analyze
