#include "tools/analyze/rules.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

namespace darnet::analyze {
namespace {

namespace fs = std::filesystem;

bool under_any(const std::string& file, const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes) {
    if (file.rfind(p, 0) == 0) return true;
  }
  return false;
}

// The documented lock hierarchy (DESIGN.md §10): acquisition must follow
// ascending rank. Names are the compile-time mutex name literals.
const std::map<std::string, int>& hierarchy_ranks() {
  static const std::map<std::string, int> ranks = {
      {"route/state", -1},  // held across per-shard snapshot flips
      {"serve/admission", 0}, {"serve/exec", 1}, {"serve/apply", 2},
      {"parallel/pool_submit", 10}, {"parallel/pool", 11},
  };
  return ranks;
}

// Mutexes documented as leaves: no lock may be acquired while holding them.
const std::set<std::string>& declared_leaves() {
  static const std::set<std::string> leaves = {"obs/registry", "obs/trace"};
  return leaves;
}

// hot-path-alloc-transitive exemption registry. Entries match either a
// "Class::function" / "function" symbol or a file-path prefix (trailing '/').
// Every entry carries the reviewed reason it is allowed to allocate while
// reachable from the hot path.
struct HotPathExempt {
  std::string_view match;  // symbol or path prefix
  std::string_view reason;
};
constexpr HotPathExempt kHotPathAllocExempt[] = {
    {"src/sync/",
     "checked-build instrumentation only; release builds alias bare std "
     "primitives with no graph bookkeeping"},
    {"src/check/",
     "DARNET_CHECKED diagnostics; compiled to unevaluated no-ops when off"},
    {"Sequential::verify_boundary",
     "entire function is #ifdef DARNET_CHECKED contract diagnostics; absent "
     "from release builds"},
};

struct Resolver {
  const Index& idx;

  const ClassInfo* klass(const std::string& name) const {
    auto it = idx.classes.find(name);
    return it == idx.classes.end() ? nullptr : &it->second;
  }

  // Declared type idents of `recv` inside F: a local/param, a member of F's
  // class, or — when `owner` is set (chained access r.x.f()) — a member `x`
  // of owner `r`'s class. nullptr when the declaration isn't visible to us.
  const std::vector<std::string>* receiver_types(
      const FunctionInfo& F, const std::string& recv,
      const std::string& owner) const {
    if (!owner.empty()) {
      for (const auto& cl : receiver_classes(F, owner, "")) {
        const ClassInfo* c = klass(cl);
        if (!c) continue;
        auto mt = c->member_types.find(recv);
        if (mt != c->member_types.end()) return &mt->second;
      }
      return nullptr;
    }
    auto lt = F.local_types.find(recv);
    if (lt != F.local_types.end()) return &lt->second;
    if (const ClassInfo* c = klass(F.klass)) {
      auto mt = c->member_types.find(recv);
      if (mt != c->member_types.end()) return &mt->second;
    }
    auto gt = idx.global_types.find(recv);
    if (gt != idx.global_types.end()) return &gt->second;
    return nullptr;
  }

  // Resolve a receiver identifier inside F to a set of candidate class names.
  std::vector<std::string> receiver_classes(const FunctionInfo& F,
                                            const std::string& recv,
                                            const std::string& owner = "") const {
    std::vector<std::string> out;
    if (recv.empty()) return out;
    if (recv == "this") {
      if (!F.klass.empty()) out.push_back(F.klass);
      return out;
    }
    const std::vector<std::string>* types = receiver_types(F, recv, owner);
    if (!types) return out;
    // Any identifier in the declared type that names an indexed class counts:
    // this is what strips smart-pointer wrappers (unique_ptr<Impl> -> Impl).
    for (const auto& t : *types) {
      if (idx.classes.count(t)) out.push_back(t);
    }
    return out;
  }

  // Strictly resolve a call site to in-tree function candidates. Receiver'd
  // calls resolve only through a known receiver class; unqualified calls see
  // same-class methods and free functions.
  std::vector<FnId> strict(const FunctionInfo& F, const CallSite& c) const {
    std::vector<FnId> out;
    auto it = idx.by_name.find(c.callee);
    if (it == idx.by_name.end()) return out;
    if (!c.receiver.empty()) {
      auto classes = receiver_classes(F, c.receiver, c.receiver_owner);
      for (FnId id : it->second) {
        const FunctionInfo& g = idx.fn(id);
        for (const auto& cl : classes) {
          if (g.klass == cl) {
            out.push_back(id);
            break;
          }
        }
      }
      return out;
    }
    if (!c.qual.empty()) {
      for (FnId id : it->second) {
        const FunctionInfo& g = idx.fn(id);
        if (g.klass == c.qual || g.klass.empty()) out.push_back(id);
      }
      return out;
    }
    for (FnId id : it->second) {
      const FunctionInfo& g = idx.fn(id);
      if (g.klass.empty() || g.klass == F.klass) out.push_back(id);
    }
    return out;
  }

  // True if we know the receiver's declared type but it names no indexed
  // class — i.e. a std/foreign type whose methods are never in-tree.
  bool receiver_is_foreign(const FunctionInfo& F, const std::string& recv,
                           const std::string& owner) const {
    if (recv.empty() || recv == "this") return false;
    const std::vector<std::string>* types = receiver_types(F, recv, owner);
    if (!types) return false;  // unknown: can't rule anything out
    for (const auto& t : *types) {
      if (idx.classes.count(t)) return false;
    }
    return true;
  }

  // Loose resolution for reachability: strict first, falling back to every
  // in-tree function with the name (over-approximation for virtual dispatch
  // through receivers whose static type we can't resolve). No fallback when
  // the receiver is known to be a foreign type (`stop_.load()` on a
  // std::atomic must not resolve to an in-tree `load`).
  std::vector<FnId> loose(const FunctionInfo& F, const CallSite& c) const {
    std::vector<FnId> out = strict(F, c);
    if (!out.empty()) return out;
    if (receiver_is_foreign(F, c.receiver, c.receiver_owner)) return out;
    auto it = idx.by_name.find(c.callee);
    if (it == idx.by_name.end()) return out;
    return it->second;
  }

  // Resolve a lock/assert site's mutex expression to the compile-time mutex
  // name literal. Empty when unresolvable.
  std::string mutex_name(const FunctionInfo& F, const std::string& last,
                         const std::string& recv, bool via_call) const {
    // Receiver-qualified member mutex: region.error_mu, impl_->mu.
    if (!recv.empty()) {
      for (const auto& cl : receiver_classes(F, recv)) {
        const ClassInfo* c = klass(cl);
        if (!c) continue;
        auto it = c->mutex_names.find(last);
        if (it != c->mutex_names.end())
          return it->second.empty() ? cl + "::" + last : it->second;
      }
    }
    // Member of the enclosing class.
    if (const ClassInfo* c = klass(F.klass)) {
      auto it = c->mutex_names.find(last);
      if (it != c->mutex_names.end())
        return it->second.empty() ? F.klass + "::" + last : it->second;
    }
    // Namespace-scope / local-static mutex by variable name.
    for (const auto& fm : idx.free_mutexes) {
      if (fm.var == last && fm.enclosing_function.empty())
        return fm.name_literal.empty() ? last : fm.name_literal;
    }
    // Mutex-factory call: sync::Lock lock(trace_mu());
    if (via_call) {
      for (const auto& fm : idx.free_mutexes) {
        if (fm.enclosing_function == last)
          return fm.name_literal.empty() ? last : fm.name_literal;
      }
    }
    // Local mutex declared in this function.
    for (const auto& fm : idx.free_mutexes) {
      if (fm.var == last && fm.enclosing_function == F.name)
        return fm.name_literal.empty() ? last : fm.name_literal;
    }
    return "";
  }
};

std::string symbol_of(const FunctionInfo& F) {
  return F.klass.empty() ? F.name : F.klass + "::" + F.name;
}

// --- effect primitives ------------------------------------------------------

// If call site `c` inside F is a blocking primitive, return a short
// description ("CondVar::wait", "::recv", ...); empty string otherwise.
std::string blocking_primitive(const Resolver& R, const FunctionInfo& F,
                               const CallSite& c) {
  static const std::set<std::string> kWaits = {"wait", "wait_for",
                                               "wait_until"};
  static const std::set<std::string> kSleeps = {"sleep_for", "sleep_until"};
  static const std::set<std::string> kSockets = {"send", "recv", "accept"};
  auto type_mentions = [&](std::string_view needle) {
    const std::vector<std::string>* types =
        R.receiver_types(F, c.receiver, c.receiver_owner);
    if (!types) return false;
    for (const auto& t : *types) {
      if (t.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  if (kWaits.count(c.callee) && !c.receiver.empty() &&
      (type_mentions("CondVar") || type_mentions("condition_variable")))
    return "CondVar::" + c.callee;
  if (kSockets.count(c.callee) && c.global_qual) return "::" + c.callee;
  if (c.callee == "get" && !c.receiver.empty() && type_mentions("future"))
    return "std::future::get";
  if (kSleeps.count(c.callee)) return "std::this_thread::" + c.callee;
  // A join with no in-tree strict resolution is a raw std::thread join;
  // in-tree joins (e.g. ServiceThread::join) propagate through the fixpoint.
  if (c.callee == "join" && !c.receiver.empty() && R.strict(F, c).empty())
    return "thread join";
  return "";
}

// Direct wall-clock read: `steady_clock::now()` and friends, including the
// tree-wide `using Clock = std::chrono::steady_clock` alias.
bool clock_read(const CallSite& c) {
  static const std::set<std::string> kClockQuals = {
      "steady_clock", "system_clock", "high_resolution_clock", "Clock"};
  return c.callee == "now" && kClockQuals.count(c.qual) > 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Interprocedural effect analysis.
// ---------------------------------------------------------------------------

std::map<FnId, Effects> compute_effects(const Index& idx) {
  Resolver R{idx};
  // 0 = no effect, 1 = direct primitive, 2 = via a strictly-resolved callee.
  struct Node {
    int block = 0;
    int clock = 0;
    std::string block_prim, clock_prim;  // direct primitive descriptions
    FnId block_via{-1, -1}, clock_via{-1, -1};
  };
  std::map<FnId, Node> nodes;
  std::map<FnId, std::vector<FnId>> callees;

  for (size_t fi = 0; fi < idx.files.size(); ++fi) {
    const FileIndex& fx = idx.files[fi];
    for (size_t gi = 0; gi < fx.functions.size(); ++gi) {
      FnId id{static_cast<int>(fi), static_cast<int>(gi)};
      const FunctionInfo& F = fx.functions[gi];
      Node& n = nodes[id];
      std::set<FnId> outs;
      for (const auto& c : F.calls) {
        // A method call on an expression receiver (`a.b().f()`) is
        // unresolvable; treating it as an unqualified call would bind it to
        // unrelated same-name free functions, so skip it entirely.
        if (c.method_like && c.receiver.empty()) continue;
        std::string prim = blocking_primitive(R, F, c);
        if (!prim.empty() && n.block == 0) {
          n.block = 1;
          n.block_prim = prim + " at " + F.file + ":" + std::to_string(c.line);
        }
        if (clock_read(c) && n.clock == 0) {
          n.clock = 1;
          n.clock_prim = c.qual + "::now() at " + F.file + ":" +
                         std::to_string(c.line);
        }
        for (FnId g : R.strict(F, c)) {
          if (g != id) outs.insert(g);
        }
      }
      callees[id].assign(outs.begin(), outs.end());
    }
  }

  // Fixpoint: effects flow from callees to callers until stable. Cycles in
  // the call graph converge because the state is monotone (an effect, once
  // set, never clears); memoized recursion à la acquires() would be
  // order-dependent on cycles, so it is deliberately not used here.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [id, n] : nodes) {
      for (FnId g : callees[id]) {
        const Node& m = nodes[g];
        if (n.block == 0 && m.block != 0) {
          n.block = 2;
          n.block_via = g;
          changed = true;
        }
        if (n.clock == 0 && m.clock != 0) {
          n.clock = 2;
          n.clock_via = g;
          changed = true;
        }
      }
    }
  }

  // Materialize witness chains. A via-link always points at a node whose own
  // chain was complete when the link was created, so the walk terminates.
  std::map<FnId, Effects> out;
  for (const auto& [id, n] : nodes) {
    Effects e;
    e.may_block = n.block != 0;
    e.reads_clock = n.clock != 0;
    if (e.may_block) {
      FnId cur = id;
      while (nodes.at(cur).block == 2) {
        cur = nodes.at(cur).block_via;
        e.block_path.push_back(symbol_of(idx.fn(cur)));
      }
      e.block_path.push_back(nodes.at(cur).block_prim);
    }
    if (e.reads_clock) {
      FnId cur = id;
      while (nodes.at(cur).clock == 2) {
        cur = nodes.at(cur).clock_via;
        e.clock_path.push_back(symbol_of(idx.fn(cur)));
      }
      e.clock_path.push_back(nodes.at(cur).clock_prim);
    }
    out[id] = std::move(e);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule 1: static lock-order extraction.
// ---------------------------------------------------------------------------

void rule_lock_order(const Index& idx, const AnalysisOptions& opts,
                     std::vector<LockEdge>& edges,
                     std::vector<Finding>& findings) {
  Resolver R{idx};

  // acquires*(f): every mutex name f may acquire, directly or via (strictly
  // resolved) callees. Memoized; cycles in the call graph terminate because
  // in-progress nodes return their partial (possibly empty) set.
  std::map<FnId, std::set<std::string>> memo;
  std::set<FnId> in_progress;
  std::function<const std::set<std::string>&(FnId)> acquires =
      [&](FnId id) -> const std::set<std::string>& {
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    auto& slot = memo[id];
    if (!in_progress.insert(id).second) return slot;
    const FunctionInfo& F = idx.fn(id);
    for (const auto& l : F.locks) {
      std::string name = R.mutex_name(F, l.mutex_expr_last, l.receiver, l.via_call);
      if (!name.empty()) slot.insert(name);
    }
    for (const auto& c : F.calls) {
      for (FnId g : R.strict(F, c)) {
        if (g == id) continue;
        const auto& sub = acquires(g);
        slot.insert(sub.begin(), sub.end());
      }
    }
    in_progress.erase(id);
    return slot;
  };

  std::map<std::pair<std::string, std::string>, size_t> seen;  // -> edge idx
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line, const std::string& via) {
    auto key = std::make_pair(from, to);
    if (seen.count(key)) return;
    seen[key] = edges.size();
    edges.push_back(LockEdge{from, to, file, line, via});
  };

  for (size_t fi = 0; fi < idx.files.size(); ++fi) {
    const FileIndex& fx = idx.files[fi];
    if (!under_any(fx.lex.path, opts.rule_prefixes)) continue;
    for (size_t gi = 0; gi < fx.functions.size(); ++gi) {
      const FunctionInfo& F = fx.functions[gi];
      for (const auto& outer : F.locks) {
        std::string from =
            R.mutex_name(F, outer.mutex_expr_last, outer.receiver, outer.via_call);
        if (from.empty()) continue;
        // Directly nested acquisitions.
        for (const auto& inner : F.locks) {
          if (inner.tok <= outer.tok || inner.tok >= outer.scope_end) continue;
          std::string to =
              R.mutex_name(F, inner.mutex_expr_last, inner.receiver, inner.via_call);
          if (!to.empty()) add_edge(from, to, F.file, inner.line, symbol_of(F));
        }
        // Acquisitions reached through calls made under the lock.
        for (const auto& c : F.calls) {
          if (c.tok <= outer.tok || c.tok >= outer.scope_end) continue;
          for (FnId g : R.strict(F, c)) {
            for (const auto& to : acquires(g)) {
              add_edge(from, to, F.file, c.line,
                       symbol_of(F) + " -> " + symbol_of(idx.fn(g)));
            }
          }
        }
      }
    }
  }

  // (a) Self edges (same mutex re-acquired under itself).
  for (const auto& e : edges) {
    if (e.from == e.to) {
      findings.push_back(Finding{
          "lock-order", e.file, e.line, e.from,
          "mutex '" + e.from + "' may be acquired while already held (via " +
              e.via + ")"});
    }
  }

  // (b) Documented-hierarchy violations.
  const auto& ranks = hierarchy_ranks();
  for (const auto& e : edges) {
    auto rf = ranks.find(e.from);
    auto rt = ranks.find(e.to);
    if (rf != ranks.end() && rt != ranks.end() && rf->second > rt->second &&
        rf->second / 10 == rt->second / 10) {
      findings.push_back(Finding{
          "lock-order", e.file, e.line, e.from + " -> " + e.to,
          "acquiring '" + e.to + "' while holding '" + e.from +
              "' contradicts the documented hierarchy (DESIGN.md §10: " +
              e.to + " must be taken before " + e.from + "); via " + e.via});
    }
  }

  // (c) Declared leaves must have no outgoing edges.
  for (const auto& e : edges) {
    if (e.from == e.to) continue;
    if (declared_leaves().count(e.from)) {
      findings.push_back(Finding{
          "lock-order", e.file, e.line, e.from + " -> " + e.to,
          "'" + e.from + "' is documented as a leaf lock but '" + e.to +
              "' is acquired while it is held; via " + e.via});
    }
  }

  // (d) Cycles (beyond self edges) in the full static graph.
  std::map<std::string, std::vector<size_t>> adj;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].from != edges[i].to) adj[edges[i].from].push_back(i);
  }
  std::set<std::string> done;
  std::vector<std::string> path;
  std::set<std::string> on_path;
  bool reported = false;
  std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    if (reported || done.count(n)) return;
    on_path.insert(n);
    path.push_back(n);
    for (size_t ei : adj[n]) {
      const auto& e = edges[ei];
      if (on_path.count(e.to)) {
        std::ostringstream cyc;
        for (auto it = std::find(path.begin(), path.end(), e.to);
             it != path.end(); ++it)
          cyc << *it << " -> ";
        cyc << e.to;
        findings.push_back(Finding{
            "lock-order", e.file, e.line, "cycle",
            "static lock-order cycle: " + cyc.str() + " (closing edge via " +
                e.via + ")"});
        reported = true;
        break;
      }
      dfs(e.to);
    }
    path.pop_back();
    on_path.erase(n);
    done.insert(n);
  };
  for (const auto& [n, _] : adj) dfs(n);
}

// ---------------------------------------------------------------------------
// Rule 2: guarded-by access checking.
// ---------------------------------------------------------------------------

void rule_guarded_by(const Index& idx, const AnalysisOptions& opts,
                     std::vector<Finding>& findings) {
  Resolver R{idx};
  // guarded member name -> owning classes (name collisions across classes are
  // disambiguated through the receiver / enclosing class below).
  std::map<std::string, std::vector<const ClassInfo*>> guarded;
  for (const auto& [name, c] : idx.classes) {
    for (const auto& [member, guard] : c.guards) {
      (void)guard;
      guarded[member].push_back(&c);
    }
  }
  if (guarded.empty()) return;

  for (const auto& fx : idx.files) {
    if (!under_any(fx.lex.path, opts.rule_prefixes)) continue;
    const auto& T = fx.lex.tokens;
    for (const auto& F : fx.functions) {
      if (F.ctor_dtor) continue;  // exclusive access during construction
      for (size_t j = F.body_begin + 1; j < F.body_end; ++j) {
        if (T[j].kind != Tok::kIdent) continue;
        auto git = guarded.find(T[j].text);
        if (git == guarded.end()) continue;
        if (j + 1 < T.size() && is_punct(T[j + 1], "(")) continue;  // a call
        if (j > 0 && is_punct(T[j - 1], "::")) continue;  // qualified name
        bool via_receiver =
            j >= 2 && (is_punct(T[j - 1], ".") || is_punct(T[j - 1], "->")) &&
            T[j - 2].kind == Tok::kIdent;
        std::string recv = via_receiver ? T[j - 2].text : "";
        if (!via_receiver && (is_punct(T[j - 1], ".") || is_punct(T[j - 1], "->")))
          continue;  // receiver is an expression we can't resolve
        // Which owning class does this access refer to?
        const ClassInfo* owner = nullptr;
        if (via_receiver && recv != "this") {
          for (const auto& cl : R.receiver_classes(F, recv)) {
            for (const ClassInfo* c : git->second) {
              if (c->name == cl) owner = c;
            }
          }
        } else {
          // Bare member (or this->member) of the enclosing class — unless a
          // local declaration shadows the name.
          if (!via_receiver && F.local_types.count(T[j].text)) continue;
          for (const ClassInfo* c : git->second) {
            if (c->name == F.klass) owner = c;
          }
        }
        if (!owner) continue;  // unresolvable or different class: skip
        const std::string& guard = owner->guards.at(T[j].text);
        bool held = false;
        for (const auto& l : F.locks) {
          if (l.mutex_expr_last == guard && l.tok < j && j < l.scope_end) {
            held = true;
            break;
          }
        }
        if (!held) {
          for (const auto& a : F.asserts) {
            if (!a.not_held && a.mutex_expr_last == guard && a.tok < j) {
              held = true;
              break;
            }
          }
        }
        if (!held) {
          findings.push_back(Finding{
              "guarded-by", F.file, T[j].line,
              owner->name + "::" + T[j].text,
              "access to '" + owner->name + "::" + T[j].text +
                  "' (DARNET_GUARDED_BY(" + guard + ")) in " + symbol_of(F) +
                  " with no live sync::Lock on '" + guard +
                  "' and no dominating DARNET_ASSERT_HELD"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3: transitive hot-path allocation.
// ---------------------------------------------------------------------------

namespace {

bool hot_path_exempt(const FunctionInfo& F, std::string* reason) {
  std::string sym = symbol_of(F);
  for (const auto& e : kHotPathAllocExempt) {
    std::string m(e.match);
    bool hit = (!m.empty() && m.back() == '/') ? F.file.rfind(m, 0) == 0
                                               : (sym == m || F.name == m);
    if (hit) {
      if (reason) *reason = std::string(e.reason);
      return true;
    }
  }
  return false;
}

const std::set<std::string>& growth_calls() {
  static const std::set<std::string> g = {"push_back", "emplace_back",
                                          "resize", "insert", "emplace",
                                          "append"};
  return g;
}

}  // namespace

void rule_hot_path_alloc(const Index& idx, const AnalysisOptions& opts,
                         std::vector<Finding>& findings) {
  Resolver R{idx};
  static const std::set<std::string> kRoots = {
      "classify_batch", "classify_batch_degraded", "worker_loop",
      "execute_batch"};

  // BFS from the roots over the loosely-resolved call graph, restricted to
  // src/ and stopping at exempt functions/subsystems.
  std::map<FnId, std::pair<FnId, std::string>> parent;  // node -> (pred, root)
  std::deque<FnId> queue;
  for (const auto& [name, ids] : idx.by_name) {
    if (!kRoots.count(name)) continue;
    for (FnId id : ids) {
      const FunctionInfo& F = idx.fn(id);
      if (!under_any(F.file, opts.rule_prefixes)) continue;
      if (!parent.count(id)) {
        parent[id] = {id, symbol_of(F)};
        queue.push_back(id);
      }
    }
  }
  while (!queue.empty()) {
    FnId id = queue.front();
    queue.pop_front();
    const FunctionInfo& F = idx.fn(id);
    if (hot_path_exempt(F, nullptr)) continue;  // don't look inside
    for (const auto& c : F.calls) {
      for (FnId g : R.loose(F, c)) {
        const FunctionInfo& G = idx.fn(g);
        if (!under_any(G.file, opts.rule_prefixes)) continue;
        if (parent.count(g)) continue;
        parent[g] = {id, parent[id].second};
        queue.push_back(g);
      }
    }
  }

  auto path_to = [&](FnId id) {
    std::vector<std::string> rev;
    FnId cur = id;
    while (true) {
      rev.push_back(symbol_of(idx.fn(cur)));
      FnId p = parent[cur].first;
      if (p == cur) break;
      cur = p;
    }
    std::ostringstream os;
    for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
      if (it != rev.rbegin()) os << " -> ";
      os << *it;
    }
    return os.str();
  };

  for (const auto& [id, link] : parent) {
    const FunctionInfo& F = idx.fn(id);
    if (hot_path_exempt(F, nullptr)) continue;
    for (const auto& a : F.allocs) {
      findings.push_back(Finding{
          "hot-path-alloc-transitive", F.file, a.line, symbol_of(F),
          a.what + " reachable from the inference hot path: " + path_to(id)});
    }
    for (const auto& c : F.calls) {
      if (!growth_calls().count(c.callee)) continue;
      // In-tree functions with these names (e.g. a ring buffer's own
      // emplace) are traversed by the BFS instead of flagged here.
      if (!R.loose(F, c).empty()) continue;
      findings.push_back(Finding{
          "hot-path-alloc-transitive", F.file, c.line, symbol_of(F),
          "container growth ('" + c.callee +
              "') reachable from the inference hot path: " + path_to(id)});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 4: unchecked Admit/Status return values.
// ---------------------------------------------------------------------------

void rule_unchecked_status(const Index& idx, const AnalysisOptions& opts,
                           std::vector<Finding>& findings) {
  Resolver R{idx};
  // In-tree functions whose return type mentions Admit or Status.
  std::set<std::string> status_names;
  for (const auto& fx : idx.files) {
    for (const auto& F : fx.functions) {
      for (const auto& t : F.return_type) {
        if (t == "Admit" || t == "Status") {
          status_names.insert(F.name);
          break;
        }
      }
    }
  }
  if (status_names.empty()) return;

  for (const auto& fx : idx.files) {
    if (!under_any(fx.lex.path, opts.status_rule_prefixes)) continue;
    const auto& T = fx.lex.tokens;
    for (const auto& F : fx.functions) {
      for (const auto& c : F.calls) {
        if (!status_names.count(c.callee)) continue;
        bool returns_status = false;
        for (FnId g : R.loose(F, c)) {
          for (const auto& t : idx.fn(g).return_type) {
            if (t == "Admit" || t == "Status") returns_status = true;
          }
        }
        if (!returns_status) continue;
        // Walk back over the call chain (receiver/qualifier) to its head.
        size_t head = c.tok;
        while (head >= 2 &&
               (is_punct(T[head - 1], ".") || is_punct(T[head - 1], "->") ||
                is_punct(T[head - 1], "::")) &&
               T[head - 2].kind == Tok::kIdent) {
          head -= 2;
        }
        if (head == 0) continue;
        const Token& before = T[head - 1];
        bool statement_start =
            before.kind == Tok::kPunct &&
            (before.text == ";" || before.text == "{" || before.text == "}");
        if (!statement_start) continue;
        size_t close = match_forward(T, c.tok + 1, "(", ")");
        if (close + 1 >= T.size() || !is_punct(T[close + 1], ";")) continue;
        findings.push_back(Finding{
            "unchecked-status", F.file, T[c.tok].line, c.callee,
            "return value of '" + c.callee +
                "' (Admit/Status) is discarded; check it or cast to void "
                "explicitly"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 5: blocking-under-lock (interprocedural).
// ---------------------------------------------------------------------------

namespace {

// blocking-under-lock exemption registry: same shape and shrink-only
// semantics as kHotPathAllocExempt. Entries match a "Class::function" symbol
// or a file-path prefix (trailing '/'); each carries the reviewed reason the
// may-block call under the lock is intended. Block-free-tier mutexes
// (route/*) can NOT be exempted here — only the baseline can suppress those,
// and shrinking it back is the expected direction.
struct BlockingExempt {
  std::string_view match;
  std::string_view reason;
};
constexpr BlockingExempt kBlockingExempt[] = {
    {"ThreadPool::for_range",
     "parallel/pool_submit exists to serialize entire regions; waiting for "
     "region completion while holding it IS the guarded work (DESIGN.md §10)"},
};

bool blocking_exempt(const FunctionInfo& F) {
  std::string sym = symbol_of(F);
  for (const auto& e : kBlockingExempt) {
    std::string m(e.match);
    bool hit = (!m.empty() && m.back() == '/') ? F.file.rfind(m, 0) == 0
                                               : (sym == m || F.name == m);
    if (hit) return true;
  }
  return false;
}

// route/* mutexes guard RCU-style reader sections: entirely block-free tier.
bool block_free_tier(const std::string& mutex_name) {
  return mutex_name.rfind("route/", 0) == 0;
}

std::string tier_suffix(bool tier0) {
  return tier0 ? " — 'route/*' is block-free tier: RCU reader sections must "
                 "never block (DESIGN.md §10)"
               : "";
}

}  // namespace

void rule_blocking_under_lock(const Index& idx, const AnalysisOptions& opts,
                              const std::map<FnId, Effects>& effects,
                              std::vector<Finding>& findings) {
  Resolver R{idx};
  static const std::set<std::string> kWaits = {"wait", "wait_for",
                                               "wait_until"};
  for (const auto& fx : idx.files) {
    if (!under_any(fx.lex.path, opts.rule_prefixes)) continue;
    const auto& T = fx.lex.tokens;
    for (const auto& F : fx.functions) {
      const bool exempt_fn = blocking_exempt(F);
      for (const auto& L : F.locks) {
        std::string name =
            R.mutex_name(F, L.mutex_expr_last, L.receiver, L.via_call);
        const std::string shown = name.empty() ? L.mutex_expr_last : name;
        const bool tier0 = block_free_tier(name);
        if (exempt_fn && !tier0) continue;
        for (const auto& c : F.calls) {
          if (c.tok <= L.tok || c.tok >= L.scope_end) continue;
          if (c.method_like && c.receiver.empty()) continue;  // see
          // compute_effects: expression receivers are unresolvable
          std::string prim = blocking_primitive(R, F, c);
          if (!prim.empty()) {
            // A CV wait whose first argument is this guard variable releases
            // the lock for the duration of the wait — that is the one blessed
            // way to block "under" a lock.
            if (kWaits.count(c.callee) && c.tok + 2 < T.size() &&
                is_ident(T[c.tok + 2], L.var))
              continue;
            findings.push_back(Finding{
                "blocking-under-lock", F.file, c.line, symbol_of(F),
                "'" + prim + "' may block while '" + shown + "' is held in " +
                    symbol_of(F) + tier_suffix(tier0)});
            continue;  // the direct site is the report; don't re-report the
                       // same wait through the callee's own effect
          }
          for (FnId g : R.strict(F, c)) {
            auto it = effects.find(g);
            if (it == effects.end() || !it->second.may_block) continue;
            std::ostringstream path;
            path << symbol_of(F) << " -> " << symbol_of(idx.fn(g));
            for (const auto& hop : it->second.block_path) path << " -> " << hop;
            findings.push_back(Finding{
                "blocking-under-lock", F.file, c.line, symbol_of(F),
                "call to '" + symbol_of(idx.fn(g)) +
                    "' may block while '" + shown + "' is held in " +
                    symbol_of(F) + "; path: " + path.str() +
                    tier_suffix(tier0)});
            break;  // one witness per call site is enough
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 6: time-source purity.
// ---------------------------------------------------------------------------

namespace {

// Whitelisted wall-clock seams. Entries match a file-path prefix (trailing
// '/'), a class prefix (trailing "::"), or an exact "Class::function" /
// "function" symbol. Everything else must route through serve::TimeSource
// (or sim::VirtualTimeSource) so the tree stays virtual-time-drivable.
struct TimeSeam {
  std::string_view match;
  std::string_view reason;
};
constexpr TimeSeam kTimeSourceSeams[] = {
    {"src/obs/",
     "observability epoch and trace timestamps; never feed scheduling"},
    {"src/sync/",
     "checked-build watchdog deadlines; compiled out of release builds"},
    {"Stopwatch::", "util::Stopwatch is itself a measurement seam"},
    {"Server::clock_now", "the serve::TimeSource injection seam"},
    {"Router::clock_now", "the serve::TimeSource injection seam"},
    {"HttpServer::clock_now", "the serve::TimeSource injection seam"},
};

bool time_seam(const FunctionInfo& F) {
  const std::string sym = symbol_of(F);
  for (const auto& e : kTimeSourceSeams) {
    const std::string m(e.match);
    bool hit = false;
    if (!m.empty() && m.back() == '/') {
      hit = F.file.rfind(m, 0) == 0;
    } else if (m.size() >= 2 && m.compare(m.size() - 2, 2, "::") == 0) {
      hit = sym.rfind(m, 0) == 0;
    } else {
      hit = sym == m || F.name == m;
    }
    if (hit) return true;
  }
  return false;
}

}  // namespace

void rule_time_source_purity(const Index& idx, const AnalysisOptions& opts,
                             std::vector<Finding>& findings) {
  for (const auto& fx : idx.files) {
    if (!under_any(fx.lex.path, opts.rule_prefixes)) continue;
    for (const auto& F : fx.functions) {
      if (time_seam(F)) continue;
      for (const auto& c : F.calls) {
        if (!clock_read(c)) continue;
        findings.push_back(Finding{
            "time-source-purity", F.file, c.line, symbol_of(F),
            "direct wall-clock read ('" + c.qual + "::now()') in " +
                symbol_of(F) +
                "; route through serve::TimeSource or a whitelisted seam "
                "(docs/STATIC_ANALYSIS.md)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 7: unchecked POSIX I/O status.
// ---------------------------------------------------------------------------

void rule_unchecked_posix_io(const Index& idx, const AnalysisOptions& opts,
                             std::vector<Finding>& findings) {
  static const std::set<std::string> kPosix = {"send", "recv", "accept",
                                               "close"};
  for (const auto& fx : idx.files) {
    if (!under_any(fx.lex.path, opts.posix_io_prefixes)) continue;
    const auto& T = fx.lex.tokens;
    for (const auto& F : fx.functions) {
      for (const auto& c : F.calls) {
        if (!c.global_qual || !kPosix.count(c.callee)) continue;
        // Statement head is the leading '::' (same shape as unchecked-status:
        // the call must be a bare discarded statement).
        const size_t head = c.tok - 1;
        if (head == 0) continue;
        const Token& before = T[head - 1];
        const bool statement_start =
            before.kind == Tok::kPunct &&
            (before.text == ";" || before.text == "{" || before.text == "}");
        if (!statement_start) continue;
        size_t close = match_forward(T, c.tok + 1, "(", ")");
        if (close + 1 >= T.size() || !is_punct(T[close + 1], ";")) continue;
        findings.push_back(Finding{
            "unchecked-posix-io", F.file, T[c.tok].line, c.callee,
            "return value of '::" + c.callee +
                "' (ssize_t/fd status) is discarded; check it or cast to "
                "void explicitly"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

AnalysisResult analyze_tree(const fs::path& root, const AnalysisOptions& opts) {
  AnalysisResult res;
  Index idx;
  std::vector<fs::path> files;
  for (const auto& dir : opts.index_dirs) {
    fs::path d = root / dir;
    if (!fs::exists(d)) continue;
    for (const auto& ent : fs::recursive_directory_iterator(d)) {
      if (!ent.is_regular_file()) continue;
      auto ext = ent.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc")
        continue;
      files.push_back(ent.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& p : files) {
    std::string rel = fs::relative(p, root).generic_string();
    if (under_any(rel, opts.skip_prefixes)) continue;
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    index_file(idx, lex(ss.str(), rel));
  }
  res.files_indexed = static_cast<int>(idx.files.size());
  for (const auto& fx : idx.files)
    res.functions_indexed += static_cast<int>(fx.functions.size());

  rule_lock_order(idx, opts, res.lock_edges, res.findings);
  rule_guarded_by(idx, opts, res.findings);
  rule_hot_path_alloc(idx, opts, res.findings);
  rule_unchecked_status(idx, opts, res.findings);

  const std::map<FnId, Effects> effects = compute_effects(idx);
  rule_blocking_under_lock(idx, opts, effects, res.findings);
  rule_time_source_purity(idx, opts, res.findings);
  rule_unchecked_posix_io(idx, opts, res.findings);

  for (const auto& [id, e] : effects) {
    if (!e.may_block && !e.reads_clock) continue;
    const FunctionInfo& F = idx.fn(id);
    res.effects.push_back(EffectEntry{symbol_of(F), F.file, F.line,
                                      e.may_block, e.reads_clock,
                                      e.block_path, e.clock_path});
  }
  std::sort(res.effects.begin(), res.effects.end(),
            [](const EffectEntry& a, const EffectEntry& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.symbol < b.symbol;
            });

  // Dedupe (e.g. two accesses of the same guarded member in one statement).
  sort_findings(res.findings);
  res.findings.erase(
      std::unique(res.findings.begin(), res.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.rule == b.rule && a.file == b.file &&
                           a.line == b.line && a.symbol == b.symbol &&
                           a.message == b.message;
                  }),
      res.findings.end());
  return res;
}

}  // namespace darnet::analyze
