// darnet_analyze — token/symbol-level cross-file static analyzer for the
// darnet repo's concurrency, hot-path, and contract rules.
//
// Usage:
//   darnet_analyze <repo_root> [--format=text|json] [--baseline=<path>]
//                  [--no-stale-check] [--dump-lock-graph=<path>]
//
// Exit codes: 0 clean, 1 findings remain after the baseline, 2 usage/IO
// error. Text findings go to stderr (same `file:line: [rule] message` shape
// as darnet_lint, so tests/lint_fixtures/run_fixtures.sh drives both); JSON
// goes to stdout. The default baseline is <root>/tools/analyze/
// analyze_baseline.json when that file exists.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "tools/analyze/rules.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: darnet_analyze <repo_root> [--format=text|json] "
               "[--baseline=<path>] [--no-stale-check] "
               "[--dump-lock-graph=<path>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace darnet::analyze;
  std::string root, format = "text", baseline_arg, dump_lock_graph;
  bool stale_check = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return usage();
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_arg = arg.substr(11);
    } else if (arg == "--no-stale-check") {
      stale_check = false;
    } else if (arg.rfind("--dump-lock-graph=", 0) == 0) {
      dump_lock_graph = arg.substr(18);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (root.empty()) {
      root = arg;
    } else {
      return usage();
    }
  }
  if (root.empty()) return usage();
  std::filesystem::path rp(root);
  if (!std::filesystem::exists(rp / "src")) {
    std::fprintf(stderr, "darnet_analyze: '%s' does not look like the repo root (no src/)\n",
                 root.c_str());
    return 2;
  }

  AnalysisResult res = analyze_tree(rp);

  // Baseline: explicit path wins; otherwise the checked-in default (if any).
  std::string baseline_path = baseline_arg;
  if (baseline_path.empty()) {
    auto def = rp / "tools" / "analyze" / "analyze_baseline.json";
    if (std::filesystem::exists(def)) baseline_path = def.generic_string();
  }
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "darnet_analyze: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::vector<Suppression> baseline;
    std::string err;
    if (!parse_baseline(ss.str(), baseline, err)) {
      std::fprintf(stderr, "darnet_analyze: malformed baseline '%s': %s\n",
                   baseline_path.c_str(), err.c_str());
      return 2;
    }
    apply_baseline(res.findings, baseline, "tools/analyze/analyze_baseline.json",
                   stale_check);
  }
  sort_findings(res.findings);

  if (!dump_lock_graph.empty()) {
    std::ofstream out(dump_lock_graph, std::ios::binary);
    out << "{\"edges\":[";
    for (size_t i = 0; i < res.lock_edges.size(); ++i) {
      const auto& e = res.lock_edges[i];
      out << (i ? "," : "") << "\n  {\"from\":\"" << e.from << "\",\"to\":\""
          << e.to << "\",\"file\":\"" << e.file << "\",\"line\":" << e.line
          << "}";
    }
    out << (res.lock_edges.empty() ? "" : "\n") << "]}\n";
  }

  if (format == "json") {
    std::cout << format_json(res.findings);
  }
  std::cerr << format_text(res.findings);
  if (res.findings.empty()) {
    std::fprintf(stderr,
                 "darnet_analyze: clean (%d files, %d functions, %zu lock "
                 "edges)\n",
                 res.files_indexed, res.functions_indexed,
                 res.lock_edges.size());
    return 0;
  }
  std::fprintf(stderr, "darnet_analyze: %zu finding(s)\n", res.findings.size());
  return 1;
}
