// darnet_analyze — token/symbol-level cross-file static analyzer for the
// darnet repo's concurrency, hot-path, and contract rules.
//
// Usage (flags and the 0/1/2 exit-code contract follow
// tools/common/cli.hpp):
//   darnet_analyze <repo_root> [--format=text|json] [--out=PATH]
//                  [--baseline=<path>] [--no-stale-check]
//                  [--dump-lock-graph=<path>] [--dump-effects=<path>] [--list]
//
// Text findings go to stderr (same `file:line: [rule] message` shape
// as darnet_lint, so tests/lint_fixtures/run_fixtures.sh drives both); JSON
// goes to stdout, and --out writes the selected rendering to a file.
// --list prints the rule catalogue. The default baseline is
// <root>/tools/analyze/analyze_baseline.json when that file exists.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "tools/analyze/rules.hpp"
#include "tools/common/cli.hpp"

namespace {

/// The --list catalogue (full rule docs: docs/STATIC_ANALYSIS.md).
constexpr struct {
  const char* name;
  const char* what;
} kRuleCatalogue[] = {
    {"lock-order", "mutex acquisition-order cycles / hierarchy breaks"},
    {"guarded-by", "guarded member touched without its lock held"},
    {"hot-path-alloc-transitive", "allocation reachable from hot roots"},
    {"unchecked-status", "Admit/Status result discarded as a statement"},
    {"blocking-under-lock", "may-block call reachable under a sync::Lock"},
    {"time-source-purity", "wall-clock read outside whitelisted seams"},
    {"unchecked-posix-io", "::send/recv/accept/close status discarded"},
    {"stale-baseline", "baseline suppression matching nothing"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace darnet::analyze;
  darnet::cli::Parser parser(
      "darnet_analyze",
      "usage: darnet_analyze <repo_root> [--format=text|json] [--out=PATH]\n"
      "                      [--baseline=<path>] [--no-stale-check]\n"
      "                      [--dump-lock-graph=<path>] [--dump-effects=<path>]\n"
      "                      [--list]");
  parser.flag("format").flag("out").flag("baseline").flag("dump-lock-graph");
  parser.flag("dump-effects");
  parser.toggle("no-stale-check").toggle("list");
  bool json = false;
  if (!parser.parse(argc, argv, 1) || !parser.format(json)) return 2;
  if (parser.help()) return 0;
  if (parser.on("list")) {
    for (const auto& rule : kRuleCatalogue) {
      std::printf("%-26s %s\n", rule.name, rule.what);
    }
    return 0;
  }
  const std::string format = json ? "json" : "text";
  const std::string baseline_arg = parser.get("baseline", "");
  const std::string dump_lock_graph = parser.get("dump-lock-graph", "");
  const std::string dump_effects = parser.get("dump-effects", "");
  const std::string out_path = parser.get("out", "");
  const bool stale_check = !parser.on("no-stale-check");
  if (parser.positionals().empty()) {
    std::fprintf(stderr, "darnet_analyze: missing <repo_root> operand\n");
    return 2;
  }
  const std::string root = parser.positionals().front();
  std::filesystem::path rp(root);
  if (!std::filesystem::exists(rp / "src")) {
    std::fprintf(stderr, "darnet_analyze: '%s' does not look like the repo root (no src/)\n",
                 root.c_str());
    return 2;
  }

  AnalysisResult res = analyze_tree(rp);

  // Baseline: explicit path wins; otherwise the checked-in default (if any).
  std::string baseline_path = baseline_arg;
  if (baseline_path.empty()) {
    auto def = rp / "tools" / "analyze" / "analyze_baseline.json";
    if (std::filesystem::exists(def)) baseline_path = def.generic_string();
  }
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "darnet_analyze: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::vector<Suppression> baseline;
    std::string err;
    if (!parse_baseline(ss.str(), baseline, err)) {
      std::fprintf(stderr, "darnet_analyze: malformed baseline '%s': %s\n",
                   baseline_path.c_str(), err.c_str());
      return 2;
    }
    apply_baseline(res.findings, baseline, "tools/analyze/analyze_baseline.json",
                   stale_check);
  }
  sort_findings(res.findings);

  if (!dump_lock_graph.empty()) {
    std::ofstream out(dump_lock_graph, std::ios::binary);
    out << "{\"edges\":[";
    for (size_t i = 0; i < res.lock_edges.size(); ++i) {
      const auto& e = res.lock_edges[i];
      out << (i ? "," : "") << "\n  {\"from\":\"" << e.from << "\",\"to\":\""
          << e.to << "\",\"file\":\"" << e.file << "\",\"line\":" << e.line
          << "}";
    }
    out << (res.lock_edges.empty() ? "" : "\n") << "]}\n";
  }

  // --dump-effects: one entry per function with a non-empty effect, sorted by
  // (file, line), so a refactor can diff which functions gained or lost a
  // may-block / reads-clock effect.
  if (!dump_effects.empty()) {
    std::ofstream out(dump_effects, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "darnet_analyze: cannot write '%s'\n",
                   dump_effects.c_str());
      return 2;
    }
    auto path_array = [&out](const std::vector<std::string>& path) {
      out << "[";
      for (size_t i = 0; i < path.size(); ++i)
        out << (i ? "," : "") << "\"" << path[i] << "\"";
      out << "]";
    };
    out << "{\"effects\":[";
    for (size_t i = 0; i < res.effects.size(); ++i) {
      const auto& e = res.effects[i];
      out << (i ? "," : "") << "\n  {\"symbol\":\"" << e.symbol
          << "\",\"file\":\"" << e.file << "\",\"line\":" << e.line
          << ",\"may_block\":" << (e.may_block ? "true" : "false")
          << ",\"reads_clock\":" << (e.reads_clock ? "true" : "false")
          << ",\"block_path\":";
      path_array(e.block_path);
      out << ",\"clock_path\":";
      path_array(e.clock_path);
      out << "}";
    }
    out << (res.effects.empty() ? "" : "\n") << "]}\n";
  }

  if (format == "json") {
    std::cout << format_json(res.findings);
  }
  std::cerr << format_text(res.findings);
  if (!out_path.empty() && out_path != "-") {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "darnet_analyze: cannot write '%s'\n",
                   out_path.c_str());
      return 2;
    }
    out << (json ? format_json(res.findings) : format_text(res.findings));
  }
  if (res.findings.empty()) {
    std::fprintf(stderr,
                 "darnet_analyze: clean (%d files, %d functions, %zu lock "
                 "edges)\n",
                 res.files_indexed, res.functions_indexed,
                 res.lock_edges.size());
    return 0;
  }
  std::fprintf(stderr, "darnet_analyze: %zu finding(s)\n", res.findings.size());
  return 1;
}
