#include "tools/analyze/lexer.hpp"

#include <array>
#include <cctype>

namespace darnet::analyze {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first for maximal munch.
constexpr std::array<std::string_view, 24> kPunct3 = {
    "<<=", ">>=", "...", "->*", "<=>",
    // length-2 entries follow; scanning order within the array is by length
    // because we try 3-char matches before 2-char ones in punct().
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
};

// Encoding prefixes that may precede a string literal.
bool is_string_prefix(std::string_view id) {
  return id == "L" || id == "u" || id == "U" || id == "u8";
}
bool is_raw_prefix(std::string_view id) {
  return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}

struct Lexer {
  std::string_view s;
  size_t i = 0;
  int line = 1;
  LexedFile out;

  // Conditional-compilation stack. Each frame tracks whether we are currently
  // emitting tokens for this branch. `skip_active` counts frames in a
  // skipping state so the hot check is a single integer compare.
  struct CondFrame {
    bool skipping;
  };
  std::vector<CondFrame> cond;
  int skip_active = 0;

  bool at_line_start = true;  // no token emitted yet on this line

  char cur() const { return i < s.size() ? s[i] : '\0'; }
  char peek(size_t k = 1) const { return i + k < s.size() ? s[i + k] : '\0'; }
  bool emitting() const { return skip_active == 0; }

  void newline() {
    ++line;
    at_line_start = true;
  }

  // Consume a backslash-newline splice if present at `i`. Returns true if one
  // was consumed.
  bool splice() {
    if (cur() != '\\') return false;
    size_t j = i + 1;
    if (j < s.size() && s[j] == '\r') ++j;
    if (j < s.size() && s[j] == '\n') {
      i = j + 1;
      ++line;  // splices do not reset at_line_start: logical line continues
      return true;
    }
    return false;
  }

  void push(Tok kind, std::string text, int at_line) {
    if (emitting()) out.tokens.push_back(Token{kind, std::move(text), at_line});
  }

  void line_comment() {
    i += 2;
    while (i < s.size()) {
      if (splice()) continue;  // comment continues onto next physical line
      if (s[i] == '\n') return;  // leave the newline for the main loop
      ++i;
    }
  }

  void block_comment() {
    i += 2;
    // Standard C++ block comments do not nest; pinned by a lexer unit test.
    while (i < s.size()) {
      if (s[i] == '*' && peek() == '/') {
        i += 2;
        return;
      }
      if (s[i] == '\n') ++line;
      ++i;
    }
  }

  // Ordinary string or char literal starting at the opening quote.
  void quoted(char quote, Tok kind) {
    int at_line = line;
    ++i;
    std::string text;
    while (i < s.size()) {
      char c = s[i];
      if (c == '\\') {
        if (splice()) continue;
        // Keep escapes verbatim in the token text.
        text += c;
        ++i;
        if (i < s.size()) {
          if (s[i] == '\n') ++line;
          text += s[i];
          ++i;
        }
        continue;
      }
      if (c == quote) {
        ++i;
        break;
      }
      if (c == '\n') ++line;  // malformed, but keep line numbers honest
      text += c;
      ++i;
    }
    push(kind, std::move(text), at_line);
  }

  // Raw string literal; `i` is at the opening quote, prefix already consumed.
  void raw_string() {
    int at_line = line;
    ++i;  // "
    std::string delim;
    while (i < s.size() && s[i] != '(' && delim.size() < 16) {
      delim += s[i];
      ++i;
    }
    if (i < s.size()) ++i;  // (
    std::string closer = ")" + delim + "\"";
    std::string text;
    while (i < s.size()) {
      if (s.compare(i, closer.size(), closer) == 0) {
        i += closer.size();
        push(Tok::kString, std::move(text), at_line);
        return;
      }
      if (s[i] == '\n') ++line;
      text += s[i];
      ++i;
    }
    push(Tok::kString, std::move(text), at_line);  // unterminated: close at EOF
  }

  std::string read_ident() {
    size_t start = i;
    while (i < s.size() && ident_cont(s[i])) ++i;
    return std::string(s.substr(start, i - start));
  }

  void number() {
    int at_line = line;
    std::string text;
    // pp-number: digits, idents chars, '.', exponent signs, digit separators.
    while (i < s.size()) {
      char c = s[i];
      if (ident_cont(c) || c == '.') {
        text += c;
        ++i;
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && i < s.size() &&
            (s[i] == '+' || s[i] == '-')) {
          text += s[i];
          ++i;
        }
        continue;
      }
      if (c == '\'' && i + 1 < s.size() && ident_cont(s[i + 1])) {
        text += c;  // digit separator as in 1'000'000
        ++i;
        continue;
      }
      break;
    }
    push(Tok::kNumber, std::move(text), at_line);
  }

  void punct() {
    int at_line = line;
    for (std::string_view p : kPunct3) {
      if (s.compare(i, p.size(), p) == 0) {
        i += p.size();
        push(Tok::kPunct, std::string(p), at_line);
        return;
      }
    }
    push(Tok::kPunct, std::string(1, s[i]), at_line);
    ++i;
  }

  // Reads the remainder of a directive's logical line (handling splices and
  // stripping comments) and returns it.
  std::string directive_rest() {
    std::string rest;
    while (i < s.size()) {
      if (splice()) {
        rest += ' ';
        continue;
      }
      char c = s[i];
      if (c == '\n') break;  // leave newline for the main loop
      if (c == '/' && peek() == '/') {
        line_comment();
        break;
      }
      if (c == '/' && peek() == '*') {
        block_comment();
        rest += ' ';
        continue;
      }
      rest += c;
      ++i;
    }
    // Trim.
    size_t b = rest.find_first_not_of(" \t");
    size_t e = rest.find_last_not_of(" \t");
    if (b == std::string::npos) return "";
    return rest.substr(b, e - b + 1);
  }

  void directive() {
    int at_line = line;
    ++i;  // '#'
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    while (splice()) {
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    }
    std::string name;
    if (i < s.size() && ident_start(s[i])) name = read_ident();
    std::string rest = directive_rest();

    // Conditional tracking. `#if 0` (exactly, after trimming) disables its
    // branch; all other conditions are treated as taken. An `#else`/`#elif`
    // re-enables a branch disabled by `#if 0` (over-approximation: we never
    // disable the else-branch of a taken `#if`).
    if (name == "if" || name == "ifdef" || name == "ifndef") {
      bool off = (name == "if" && rest == "0");
      cond.push_back(CondFrame{off});
      if (off) ++skip_active;
    } else if (name == "elif" || name == "else") {
      if (!cond.empty() && cond.back().skipping) {
        bool still_off = (name == "elif" && rest == "0");
        if (!still_off) {
          cond.back().skipping = false;
          --skip_active;
        }
      }
    } else if (name == "endif") {
      if (!cond.empty()) {
        if (cond.back().skipping) --skip_active;
        cond.pop_back();
      }
    }

    if (emitting() && !name.empty()) {
      out.directives.push_back(Directive{name, rest, at_line});
      if (name == "include" && rest.size() >= 2 &&
          (rest.front() == '"' || rest.front() == '<')) {
        char close = rest.front() == '"' ? '"' : '>';
        size_t end = rest.find(close, 1);
        if (end != std::string::npos) {
          out.includes.push_back(rest.substr(1, end - 1));
        }
      }
    }
  }

  void run() {
    while (i < s.size()) {
      char c = s[i];
      if (c == '\n') {
        ++i;
        newline();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        ++i;
        continue;
      }
      if (splice()) continue;
      if (c == '/' && peek() == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek() == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start) {
        directive();
        at_line_start = false;
        continue;
      }
      if (skip_active > 0) {
        // Inside a disabled region we still honour comments/strings (handled
        // above/below via normal scanning) but emit nothing. Scan literals so
        // a quote or '#' inside them cannot confuse directive detection.
        if (c == '"') {
          quoted('"', Tok::kString);
          at_line_start = false;
          continue;
        }
        if (c == '\'') {
          quoted('\'', Tok::kChar);
          at_line_start = false;
          continue;
        }
        ++i;
        at_line_start = false;
        continue;
      }
      if (ident_start(c)) {
        int at_line = line;
        std::string id = read_ident();
        if (i < s.size() && s[i] == '"') {
          if (is_raw_prefix(id)) {
            raw_string();
            at_line_start = false;
            continue;
          }
          if (is_string_prefix(id)) {
            quoted('"', Tok::kString);
            at_line_start = false;
            continue;
          }
        }
        if (i < s.size() && s[i] == '\'' &&
            (id == "L" || id == "u" || id == "U" || id == "u8")) {
          quoted('\'', Tok::kChar);
          at_line_start = false;
          continue;
        }
        push(Tok::kIdent, std::move(id), at_line);
        at_line_start = false;
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek()))) {
        number();
        at_line_start = false;
        continue;
      }
      if (c == '"') {
        quoted('"', Tok::kString);
        at_line_start = false;
        continue;
      }
      if (c == '\'') {
        quoted('\'', Tok::kChar);
        at_line_start = false;
        continue;
      }
      punct();
      at_line_start = false;
    }
  }
};

}  // namespace

LexedFile lex(std::string_view source, std::string path) {
  Lexer lx;
  lx.s = source;
  lx.out.path = std::move(path);
  lx.run();
  return lx.out;
}

}  // namespace darnet::analyze
