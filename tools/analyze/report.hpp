// darnet_analyze findings, reporting, and the baseline/suppression file.
//
// Output contract (shared with darnet_lint so run_fixtures.sh and humans read
// both the same way): one finding per line on stderr,
//     <file>:<line>: [<rule>] <message>
// exit 1 when findings remain, 0 when clean, 2 on usage/IO errors.
//
// --format=json writes a deterministic (sorted) JSON document to stdout:
//     {"findings":[{"rule":...,"file":...,"line":N,"symbol":...,
//                   "message":...},...]}
//
// The baseline file (tools/analyze/analyze_baseline.json) suppresses known,
// reviewed findings. Matching is on (rule, file, symbol) — deliberately not
// on line numbers, so unrelated edits don't invalidate entries. Every entry
// must keep matching something: a suppression that no longer fires becomes a
// `stale-baseline` finding so the file cannot rot.
#pragma once

#include <string>
#include <vector>

namespace darnet::analyze {

struct Finding {
  std::string rule;
  std::string file;  // repo-relative path
  int line = 0;
  std::string symbol;  // function/member/mutex the finding is about
  std::string message;
};

struct Suppression {
  std::string rule;
  std::string file;
  std::string symbol;
  std::string reason;
};

// Parse the baseline JSON. Returns false (with `error` set) on malformed
// input. The expected shape is
//   {"suppressions":[{"rule":"...","file":"...","symbol":"...",
//                     "reason":"..."},...]}
bool parse_baseline(const std::string& text, std::vector<Suppression>& out,
                    std::string& error);

// Apply the baseline: removes suppressed findings from `findings`; appends a
// `stale-baseline` finding for every suppression that matched nothing.
void apply_baseline(std::vector<Finding>& findings,
                    const std::vector<Suppression>& baseline,
                    const std::string& baseline_path, bool stale_check);

// Sort findings (file, line, rule, message) for deterministic output.
void sort_findings(std::vector<Finding>& findings);

// Render to the human format (one line per finding).
std::string format_text(const std::vector<Finding>& findings);

// Render the deterministic JSON document.
std::string format_json(const std::vector<Finding>& findings);

}  // namespace darnet::analyze
