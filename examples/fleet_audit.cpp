// Fleet audit: the "variable insurance rates / fleet managers" scenario
// from the paper's introduction.
//
// Simulates a small fleet whose drivers have different behavioural
// profiles (how often and how long they get distracted), streams each
// driver's session through the middleware, classifies per time-step with
// the trained ensemble, and produces a per-driver distraction report and
// risk ranking.
//
// Usage: fleet_audit [scale] [drivers]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "util/table.hpp"

namespace {

using namespace darnet;

/// Build a session where each distraction class appears with a
/// driver-specific propensity.
core::SessionScript make_profile_script(double distraction_rate,
                                        util::Rng& rng) {
  core::SessionScript script;
  double remaining = 120.0;
  while (remaining > 0.0) {
    const bool distracted = rng.chance(distraction_rate);
    const auto behaviour =
        distracted ? static_cast<vision::DriverClass>(rng.uniform_int(1, 5))
                   : vision::DriverClass::kNormal;
    const double len = rng.uniform(8.0, 15.0);
    script.segments.push_back({behaviour, std::min(len, remaining)});
    remaining -= len;
  }
  return script;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.015;
  const int drivers = argc > 2 ? std::atoi(argv[2]) : 4;

  std::cout << "Training the fleet's shared DarNet models (scale " << scale
            << ")...\n";
  core::DatasetConfig data_cfg;
  data_cfg.scale = scale;
  core::DarNet darnet{core::DarNetConfig{}};
  darnet.train(core::generate_dataset(data_cfg));

  struct DriverReport {
    std::string name;
    double true_rate;
    double measured_rate;
    double phone_rate;  // texting + talking specifically
    std::size_t steps;
  };
  std::vector<DriverReport> reports;

  util::Rng fleet_rng(2024);
  for (int d = 0; d < drivers; ++d) {
    // Spread propensities across the fleet: 10% .. 55%.
    const double propensity =
        0.10 + 0.45 * d / std::max(1, drivers - 1);
    const auto script = make_profile_script(propensity, fleet_rng);

    core::PipelineConfig cfg;
    cfg.seed = 500 + static_cast<std::uint64_t>(d);
    core::StreamingPipeline pipeline(script, cfg);
    const auto results =
        pipeline.run(&darnet, engine::ArchitectureKind::kCnnRnn);

    std::size_t distracted = 0, phone = 0, truly_distracted = 0;
    for (const auto& r : results) {
      if (r.predicted != 0) ++distracted;
      if (r.predicted == 1 || r.predicted == 2) ++phone;
      if (r.actual != 0) ++truly_distracted;
    }
    const double n =
        static_cast<double>(std::max<std::size_t>(1, results.size()));
    reports.push_back({"driver-" + std::to_string(d + 1),
                       static_cast<double>(truly_distracted) / n,
                       static_cast<double>(distracted) / n,
                       static_cast<double>(phone) / n,
                       results.size()});
    std::cout << "  streamed " << results.size() << " classified steps for "
              << reports.back().name << "\n";
  }

  std::sort(reports.begin(), reports.end(),
            [](const auto& a, const auto& b) {
              return a.measured_rate > b.measured_rate;
            });

  util::Table table({"Rank", "Driver", "Distracted (measured)",
                     "Phone use", "Distracted (ground truth)", "Steps"});
  int rank = 1;
  for (const auto& r : reports) {
    table.add_row({std::to_string(rank++), r.name,
                   util::fmt_pct(r.measured_rate), util::fmt_pct(r.phone_rate),
                   util::fmt_pct(r.true_rate), std::to_string(r.steps)});
  }
  std::cout << "\nFleet distraction audit (120 s per driver):\n"
            << table.render();
  std::cout << "\nRiskiest driver: " << reports.front().name
            << " -- measured distracted "
            << util::fmt_pct(reports.front().measured_rate)
            << " of driving time\n";
  return 0;
}
