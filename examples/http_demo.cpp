// HTTP-edge demo: the full PR-9 wire path in one process -- a 2-shard
// serve::Router behind the dependency-free http::Edge, exercised over
// real loopback TCP with the in-repo blocking client. This is also the
// binary tools/ci/check.sh boots for its http-smoke leg: it exits
// nonzero unless /healthz, /classify (including a mid-traffic snapshot
// hot swap and a quota 429) and /metrics all behave, and it prints the
// /metrics body so the leg can grep for the documented http/* rows.
//
// Usage: http_demo [sessions] [steps_per_session]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "http/edge.hpp"
#include "http/http.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

constexpr int kFeatures = 16;
constexpr int kClasses = 6;

std::shared_ptr<engine::EnsembleClassifier> make_ensemble() {
  util::Rng rng(42);
  auto model = std::make_shared<nn::Sequential>();
  model->emplace<nn::Dense>(kFeatures, kClasses, rng);
  auto frames = std::make_shared<engine::NeuralClassifier>(model, kClasses,
                                                           "edge-cnn");
  return std::make_shared<engine::EnsembleClassifier>(
      frames, nullptr, bayes::ClassMap::darnet_default());
}

serve::Router::Snapshot make_snapshot(int shards, std::uint64_t version) {
  serve::Router::Snapshot snapshot;
  snapshot.version = version;
  for (int s = 0; s < shards; ++s) {
    snapshot.replicas.push_back(make_ensemble());
  }
  return snapshot;
}

std::string frame_json(const Tensor& frame) {
  std::string out = "[";
  for (std::size_t i = 0; i < frame.numel(); ++i) {
    if (i) out += ",";
    out += std::to_string(frame[i]);
  }
  return out + "]";
}

[[nodiscard]] bool expect(bool ok, const std::string& what) {
  if (!ok) std::cerr << "http_demo: FAILED: " << what << "\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const int sessions = argc > 1 ? std::atoi(argv[1]) : 8;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 6;

  serve::RouterConfig router_config;
  router_config.shards = 2;
  router_config.shard.max_delay_us = 500;
  // Tenant 1 gets a deliberately tight quota so the demo can show a 429.
  router_config.quotas[1] = serve::TenantQuota{
      static_cast<double>(sessions * steps), 0.0};
  serve::Router router(make_snapshot(2, 1), router_config);

  http::EdgeConfig edge_config;
  edge_config.frame_shape = {1, kFeatures};
  http::Edge edge(router, edge_config);
  std::cout << "http_demo: edge listening on 127.0.0.1:" << edge.port()
            << " (2 shards, snapshot v" << router.snapshot_version()
            << ")\n";

  bool ok = true;

  http::ClientResponse health =
      http::get("127.0.0.1", edge.port(), "/healthz");
  ok &= expect(health.status == 200 &&
                   health.body.find("\"shards\":2") != std::string::npos,
               "/healthz");
  std::cout << "GET /healthz -> " << health.status << " " << health.body
            << "\n";

  // Classify traffic, flipping the snapshot mid-stream: nothing drops.
  util::Rng rng(7);
  int served = 0;
  for (int t = 0; t < steps; ++t) {
    if (t == steps / 2) {
      router.swap_snapshot(make_snapshot(2, 2));
      std::cout << "  (snapshot hot-swapped to v"
                << router.snapshot_version() << " mid-traffic)\n";
    }
    for (int s = 0; s < sessions; ++s) {
      const Tensor frame = Tensor::uniform({1, kFeatures}, 1.0f, rng);
      const std::string body = "{\"session\":" + std::to_string(s) +
                               ",\"tenant\":1,\"frame\":" +
                               frame_json(frame) + "}";
      http::ClientResponse reply =
          http::post("127.0.0.1", edge.port(), "/classify", body);
      ok &= expect(reply.status == 200, "classify session " +
                                            std::to_string(s) + " step " +
                                            std::to_string(t));
      served += reply.status == 200;
    }
  }
  std::cout << "POST /classify x" << served << " -> 200 (zero dropped "
            << "across the swap)\n";

  // The quota is exactly spent: one more request for tenant 1 is clipped.
  const std::string extra =
      "{\"session\":0,\"tenant\":1,\"frame\":" +
      frame_json(Tensor({1, kFeatures})) + "}";
  http::ClientResponse clipped =
      http::post("127.0.0.1", edge.port(), "/classify", extra);
  ok &= expect(clipped.status == 429, "quota 429");
  std::cout << "POST /classify (tenant over quota) -> " << clipped.status
            << " " << clipped.body << "\n";

  http::ClientResponse bad =
      http::post("127.0.0.1", edge.port(), "/classify", "{\"frame\":[]}");
  ok &= expect(bad.status == 400, "malformed body 400");

  http::ClientResponse metrics =
      http::get("127.0.0.1", edge.port(), "/metrics");
  ok &= expect(metrics.status == 200 && metrics.body.find("http/") !=
                                            std::string::npos,
               "/metrics carries http/* rows");
  std::cout << "GET /metrics -> " << metrics.status << "\n"
            << metrics.body << "\n";

  edge.stop();
  router.drain();

  const serve::Router::Stats stats = router.stats();
  std::cout << "router: routed=" << stats.routed
            << " quota_rejected=" << stats.quota_rejected
            << " snapshot_swaps=" << stats.snapshot_swaps << "\n";
  ok &= expect(stats.routed == static_cast<std::uint64_t>(served),
               "routed == served");
  ok &= expect(stats.quota_rejected == 1, "one quota rejection");

  if (!ok) return 1;
  std::cout << "http_demo: OK\n";
  return 0;
}
