// Real-time distraction monitor: the "real-time alerts to drivers and
// fleet managers" scenario from the paper's introduction.
//
// Trains DarNet offline, then streams a scripted driving session through
// the full collection middleware (camera agent + phone agent -> controller
// -> analytics engine) and prints a live timeline. An alert fires when
// distracted behaviour persists across consecutive time-steps -- single-
// frame blips are debounced, mirroring how a deployment would trade alert
// latency against false positives.
//
// Usage: realtime_monitor [scale] [alert_streak]
//
// With an observability-enabled build (cmake -DDARNET_OBS=ON, the default)
// set DARNET_OBS_DUMP=<dir> to write <dir>/metrics.json (the registry
// snapshot) and <dir>/trace.json (chrome://tracing timeline) on exit.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "engine/streaming.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.015;
  const int alert_streak = argc > 2 ? std::atoi(argv[2]) : 2;

  std::cout << "Training DarNet (scale " << scale << ")...\n";
  core::DatasetConfig data_cfg;
  data_cfg.scale = scale;
  core::DarNet darnet{core::DarNetConfig{}};
  darnet.train(core::generate_dataset(data_cfg));

  // A commute with two distraction episodes.
  core::SessionScript script;
  script.segments = {{vision::DriverClass::kNormal, 20.0},
                     {vision::DriverClass::kTexting, 15.0},
                     {vision::DriverClass::kNormal, 15.0},
                     {vision::DriverClass::kEating, 15.0},
                     {vision::DriverClass::kNormal, 10.0}};

  std::cout << "Streaming a " << util::fmt(script.total_duration(), 0)
            << "s session through the middleware...\n\n";
  core::StreamingPipeline pipeline(script, core::PipelineConfig{});
  const auto results =
      pipeline.run(&darnet, engine::ArchitectureKind::kCnnRnn);

  // Post-process the raw per-timestep distributions through the library's
  // temporal smoothing + debounced alerting.
  engine::StreamingConfig stream_cfg;
  stream_cfg.alert_streak = alert_streak;
  std::vector<tensor::Tensor> timeline;
  timeline.reserve(results.size());
  for (const auto& r : results) timeline.push_back(r.distribution);
  const auto verdicts = engine::smooth_timeline(timeline, stream_cfg);

  int correct = 0, alerts = 0;
  std::cout << "  time  smoothed          actual            alert\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto& v = verdicts[i];
    if (v.predicted == r.actual) ++correct;
    if (v.alert_onset) ++alerts;
    std::printf("  %4.0fs %-17s %-17s %s\n", r.time,
                vision::driver_class_name(
                    static_cast<vision::DriverClass>(v.predicted)),
                vision::driver_class_name(
                    static_cast<vision::DriverClass>(r.actual)),
                v.alert ? "*** DISTRACTED ***" : "");
  }

  const double acc =
      results.empty() ? 0.0
                      : static_cast<double>(correct) / static_cast<double>(results.size());
  std::cout << "\nSummary: " << results.size()
            << " classifications, smoothed Top-1 " << util::fmt_pct(acc)
            << ", " << alerts << " alert episodes (debounce " << alert_streak
            << " steps)\n";
  std::cout << "Residual phone clock error: "
            << util::fmt(std::abs(pipeline.phone_clock_error()) * 1e3, 1)
            << " ms after 5s-period master-slave sync\n";

  // Observability dump: DARNET_OBS_DUMP=/tmp/obs realtime_monitor writes
  // the metrics snapshot and the chrome://tracing span timeline there.
  if (const char* dump = std::getenv("DARNET_OBS_DUMP");
      dump != nullptr && *dump != '\0' && obs::enabled()) {
    const std::string dir(dump);
    obs::registry().write_json(dir + "/metrics.json");
    obs::write_trace(dir + "/trace.json");
    std::cout << "Observability dump: " << dir << "/metrics.json, " << dir
              << "/trace.json\n";
  }
  return 0;
}
