// Privacy explorer: walks the paper's privacy pipeline interactively.
//
// For each distortion level it shows what actually leaves the vehicle
// (ASCII preview of the down-sampled frame), distils a dCNN student from
// the clean teacher, and reports the three-way trade-off the user is
// choosing between: privacy (information removed), bandwidth, and
// accuracy -- the decision surface behind Figure 3 / Table 3.
//
// Usage: privacy_explorer [per_class_train]
#include <cstdlib>
#include <iostream>

#include "core/dataset.hpp"
#include "engine/architectures.hpp"
#include "nn/trainer.hpp"
#include "privacy/privacy.hpp"
#include "tensor/ops.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"

using namespace darnet;
using tensor::Tensor;

namespace {

nn::Sequential make_model(std::uint64_t seed) {
  engine::FrameCnnConfig cfg;
  cfg.num_classes = vision::kFineClassCount;
  cfg.seed = seed;
  return engine::build_frame_cnn(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const int per_class = argc > 1 ? std::atoi(argv[1]) : 24;

  // GoPro-quality capture (the second dataset's recording setup).
  vision::RenderConfig render;
  render.pixel_noise = 0.05;
  render.pose_noise = 1.0;
  const core::FineDataset train_set =
      core::generate_fine_dataset(per_class, render, 71);
  const core::FineDataset eval_set =
      core::generate_fine_dataset(8, render, 72);

  std::cout << "Training the teacher CNN on " << train_set.frames.dim(0)
            << " clean 18-class frames...\n";
  nn::Sequential teacher = make_model(1);
  {
    nn::Sgd opt(0.03, 0.9, 1e-4);
    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 32;
    nn::train_classifier(teacher, opt, train_set.frames, train_set.labels,
                         tc);
  }
  const double teacher_acc =
      nn::evaluate(teacher, eval_set.frames, eval_set.labels,
                   vision::kFineClassCount)
          .accuracy();

  // Show what each level actually transmits.
  util::Rng rng(5);
  vision::RenderConfig exemplar_cfg;
  exemplar_cfg.prop_visibility = 1.0;
  const vision::Image exemplar = vision::render_driver_scene(
      vision::DriverClass::kTalking, exemplar_cfg, rng);

  privacy::PrivacyRouter router;
  router.register_model(privacy::DistortionLevel::kNone, teacher, 48);

  util::Table table({"Level", "Transmitted", "Bandwidth", "Hit@1"});
  table.add_row({"none", "48x48 (full frame)", "1.0x",
                 util::fmt_pct(teacher_acc)});

  std::vector<nn::Sequential> students;  // keep alive for the router
  students.reserve(3);
  const privacy::DistortionLevel levels[] = {
      privacy::DistortionLevel::kLow, privacy::DistortionLevel::kMedium,
      privacy::DistortionLevel::kHigh};
  for (privacy::DistortionLevel level : levels) {
    privacy::DistortionModule module(level);
    const privacy::TaggedFrame tagged = module.process(exemplar);
    std::cout << "\nWhat leaves the vehicle at "
              << privacy::distortion_name(level) << " ("
              << tagged.image.width() << "x" << tagged.image.height()
              << "):\n"
              << vision::to_ascii(
                     privacy::reconstruct(tagged, 48), 40);

    // Distill the matching student (unsupervised: teacher logits only).
    students.push_back(make_model(50 + static_cast<std::uint64_t>(level)));
    nn::Sequential& student = students.back();
    util::BinaryWriter w;
    teacher.save_params(w);
    util::BinaryReader r(w.bytes());
    student.load_params(r);
    nn::Sgd opt(0.01, 0.9);
    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.batch_size = 32;
    privacy::distill_dcnn(student, teacher, train_set.frames, level, opt, tc);
    router.register_model(level, student, 48);

    const Tensor distorted =
        privacy::apply_distortion(eval_set.frames, level);
    const double acc = nn::evaluate(student, distorted, eval_set.labels,
                                    vision::kFineClassCount)
                           .accuracy();
    const double ratio =
        static_cast<double>(privacy::wire_bytes(
            privacy::DistortionModule(privacy::DistortionLevel::kNone)
                .process(exemplar))) /
        static_cast<double>(privacy::wire_bytes(tagged));
    table.add_row({privacy::distortion_name(level),
                   std::to_string(tagged.image.width()) + "x" +
                       std::to_string(tagged.image.height()),
                   util::fmt(ratio, 1) + "x less", util::fmt_pct(acc)});
  }

  std::cout << "\nPrivacy / bandwidth / accuracy trade-off:\n"
            << table.render();

  // Demonstrate server-side routing by tag.
  const privacy::TaggedFrame shipped =
      privacy::DistortionModule(privacy::DistortionLevel::kMedium)
          .process(exemplar);
  const Tensor p = router.classify(shipped);
  std::cout << "\nRouter demo: a medium-tagged frame was classified by "
               "dCNN-M; top probability "
            << util::fmt_pct(tensor::max_value(p)) << "\n";
  return 0;
}
