// Quickstart: generate a multimodal distracted-driving dataset, train
// DarNet, and compare the three Table-2 architectures.
//
// Usage: quickstart [scale]
//   scale -- fraction of the paper's 57,080-frame dataset to generate
//            (default 0.02; larger is slower but more accurate).
#include <cstdlib>
#include <iostream>

#include "core/darnet.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;

  core::DatasetConfig data_cfg;
  data_cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  data_cfg.seed = 42;

  std::cout << "Generating dataset (scale " << data_cfg.scale << " of "
            << core::kPaperTotalFrames << " frames)...\n";
  util::Stopwatch watch;
  const core::Dataset data = core::generate_dataset(data_cfg);
  const auto split = core::split_dataset(data, 0.8, 7);
  std::cout << "  " << data.size() << " samples (" << split.train.size()
            << " train / " << split.eval.size() << " eval) in "
            << util::fmt(watch.seconds(), 1) << "s\n";

  core::DarNet darnet{core::DarNetConfig{}};
  std::cout << "Training CNN (" << darnet.frame_cnn().parameter_count()
            << " params), BiLSTM (" << darnet.imu_rnn().parameter_count()
            << " params), SVM...\n";
  watch.reset();
  const auto report = darnet.train(split.train);
  std::cout << "  trained in " << util::fmt(report.train_seconds, 1)
            << "s (CNN loss " << util::fmt(report.cnn_final_loss, 3)
            << ", RNN loss " << util::fmt(report.rnn_final_loss, 3) << ")\n\n";

  util::Table table({"Model", "Hit@1"});
  for (auto kind : {engine::ArchitectureKind::kCnnRnn,
                    engine::ArchitectureKind::kCnnSvm,
                    engine::ArchitectureKind::kCnnOnly}) {
    const auto cm = darnet.evaluate(split.eval, kind);
    table.add_row({engine::architecture_name(kind),
                   util::fmt_pct(cm.accuracy())});
  }
  std::cout << "Top-1 classification on the held-out 20% (cf. Table 2):\n"
            << table.render();

  const auto cm = darnet.evaluate(split.eval,
                                  engine::ArchitectureKind::kCnnRnn);
  std::cout << "\nCNN+RNN confusion matrix (row-normalised):\n"
            << cm.render();
  return 0;
}
