// Serving-tier demo: the paper's centralized analytics engine ("the
// controller forwards data to a remote server") multiplexing a small fleet
// of concurrent driver sessions onto one ensemble through darnet::serve.
//
// A lightweight frame model keeps the demo fast; the point is the serving
// machinery: admission, micro-batching, per-session smoothing, deadlines
// and the degraded-mode watermark, all visible in the printed stats and --
// with DARNET_OBS_DUMP=<dir> -- in <dir>/metrics.json + <dir>/trace.json.
//
// Usage: serve_demo [sessions] [steps_per_session]
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "obs/obs.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace darnet;
  using tensor::Tensor;

  const int sessions = argc > 1 ? std::atoi(argv[1]) : 6;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;
  constexpr int kFeatures = 16;
  constexpr int kClasses = 6;

  // A small input-dependent frame model standing in for the frame CNN.
  util::Rng rng(42);
  auto model = std::make_shared<nn::Sequential>();
  model->emplace<nn::Dense>(kFeatures, kClasses, rng);
  auto frame_model =
      std::make_shared<engine::NeuralClassifier>(model, kClasses, "demo-cnn");
  auto ensemble = std::make_shared<engine::EnsembleClassifier>(
      frame_model, nullptr, bayes::ClassMap::darnet_default());

  serve::ShardConfig config;
  config.max_batch = 8;
  config.max_delay_us = 1000;
  config.queue_capacity = 128;
  config.workers = 2;
  config.streaming.smoothing_alpha = 0.5;
  config.streaming.alert_streak = 2;
  serve::Server server(ensemble, config);

  std::cout << "Serving " << sessions << " concurrent driver sessions, "
            << steps << " frames each (max_batch " << config.max_batch
            << ", max_delay " << config.max_delay_us << "us)...\n";

  // Riffle the sessions' frames into one submission stream, as if the
  // vehicles were uploading concurrently.
  std::vector<std::vector<std::future<serve::Response>>> futures(
      static_cast<std::size_t>(sessions));
  std::vector<int> cursor(static_cast<std::size_t>(sessions), 0);
  int remaining = sessions * steps;
  while (remaining > 0) {
    const auto s = rng.uniform_index(static_cast<std::uint64_t>(sessions));
    if (cursor[s] >= steps) continue;
    engine::ClassifyRequest request;
    request.session_id = s;
    request.frame = Tensor::uniform({1, kFeatures}, 1.0f, rng);
    auto sub = server.submit(std::move(request));
    if (sub.admit != serve::Admit::kRejected) {
      futures[s].push_back(std::move(sub.response));
    }
    ++cursor[s];
    --remaining;
  }
  server.drain();

  std::cout << "\n  session  served  alerts  final-class\n";
  for (int s = 0; s < sessions; ++s) {
    int ok = 0;
    int last = -1;
    for (auto& f : futures[static_cast<std::size_t>(s)]) {
      const serve::Response r = f.get();
      if (r.status == serve::Status::kOk) {
        ++ok;
        last = r.result.verdict.predicted;
      }
    }
    const auto state = server.session(static_cast<std::uint64_t>(s));
    std::printf("  %7d  %6d  %6d  %d\n", s, ok, state.alerts, last);
  }

  const auto stats = server.stats();
  std::cout << "\nServer stats: " << stats.submitted << " submitted, "
            << stats.completed << " completed in " << stats.batches
            << " batches (" << stats.batched_rows << " rows, "
            << stats.degraded_batches << " degraded), " << stats.shed
            << " shed, " << stats.timeouts << " timeouts, " << stats.rejected
            << " rejected\n";

  // Observability dump: DARNET_OBS_DUMP=/tmp/obs serve_demo writes the
  // metrics snapshot and the chrome://tracing span timeline there.
  if (const char* dump = std::getenv("DARNET_OBS_DUMP");
      dump != nullptr && *dump != '\0' && obs::enabled()) {
    const std::string dir(dump);
    obs::registry().write_json(dir + "/metrics.json");
    obs::write_trace(dir + "/trace.json");
    std::cout << "Observability dump: " << dir << "/metrics.json, " << dir
              << "/trace.json\n";
  }
  // Every admitted future resolved (drain() guarantees it); the demo
  // fails only if nothing was actually served.
  return stats.completed > 0 ? 0 : 1;
}
