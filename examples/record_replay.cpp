// Offline processing workflow (Section 4.1: "The data is transferred and
// processed in an offline manner"):
//
//   1. record a live session's controller-inbound traffic to a file,
//   2. train DarNet and checkpoint the frame CNN to disk,
//   3. later: reload the recording, replay it into a fresh controller with
//      original timing, restore the model from its checkpoint, and
//      classify the replayed session -- bit-identical to the live run.
//
// Usage: record_replay [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "collection/recording.hpp"
#include "core/pipeline.hpp"
#include "nn/checkpoint.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace darnet;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.015;
  const std::string recording_path = "/tmp/darnet_session.rec";
  const std::string checkpoint_path = "/tmp/darnet_cnn.ckpt";

  // --- Phase 1: live collection, recorded at the controller's ingress ---
  core::SessionScript script;
  script.segments = {{vision::DriverClass::kNormal, 12.0},
                     {vision::DriverClass::kTalking, 12.0},
                     {vision::DriverClass::kReaching, 12.0}};

  collection::SessionRecording recording;
  {
    collection::Simulation sim;
    collection::ControllerConfig ctrl_cfg;
    collection::Controller controller(sim, ctrl_cfg);
    collection::LinkConfig link_cfg;
    collection::VirtualLink up(sim, link_cfg, 1);
    collection::VirtualLink down(sim, link_cfg, 2);

    collection::AgentConfig agent_cfg;
    agent_cfg.agent_id = 2;
    agent_cfg.clock_drift_ppm = 200.0;
    collection::CollectionAgent agent(sim, agent_cfg, up);

    // The tap records every payload while delivering it.
    collection::RecordingTap tap(sim, controller, recording);
    up.set_receiver([&tap](std::vector<std::uint8_t> b) {
      tap(std::move(b));
    });
    down.set_receiver([&agent](std::vector<std::uint8_t> b) {
      agent.on_message(b);
    });
    controller.attach_agent(2, down);

    util::Rng rng(3);
    core::SessionScript* script_ptr = &script;
    imu::ImuGenConfig gen;
    gen.duration_s = script.total_duration();
    const auto trace = imu::generate_trace(
        imu::PhoneOrientation::kPocket, gen, rng);
    agent.add_sensor(std::make_unique<collection::CallbackSensor>(
        "imu.accel", 0.025, [&trace, gen](collection::SimTime now) {
          const auto idx = std::min(
              trace.size() - 1,
              static_cast<std::size_t>(now * gen.sample_hz));
          return std::vector<float>(trace[idx].accel.begin(),
                                    trace[idx].accel.end());
        }));
    (void)script_ptr;

    controller.start();
    agent.start();
    sim.run_until(script.total_duration());
    std::cout << "Recorded " << recording.size() << " messages over "
              << util::fmt(recording.duration(), 1) << "s of session time ("
              << controller.tuples_received() << " tuples delivered live)\n";
  }
  recording.save(recording_path);
  std::cout << "Saved recording to " << recording_path << "\n";

  // --- Phase 2: train and checkpoint a model ---
  std::cout << "\nTraining DarNet (scale " << scale << ")...\n";
  core::DatasetConfig data_cfg;
  data_cfg.scale = scale;
  core::DarNet darnet{core::DarNetConfig{}};
  darnet.train(core::generate_dataset(data_cfg));
  nn::save_checkpoint(darnet.frame_cnn(), checkpoint_path);
  std::cout << "Checkpointed the frame CNN ("
            << darnet.frame_cnn().parameter_count() << " params) to "
            << checkpoint_path << "\n";

  // --- Phase 3: offline -- reload everything and replay ---
  const auto loaded = collection::SessionRecording::load(recording_path);
  collection::Simulation replay_sim;
  collection::Controller replay_controller(replay_sim, {});
  loaded.replay_into(replay_sim, replay_controller);
  replay_sim.run_until(loaded.duration() + 1.0);

  core::DarNet restored{core::DarNetConfig{}};
  nn::load_checkpoint(restored.frame_cnn(), checkpoint_path);

  util::Table table({"Check", "Result"});
  table.add_row({"messages replayed", std::to_string(loaded.size())});
  table.add_row({"tuples after replay",
                 std::to_string(replay_controller.tuples_received())});
  table.add_row({"accel stream rows",
                 std::to_string(replay_controller.store().count("imu.accel"))});

  // The restored CNN must agree with the live one everywhere.
  util::Rng rng(9);
  const tensor::Tensor probe = tensor::Tensor::uniform({4, 1, 48, 48},
                                                       0.5f, rng);
  const auto live_out = darnet.frame_cnn().forward(probe, false);
  const auto restored_out = restored.frame_cnn().forward(probe, false);
  bool identical = true;
  for (std::size_t i = 0; i < live_out.numel(); ++i) {
    identical = identical && live_out[i] == restored_out[i];
  }
  table.add_row({"checkpoint outputs identical", identical ? "yes" : "NO"});
  std::cout << "\nOffline replay verification:\n" << table.render();

  std::remove(recording_path.c_str());
  std::remove(checkpoint_path.c_str());
  return identical ? 0 : 1;
}
