// Tests for the N-modality Bayesian combiner (the paper's "extensible to
// adding more modalities" future-work feature).
#include <gtest/gtest.h>

#include "bayes/combiner.hpp"
#include "bayes/multimodal.hpp"
#include "util/rng.hpp"

namespace {

using namespace darnet;
using bayes::ModalityMap;
using bayes::MultiModalCombiner;
using tensor::Tensor;

Tensor confident(std::span<const int> classes, int c_total, float conf) {
  Tensor t({static_cast<int>(classes.size()), c_total});
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const float rest = (1.0f - conf) / static_cast<float>(c_total - 1);
    for (int c = 0; c < c_total; ++c) {
      t.at(static_cast<int>(i), c) =
          (c == classes[i]) ? conf : rest;
    }
  }
  return t;
}

TEST(MultiModal, ValidatesConstruction) {
  EXPECT_THROW(MultiModalCombiner(6, {}), std::invalid_argument);
  EXPECT_THROW(MultiModalCombiner(
                   6, {ModalityMap{{0, 1, 2, 0, 0}, 3}}),  // wrong length
               std::invalid_argument);
  EXPECT_THROW(MultiModalCombiner(
                   6, {ModalityMap{{0, 1, 5, 0, 0, 0}, 3}}),  // target oob
               std::invalid_argument);
}

TEST(MultiModal, IdentityMapCoversAllClasses) {
  const auto map = MultiModalCombiner::identity_map(4);
  EXPECT_EQ(map.modality_classes, 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(map.image_to_modality[static_cast<std::size_t>(c)], c);
  }
}

TEST(MultiModal, CombineBeforeFitThrows) {
  MultiModalCombiner combiner(3, {MultiModalCombiner::identity_map(3)});
  const std::vector<Tensor> probs{Tensor({1, 3})};
  EXPECT_THROW((void)combiner.combine(probs), std::logic_error);
}

TEST(MultiModal, TwoParentReducesToDeployedCombinerBehaviour) {
  // Same data through the deployed 2-parent BayesianCombiner and the
  // generalised combiner with M = 2: predictions must agree.
  util::Rng rng(3);
  const int n = 200;
  Tensor p_img({n, 6}), p_imu({n, 3});
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] =
        static_cast<int>(rng.uniform_index(6));
    float s6 = 0, s3 = 0;
    for (int c = 0; c < 6; ++c) {
      s6 += p_img.at(i, c) = static_cast<float>(rng.uniform(0.01, 1.0));
    }
    for (int c = 0; c < 3; ++c) {
      s3 += p_imu.at(i, c) = static_cast<float>(rng.uniform(0.01, 1.0));
    }
    for (int c = 0; c < 6; ++c) p_img.at(i, c) /= s6;
    for (int c = 0; c < 3; ++c) p_imu.at(i, c) /= s3;
  }

  bayes::BayesianCombiner deployed(bayes::ClassMap::darnet_default());
  deployed.fit(p_img, p_imu, labels);

  MultiModalCombiner general(
      6, {MultiModalCombiner::identity_map(6),
          ModalityMap{{0, 1, 2, 0, 0, 0}, 3}});
  const std::vector<Tensor> probs{p_img, p_imu};
  general.fit(probs, labels);

  const auto a = deployed.predict(p_img, p_imu);
  const auto b = general.predict(probs);
  int agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  // Identical math up to floating-point accumulation order.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(a.size()), 0.99);
}

TEST(MultiModal, OutputIsNormalised) {
  util::Rng rng(4);
  const std::vector<int> y{0, 1, 2, 0, 1, 2, 1, 0};
  const Tensor m0 = confident(y, 3, 0.8f);
  const Tensor m1 = confident(y, 3, 0.6f);
  MultiModalCombiner combiner(3, {MultiModalCombiner::identity_map(3),
                                  MultiModalCombiner::identity_map(3)});
  const std::vector<Tensor> probs{m0, m1};
  combiner.fit(probs, y);
  const Tensor fused = combiner.combine(probs);
  for (int i = 0; i < fused.dim(0); ++i) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(fused.at(i, c), 0.0f);
      sum += fused.at(i, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(MultiModal, ThirdModalityResolvesResidualAmbiguity) {
  // Modality A separates {0} vs {1,2}; modality B separates {0,1} vs {2};
  // neither alone resolves class 1; together they must.
  util::Rng rng(5);
  const int n = 600;
  Tensor a({n, 2}), b({n, 2});
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    const int y = i % 3;
    labels[static_cast<std::size_t>(i)] = y;
    const int a_class = (y == 0) ? 0 : 1;
    const int b_class = (y == 2) ? 1 : 0;
    const float ac = rng.chance(0.92) ? 0.9f : 0.1f;
    const float bc = rng.chance(0.92) ? 0.9f : 0.1f;
    a.at(i, a_class) = ac;
    a.at(i, 1 - a_class) = 1.0f - ac;
    b.at(i, b_class) = bc;
    b.at(i, 1 - b_class) = 1.0f - bc;
  }
  MultiModalCombiner combiner(
      3, {ModalityMap{{0, 1, 1}, 2}, ModalityMap{{0, 0, 1}, 2}});
  const std::vector<Tensor> probs{a, b};
  combiner.fit(probs, labels);
  const auto preds = combiner.predict(probs);
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  // Each binary modality alone caps out near 2/3; fused must be high.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(preds.size()), 0.8);
}

TEST(MultiModal, CptAccessorBoundsChecked) {
  MultiModalCombiner combiner(3, {MultiModalCombiner::identity_map(3)});
  EXPECT_THROW((void)combiner.cpt(0, 2), std::out_of_range);   // config >= 2
  EXPECT_THROW((void)combiner.cpt(3, 0), std::out_of_range);   // class oob
  EXPECT_DOUBLE_EQ(combiner.cpt(0, 0), 0.5);  // untrained prior
}

}  // namespace
