// Tests for cross-architecture weight transfer, auxiliary pretraining,
// and full-facade persistence (DarNet::save / DarNet::load).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/darnet.hpp"
#include "core/pretrain.hpp"
#include "nn/checkpoint.hpp"
#include "nn/dense.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

TEST(Transfer, CopiesLongestMatchingPrefix) {
  util::Rng rng(1);
  nn::Sequential src, dst;
  src.emplace<nn::Dense>(4, 8, rng);   // matches
  src.emplace<nn::Dense>(8, 18, rng);  // head: mismatched out dim
  dst.emplace<nn::Dense>(4, 8, rng);
  dst.emplace<nn::Dense>(8, 6, rng);

  const auto copied = nn::transfer_matching_params(src, dst);
  // Dense #1 contributes weight+bias; the second weight mismatches.
  EXPECT_EQ(copied, 2u);
  const auto sp = src.params();
  const auto dp = dst.params();
  for (std::size_t i = 0; i < copied; ++i) {
    for (std::size_t j = 0; j < sp[i]->value.numel(); ++j) {
      ASSERT_EQ(sp[i]->value[j], dp[i]->value[j]);
    }
  }
  // The mismatched head must be untouched (18 != 6 shapes anyway).
  EXPECT_EQ(dp[2]->value.dim(1), 6);
}

TEST(Transfer, NothingCopiedOnImmediateMismatch) {
  util::Rng rng(2);
  nn::Sequential src, dst;
  src.emplace<nn::Dense>(4, 8, rng);
  dst.emplace<nn::Dense>(5, 8, rng);
  EXPECT_EQ(nn::transfer_matching_params(src, dst), 0u);
}

TEST(Pretrain, TransfersFeatureExtractorIntoSixClassModel) {
  engine::FrameCnnConfig cfg;
  cfg.input_size = 16;  // small for test speed
  cfg.num_classes = 6;
  nn::Sequential cnn = engine::build_frame_cnn(cfg);
  const Tensor before_head =
      cnn.params().back()->value;  // head bias, stays random

  core::PretrainConfig pre;
  pre.samples_per_class = 3;
  pre.epochs = 1;
  const auto report = core::pretrain_frame_cnn(cnn, 16, pre);
  EXPECT_GT(report.params_transferred, 10u);
  EXPECT_GT(report.seconds, 0.0);
  // The 6-class head (last dense) must not have been replaced by the
  // 18-class aux head.
  EXPECT_EQ(cnn.params().back()->value.numel(), before_head.numel());
}

TEST(DarNetPersistence, SaveLoadRoundTripsAllModels) {
  core::DatasetConfig data_cfg;
  data_cfg.scale = 0.004;
  data_cfg.render.size = 16;
  const auto data = core::generate_dataset(data_cfg);

  core::DarNetConfig cfg;
  cfg.cnn.input_size = 16;
  cfg.cnn_epochs = 2;
  cfg.rnn_epochs = 2;
  core::DarNet original{cfg};
  original.train(data);

  const std::string path = "/tmp/darnet_bundle_test.bin";
  original.save(path);

  core::DarNet restored{cfg};
  EXPECT_FALSE(restored.trained());
  restored.load(path);
  EXPECT_TRUE(restored.trained());

  // All three architectures must classify identically.
  for (auto kind : {engine::ArchitectureKind::kCnnOnly,
                    engine::ArchitectureKind::kCnnSvm,
                    engine::ArchitectureKind::kCnnRnn}) {
    const Tensor a =
        original.classify(data.frames, data.imu_windows, kind);
    const Tensor b =
        restored.classify(data.frames, data.imu_windows, kind);
    ASSERT_TRUE(a.same_shape(b));
    for (std::size_t i = 0; i < a.numel(); ++i) {
      ASSERT_EQ(a[i], b[i]) << engine::architecture_name(kind);
    }
  }
  std::remove(path.c_str());
}

TEST(DarNetPersistence, SaveBeforeTrainThrows) {
  core::DarNet model{core::DarNetConfig{}};
  EXPECT_THROW(model.save("/tmp/never_written.bin"), std::logic_error);
}

TEST(DarNetPersistence, LoadRejectsForeignFiles) {
  const std::string path = "/tmp/darnet_not_a_bundle.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("junk", f);
    std::fclose(f);
  }
  core::DarNet model{core::DarNetConfig{}};
  EXPECT_THROW(model.load(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
