// Second parameterized property suite: gradient checks swept over layer
// geometries, augmentation invariants, recording equivalences, and SVM
// convergence across problem scales.
#include <gtest/gtest.h>

#include <cmath>

#include "collection/recording.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/lstm.hpp"
#include "nn/sequential.hpp"
#include "svm/svm.hpp"
#include "vision/augment.hpp"
#include "vision/renderer.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;
using util::Rng;

/// Compact finite-difference check reused across the sweeps below.
void check_gradients(nn::Layer& layer, Tensor x, double tol = 3e-2) {
  Rng rng(7);
  Tensor y = layer.forward(x, true);
  const Tensor w = Tensor::uniform(y.shape(), 1.0f, rng);
  auto loss = [&](const Tensor& input) {
    Tensor out = layer.forward(input, true);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i) {
      acc += static_cast<double>(w[i]) * out[i];
    }
    return acc;
  };
  (void)layer.forward(x, true);
  nn::zero_grads(layer);
  const Tensor grad = layer.backward(w);

  const float eps = 2e-3f;
  const std::size_t step = std::max<std::size_t>(1, x.numel() / 24);
  for (std::size_t i = 0; i < x.numel(); i += step) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2.0 * eps);
    ASSERT_NEAR(grad[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "flat index " << i;
  }
}

// --- BiLstm gradients across (T, D, H) geometries ---------------------------

class BiLstmGradientSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BiLstmGradientSweep, InputGradientsMatchFiniteDifference) {
  const auto [steps, dim, hidden] = GetParam();
  Rng rng(static_cast<std::uint64_t>(steps * 100 + dim * 10 + hidden));
  nn::BiLstm lstm(dim, hidden, rng);
  check_gradients(lstm, Tensor::uniform({2, steps, dim}, 0.8f, rng));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BiLstmGradientSweep,
    ::testing::Values(std::tuple{1, 2, 2}, std::tuple{3, 4, 2},
                      std::tuple{7, 2, 5}, std::tuple{5, 5, 3}));

// --- Conv2D gradients across kernel/padding ---------------------------------

class ConvGradientSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConvGradientSweep, InputGradientsMatchFiniteDifference) {
  const auto [kernel, pad] = GetParam();
  Rng rng(static_cast<std::uint64_t>(kernel * 10 + pad));
  nn::Conv2D conv(2, 3, kernel, pad, rng);
  check_gradients(conv, Tensor::uniform({1, 2, 7, 7}, 1.0f, rng));
}

INSTANTIATE_TEST_SUITE_P(Kernels, ConvGradientSweep,
                         ::testing::Values(std::tuple{1, 0}, std::tuple{3, 1},
                                           std::tuple{5, 2},
                                           std::tuple{3, 0}));

// --- BatchNorm across feature counts and ranks ------------------------------

class BatchNormSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchNormSweep, GradientsAndNormalisation) {
  const int features = GetParam();
  Rng rng(static_cast<std::uint64_t>(features));
  nn::BatchNorm bn(features);
  check_gradients(bn, Tensor::uniform({6, features}, 2.0f, rng));
}

INSTANTIATE_TEST_SUITE_P(Widths, BatchNormSweep, ::testing::Values(1, 3, 8));

// --- Augmentation invariants over configs ------------------------------------

class AugmentSweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(AugmentSweep, OutputStaysInRangeAndShape) {
  const auto [brightness, contrast, shift] = GetParam();
  vision::AugmentConfig cfg;
  cfg.brightness_delta = brightness;
  cfg.contrast_delta = contrast;
  cfg.max_shift_px = shift;
  Rng rng(11);
  const vision::Image src =
      vision::render_driver_scene(vision::DriverClass::kEating, {}, rng);
  for (int rep = 0; rep < 5; ++rep) {
    const vision::Image out = vision::augment(src, cfg, rng);
    ASSERT_EQ(out.width(), src.width());
    ASSERT_EQ(out.height(), src.height());
    for (float p : out.pixels()) {
      ASSERT_GE(p, 0.0f);
      ASSERT_LE(p, 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AugmentSweep,
    ::testing::Values(std::tuple{0.0, 0.0, 0}, std::tuple{0.3, 0.0, 0},
                      std::tuple{0.0, 0.4, 0}, std::tuple{0.0, 0.0, 4},
                      std::tuple{0.2, 0.2, 2}));

// --- Recording: drain and replay deliver identical store contents ------------

TEST(RecordingProperty, DrainAndReplayProduceIdenticalStores) {
  collection::SessionRecording rec;
  Rng rng(13);
  double t = 0.0;
  rec.append(t, collection::encode(collection::RegisterMessage{1, {"s"}}));
  for (int i = 0; i < 40; ++i) {
    t += rng.uniform(0.01, 0.2);
    collection::DataBatch batch;
    batch.agent_id = 1;
    batch.readings.push_back(
        {"s", t, {static_cast<float>(rng.gaussian())}, 0});
    rec.append(t, collection::encode(batch));
  }

  collection::Simulation sim_a;
  collection::Controller drained(sim_a, {});
  rec.drain_into(drained);

  collection::Simulation sim_b;
  collection::Controller replayed(sim_b, {});
  rec.replay_into(sim_b, replayed);
  sim_b.run_until(t + 1.0);

  ASSERT_EQ(drained.tuples_received(), replayed.tuples_received());
  const auto& sa = drained.store().series("s");
  const auto& sb = replayed.store().series("s");
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].timestamp, sb[i].timestamp);
    ASSERT_EQ(sa[i].values, sb[i].values);
  }
}

// --- SVM convergence across class counts and dimensionality ------------------

class SvmSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SvmSweep, SeparatesWellSeparatedGaussians) {
  const auto [classes, dim] = GetParam();
  Rng rng(static_cast<std::uint64_t>(classes * 31 + dim));
  const int per_class = 40;
  Tensor x({classes * per_class, dim});
  std::vector<int> y;
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      const int row = c * per_class + i;
      for (int d = 0; d < dim; ++d) {
        const double center = (d == c % dim) ? 6.0 * (1 + c / dim) : 0.0;
        x.at(row, d) = static_cast<float>(rng.gaussian(center, 0.5));
      }
      y.push_back(c);
    }
  }
  svm::LinearSvm model(dim, classes);
  model.fit(x, y);
  const auto preds = model.predict(x);
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(preds.size()), 0.95)
      << classes << " classes, " << dim << " dims";
}

INSTANTIATE_TEST_SUITE_P(Problems, SvmSweep,
                         ::testing::Values(std::tuple{2, 2}, std::tuple{3, 4},
                                           std::tuple{4, 8},
                                           std::tuple{6, 6}));

}  // namespace
