// Tests for the newer nn/vision/imu pieces: BatchNorm (including a
// gradient check), file checkpoints, extended metrics, streaming
// classifier, IMU summary features, and image augmentation.
#include <gtest/gtest.h>

#include <cstdio>

#include "engine/streaming.hpp"
#include "imu/features.hpp"
#include "nn/batchnorm.hpp"
#include "nn/checkpoint.hpp"
#include "nn/dense.hpp"
#include "nn/metrics.hpp"
#include "nn/sequential.hpp"
#include "vision/augment.hpp"
#include "vision/renderer.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;
using util::Rng;

// --- BatchNorm -------------------------------------------------------------

TEST(BatchNorm, TrainingOutputIsStandardisedPerChannel) {
  Rng rng(1);
  nn::BatchNorm bn(3);
  Tensor x({16, 3});
  for (int i = 0; i < 16; ++i) {
    x.at(i, 0) = static_cast<float>(rng.gaussian(5.0, 2.0));
    x.at(i, 1) = static_cast<float>(rng.gaussian(-3.0, 0.5));
    x.at(i, 2) = static_cast<float>(rng.gaussian(0.0, 10.0));
  }
  Tensor y = bn.forward(x, /*training=*/true);
  for (int c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (int i = 0; i < 16; ++i) mean += y.at(i, c);
    mean /= 16;
    for (int i = 0; i < 16; ++i) {
      var += (y.at(i, c) - mean) * (y.at(i, c) - mean);
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStatistics) {
  Rng rng(2);
  nn::BatchNorm bn(2);
  // Train on shifted data so running stats move off their init.
  for (int step = 0; step < 50; ++step) {
    Tensor x({8, 2});
    for (int i = 0; i < 8; ++i) {
      x.at(i, 0) = static_cast<float>(rng.gaussian(4.0, 1.0));
      x.at(i, 1) = static_cast<float>(rng.gaussian(-2.0, 1.0));
    }
    (void)bn.forward(x, true);
  }
  // In eval, an input AT the running mean must map near beta (= 0).
  Tensor probe({1, 2});
  probe.at(0, 0) = 4.0f;
  probe.at(0, 1) = -2.0f;
  Tensor y = bn.forward(probe, /*training=*/false);
  EXPECT_NEAR(y.at(0, 0), 0.0, 0.25);
  EXPECT_NEAR(y.at(0, 1), 0.0, 0.25);
}

TEST(BatchNorm, GradientMatchesFiniteDifference) {
  Rng rng(3);
  nn::BatchNorm bn(2);
  Tensor x = Tensor::uniform({5, 2}, 1.0f, rng);
  Tensor w = Tensor::uniform({5, 2}, 1.0f, rng);  // probe weights

  auto loss = [&](const Tensor& input) {
    Tensor y = bn.forward(input, true);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(w[i]) * y[i];
    }
    return acc;
  };

  (void)bn.forward(x, true);
  nn::zero_grads(bn);
  Tensor grad = bn.backward(w);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 2e-2 * std::max(1.0, std::abs(numeric)))
        << "index " << i;
  }
}

TEST(BatchNorm, HandlesNchwInputs) {
  Rng rng(4);
  nn::BatchNorm bn(3);
  Tensor x = Tensor::uniform({2, 3, 4, 4}, 2.0f, rng);
  Tensor y = bn.forward(x, true);
  EXPECT_TRUE(y.same_shape(x));
  EXPECT_THROW((void)bn.forward(Tensor({2, 5, 4, 4}), true),
               std::invalid_argument);
}

// --- Checkpoint files --------------------------------------------------------

TEST(Checkpoint, FileRoundTripAndValidation) {
  Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 3, rng);
  const std::string path = "/tmp/darnet_test_ckpt.bin";
  nn::save_checkpoint(model, path);

  Rng rng2(77);
  nn::Sequential other;
  other.emplace<nn::Dense>(4, 3, rng2);
  nn::load_checkpoint(other, path);
  Tensor x = Tensor::uniform({2, 4}, 1.0f, rng);
  const Tensor ya = model.forward(x, false);
  const Tensor yb = other.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);

  // Corrupt the magic: loading must fail loudly.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);
    std::fclose(f);
  }
  EXPECT_THROW(nn::load_checkpoint(other, path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(nn::load_checkpoint(other, path), std::runtime_error);
}

// --- Extended metrics --------------------------------------------------------

TEST(MetricsExtra, PrecisionRecallF1) {
  nn::ConfusionMatrix cm(2);
  // Class 0: 3 true, 2 predicted correctly; one 0 predicted as 1.
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  // Class 1: 2 true, 1 correct, 1 predicted as 0.
  cm.add(1, 1);
  cm.add(1, 0);
  EXPECT_NEAR(cm.class_precision(0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.class_recall(0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.class_f1(0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.class_precision(1), 1.0 / 2.0, 1e-9);
  EXPECT_NEAR(cm.macro_f1(), (2.0 / 3.0 + 0.5) / 2.0, 1e-9);
}

TEST(MetricsExtra, TopKAccuracy) {
  // scores rows: true class ranks 2nd in both samples.
  const std::vector<float> scores{0.5f, 0.3f, 0.2f,   // label 1 -> rank 2
                                  0.1f, 0.2f, 0.7f};  // label 1 -> rank 2
  const std::vector<int> labels{1, 1};
  EXPECT_DOUBLE_EQ(nn::topk_accuracy(scores, 3, labels, 1), 0.0);
  EXPECT_DOUBLE_EQ(nn::topk_accuracy(scores, 3, labels, 2), 1.0);
  EXPECT_DOUBLE_EQ(nn::topk_accuracy(scores, 3, labels, 3), 1.0);
  EXPECT_THROW((void)nn::topk_accuracy(scores, 3, labels, 4),
               std::invalid_argument);
}

// --- Streaming classifier ----------------------------------------------------

struct FixedClassifier final : engine::ProbabilisticClassifier {
  Tensor next{std::vector<int>{1, 6}};
  Tensor probabilities(const Tensor&) override { return next; }
  int num_classes() const override { return 6; }
  std::string describe() const override { return "fixed"; }
};

TEST(Streaming, SmoothsAndDebounces) {
  FixedClassifier cnn;
  engine::EnsembleClassifier ensemble(engine::borrow(cnn), nullptr,
                                      bayes::ClassMap::darnet_default());
  engine::StreamingConfig cfg;
  cfg.smoothing_alpha = 0.5;
  cfg.alert_streak = 2;
  engine::StreamingClassifier stream(ensemble, cfg);

  const Tensor frame({1, 1, 2, 2});
  const Tensor window({1, 2, 2});

  auto set_class = [&](int c, float conf) {
    cnn.next.fill((1.0f - conf) / 5.0f);
    cnn.next.at(0, c) = conf;
  };

  // Two normal steps: no alert.
  set_class(0, 0.9f);
  EXPECT_FALSE(stream.step(frame, window).alert);
  EXPECT_FALSE(stream.step(frame, window).alert);

  // One distracted blip: the EWMA still favours the accumulated normal
  // mass (0.5*0.9 vs 0.5*0.9 minus the tail), so no flip and no alert --
  // this is the smoothing doing its job.
  set_class(2, 0.9f);
  const auto blip = stream.step(frame, window);
  EXPECT_EQ(blip.predicted, 0);
  EXPECT_FALSE(blip.alert);

  // Sustained distraction: the argmax flips on the next step, and the
  // alert fires once the streak reaches the debounce threshold.
  const auto second = stream.step(frame, window);
  EXPECT_EQ(second.predicted, 2);
  EXPECT_FALSE(second.alert);  // streak 1 < 2
  const auto third = stream.step(frame, window);
  EXPECT_TRUE(third.alert);
  EXPECT_TRUE(third.alert_onset);
  const auto fourth = stream.step(frame, window);
  EXPECT_TRUE(fourth.alert);
  EXPECT_FALSE(fourth.alert_onset);
  EXPECT_EQ(stream.alerts_fired(), 1);

  // Back to normal: streak resets.
  set_class(0, 0.95f);
  (void)stream.step(frame, window);
  const auto calm = stream.step(frame, window);
  EXPECT_FALSE(calm.alert);

  stream.reset();
  EXPECT_EQ(stream.alerts_fired(), 1);  // counters persist; state cleared
}

TEST(Streaming, ValidatesConfig) {
  FixedClassifier cnn;
  engine::EnsembleClassifier ensemble(engine::borrow(cnn), nullptr,
                                      bayes::ClassMap::darnet_default());
  engine::StreamingConfig bad;
  bad.smoothing_alpha = 0.0;
  EXPECT_THROW(engine::StreamingClassifier(ensemble, bad),
               std::invalid_argument);
}

// --- IMU summary features ------------------------------------------------------

TEST(ImuFeatures, SummaryStatisticsAreCorrectOnKnownSignal) {
  // Channel 0: constant 2 -> mean 2, std 0, diff energy 0, zcr 0.
  // Channel 1: alternating +1/-1 -> mean 0, std 1, zcr high.
  Tensor window({4, imu::kImuChannels});
  for (int t = 0; t < 4; ++t) {
    window.at(t, 0) = 2.0f;
    window.at(t, 1) = (t % 2 == 0) ? 1.0f : -1.0f;
  }
  const Tensor f = imu::summarize_window(window);
  ASSERT_EQ(f.numel(),
            static_cast<std::size_t>(imu::kSummaryFeatureCount));
  EXPECT_FLOAT_EQ(f[0], 2.0f);  // mean ch0
  EXPECT_FLOAT_EQ(f[1], 0.0f);  // std ch0
  EXPECT_FLOAT_EQ(f[2], 2.0f);  // min ch0
  EXPECT_FLOAT_EQ(f[3], 2.0f);  // max ch0
  EXPECT_FLOAT_EQ(f[4], 0.0f);  // diff energy ch0

  const int ch1 = imu::kFeaturesPerChannel;
  EXPECT_NEAR(f[ch1 + 0], 0.0f, 1e-6);  // mean ch1
  EXPECT_NEAR(f[ch1 + 1], 1.0f, 1e-6);  // std ch1
  EXPECT_GT(f[ch1 + 5], 0.5f);          // zero-crossing rate ch1
}

TEST(ImuFeatures, BatchShape) {
  Rng rng(6);
  const std::vector<imu::PhoneOrientation> req{
      imu::PhoneOrientation::kPocket, imu::PhoneOrientation::kTalkingLeft};
  const Tensor windows = imu::generate_windows(req, {}, rng);
  const Tensor feats = imu::summarize_windows(windows);
  EXPECT_EQ(feats.shape(),
            (std::vector<int>{2, imu::kSummaryFeatureCount}));
}

// --- Augmentation ---------------------------------------------------------------

TEST(Augment, PreservesShapeAndRange) {
  Rng rng(7);
  const vision::Image src =
      vision::render_driver_scene(vision::DriverClass::kNormal, {}, rng);
  const vision::Image aug = vision::augment(src, {}, rng);
  EXPECT_EQ(aug.width(), src.width());
  for (float p : aug.pixels()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(Augment, ZeroConfigIsBrightnessContrastOnly) {
  Rng rng(8);
  vision::AugmentConfig cfg;
  cfg.brightness_delta = 0.0;
  cfg.contrast_delta = 0.0;
  cfg.max_shift_px = 0;
  cfg.hflip_probability = 0.0;
  vision::Image src(4, 4, 0.25f);
  const vision::Image aug = vision::augment(src, cfg, rng);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) EXPECT_FLOAT_EQ(aug.at(x, y), 0.25f);
  }
}

TEST(Augment, ShiftTranslatesContent) {
  Rng rng(9);
  vision::AugmentConfig cfg;
  cfg.brightness_delta = 0.0;
  cfg.contrast_delta = 0.0;
  cfg.max_shift_px = 3;
  vision::Image src(9, 9);
  src.at(4, 4) = 1.0f;  // single bright pixel
  // Over several draws the bright pixel must move but always exist
  // somewhere within the shift radius.
  for (int rep = 0; rep < 10; ++rep) {
    const vision::Image aug = vision::augment(src, cfg, rng);
    int bx = -1, by = -1;
    for (int y = 0; y < 9; ++y) {
      for (int x = 0; x < 9; ++x) {
        if (aug.at(x, y) > 0.9f) {
          bx = x;
          by = y;
        }
      }
    }
    ASSERT_NE(bx, -1);
    EXPECT_LE(std::abs(bx - 4), 3);
    EXPECT_LE(std::abs(by - 4), 3);
  }
}

TEST(Augment, BatchMatchesShape) {
  Rng rng(10);
  Tensor frames = Tensor::uniform({3, 1, 8, 8}, 0.4f, rng);
  for (auto& v : frames.flat()) v += 0.5f;
  const Tensor out = vision::augment_batch(frames, {}, rng);
  EXPECT_TRUE(out.same_shape(frames));
}

}  // namespace
