// Unit tests for darnet::util (RNG determinism, serialisation, tables).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"

namespace {

using darnet::util::BinaryReader;
using darnet::util::BinaryWriter;
using darnet::util::Rng;
using darnet::util::Table;

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(9);
  std::array<int, 5> counts{};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_index(5)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 5, kDraws / 50);  // within 10% relative
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.fork();
  // The child stream should not replay the parent's continuation.
  Rng parent_copy(13);
  (void)parent_copy.next_u64();  // same consumption as fork()
  EXPECT_NE(child.next_u64(), parent_copy.next_u64());
}

TEST(Serialize, RoundTripsScalarsInOrder) {
  BinaryWriter w;
  w.write_u8(250);
  w.write_u32(123456);
  w.write_u64(1ULL << 60);
  w.write_i64(-42);
  w.write_f32(3.25f);
  w.write_f64(-2.5);
  w.write_string("darnet");

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 250);
  EXPECT_EQ(r.read_u32(), 123456u);
  EXPECT_EQ(r.read_u64(), 1ULL << 60);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.5);
  EXPECT_EQ(r.read_string(), "darnet");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, RoundTripsFloatSpan) {
  BinaryWriter w;
  std::vector<float> values{1.0f, -2.0f, 0.5f};
  w.write_f32_span(values);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_f32_vector(), values);
}

TEST(Serialize, TruncatedInputThrows) {
  BinaryWriter w;
  w.write_u64(7);
  auto bytes = w.bytes();
  bytes.pop_back();
  BinaryReader r(bytes);
  EXPECT_THROW(r.read_u64(), std::out_of_range);
}

TEST(Serialize, TruncatedStringThrows) {
  BinaryWriter w;
  w.write_string("hello");
  auto bytes = w.bytes();
  bytes.resize(bytes.size() - 2);
  BinaryReader r(bytes);
  EXPECT_THROW(r.read_string(), std::out_of_range);
}

TEST(Table, RendersAlignedCells) {
  Table t({"Model", "Hit@1"});
  t.add_row({"CNN+RNN", "87.02%"});
  t.add_row({"CNN", "73.88%"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| Model   |"), std::string::npos);
  EXPECT_NE(s.find("87.02%"), std::string::npos);
  EXPECT_NE(s.find("CNN+RNN"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "with \"quote\""});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with \"\"quote\"\"\""), std::string::npos);
}

TEST(Table, SaveCsvWritesFileAndCreatesDirs) {
  Table t({"a"});
  t.add_row({"1"});
  const std::string path = "/tmp/darnet_csv_test/sub/out.csv";
  t.save_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "a");
  std::remove(path.c_str());
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(darnet::util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(darnet::util::fmt_pct(0.8702), "87.02%");
}

}  // namespace
