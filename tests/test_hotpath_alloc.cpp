// Zero-alloc inference hot path: the proof.
//
// DESIGN.md "Kernel architecture" promises that steady-state
// classify_batch performs no heap allocations: every buffer the forward
// pass needs (activations, im2col scratch, padded planes, outputs) is
// recycled through the thread's arena, and the packed-weight caches are
// built once, not per call. This suite replaces the global allocator
// with a counting one and asserts the promise literally -- after a
// warm-up pass populates the arena's buckets and the pack caches, N
// further classify_batch calls must perform exactly zero `new`s.
//
// The hot-path-alloc lint rule is the static half of this contract
// (no std::vector<float> in the hot-path directories); this test is the
// dynamic half that catches what a token ban cannot (std::string
// churn, shared_ptr copies, map rebalancing, ...).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "engine/architectures.hpp"
#include "engine/engine.hpp"
#include "parallel/pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

// Counting global allocator. Counting is gated so gtest's own
// bookkeeping (test registration, assertion messages) never pollutes the
// measured window.
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_news{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_news.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using darnet::tensor::Tensor;
namespace engine = darnet::engine;
namespace kernels = darnet::tensor::kernels;
namespace nn = darnet::nn;
using darnet::util::Rng;

/// Steady-state allocation count for `iters` classify_batch calls on the
/// real FrameCnn ensemble under the given kernel ISA.
std::size_t steady_state_news(kernels::Isa isa, int iters) {
  kernels::set_isa(isa);
  engine::FrameCnnConfig cfg;
  auto cnn = std::make_shared<nn::Sequential>(engine::build_frame_cnn(cfg));
  engine::EnsembleClassifier ensemble(
      std::make_shared<engine::NeuralClassifier>(cnn, cfg.num_classes, "cnn"),
      nullptr, darnet::bayes::ClassMap::darnet_default());
  Rng rng(21);
  const Tensor frame = Tensor::uniform({1, 1, 48, 48}, 0.5F, rng);
  const Tensor imu = Tensor({1, 1, 1});
  // Warm-up: populate the engine's fallback arena buckets and the
  // packed-weight caches (both allocate, by design, exactly once).
  // Counting through it also proves the counter sees the engine's
  // allocations at all -- a zero that came from a broken hook would make
  // the steady-state assertion vacuous.
  g_news.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 3; ++i) {
    Tensor p = ensemble.classify_batch(frame, imu);
    EXPECT_EQ(p.numel(), static_cast<std::size_t>(cfg.num_classes));
  }
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_GT(g_news.load(std::memory_order_relaxed), 0u)
      << "counting hook saw no warm-up allocations; the measurement "
         "cannot be trusted";
  g_news.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (int i = 0; i < iters; ++i) {
    Tensor p = ensemble.classify_batch(frame, imu);
  }
  g_counting.store(false, std::memory_order_relaxed);
  kernels::set_isa(kernels::Isa::kScalar);
  return g_news.load(std::memory_order_relaxed);
}

TEST(HotPathAlloc, ClassifyBatchIsZeroAllocAfterWarmup) {
#ifdef DARNET_CHECKED
  // Checked builds deliberately trade allocations for diagnostics: the
  // per-call ShardWriteTracker (shard-overlap detection in Conv2D and
  // matmul) grows a heap-backed range list on every forward pass. The
  // zero-alloc contract is a property of release builds only; the
  // default, obs, and obs-off CI legs pin it.
  GTEST_SKIP() << "checked builds allocate in diagnostics by design";
#endif
  // Single-thread execution keeps the measurement exact (the pool's
  // inline path); the serve tier gives each worker its own arena, so one
  // thread's steady state is every thread's steady state.
  const int entry_threads = darnet::parallel::thread_count();
  darnet::parallel::set_thread_count(1);
  EXPECT_EQ(steady_state_news(kernels::Isa::kScalar, 16), 0u)
      << "scalar classify_batch allocated after warm-up";
  for (kernels::Isa isa : {kernels::Isa::kAvx2, kernels::Isa::kAvx512}) {
    if (!kernels::isa_supported(isa)) continue;
    EXPECT_EQ(steady_state_news(isa, 16), 0u)
        << "vector classify_batch allocated after warm-up";
  }
  darnet::parallel::set_thread_count(entry_threads);
}

}  // namespace
