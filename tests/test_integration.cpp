// Cross-module integration tests: the full streaming pipeline (agents ->
// links -> controller -> store -> engine) exercised end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"

namespace {

using namespace darnet;

core::PipelineConfig fast_pipeline_config() {
  core::PipelineConfig cfg;
  // Keep the camera cheap for tests: small frames at a low rate.
  cfg.render.size = 16;
  cfg.camera_period_s = 0.5;
  return cfg;
}

TEST(Pipeline, CollectsAllStreamsThroughTheMiddleware) {
  core::SessionScript script;
  script.segments = {{vision::DriverClass::kNormal, 8.0},
                     {vision::DriverClass::kTexting, 8.0}};
  core::StreamingPipeline pipeline(script, fast_pipeline_config());
  const auto results = pipeline.run(nullptr);  // collection only
  EXPECT_TRUE(results.empty());

  const auto& store = pipeline.controller().store();
  // 4 IMU streams at 25 ms for 16 s -> ~640 tuples each; camera at 0.5 s.
  for (const auto& stream : core::StreamingPipeline::imu_streams()) {
    EXPECT_NEAR(static_cast<double>(store.count(stream)), 640.0, 40.0)
        << stream;
  }
  EXPECT_NEAR(static_cast<double>(store.count("camera")), 32.0, 4.0);
  EXPECT_GT(pipeline.controller().batches_received(), 50u);
}

TEST(Pipeline, ClockSyncKeepsPhoneTimestampsAligned) {
  core::SessionScript script;
  script.segments = {{vision::DriverClass::kNormal, 20.0}};
  auto cfg = fast_pipeline_config();
  cfg.phone_drift_ppm = 2000.0;  // strong drift
  core::StreamingPipeline pipeline(script, cfg);
  (void)pipeline.run(nullptr);
  // With 5 s sync and latency compensation, residual error stays bounded
  // well below the uncompensated 20 s * 2 ms/s = 40 ms.
  EXPECT_LT(std::abs(pipeline.phone_clock_error()), 0.015);
}

TEST(Pipeline, AlignedWindowsHaveFullImuWidth) {
  core::SessionScript script;
  script.segments = {{vision::DriverClass::kTalking, 12.0}};
  core::StreamingPipeline pipeline(script, fast_pipeline_config());
  (void)pipeline.run(nullptr);
  const auto rows = pipeline.controller().aligned_window(
      core::StreamingPipeline::imu_streams(), 2.0, 10.0);
  ASSERT_GT(rows.size(), 20u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), static_cast<std::size_t>(imu::kImuChannels));
  }
}

TEST(Pipeline, StreamingClassificationEmitsPerTimestepResults) {
  // Train a tiny model, then classify a short scripted session live.
  core::DatasetConfig data_cfg;
  data_cfg.scale = 0.006;
  data_cfg.render.size = 16;
  const core::Dataset data = core::generate_dataset(data_cfg);

  core::DarNetConfig model_cfg;
  model_cfg.cnn.input_size = 16;
  model_cfg.cnn_epochs = 3;
  model_cfg.rnn_epochs = 3;
  core::DarNet darnet{model_cfg};
  darnet.train(data);

  core::SessionScript script;
  script.segments = {{vision::DriverClass::kTalking, 10.0},
                     {vision::DriverClass::kTexting, 10.0}};
  core::StreamingPipeline pipeline(script, fast_pipeline_config());
  const auto results =
      pipeline.run(&darnet, engine::ArchitectureKind::kCnnRnn);

  ASSERT_GT(results.size(), 5u);
  for (const auto& r : results) {
    EXPECT_GE(r.predicted, 0);
    EXPECT_LT(r.predicted, 6);
    EXPECT_EQ(r.actual,
              static_cast<int>(script.behaviour_at(r.time)));
    double sum = 0.0;
    for (int c = 0; c < 6; ++c) sum += r.distribution.at(0, c);
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(Pipeline, LinkStatsAccountForTraffic) {
  core::SessionScript script;
  script.segments = {{vision::DriverClass::kNormal, 5.0}};
  core::StreamingPipeline pipeline(script, fast_pipeline_config());
  (void)pipeline.run(nullptr);
  // The camera ships 16x16 floats; the phone ships 13 floats per 25 ms.
  EXPECT_GT(pipeline.camera_link_stats().bytes_sent, 8000u);
  EXPECT_GT(pipeline.phone_link_stats().bytes_sent, 8000u);
  EXPECT_GT(pipeline.camera_link_stats().mean_latency_s(), 0.0);
}

TEST(Pipeline, RejectsEmptyScriptAndUntrainedModel) {
  EXPECT_THROW(
      core::StreamingPipeline(core::SessionScript{}, fast_pipeline_config()),
      std::invalid_argument);

  core::SessionScript script;
  script.segments = {{vision::DriverClass::kNormal, 6.0}};
  core::StreamingPipeline pipeline(script, fast_pipeline_config());
  core::DarNetConfig model_cfg;
  model_cfg.cnn.input_size = 16;
  core::DarNet untrained{model_cfg};
  EXPECT_THROW((void)pipeline.run(&untrained), std::logic_error);
}

}  // namespace
