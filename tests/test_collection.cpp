// Tests for the data-collection middleware: event simulation, device
// clocks, virtual links, wire messages, time-series store, and the
// agent/controller protocols (registration, batching, clock sync).
#include <gtest/gtest.h>

#include <cmath>

#include "collection/agent.hpp"
#include "collection/controller.hpp"
#include "collection/link.hpp"
#include "collection/messages.hpp"
#include "collection/sensor.hpp"
#include "collection/sim.hpp"
#include "collection/store.hpp"

namespace {

using namespace darnet::collection;

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulation, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, HandlersCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    if (fired < 5) sim.schedule_in(1.0, tick);
  };
  sim.schedule(0.0, tick);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 5);
}

TEST(Simulation, HorizonStopsFutureEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule(5.0, [&] { ++fired; });
  sim.run_until(4.0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(6.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, RejectsPastAndNull) {
  Simulation sim;
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule(6.0, nullptr), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(DeviceClock, DriftAccumulates) {
  DeviceClock clock(/*drift_ppm=*/1000.0);  // 1 ms per second
  EXPECT_NEAR(clock.error(10.0), 0.01, 1e-9);
  EXPECT_NEAR(clock.read(10.0), 10.01, 1e-9);
}

TEST(DeviceClock, SetSlamsToMaster) {
  DeviceClock clock(500.0, 0.3);
  clock.set(100.0, 100.002);  // master time + latency constant
  EXPECT_NEAR(clock.read(100.0), 100.002, 1e-12);
  // Drift resumes after the sync.
  EXPECT_NEAR(clock.error(101.0), 0.002 + 500e-6, 1e-9);
}

TEST(Messages, BatchRoundTrip) {
  DataBatch batch;
  batch.agent_id = 7;
  batch.readings.push_back({"imu.accel", 1.25, {1.0f, 2.0f, 3.0f}, 0});
  batch.readings.push_back({"camera", 1.5, std::vector<float>(16, 0.5f), 2});
  const auto bytes = encode(batch);
  EXPECT_EQ(peek_kind(bytes), MessageKind::kBatch);
  const DataBatch decoded = decode_batch(bytes);
  EXPECT_EQ(decoded.agent_id, 7u);
  ASSERT_EQ(decoded.readings.size(), 2u);
  EXPECT_EQ(decoded.readings[0].stream, "imu.accel");
  EXPECT_DOUBLE_EQ(decoded.readings[0].local_timestamp, 1.25);
  EXPECT_EQ(decoded.readings[0].values,
            (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(decoded.readings[1].tag, 2u);
}

TEST(Messages, KindTagPreventsCrossDecoding) {
  const auto bytes = encode(ClockSyncMessage{5.0});
  EXPECT_EQ(peek_kind(bytes), MessageKind::kClockSync);
  EXPECT_THROW((void)decode_batch(bytes), std::invalid_argument);
  EXPECT_THROW((void)peek_kind(std::vector<std::uint8_t>{}),
               std::invalid_argument);
  EXPECT_THROW((void)peek_kind(std::vector<std::uint8_t>{99}),
               std::invalid_argument);
}

TEST(Messages, RegisterRoundTrip) {
  RegisterMessage reg{3, {"camera", "imu.accel"}};
  const RegisterMessage decoded = decode_register(encode(reg));
  EXPECT_EQ(decoded.agent_id, 3u);
  EXPECT_EQ(decoded.streams, reg.streams);
}

TEST(VirtualLink, DeliversWithLatency) {
  Simulation sim;
  LinkConfig cfg;
  cfg.base_latency_s = 0.1;
  cfg.jitter_s = 0.0;
  VirtualLink link(sim, cfg, 1);
  double delivered_at = -1.0;
  link.set_receiver([&](std::vector<std::uint8_t>) {
    delivered_at = sim.now();
  });
  link.send({1, 2, 3});
  sim.run_until(1.0);
  EXPECT_GT(delivered_at, 0.099);
  EXPECT_LT(delivered_at, 0.12);
  EXPECT_EQ(link.stats().messages_sent, 1u);
  EXPECT_EQ(link.stats().bytes_sent, 3u);
}

TEST(VirtualLink, BandwidthSerialisesLargeMessages) {
  Simulation sim;
  LinkConfig cfg;
  cfg.base_latency_s = 0.0;
  cfg.jitter_s = 0.0;
  cfg.bandwidth_bps = 8000.0;  // 1 kB/s
  VirtualLink link(sim, cfg, 2);
  std::vector<double> deliveries;
  link.set_receiver([&](std::vector<std::uint8_t>) {
    deliveries.push_back(sim.now());
  });
  link.send(std::vector<std::uint8_t>(500, 0));  // 0.5 s of airtime
  link.send(std::vector<std::uint8_t>(500, 0));  // queued behind the first
  sim.run_until(5.0);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], 0.5, 0.01);
  EXPECT_NEAR(deliveries[1], 1.0, 0.01);
}

TEST(VirtualLink, LossDropsDeterministically) {
  Simulation sim;
  LinkConfig cfg;
  cfg.loss_rate = 0.5;
  VirtualLink link(sim, cfg, 3);
  int received = 0;
  link.set_receiver([&](std::vector<std::uint8_t>) { ++received; });
  for (int i = 0; i < 200; ++i) link.send({0});
  sim.run_until(10.0);
  EXPECT_EQ(link.stats().messages_dropped,
            link.stats().messages_sent - static_cast<std::uint64_t>(received));
  EXPECT_GT(link.stats().messages_dropped, 60u);
  EXPECT_LT(link.stats().messages_dropped, 140u);
}

TEST(Store, AppendKeepsTimestampOrderUnderOutOfOrderArrival) {
  TimeSeriesStore store;
  store.append("s", {2.0, {2.0f}, 0});
  store.append("s", {1.0, {1.0f}, 0});
  store.append("s", {3.0, {3.0f}, 0});
  const auto& series = store.series("s");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].timestamp, 1.0);
  EXPECT_DOUBLE_EQ(series[2].timestamp, 3.0);
}

TEST(Store, InterpolationIsExactOnLinearSignals) {
  TimeSeriesStore store;
  for (int i = 0; i <= 10; ++i) {
    const double t = i * 0.5;
    store.append("lin", {t, {static_cast<float>(3.0 * t + 1.0)}, 0});
  }
  for (double t = 0.1; t < 5.0; t += 0.37) {
    const auto v = store.interpolate("lin", t);
    ASSERT_TRUE(v.has_value());
    EXPECT_NEAR((*v)[0], 3.0 * t + 1.0, 1e-4);
  }
}

TEST(Store, InterpolationRefusesFarExtrapolation) {
  TimeSeriesStore store;
  store.append("s", {1.0, {1.0f}, 0});
  store.append("s", {2.0, {2.0f}, 0});
  EXPECT_TRUE(store.interpolate("s", 2.1).has_value());   // within tolerance
  EXPECT_FALSE(store.interpolate("s", 5.0).has_value());  // far beyond
  EXPECT_FALSE(store.interpolate("missing", 1.0).has_value());
}

TEST(Store, NearestPicksClosestSampleWithoutBlending) {
  TimeSeriesStore store;
  store.append("s", {1.0, {10.0f}, 0});
  store.append("s", {2.0, {20.0f}, 0});
  EXPECT_EQ((*store.nearest("s", 1.4))[0], 10.0f);
  EXPECT_EQ((*store.nearest("s", 1.6))[0], 20.0f);
  EXPECT_EQ((*store.nearest("s", 0.8))[0], 10.0f);
  // Beyond tolerance or unknown stream: nothing.
  EXPECT_FALSE(store.nearest("s", 5.0, 0.5).has_value());
  EXPECT_FALSE(store.nearest("missing", 1.0).has_value());
}

TEST(Store, SmoothingAveragesWindow) {
  TimeSeriesStore store;
  // Alternating +1/-1 at 10 Hz: a 0.5 s window must average near zero.
  for (int i = 0; i < 50; ++i) {
    store.append("noisy", {i * 0.1, {(i % 2 == 0) ? 1.0f : -1.0f}, 0});
  }
  const auto smooth = store.smoothed("noisy", 3.0, 0.5);
  ASSERT_TRUE(smooth.has_value());
  EXPECT_NEAR((*smooth)[0], 0.0, 0.34);
  const auto raw = store.interpolate("noisy", 3.0);
  EXPECT_NEAR(std::abs((*raw)[0]), 1.0, 1e-5);
}

TEST(Store, AlignedConcatenatesStreamsOnUniformGrid) {
  TimeSeriesStore store;
  for (int i = 0; i <= 40; ++i) {
    const double t = i * 0.05;  // 20 Hz
    store.append("a", {t, {static_cast<float>(t)}, 0});
  }
  for (int i = 0; i <= 20; ++i) {
    const double t = i * 0.1;  // 10 Hz
    store.append("b", {t, {static_cast<float>(10.0 - t), 5.0f}, 0});
  }
  std::vector<double> grid;
  const auto rows = store.aligned({"a", "b"}, 0.0, 2.0, 0.25, 0.0, &grid);
  ASSERT_EQ(rows.size(), 8u);
  ASSERT_EQ(grid.size(), 8u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].size(), 3u);  // 1 + 2 channels
    EXPECT_NEAR(rows[i][0], grid[i], 1e-4);
    EXPECT_NEAR(rows[i][1], 10.0 - grid[i], 1e-4);
    EXPECT_FLOAT_EQ(rows[i][2], 5.0f);
  }
}

TEST(Store, AlignedSkipsRowsWithMissingStreams) {
  TimeSeriesStore store;
  for (int i = 0; i <= 20; ++i) {
    store.append("full", {i * 0.1, {1.0f}, 0});
  }
  // "late" only starts at t=1.0.
  for (int i = 10; i <= 20; ++i) {
    store.append("late", {i * 0.1, {2.0f}, 0});
  }
  const auto rows = store.aligned({"full", "late"}, 0.0, 2.0, 0.1, 0.0);
  EXPECT_LT(rows.size(), 20u);
  EXPECT_GT(rows.size(), 5u);
}

TEST(Store, EvictionDropsOldTuples) {
  TimeSeriesStore store;
  for (int i = 0; i < 10; ++i) store.append("s", {double(i), {1.0f}, 0});
  EXPECT_EQ(store.total_tuples(), 10u);
  store.evict_before(5.0);
  EXPECT_EQ(store.count("s"), 5u);
  EXPECT_EQ(store.total_tuples(), 5u);
  EXPECT_DOUBLE_EQ(store.series("s").front().timestamp, 5.0);
}

TEST(Store, RejectsWidthChangesAndEmptyTuples) {
  TimeSeriesStore store;
  store.append("s", {0.0, {1.0f, 2.0f}, 0});
  EXPECT_THROW(store.append("s", {1.0, {1.0f}, 0}), std::invalid_argument);
  EXPECT_THROW(store.append("s", {2.0, {}, 0}), std::invalid_argument);
}

/// Wires one agent to one controller over configurable links.
struct Deployment {
  Simulation sim;
  VirtualLink up, down;
  Controller controller;
  CollectionAgent agent;

  explicit Deployment(AgentConfig agent_cfg, ControllerConfig ctrl_cfg = {},
                      LinkConfig link_cfg = {})
      : up(sim, link_cfg, 11),
        down(sim, link_cfg, 12),
        controller(sim, ctrl_cfg),
        agent(sim, agent_cfg, up) {
    up.set_receiver([this](std::vector<std::uint8_t> b) {
      controller.on_message(b);
    });
    down.set_receiver([this](std::vector<std::uint8_t> b) {
      agent.on_message(b);
    });
    controller.attach_agent(agent_cfg.agent_id, down);
  }
};

TEST(AgentController, RegistrationAndDataFlow) {
  AgentConfig cfg;
  cfg.agent_id = 1;
  cfg.transmit_period_s = 0.2;
  Deployment d(cfg);
  int polls = 0;
  d.agent.add_sensor(std::make_unique<CallbackSensor>(
      "counter", 0.05, [&polls](SimTime) {
        return std::vector<float>{static_cast<float>(++polls)};
      }));
  d.controller.start();
  d.agent.start();
  d.sim.run_until(2.0);

  EXPECT_EQ(d.controller.streams_of(1), (std::vector<std::string>{"counter"}));
  EXPECT_GT(d.controller.batches_received(), 5u);
  // ~40 polls in 2 s.
  EXPECT_NEAR(static_cast<double>(d.controller.store().count("counter")), 39.0,
              4.0);
}

TEST(AgentController, SizeTriggeredBatchingFlushesEarly) {
  AgentConfig cfg;
  cfg.agent_id = 1;
  cfg.transmit_period_s = 10.0;  // period alone would send almost nothing
  cfg.max_batch_bytes = 256;
  Deployment d(cfg);
  d.agent.add_sensor(std::make_unique<CallbackSensor>(
      "bulky", 0.05, [](SimTime) { return std::vector<float>(32, 1.0f); }));
  d.controller.start();
  d.agent.start();
  d.sim.run_until(2.0);
  // 32 floats + framing ~= 150 bytes per reading: flush every ~2 readings.
  EXPECT_GT(d.controller.batches_received(), 10u);
  EXPECT_GT(d.controller.store().count("bulky"), 30u);
}

TEST(AgentController, PeriodOnlyBatchingWaitsForTimer) {
  AgentConfig cfg;
  cfg.agent_id = 1;
  cfg.transmit_period_s = 10.0;
  cfg.max_batch_bytes = 0;  // disabled
  Deployment d(cfg);
  d.agent.add_sensor(std::make_unique<CallbackSensor>(
      "bulky", 0.05, [](SimTime) { return std::vector<float>(32, 1.0f); }));
  d.controller.start();
  d.agent.start();
  d.sim.run_until(2.0);
  EXPECT_EQ(d.controller.batches_received(), 0u);  // timer hasn't fired
}

TEST(AgentController, ClockSyncBoundsDriftError) {
  AgentConfig cfg;
  cfg.agent_id = 1;
  cfg.clock_drift_ppm = 5000.0;  // exaggerated: 5 ms per second
  cfg.clock_initial_offset_s = 0.25;
  cfg.latency_compensation_s = 0.015;
  ControllerConfig ctrl;
  ctrl.clock_sync_period_s = 1.0;
  Deployment d(cfg, ctrl);
  d.agent.add_sensor(std::make_unique<CallbackSensor>(
      "s", 0.1, [](SimTime) { return std::vector<float>{0.0f}; }));
  d.controller.start();
  d.agent.start();
  d.sim.run_until(10.0);
  // Unsynchronised, the error would be 0.25 + 10 * 0.005 = 0.30 s. With
  // 1 Hz sync it must stay within a couple of drift periods + latency slop.
  EXPECT_LT(std::abs(d.agent.clock_error_now()), 0.02);
}

TEST(AgentController, NoSyncMeansErrorGrows) {
  AgentConfig cfg;
  cfg.agent_id = 1;
  cfg.clock_drift_ppm = 5000.0;
  ControllerConfig ctrl;
  ctrl.clock_sync_period_s = 1e9;  // effectively never
  Deployment d(cfg, ctrl);
  d.agent.add_sensor(std::make_unique<CallbackSensor>(
      "s", 0.1, [](SimTime) { return std::vector<float>{0.0f}; }));
  d.controller.start();
  d.agent.start();
  d.sim.run_until(10.0);
  EXPECT_GT(std::abs(d.agent.clock_error_now()), 0.04);
}

TEST(AgentController, DuplicateAgentRejected) {
  Simulation sim;
  VirtualLink down(sim, {}, 1);
  Controller controller(sim, {});
  controller.attach_agent(1, down);
  EXPECT_THROW(controller.attach_agent(1, down), std::invalid_argument);
}

TEST(AgentController, ControllerRejectsClockSyncFromAgent) {
  Simulation sim;
  Controller controller(sim, {});
  EXPECT_THROW(controller.on_message(encode(ClockSyncMessage{1.0})),
               std::logic_error);
}

TEST(AgentController, AgentLifecycleGuards) {
  Simulation sim;
  VirtualLink up(sim, {}, 1);
  up.set_receiver([](std::vector<std::uint8_t>) {});
  AgentConfig cfg;
  cfg.agent_id = 1;
  CollectionAgent agent(sim, cfg, up);
  agent.start();
  EXPECT_THROW(agent.start(), std::logic_error);
  EXPECT_THROW(agent.add_sensor(std::make_unique<CallbackSensor>(
                   "s", 0.1, [](SimTime) { return std::vector<float>{0.0f}; })),
               std::logic_error);
}

}  // namespace
