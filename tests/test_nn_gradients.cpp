// Property-based gradient verification: every layer's analytic backward
// pass is checked against central finite differences, for both input
// gradients and parameter gradients. This is the load-bearing correctness
// test of the whole learning stack -- a silent gradient bug would not
// crash anything, it would just quietly cap every accuracy number.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/inception.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"

namespace {

using darnet::nn::Layer;
using darnet::nn::Param;
using darnet::tensor::Tensor;
using darnet::util::Rng;

/// Scalar objective: L(y) = sum(w ⊙ y) with fixed random weights, so
/// dL/dy = w exactly and any layer output shape works.
struct Probe {
  Tensor weights;

  explicit Probe(const Tensor& output, Rng& rng)
      : weights(Tensor::uniform(output.shape(), 1.0f, rng)) {}

  [[nodiscard]] double loss(const Tensor& output) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < output.numel(); ++i) {
      acc += static_cast<double>(weights[i]) * output[i];
    }
    return acc;
  }
};

/// Verify dL/dx and all dL/dtheta for `layer` at input `x`.
void check_layer_gradients(Layer& layer, Tensor x, double tolerance = 2e-2) {
  Rng rng(99);
  Tensor y = layer.forward(x, /*training=*/true);
  Probe probe(y, rng);

  darnet::nn::zero_grads(layer);
  Tensor grad_in = layer.backward(probe.weights);
  ASSERT_TRUE(grad_in.same_shape(x));

  const float eps = 2e-3f;
  auto forward_loss = [&](const Tensor& input) {
    return probe.loss(layer.forward(input, /*training=*/true));
  };

  // Input gradients (sampled: every k-th element to bound runtime).
  const std::size_t input_step = std::max<std::size_t>(1, x.numel() / 48);
  for (std::size_t i = 0; i < x.numel(); i += input_step) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (forward_loss(xp) - forward_loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tolerance * std::max(1.0, std::abs(numeric)))
        << "input grad mismatch at flat index " << i;
  }

  // Parameter gradients. Note: forward passes above overwrote cached
  // activations, so recompute the analytic grads fresh.
  (void)layer.forward(x, true);
  darnet::nn::zero_grads(layer);
  (void)layer.backward(probe.weights);
  for (Param* p : layer.params()) {
    // Snapshot analytic grads before perturbing.
    Tensor analytic = p->grad;
    const std::size_t step = std::max<std::size_t>(1, p->value.numel() / 24);
    for (std::size_t i = 0; i < p->value.numel(); i += step) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double lp = forward_loss(x);
      p->value[i] = saved - eps;
      const double lm = forward_loss(x);
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], numeric,
                  tolerance * std::max(1.0, std::abs(numeric)))
          << "param grad mismatch at flat index " << i;
    }
  }
}

TEST(Gradients, Dense) {
  Rng rng(1);
  darnet::nn::Dense layer(5, 4, rng);
  check_layer_gradients(layer, Tensor::uniform({3, 5}, 1.0f, rng));
}

TEST(Gradients, ReLU) {
  Rng rng(2);
  darnet::nn::ReLU layer;
  // Keep inputs away from the kink at 0 for finite differences.
  Tensor x = Tensor::uniform({4, 6}, 1.0f, rng);
  for (auto& v : x.flat()) {
    if (std::abs(v) < 0.05f) v = 0.2f;
  }
  check_layer_gradients(layer, x);
}

TEST(Gradients, Conv2DWithPadding) {
  Rng rng(3);
  darnet::nn::Conv2D layer(2, 3, 3, 1, rng);
  check_layer_gradients(layer, Tensor::uniform({2, 2, 6, 6}, 1.0f, rng));
}

TEST(Gradients, Conv2DNoPadding1x1) {
  Rng rng(4);
  darnet::nn::Conv2D layer(3, 2, 1, 0, rng);
  check_layer_gradients(layer, Tensor::uniform({2, 3, 4, 4}, 1.0f, rng));
}

TEST(Gradients, MaxPool) {
  Rng rng(5);
  darnet::nn::MaxPool2D layer(2);
  // Distinct values so the argmax is stable under the eps perturbation.
  Tensor x({1, 2, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i % 7) + 0.13f * static_cast<float>(i);
  }
  check_layer_gradients(layer, x);
}

TEST(Gradients, AvgPool) {
  Rng rng(6);
  darnet::nn::AvgPool2D layer(2);
  check_layer_gradients(layer, Tensor::uniform({2, 2, 4, 4}, 1.0f, rng));
}

TEST(Gradients, GlobalAvgPool) {
  Rng rng(7);
  darnet::nn::GlobalAvgPool layer;
  check_layer_gradients(layer, Tensor::uniform({2, 3, 4, 4}, 1.0f, rng));
}

TEST(Gradients, Flatten) {
  Rng rng(8);
  darnet::nn::Flatten layer;
  check_layer_gradients(layer, Tensor::uniform({2, 3, 2, 2}, 1.0f, rng));
}

TEST(Gradients, SequentialComposite) {
  Rng rng(9);
  darnet::nn::Sequential model;
  model.emplace<darnet::nn::Conv2D>(1, 2, 3, 1, rng);
  model.emplace<darnet::nn::ReLU>();
  model.emplace<darnet::nn::MaxPool2D>(2);
  model.emplace<darnet::nn::Flatten>();
  model.emplace<darnet::nn::Dense>(2 * 3 * 3, 4, rng);
  Tensor x = Tensor::uniform({2, 1, 6, 6}, 1.0f, rng);
  for (auto& v : x.flat()) {
    if (std::abs(v) < 0.05f) v = 0.2f;  // avoid ReLU kinks
  }
  check_layer_gradients(model, x);
}

TEST(Gradients, MicroInceptionBlock) {
  Rng rng(10);
  auto block = darnet::nn::make_micro_inception(2, 2, 2, 2, 2, rng);
  Tensor x = Tensor::uniform({1, 2, 4, 4}, 1.0f, rng);
  for (auto& v : x.flat()) {
    if (std::abs(v) < 0.05f) v = 0.2f;
  }
  check_layer_gradients(*block, x, 3e-2);
}

TEST(Gradients, BiLstm) {
  Rng rng(11);
  darnet::nn::BiLstm layer(3, 4, rng);
  check_layer_gradients(layer, Tensor::uniform({2, 5, 3}, 0.8f, rng), 3e-2);
}

TEST(Gradients, StackedBiLstmWithPoolAndHead) {
  Rng rng(12);
  darnet::nn::Sequential model;
  model.emplace<darnet::nn::BiLstm>(3, 3, rng);
  model.emplace<darnet::nn::BiLstm>(6, 3, rng);
  model.emplace<darnet::nn::TemporalMeanPool>();
  model.emplace<darnet::nn::Dense>(6, 3, rng);
  check_layer_gradients(model, Tensor::uniform({2, 4, 3}, 0.8f, rng), 3e-2);
}

TEST(Gradients, TemporalMeanPool) {
  Rng rng(13);
  darnet::nn::TemporalMeanPool layer;
  check_layer_gradients(layer, Tensor::uniform({2, 4, 5}, 1.0f, rng));
}

TEST(Gradients, SoftmaxCrossEntropyMatchesFiniteDifference) {
  Rng rng(14);
  Tensor logits = Tensor::uniform({3, 4}, 1.5f, rng);
  const std::vector<int> labels{0, 2, 3};
  auto [loss, grad] = darnet::nn::softmax_cross_entropy(logits, labels);
  EXPECT_GT(loss, 0.0);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double fp = darnet::nn::softmax_cross_entropy(lp, labels).loss;
    const double fm = darnet::nn::softmax_cross_entropy(lm, labels).loss;
    EXPECT_NEAR(grad[i], (fp - fm) / (2.0 * eps), 1e-3);
  }
}

TEST(Gradients, L2DistillationMatchesFiniteDifference) {
  Rng rng(15);
  Tensor student = Tensor::uniform({2, 5}, 1.0f, rng);
  Tensor teacher = Tensor::uniform({2, 5}, 1.0f, rng);
  auto [loss, grad] = darnet::nn::l2_distillation(student, teacher);
  EXPECT_GE(loss, 0.0);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < student.numel(); ++i) {
    Tensor sp = student, sm = student;
    sp[i] += eps;
    sm[i] -= eps;
    const double fp = darnet::nn::l2_distillation(sp, teacher).loss;
    const double fm = darnet::nn::l2_distillation(sm, teacher).loss;
    EXPECT_NEAR(grad[i], (fp - fm) / (2.0 * eps), 1e-3);
  }
}

}  // namespace
