// Tests for serve::Router: deterministic consistent-hash placement,
// per-tenant token-bucket quotas under an injected clock, versioned
// snapshot hot-swaps (zero dropped requests, bit-identical verdicts for
// untouched sessions), and single-shard equivalence with a bare Server.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <vector>

#include "engine/engine.hpp"
#include "engine/streaming.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;
using Clock = std::chrono::steady_clock;

constexpr int kFeatures = 4;
constexpr int kClasses = 6;

std::shared_ptr<engine::EnsembleClassifier> make_dense_ensemble(
    std::uint64_t seed = 2024) {
  util::Rng rng(seed);
  auto model = std::make_shared<nn::Sequential>();
  model->emplace<nn::Dense>(kFeatures, kClasses, rng);
  auto frames =
      std::make_shared<engine::NeuralClassifier>(model, kClasses, "dense");
  return std::make_shared<engine::EnsembleClassifier>(
      frames, nullptr, bayes::ClassMap::darnet_default());
}

serve::Router::Snapshot make_snapshot(int shards, std::uint64_t version,
                                      std::uint64_t seed = 2024) {
  serve::Router::Snapshot snapshot;
  snapshot.version = version;
  for (int s = 0; s < shards; ++s) {
    snapshot.replicas.push_back(make_dense_ensemble(seed));
  }
  return snapshot;
}

engine::ClassifyRequest make_request(std::uint64_t session,
                                     const Tensor& frame,
                                     std::uint64_t tenant = 0) {
  engine::ClassifyRequest request;
  request.session_id = session;
  request.tenant_id = tenant;
  request.frame = frame;
  return request;
}

/// A manually advanced serve::TimeSource (atomic so worker threads may
/// read it while the test thread advances, clean under tsan).
struct ManualSource final : serve::TimeSource {
  std::atomic<Clock::duration::rep> elapsed{0};
  Clock::time_point now() const noexcept override {
    return Clock::time_point() + std::chrono::hours(1) +
           Clock::duration(elapsed.load());
  }
  void advance(std::chrono::nanoseconds by) { elapsed += by.count(); }
};

TEST(RouterConfig, ValidatesSnapshotAndQuotas) {
  serve::RouterConfig config;
  config.shards = 2;

  EXPECT_THROW(serve::Router(make_snapshot(1, 1), config),
               std::invalid_argument);

  serve::Router::Snapshot null_replica = make_snapshot(2, 1);
  null_replica.replicas[1] = nullptr;
  EXPECT_THROW(serve::Router(std::move(null_replica), config),
               std::invalid_argument);

  // Shards must not share a replica: models keep forward caches and
  // only serialise on their own shard's exec lock.
  serve::Router::Snapshot shared = make_snapshot(2, 1);
  shared.replicas[1] = shared.replicas[0];
  EXPECT_THROW(serve::Router(std::move(shared), config),
               std::invalid_argument);

  config.quotas[1] = serve::TenantQuota{0.0, 1.0};  // capacity < 1
  EXPECT_THROW(serve::Router(make_snapshot(2, 1), config),
               std::invalid_argument);
  config.quotas.clear();

  config.shards = 0;
  EXPECT_THROW(serve::Router(make_snapshot(0, 1), config),
               std::invalid_argument);
}

TEST(RouterHashing, DeterministicStableAndSpread) {
  serve::RouterConfig config;
  config.shards = 4;
  serve::Router router(make_snapshot(4, 1), config);

  serve::RouterConfig config_again;
  config_again.shards = 4;
  serve::Router again(make_snapshot(4, 1), config_again);

  std::vector<int> hits(4, 0);
  for (std::uint64_t session = 0; session < 1000; ++session) {
    const int shard = router.shard_for(session);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    // Pure function of the ring: identical across router instances.
    EXPECT_EQ(shard, again.shard_for(session));
    ++hits[static_cast<std::size_t>(shard)];
  }
  // 64 virtual nodes per shard spread 1000 keys roughly evenly; a shard
  // starved below a third of its fair share means the ring regressed
  // (e.g. the small-id/vnode hash-domain collision).
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GT(hits[static_cast<std::size_t>(shard)], 1000 / 12) << shard;
  }

  router.drain();
  again.drain();
}

TEST(RouterQuota, TokenBucketsAreDeterministicUnderVirtualTime) {
  auto clock = std::make_shared<ManualSource>();
  serve::RouterConfig config;
  config.shards = 1;
  config.shard.max_delay_us = 0;
  config.shard.time_source = clock;
  config.quotas[7] = serve::TenantQuota{2.0, 1.0};  // burst 2, 1 token/s
  serve::Router router(make_snapshot(1, 1), config);

  const Tensor frame({1, kFeatures});
  // The bucket starts full: exactly two pass, the third is clipped at
  // the door with its future already resolved.
  for (int i = 0; i < 2; ++i) {
    auto sub = router.submit(make_request(1, frame, 7));
    EXPECT_EQ(sub.admit, serve::Admit::kAccepted);
    EXPECT_EQ(sub.response.get().status, serve::Status::kOk);
  }
  auto clipped = router.submit(make_request(1, frame, 7));
  EXPECT_EQ(clipped.admit, serve::Admit::kRejected);
  ASSERT_EQ(clipped.response.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(clipped.response.get().status, serve::Status::kRejected);

  // Half a second refills half a token: still clipped.
  clock->advance(std::chrono::milliseconds(500));
  EXPECT_EQ(router.submit(make_request(1, frame, 7)).admit,
            serve::Admit::kRejected);
  // The other half arrives: one request passes, the next is clipped.
  clock->advance(std::chrono::milliseconds(500));
  EXPECT_EQ(router.submit(make_request(1, frame, 7)).admit,
            serve::Admit::kAccepted);
  EXPECT_EQ(router.submit(make_request(1, frame, 7)).admit,
            serve::Admit::kRejected);

  // Unmetered tenants fall through to shard backpressure alone.
  EXPECT_EQ(router.submit(make_request(1, frame, 8)).admit,
            serve::Admit::kAccepted);

  router.drain();
  const serve::Router::Stats stats = router.stats();
  EXPECT_EQ(stats.routed, 4u);
  EXPECT_EQ(stats.quota_rejected, 3u);
  ASSERT_EQ(stats.per_shard.size(), 1u);
  EXPECT_EQ(stats.per_shard[0].submitted, 4u);
}

TEST(RouterSwap, HotSwapDropsNothingAndKeepsVerdictsBitIdentical) {
  constexpr int kSessions = 6;
  constexpr int kSteps = 12;
  auto ensemble = make_dense_ensemble();

  // Reference: untouched single-threaded streams.
  util::Rng rng(37);
  std::vector<std::vector<Tensor>> frames(kSessions);
  std::vector<std::vector<engine::StreamingVerdict>> reference(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    engine::StreamingClassifier stream(ensemble, engine::StreamingConfig{});
    for (int t = 0; t < kSteps; ++t) {
      frames[s].push_back(Tensor::uniform({1, kFeatures}, 1.0f, rng));
      reference[s].push_back(stream.step(frames[s][t], Tensor{}));
    }
  }

  serve::RouterConfig config;
  config.shards = 3;
  config.shard.max_delay_us = 0;
  serve::Router router(make_snapshot(3, 1), config);
  EXPECT_EQ(router.snapshot_version(), 1u);

  std::vector<std::vector<std::future<serve::Response>>> futures(kSessions);
  for (int t = 0; t < kSteps; ++t) {
    // Mid-traffic rollout to same-weight replicas: no request may drop,
    // no session's verdict stream may change.
    if (t == kSteps / 2) router.swap_snapshot(make_snapshot(3, 2));
    for (int s = 0; s < kSessions; ++s) {
      auto sub = router.submit(
          make_request(static_cast<std::uint64_t>(s), frames[s][t]));
      ASSERT_EQ(sub.admit, serve::Admit::kAccepted);
      futures[s].push_back(std::move(sub.response));
    }
  }
  router.drain();
  EXPECT_EQ(router.snapshot_version(), 2u);

  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(futures[s].size(), static_cast<std::size_t>(kSteps));
    for (int t = 0; t < kSteps; ++t) {
      serve::Response response = futures[s][t].get();
      ASSERT_EQ(response.status, serve::Status::kOk) << "s=" << s
                                                     << " t=" << t;
      const auto& got = response.result.verdict;
      EXPECT_EQ(got.predicted, reference[s][t].predicted);
      for (std::size_t i = 0; i < reference[s][t].distribution.numel();
           ++i) {
        EXPECT_EQ(got.distribution[i], reference[s][t].distribution[i])
            << "s=" << s << " t=" << t << " i=" << i;  // bitwise
      }
    }
  }

  const serve::Router::Stats stats = router.stats();
  EXPECT_EQ(stats.routed, static_cast<std::uint64_t>(kSessions * kSteps));
  EXPECT_EQ(stats.quota_rejected, 0u);
  EXPECT_EQ(stats.snapshot_swaps, 1u);
  std::uint64_t swaps = 0;
  std::uint64_t completed = 0;
  for (const serve::Server::Stats& shard : stats.per_shard) {
    swaps += shard.ensemble_swaps;
    completed += shard.completed;
  }
  EXPECT_EQ(swaps, 3u);  // one flip per shard
  EXPECT_EQ(completed, static_cast<std::uint64_t>(kSessions * kSteps));
}

TEST(RouterSwap, VersionMustIncreaseMonotonically) {
  serve::RouterConfig config;
  serve::Router router(make_snapshot(1, 5), config);
  EXPECT_EQ(router.snapshot_version(), 5u);
  EXPECT_THROW(router.swap_snapshot(make_snapshot(1, 5)),
               std::invalid_argument);  // stale rollout
  EXPECT_THROW(router.swap_snapshot(make_snapshot(1, 4)),
               std::invalid_argument);
  EXPECT_THROW(router.swap_snapshot(make_snapshot(2, 6)),
               std::invalid_argument);  // wrong replica count
  router.swap_snapshot(make_snapshot(1, 6));
  EXPECT_EQ(router.snapshot_version(), 6u);
  EXPECT_EQ(router.stats().snapshot_swaps, 1u);
  router.drain();
}

TEST(RouterEquivalence, OneShardMatchesABareServer) {
  auto ensemble = make_dense_ensemble();
  constexpr int kSteps = 8;
  util::Rng rng(41);
  std::vector<Tensor> frames;
  for (int t = 0; t < kSteps; ++t) {
    frames.push_back(Tensor::uniform({1, kFeatures}, 1.0f, rng));
  }

  serve::ShardConfig shard_config;
  shard_config.max_delay_us = 0;
  serve::Server server(make_dense_ensemble(), shard_config);

  serve::RouterConfig router_config;
  router_config.shard = shard_config;
  serve::Router router(make_snapshot(1, 1), router_config);

  for (int t = 0; t < kSteps; ++t) {
    auto direct = server.submit(make_request(3, frames[t]));
    auto routed = router.submit(make_request(3, frames[t]));
    const auto a = direct.response.get();
    const auto b = routed.response.get();
    ASSERT_EQ(a.status, serve::Status::kOk);
    ASSERT_EQ(b.status, serve::Status::kOk);
    EXPECT_EQ(a.result.verdict.predicted, b.result.verdict.predicted);
    for (std::size_t i = 0; i < a.result.verdict.distribution.numel();
         ++i) {
      EXPECT_EQ(a.result.verdict.distribution[i],
                b.result.verdict.distribution[i]);
    }
  }
  server.drain();
  router.drain();

  // Draining the router drains its shard: submissions now reject.
  auto late = router.submit(make_request(3, frames[0]));
  EXPECT_EQ(late.admit, serve::Admit::kRejected);
  EXPECT_EQ(late.response.get().status, serve::Status::kRejected);
}

}  // namespace
