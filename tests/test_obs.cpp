// Tests for darnet::obs -- the observability layer.
//
// Covers five things:
//  1. Macro semantics: instrumentation arguments are evaluated exactly
//     when DARNET_OBS is on, and never in disabled builds (zero-cost
//     proof mirroring test_check.cpp).
//  2. Registry correctness: name grammar, kind clashes, handle stability,
//     and counter/histogram folding under parallel_for contention.
//  3. Histogram bucket edges (power-of-two buckets starting at 256 ns).
//  4. Trace spans: ring-buffer wraparound, detail truncation, and
//     deterministic ordered chrome://tracing JSON export.
//  5. Parity: training results are bit-identical whether or not the
//     instrumentation is compiled in. The golden below was recorded from
//     an observability-ON Release build; the obs-off CI leg must
//     reproduce it exactly.
//
// Note the registry and trace APIs exist in BOTH build modes (the obs
// library is always compiled); only the DARNET_* macros change meaning.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

namespace obs = darnet::obs;
using darnet::tensor::Tensor;

// ---------------------------------------------------------------------------
// 1. Macro semantics.

TEST(ObsMacros, EnabledMatchesCompileFlag) {
#ifdef DARNET_OBS
  EXPECT_TRUE(obs::enabled());
#else
  EXPECT_FALSE(obs::enabled());
#endif
}

TEST(ObsMacros, CounterArgumentEvaluationMatchesBuildMode) {
  int calls = 0;
  auto touch = [&calls]() {
    ++calls;
    return 7;
  };
  DARNET_COUNTER_ADD("obs_test/zero_cost_total", touch());
  if (obs::enabled()) {
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(obs::registry().counter("obs_test/zero_cost_total").value(),
              7u);
  } else {
    // Disabled builds compile the macro into an unevaluated sizeof: the
    // argument never runs and nothing is registered (the lookup below
    // creates a fresh, zero counter).
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(obs::registry().counter("obs_test/zero_cost_total").value(),
              0u);
  }
}

TEST(ObsMacros, GaugeAndHistogramMacrosMatchBuildMode) {
  int calls = 0;
  auto touch = [&calls]() {
    ++calls;
    return 512;
  };
  DARNET_GAUGE_SET("obs_test/zero_cost_gauge", touch());
  DARNET_HISTOGRAM_NS("obs_test/zero_cost_ns", touch());
  if (obs::enabled()) {
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(obs::registry().gauge("obs_test/zero_cost_gauge").value(),
              512.0);
    EXPECT_EQ(
        obs::registry().histogram("obs_test/zero_cost_ns").snapshot().count,
        1u);
  } else {
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(obs::registry().gauge("obs_test/zero_cost_gauge").value(), 0.0);
    EXPECT_EQ(
        obs::registry().histogram("obs_test/zero_cost_ns").snapshot().count,
        0u);
  }
}

TEST(ObsMacros, SpanMacroRecordsOnlyWhenEnabled) {
  obs::clear_trace();
  const std::uint64_t before = obs::trace_recorded_total();
  {
    DARNET_SPAN("obs_test/span_scope");
    DARNET_SPAN_DETAIL("obs_test/span_detail", std::string("batch 3"));
  }
  const std::uint64_t recorded = obs::trace_recorded_total() - before;
  if (obs::enabled()) {
    EXPECT_EQ(recorded, 2u);
  } else {
    EXPECT_EQ(recorded, 0u);
  }
}

// ---------------------------------------------------------------------------
// 2. Registry correctness. These use the library API directly so they run
//    identically in both build modes.

TEST(MetricsRegistry, NameGrammar) {
  EXPECT_TRUE(obs::valid_metric_name("engine/classify_ns"));
  EXPECT_TRUE(obs::valid_metric_name("a/b/c_2"));
  EXPECT_FALSE(obs::valid_metric_name(""));
  EXPECT_FALSE(obs::valid_metric_name("noslash"));
  EXPECT_FALSE(obs::valid_metric_name("/leading"));
  EXPECT_FALSE(obs::valid_metric_name("trailing/"));
  EXPECT_FALSE(obs::valid_metric_name("double//slash"));
  EXPECT_FALSE(obs::valid_metric_name("Upper/case"));
  EXPECT_FALSE(obs::valid_metric_name("bad/ch-ar"));

  EXPECT_THROW(static_cast<void>(obs::registry().counter("BadName")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(obs::registry().gauge("also bad")),
               std::invalid_argument);
}

TEST(MetricsRegistry, KindClashThrows) {
  static_cast<void>(obs::registry().counter("obs_test/kind_clash"));
  EXPECT_THROW(static_cast<void>(obs::registry().gauge("obs_test/kind_clash")),
               std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(obs::registry().histogram("obs_test/kind_clash")),
      std::invalid_argument);
}

TEST(MetricsRegistry, HandlesAreStableAcrossLookups) {
  obs::Counter& a = obs::registry().counter("obs_test/stable_total");
  obs::Counter& b = obs::registry().counter("obs_test/stable_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(MetricsRegistry, CounterFoldsShardsUnderParallelForContention) {
  darnet::parallel::set_thread_count(2);  // force a real pool even on 1 CPU
  obs::Counter& c = obs::registry().counter("obs_test/contention_total");
  obs::Histogram& h = obs::registry().histogram("obs_test/contention_ns");
  const std::uint64_t c0 = c.value();
  const std::uint64_t h0 = h.snapshot().count;
  constexpr std::int64_t kN = 20000;
  darnet::parallel::parallel_for(0, kN, /*grain=*/1,
                                 [&](std::int64_t b, std::int64_t e) {
                                   for (std::int64_t i = b; i < e; ++i) {
                                     c.add(1);
                                     h.record(300);
                                   }
                                 });
  EXPECT_EQ(c.value() - c0, static_cast<std::uint64_t>(kN));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count - h0, static_cast<std::uint64_t>(kN));
  EXPECT_GE(snap.counts[1], static_cast<std::uint64_t>(kN));  // 300 -> bucket 1
  darnet::parallel::set_thread_count(1);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles) {
  obs::Counter& c = obs::registry().counter("obs_test/reset_total");
  c.add(5);
  obs::registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the handle stays valid after reset
  EXPECT_EQ(c.value(), 2u);
}

// ---------------------------------------------------------------------------
// 3. Histogram bucket edges.

TEST(Histogram, BucketEdges) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(255), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(256), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(511), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(512), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}),
            obs::Histogram::kBuckets - 1);

  EXPECT_EQ(obs::Histogram::bucket_lower_ns(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_lower_ns(1), 256u);
  EXPECT_EQ(obs::Histogram::bucket_lower_ns(2), 512u);
  // Bucket lower bounds and bucket_of agree at every edge.
  for (int i = 1; i < obs::Histogram::kBuckets; ++i) {
    const std::uint64_t lo = obs::Histogram::bucket_lower_ns(i);
    EXPECT_EQ(obs::Histogram::bucket_of(lo), i);
    EXPECT_EQ(obs::Histogram::bucket_of(lo - 1), i - 1);
  }
}

TEST(Histogram, SnapshotSumAndMean) {
  obs::Histogram& h = obs::registry().histogram("obs_test/snapshot_ns");
  h.record(100);
  h.record(300);
  h.record(2000);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum_ns, 2400u);
  EXPECT_DOUBLE_EQ(snap.mean_ns(), 800.0);
  EXPECT_EQ(snap.counts[0], 1u);  // 100
  EXPECT_EQ(snap.counts[1], 1u);  // 300
  EXPECT_EQ(snap.counts[3], 1u);  // 2000
}

TEST(MetricsRegistry, JsonSnapshotIsDeterministicAndSorted) {
  static_cast<void>(obs::registry().counter("obs_test/json_b_total"));
  static_cast<void>(obs::registry().counter("obs_test/json_a_total"));
  static_cast<void>(obs::registry().gauge("obs_test/json_gauge"));
  const std::string a = obs::registry().to_json();
  const std::string b = obs::registry().to_json();
  EXPECT_EQ(a, b) << "snapshots of an unchanged registry must be identical";
  EXPECT_NE(a.find("\"counters\""), std::string::npos);
  EXPECT_NE(a.find("\"gauges\""), std::string::npos);
  EXPECT_NE(a.find("\"histograms\""), std::string::npos);
  const std::size_t pos_a = a.find("obs_test/json_a_total");
  const std::size_t pos_b = a.find("obs_test/json_b_total");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b) << "names must be emitted in sorted order";
}

// ---------------------------------------------------------------------------
// 4. Trace spans.

TEST(TraceSpans, RecordsNestedSpansInDeterministicOrder) {
  obs::clear_trace();
  {
    obs::SpanScope outer("obs_test/outer");
    obs::SpanScope inner("obs_test/inner", "level 2");
  }
  EXPECT_EQ(obs::trace_event_count(), 2u);
  const std::string json = obs::trace_json();
  EXPECT_EQ(json, obs::trace_json()) << "export must be deterministic";
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  const std::size_t pos_outer = json.find("obs_test/outer");
  const std::size_t pos_inner = json.find("obs_test/inner");
  ASSERT_NE(pos_outer, std::string::npos);
  ASSERT_NE(pos_inner, std::string::npos);
  EXPECT_LT(pos_outer, pos_inner)
      << "parents must precede children (start asc, duration desc)";
  EXPECT_NE(json.find("level 2"), std::string::npos);
  obs::clear_trace();
}

TEST(TraceSpans, DetailIsTruncatedToCap) {
  obs::clear_trace();
  const std::string long_detail(100, 'x');
  { obs::SpanScope s("obs_test/truncate", long_detail); }
  const std::string json = obs::trace_json();
  const std::string kept(obs::kSpanDetailCap - 1, 'x');
  EXPECT_NE(json.find(kept), std::string::npos);
  EXPECT_EQ(json.find(kept + "x"), std::string::npos);
  obs::clear_trace();
}

TEST(TraceSpans, RingBufferWrapsKeepingNewestEvents) {
  obs::clear_trace();
  const std::uint64_t base = obs::trace_recorded_total();
  const std::size_t n = obs::kTraceRingCapacity + 257;
  for (std::size_t i = 0; i < n; ++i) {
    obs::SpanScope s("obs_test/wrap");
  }
  EXPECT_EQ(obs::trace_event_count(), obs::kTraceRingCapacity)
      << "the ring must hold exactly its capacity after wrapping";
  EXPECT_EQ(obs::trace_recorded_total() - base, n)
      << "the recorded total must keep counting past the wrap";
  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

// ---------------------------------------------------------------------------
// 5. Instrumented-path parity: a short training run produces bit-identical
//    parameters whether observability is compiled in or not. The golden
//    was recorded from an obs-ON Release build; the obs-off leg must
//    reproduce it (instrumentation never touches RNG or numeric state).

std::uint64_t bit_hash(std::span<const float> values) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const float f : values) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof bits);
    for (int b = 0; b < 4; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

TEST(ObsParity, TrainerBitsMatchGoldenInBothBuildModes) {
  darnet::util::Rng rng(99);
  darnet::nn::Sequential model;
  model.emplace<darnet::nn::Dense>(6, 8, rng);
  model.emplace<darnet::nn::ReLU>();
  model.emplace<darnet::nn::Dense>(8, 3, rng);

  const Tensor x = Tensor::he_normal({24, 6}, 6, rng);
  std::vector<int> labels(24);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 3);
  }

  darnet::nn::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 8;
  cfg.shuffle_seed = 7;
  darnet::nn::Sgd opt(0.05, 0.9, 0.0);
  const double loss =
      darnet::nn::train_classifier(model, opt, x, labels, cfg);
  EXPECT_GT(loss, 0.0);

  std::uint64_t h = 1469598103934665603ULL;
  for (darnet::nn::Param* p : model.params()) {
    h ^= bit_hash(p->value.flat());
    h *= 1099511628211ULL;
  }
  EXPECT_EQ(h, 0xa956908895240947ULL)
      << "trained parameter bits differ from the recorded golden "
         "(obs ON and OFF builds must agree); actual 0x"
      << std::hex << h;
}

}  // namespace
