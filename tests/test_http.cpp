// Tests for the HTTP edge: the dependency-free HTTP/1.1 server/client
// pair over real loopback TCP (routing, malformed bytes, the bounded
// 503 backlog) and the Edge's JSON classify protocol wired to a
// serve::Router (happy path, 400/404/405, quota 429).
//
// Note: std::thread is banned outside src/parallel, so concurrency here
// comes from the HttpServer's own accept/handler threads; the test
// thread drives them through blocking client calls and raw sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/streaming.hpp"
#include "http/edge.hpp"
#include "http/http.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

constexpr int kFeatures = 4;
constexpr int kClasses = 6;

std::shared_ptr<engine::EnsembleClassifier> make_dense_ensemble() {
  util::Rng rng(2024);
  auto model = std::make_shared<nn::Sequential>();
  model->emplace<nn::Dense>(kFeatures, kClasses, rng);
  auto frames =
      std::make_shared<engine::NeuralClassifier>(model, kClasses, "dense");
  return std::make_shared<engine::EnsembleClassifier>(
      frames, nullptr, bayes::ClassMap::darnet_default());
}

serve::Router::Snapshot make_snapshot(int shards, std::uint64_t version) {
  serve::Router::Snapshot snapshot;
  snapshot.version = version;
  for (int s = 0; s < shards; ++s) {
    snapshot.replicas.push_back(make_dense_ensemble());
  }
  return snapshot;
}

/// Raw loopback connection for wire-level tests the well-formed client
/// cannot express (garbage bytes, idle connections clogging the
/// backlog). Close() is idempotent.
struct RawConn {
  int fd{-1};
  explicit RawConn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawConn() { close(); }
  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  void send(const std::string& bytes) {
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  std::string read_all() {
    std::string reply;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      reply.append(chunk, static_cast<std::size_t>(n));
    }
    return reply;
  }
};

std::string frame_json(const Tensor& frame) {
  std::string out = "[";
  for (std::size_t i = 0; i < frame.numel(); ++i) {
    if (i) out += ",";
    out += std::to_string(frame[i]);
  }
  return out + "]";
}

TEST(HttpServer, ServesParsedRequestsOverLoopback) {
  http::HttpServerConfig config;  // port 0: ephemeral
  http::HttpServer server(
      [](const http::Request& request) {
        http::Response response;
        if (request.target == "/echo") {
          response.body = request.method + "|" + request.body + "|" +
                          std::to_string(request.headers.count("host"));
          return response;
        }
        response.status = 404;
        response.body = "{\"error\":\"nope\"}";
        return response;
      },
      config);
  ASSERT_GT(server.port(), 0);

  http::ClientResponse reply =
      http::post("127.0.0.1", server.port(), "/echo", "payload");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "POST|payload|1");  // headers lower-cased

  reply = http::get("127.0.0.1", server.port(), "/echo");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "GET||1");

  reply = http::get("127.0.0.1", server.port(), "/missing");
  EXPECT_EQ(reply.status, 404);

  server.stop();
  const http::HttpServer::Stats stats = server.stats();
  EXPECT_EQ(stats.connections, 3u);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.bad_requests, 1u);  // the handler's 404
  EXPECT_EQ(stats.overloaded, 0u);

  // Stopped server: the client reports a transport failure (status 0).
  reply = http::get("127.0.0.1", server.port(), "/echo");
  EXPECT_EQ(reply.status, 0);
}

TEST(HttpServer, MalformedBytesEarnA400) {
  http::HttpServerConfig config;
  http::HttpServer server(
      [](const http::Request&) { return http::Response{}; }, config);

  RawConn garbage(server.port());
  garbage.send("this is not http\r\n\r\n");
  const std::string reply = garbage.read_all();
  EXPECT_NE(reply.find("400"), std::string::npos) << reply;
  garbage.close();

  // EOF before a full head is also malformed, never a hang.
  RawConn eof(server.port());
  ASSERT_EQ(::shutdown(eof.fd, SHUT_WR), 0);
  EXPECT_NE(eof.read_all().find("400"), std::string::npos);
  eof.close();

  server.stop();
  EXPECT_GE(server.stats().bad_requests, 2u);
}

TEST(HttpServer, BoundedBacklogAnswers503Inline) {
  http::HttpServerConfig config;
  config.workers = 1;
  config.pending_capacity = 1;
  http::HttpServer server(
      [](const http::Request&) { return http::Response{}; }, config);

  // Three idle connections against one worker and a one-deep backlog:
  // the worker parks reading the first, the backlog holds one more, and
  // the accept loop must answer the overflow 503 inline -- the bounded
  // admission contract. (Which connection overflows depends on when the
  // worker dequeues, so assert on the counter, not a specific socket.)
  RawConn a(server.port());
  RawConn b(server.port());
  RawConn c(server.port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().overloaded == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().overloaded, 1u);

  a.close();
  b.close();
  c.close();
  server.stop();
}

TEST(HttpEdge, RoutesHealthzMetricsAndErrors) {
  serve::RouterConfig router_config;
  router_config.shards = 2;
  router_config.shard.max_delay_us = 0;
  serve::Router router(make_snapshot(2, 1), router_config);
  http::EdgeConfig edge_config;
  edge_config.frame_shape = {1, kFeatures};
  http::Edge edge(router, edge_config);

  http::ClientResponse reply =
      http::get("127.0.0.1", edge.port(), "/healthz");
  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(reply.body.find("\"version\":1"), std::string::npos);

  reply = http::get("127.0.0.1", edge.port(), "/metrics");
  EXPECT_EQ(reply.status, 200);
  // The obs registry JSON carries the documented serving rows (the
  // router sets its shard-count gauge at construction; serve/* counters
  // only appear once a batch is actually served).
  EXPECT_NE(reply.body.find("route/shards"), std::string::npos);

  EXPECT_EQ(http::post("127.0.0.1", edge.port(), "/healthz", "{}").status,
            405);
  EXPECT_EQ(http::get("127.0.0.1", edge.port(), "/classify").status, 405);
  EXPECT_EQ(http::get("127.0.0.1", edge.port(), "/nowhere").status, 404);

  edge.stop();
  router.drain();
}

TEST(HttpEdge, ClassifyMatchesTheStreamingReferenceBitForBit) {
  serve::RouterConfig router_config;
  router_config.shard.max_delay_us = 0;
  serve::Router router(make_snapshot(1, 1), router_config);
  http::EdgeConfig edge_config;
  edge_config.frame_shape = {1, kFeatures};
  http::Edge edge(router, edge_config);

  // Reference: the single-threaded stream over the same frames.
  auto ensemble = make_dense_ensemble();
  engine::StreamingClassifier stream(ensemble, engine::StreamingConfig{});
  util::Rng rng(11);
  for (int t = 0; t < 4; ++t) {
    const Tensor frame = Tensor::uniform({1, kFeatures}, 1.0f, rng);
    const engine::StreamingVerdict want = stream.step(frame, Tensor{});
    const std::string body =
        "{\"session\":7,\"frame\":" + frame_json(frame) + "}";
    http::ClientResponse reply =
        http::post("127.0.0.1", edge.port(), "/classify", body);
    EXPECT_EQ(reply.status, 200) << reply.body;
    EXPECT_NE(reply.body.find("\"session\":7"), std::string::npos);
    EXPECT_NE(reply.body.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(reply.body.find("\"class\":" + std::to_string(want.predicted)),
              std::string::npos)
        << reply.body;
  }

  // Body protocol violations are the client's fault: 400, not 500.
  EXPECT_EQ(http::post("127.0.0.1", edge.port(), "/classify",
                       "{\"frame\":[1,2,3,4]}")
                .status,
            400);  // no session
  EXPECT_EQ(http::post("127.0.0.1", edge.port(), "/classify",
                       "{\"session\":1,\"frame\":[1,2]}")
                .status,
            400);  // frame/shape mismatch
  EXPECT_EQ(http::post("127.0.0.1", edge.port(), "/classify", "junk").status,
            400);

  edge.stop();
  router.drain();
  EXPECT_EQ(router.stats().routed, 4u);  // the 400s never reached serving
}

TEST(HttpEdge, QuotaRejectionMapsTo429) {
  serve::RouterConfig router_config;
  router_config.shard.max_delay_us = 0;
  router_config.quotas[3] = serve::TenantQuota{1.0, 0.0};  // 1 shot, no refill
  serve::Router router(make_snapshot(1, 1), router_config);
  http::EdgeConfig edge_config;
  edge_config.frame_shape = {1, kFeatures};
  http::Edge edge(router, edge_config);

  const std::string body =
      "{\"session\":9,\"tenant\":3,\"frame\":[0.1,0.2,0.3,0.4]}";
  EXPECT_EQ(http::post("127.0.0.1", edge.port(), "/classify", body).status,
            200);
  http::ClientResponse clipped =
      http::post("127.0.0.1", edge.port(), "/classify", body);
  EXPECT_EQ(clipped.status, 429);
  EXPECT_NE(clipped.body.find("\"status\":\"rejected\""), std::string::npos)
      << clipped.body;

  edge.stop();
  router.drain();
  EXPECT_EQ(router.stats().quota_rejected, 1u);
}

/// Counting serve::TimeSource frozen at a fixed instant; handler threads
/// read it concurrently, so the call counter is atomic.
struct CountingSource final : serve::TimeSource {
  explicit CountingSource(std::chrono::steady_clock::time_point at)
      : at_(at) {}
  [[nodiscard]] std::chrono::steady_clock::time_point now()
      const noexcept override {
    calls.fetch_add(1, std::memory_order_relaxed);
    return at_;
  }
  mutable std::atomic<std::uint64_t> calls{0};

 private:
  std::chrono::steady_clock::time_point at_;
};

// The per-request latency timer in HttpServer::handle_connection must
// read the injected TimeSource, never std::chrono::steady_clock
// directly (rule time-source-purity: the clock_now() seam is the only
// sanctioned read).
TEST(HttpTimeSource, RequestTimerReadsTheInjectedClock) {
  auto clock = std::make_shared<CountingSource>(
      std::chrono::steady_clock::time_point{std::chrono::hours{1}});
  http::HttpServerConfig config;
  config.time_source = clock;
  http::HttpServer server(
      [](const http::Request&) { return http::Response{}; }, config);
  ASSERT_GT(server.port(), 0);

  EXPECT_EQ(http::get("127.0.0.1", server.port(), "/ping").status, 200);
  server.stop();
  // One read stamps the request start unconditionally; obs-enabled
  // builds read again for the http/request_ns histogram.
  EXPECT_GE(clock->calls.load(), 1u)
      << "request timer bypassed the injected TimeSource";
}

// The Edge stamps classify deadlines from Router::clock_now(), which
// forwards to the shard TimeSource. The fake sits decades past the
// steady epoch while the host's steady clock (uptime-based) is far
// behind it, so a 1 ms deadline discriminates: one hidden wall-clock
// read at the stamping site and the deadline would be decades in the
// triage clock's past, timing out every request.
TEST(HttpEdge, DeadlineStampReadsTheRouterClock) {
  const auto far_future =
      std::chrono::steady_clock::time_point{std::chrono::hours{24 * 3650}};
  ASSERT_LT(std::chrono::steady_clock::now(), far_future)
      << "host steady clock too old for this regression to discriminate";
  auto clock = std::make_shared<CountingSource>(far_future);

  serve::RouterConfig router_config;
  router_config.shard.max_delay_us = 0;
  router_config.shard.time_source = clock;
  serve::Router router(make_snapshot(1, 1), router_config);
  http::EdgeConfig edge_config;
  edge_config.frame_shape = {1, kFeatures};
  edge_config.deadline_us = 1000;
  http::Edge edge(router, edge_config);

  const std::string body =
      "{\"session\":5,\"frame\":[0.1,0.2,0.3,0.4]}";
  http::ClientResponse reply =
      http::post("127.0.0.1", edge.port(), "/classify", body);
  EXPECT_EQ(reply.status, 200) << reply.body;
  EXPECT_NE(reply.body.find("\"status\":\"ok\""), std::string::npos)
      << reply.body;
  EXPECT_GT(clock->calls.load(), 0u)
      << "deadline stamp bypassed the router's TimeSource";

  edge.stop();
  router.drain();
  EXPECT_EQ(router.stats().routed, 1u);
}

}  // namespace
