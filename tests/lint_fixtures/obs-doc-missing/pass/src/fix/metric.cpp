// Fixture: registered metric with its documentation row present.
void bump() { DARNET_COUNTER_ADD("fix/events_total", 1); }
