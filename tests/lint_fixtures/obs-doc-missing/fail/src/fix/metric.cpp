// Fixture: registered metric with no docs/OBSERVABILITY.md table row.
void bump() { DARNET_COUNTER_ADD("fix/events_total", 1); }
