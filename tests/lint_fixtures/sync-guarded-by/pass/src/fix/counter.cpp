// Fixture: every member of a lock-owning class declares its discipline.
#include <atomic>
#include "sync/sync.hpp"
class Counter {
 public:
  void bump();

 private:
  darnet::sync::Mutex mu_{"fix/counter"};
  int value_ DARNET_GUARDED_BY(mu_) = 0;
  std::atomic<int> peeks_{0};
  static constexpr int kStep = 1;
  const char* label_ DARNET_THREAD_LOCAL = "fix";
};
