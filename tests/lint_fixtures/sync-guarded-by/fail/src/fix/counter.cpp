// Fixture: lock-owning class with an unannotated mutable member.
#include "sync/sync.hpp"
class Counter {
 public:
  void bump();

 private:
  darnet::sync::Mutex mu_{"fix/counter"};
  int value_ = 0;
};
