// Fixture: src/parallel/ owns all thread creation in the tree.
#include <thread>
void spawn() {
  std::thread worker([] {});
  worker.join();
}
