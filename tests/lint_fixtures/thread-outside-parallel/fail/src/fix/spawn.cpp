// Fixture: std::thread outside src/parallel/.
#include <thread>
void spawn() {
  std::thread worker([] {});
  worker.join();
}
