// Fixture: a REQUIRES marker on a definition with no matching assertion.
#include "sync/sync.hpp"
struct Registry {
  darnet::sync::Mutex mu{"fix/registry"};
  int count DARNET_GUARDED_BY(mu) = 0;

  // REQUIRES: mu held (reads count).
  int snapshot() { return count; }
};
