// Fixture: the lock precondition is executable, not prose.
#include "sync/sync.hpp"
struct Registry {
  darnet::sync::Mutex mu{"fix/registry"};
  int count DARNET_GUARDED_BY(mu) = 0;

  // REQUIRES: mu held (reads count).
  int snapshot() {
    DARNET_ASSERT_HELD(mu);
    return count;
  }
};
