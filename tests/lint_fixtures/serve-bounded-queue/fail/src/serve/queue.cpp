// Fixture: push into a queue member with no visible capacity guard.
#include <deque>
struct Admission {
  std::deque<int> queue_;
  void add(int v) { queue_.push_back(v); }
};
