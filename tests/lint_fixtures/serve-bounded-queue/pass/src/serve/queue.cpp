// Fixture: the push is guarded against the configured capacity.
#include <cstddef>
#include <deque>
struct Admission {
  std::deque<int> queue_;
  std::size_t capacity_ = 8;
  void add(int v) {
    if (queue_.size() >= capacity_) return;
    queue_.push_back(v);
  }
};
