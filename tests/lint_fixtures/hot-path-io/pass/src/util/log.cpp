// Fixture: the same I/O is fine outside src/tensor and src/nn.
#include <cstdio>
void trace_value(float v) { printf("%f\n", static_cast<double>(v)); }
