// Fixture: console I/O inside a tensor hot path.
#include <cstdio>
void trace_value(float v) { printf("%f\n", static_cast<double>(v)); }
