// Fixture: raw delete expression.
void destroy(int* p) { delete p; }
