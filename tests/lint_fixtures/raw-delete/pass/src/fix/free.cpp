// Fixture: `= delete` declarations are allowed (not a delete expression).
struct NoCopy {
  NoCopy() = default;
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};
