// Fixture: a float vector on the inference hot path (src/engine/ is a
// hot-path-alloc directory and this file is not in the exemption
// registry).
#include <vector>
float sum_scores(int n) {
  std::vector<float> scores(static_cast<std::size_t>(n), 0.0F);
  float s = 0.0F;
  for (float v : scores) s += v;
  return s;
}
