// Fixture: non-float vectors are fine in hot-path directories (the rule
// targets the numeric buffers that belong in tensor::Storage), comments
// may name std::vector<float> freely, and other element types carry no
// steady-state allocation contract.
#include <cstddef>
#include <vector>
float sum_ids(int n) {
  std::vector<int> ids(static_cast<std::size_t>(n), 1);
  float s = 0.0F;
  for (int v : ids) s += static_cast<float>(v);
  return s;
}
