// Fixture: float vectors outside the hot-path directories are fine --
// src/collection/ is an offline ingestion tier with no steady-state
// inference contract.
#include <cstddef>
#include <vector>
float sum_samples(int n) {
  std::vector<float> samples(static_cast<std::size_t>(n), 0.5F);
  float s = 0.0F;
  for (float v : samples) s += v;
  return s;
}
