// Fixture: src/sync/ is exempt from raw-new -- the lock-order checker
// immortalises its graph state on purpose (never destroyed, so locks
// taken during static/TLS destruction cannot touch a dead object).
int* immortal_state() { return new int(1); }
