// Fixture: allocation through make_unique is the sanctioned form.
#include <memory>
std::unique_ptr<int> owned() { return std::make_unique<int>(7); }
