// Fixture: allocation-function signatures (`operator new` / `operator
// delete`) are definitions, not raw new/delete expressions. Replacement
// allocators such as the counting allocator in test_hotpath_alloc.cpp
// define these legitimately.
#include <cstdlib>
#include <new>
void* operator new(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
