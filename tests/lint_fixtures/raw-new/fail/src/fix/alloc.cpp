// Fixture: raw new expression (ownership must be RAII-managed).
int* leak() { return new int(7); }
