// Fixture: std::mt19937 may be *mentioned* in comments; code routes all
// randomness through an explicitly seeded generator (util::Rng idiom).
int roll(unsigned seed) { return static_cast<int>(seed * 1103515245u); }
