// Fixture: unseeded standard-library RNG.
#include <random>
int roll() {
  std::mt19937 generator;
  return static_cast<int>(generator());
}
