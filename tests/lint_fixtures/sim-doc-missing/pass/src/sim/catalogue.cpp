// Fixture: registered scenario with no docs/SIMULATION.md catalogue row.
#include <string>
#include <vector>

struct Scenario {
  std::string name;
};

void build(std::vector<Scenario>& out) {
  const auto register_scenario = [&out](const char* name) {
    out.push_back(Scenario{name});
  };
  register_scenario("fix_steady");
}
