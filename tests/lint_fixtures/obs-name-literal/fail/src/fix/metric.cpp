// Fixture: metric name passed through a variable, not a string literal --
// the documented contract must be statically extractable.
void bump() {
  const char* name = "fix/events_total";
  DARNET_COUNTER_ADD(name, 1);
}
