// Fixture: literal metric name, documented in docs/OBSERVABILITY.md.
void bump() { DARNET_COUNTER_ADD("fix/events_total", 1); }
