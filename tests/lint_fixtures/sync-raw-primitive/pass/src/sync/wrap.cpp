// Fixture: src/sync/ itself is the one place allowed to name the raw
// primitives (it wraps them).
#include <mutex>
std::mutex g_raw;
