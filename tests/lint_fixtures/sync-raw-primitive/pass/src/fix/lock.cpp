// Fixture: locking flows through the sync wrappers.
#include "sync/sync.hpp"
namespace { darnet::sync::Mutex g_mu{"fix/lock"}; }
void touch() { darnet::sync::Lock lock(g_mu); }
