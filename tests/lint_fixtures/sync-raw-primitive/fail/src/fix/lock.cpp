// Fixture: raw standard-library lock outside src/sync/.
#include <mutex>
std::mutex g_mu;
void touch() {
  std::lock_guard<std::mutex> lock(g_mu);
}
