// Fixture: the sanctioned alternative -- no gate token anywhere; callers
// use the owning API. A longer identifier merely *containing* the gate
// prefix mid-token is not a hit (start-of-identifier boundary).
int kX_DARNET_ALLOW_DEPRECATED_suffix_is_not_a_gate = 0;
int shims_gone() { return kX_DARNET_ALLOW_DEPRECATED_suffix_is_not_a_gate; }
