// Fixture: src/engine/ may name the gate (it guards the shims there).
#if defined(DARNET_ALLOW_DEPRECATED_ENGINE_SHIMS)
int shims_enabled() { return 1; }
#endif
int shims_gated() { return 0; }
