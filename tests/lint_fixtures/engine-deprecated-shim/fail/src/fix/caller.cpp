// Fixture: re-enabling the deprecated engine shim API by hand.
#define DARNET_ALLOW_DEPRECATED_ENGINE_SHIMS 1
int shimmed() { return 0; }
