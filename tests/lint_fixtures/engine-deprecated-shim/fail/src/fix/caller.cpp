// Fixture: resurrecting a deleted shim API behind a renamed gate. The
// rule prefix-matches the gate family, so new suffixes don't dodge it.
#define DARNET_ALLOW_DEPRECATED_CORE_SHIMS 1
int shimmed() { return 0; }
