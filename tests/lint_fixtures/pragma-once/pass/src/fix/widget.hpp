// Fixture: header with the required include guard.
#pragma once
namespace fix {
inline int identity(int x) { return x; }
}  // namespace fix
