// Fixture: header missing the required include guard.
namespace fix {
inline int identity(int x) { return x; }
}  // namespace fix
