// Fixture: the documented name is still registered.
void bump() { DARNET_COUNTER_ADD("fix/events_total", 1); }
