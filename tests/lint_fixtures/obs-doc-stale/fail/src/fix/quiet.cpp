// Fixture: registers nothing; the documented row below is stale.
int nothing() { return 0; }
