// Tests for the serving tier: micro-batching determinism (bit-identical to
// the single-threaded StreamingClassifier reference), backpressure and the
// shed policy, per-request deadlines, graceful drain, and the degraded-mode
// watermark hysteresis. Runs under the tsan leg.
//
// Note: std::thread is banned outside src/parallel (darnet_lint
// thread-outside-parallel), so concurrency here is exercised through the
// Server's own workers, gated by condition variables inside stub models.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "engine/engine.hpp"
#include "engine/streaming.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;
using Clock = std::chrono::steady_clock;

constexpr int kFeatures = 4;
constexpr int kClasses = 6;

/// A deterministic input-dependent frame model: Dense(kFeatures ->
/// kClasses) with a fixed seed, so batched and single-row forwards are
/// bit-identical (ops.hpp determinism contract).
std::shared_ptr<engine::EnsembleClassifier> make_dense_ensemble() {
  util::Rng rng(2024);
  auto model = std::make_shared<nn::Sequential>();
  model->emplace<nn::Dense>(kFeatures, kClasses, rng);
  auto frames =
      std::make_shared<engine::NeuralClassifier>(model, kClasses, "dense");
  return std::make_shared<engine::EnsembleClassifier>(
      frames, nullptr, bayes::ClassMap::darnet_default());
}

engine::ClassifyRequest make_request(std::uint64_t session,
                                     const Tensor& frame) {
  engine::ClassifyRequest request;
  request.session_id = session;
  request.frame = frame;
  return request;
}

/// Blocks inside probabilities() until release() -- lets tests hold a
/// batch inside the ensemble while they fill the admission queue.
struct GatedClassifier final : engine::ProbabilisticClassifier {
  sync::Mutex mu{"test/gate"};
  sync::CondVar cv;
  int entered DARNET_GUARDED_BY(mu){0};
  int calls DARNET_GUARDED_BY(mu){0};
  bool open DARNET_GUARDED_BY(mu){true};

  Tensor probabilities(const Tensor& inputs) override {
    sync::UniqueLock lock(mu);
    ++entered;
    ++calls;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
    Tensor p({inputs.dim(0), kClasses});
    p.fill(1.0f / static_cast<float>(kClasses));
    return p;
  }
  int num_classes() const override { return kClasses; }
  std::string describe() const override { return "gated"; }

  void close_gate() {
    sync::Lock lock(mu);
    open = false;
  }
  void release() {
    {
      sync::Lock lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  /// Wait until `n` calls have entered (i.e. a batch is inside the model).
  void await_entered(int n) {
    sync::UniqueLock lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }
};

/// Identity over the IMU evidence distribution (already [N, 3]).
struct IdentityImu final : engine::ProbabilisticClassifier {
  Tensor probabilities(const Tensor& inputs) override { return inputs; }
  int num_classes() const override { return 3; }
  std::string describe() const override { return "identity"; }
};

/// serve::TimeSource forwarding to the wall clock -- an explicit source
/// must be indistinguishable from the nullptr default.
struct WallClockSource final : serve::TimeSource {
  Clock::time_point now() const noexcept override { return Clock::now(); }
};

/// A clock pinned to one instant, for deadline boundary cases.
struct FrozenSource final : serve::TimeSource {
  Clock::time_point at{Clock::time_point() + std::chrono::hours(1)};
  Clock::time_point now() const noexcept override { return at; }
};

TEST(ServeConfig, Validation) {
  auto ensemble = make_dense_ensemble();
  serve::ShardConfig config;

  EXPECT_THROW(serve::Server(nullptr, config), std::invalid_argument);

  config.max_batch = 0;
  EXPECT_THROW(serve::Server(ensemble, config), std::invalid_argument);
  config = {};
  config.queue_capacity = 0;
  EXPECT_THROW(serve::Server(ensemble, config), std::invalid_argument);
  config = {};
  config.workers = 0;
  EXPECT_THROW(serve::Server(ensemble, config), std::invalid_argument);
  config = {};
  config.degrade_high_watermark = 2;
  config.degrade_low_watermark = 3;
  EXPECT_THROW(serve::Server(ensemble, config), std::invalid_argument);
  config = {};
  config.streaming.smoothing_alpha = 0.0;
  EXPECT_THROW(serve::Server(ensemble, config), std::invalid_argument);
}

TEST(ServeNames, Stable) {
  EXPECT_STREQ(serve::admit_name(serve::Admit::kAccepted), "accepted");
  EXPECT_STREQ(serve::admit_name(serve::Admit::kShedOldest), "shed_oldest");
  EXPECT_STREQ(serve::admit_name(serve::Admit::kRejected), "rejected");
  EXPECT_STREQ(serve::status_name(serve::Status::kOk), "ok");
  EXPECT_STREQ(serve::status_name(serve::Status::kTimeout), "timeout");
  EXPECT_STREQ(serve::status_name(serve::Status::kShed), "shed");
  EXPECT_STREQ(serve::status_name(serve::Status::kRejected), "rejected");
}

// The golden test: many interleaved sessions, batched across multiple
// workers, must produce verdict streams bit-for-bit identical to a
// single-threaded StreamingClassifier fed the same per-session inputs in
// the same order -- batch boundaries and scheduling must not leak into
// results.
TEST(ServeDeterminism, BitIdenticalToStreamingReference) {
  auto ensemble = make_dense_ensemble();

  constexpr int kSessions = 4;
  constexpr int kSteps = 12;
  engine::StreamingConfig streaming;
  streaming.smoothing_alpha = 0.5;
  streaming.alert_streak = 2;

  // Per-session input timelines.
  util::Rng rng(7);
  std::vector<std::vector<Tensor>> frames(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    for (int t = 0; t < kSteps; ++t) {
      frames[s].push_back(Tensor::uniform({1, kFeatures}, 1.0f, rng));
    }
  }

  // Reference: the single-threaded streaming classifier, one per session.
  std::vector<std::vector<engine::StreamingVerdict>> reference(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    engine::StreamingClassifier stream(ensemble, streaming);
    for (int t = 0; t < kSteps; ++t) {
      reference[s].push_back(stream.step(frames[s][t], Tensor{}));
    }
  }

  // Served: submit the same inputs riffle-interleaved across sessions
  // (per-session order preserved -- the determinism contract's domain),
  // with batching and two workers.
  serve::ShardConfig config;
  config.max_batch = 4;
  config.max_delay_us = 500;
  config.queue_capacity = 256;
  config.workers = 2;
  config.streaming = streaming;
  serve::Server server(ensemble, config);

  std::vector<std::vector<std::future<serve::Response>>> futures(kSessions);
  std::vector<int> cursor(kSessions, 0);
  int remaining = kSessions * kSteps;
  while (remaining > 0) {
    const int s = static_cast<int>(rng.uniform_index(kSessions));
    if (cursor[s] >= kSteps) continue;
    auto sub = server.submit(make_request(
        static_cast<std::uint64_t>(s), frames[s][cursor[s]]));
    ASSERT_EQ(sub.admit, serve::Admit::kAccepted);
    futures[s].push_back(std::move(sub.response));
    ++cursor[s];
    --remaining;
  }
  server.drain();

  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(futures[s].size(), static_cast<std::size_t>(kSteps));
    for (int t = 0; t < kSteps; ++t) {
      serve::Response response = futures[s][t].get();
      ASSERT_EQ(response.status, serve::Status::kOk) << "s=" << s
                                                     << " t=" << t;
      const auto& got = response.result.verdict;
      const auto& want = reference[s][t];
      EXPECT_EQ(got.predicted, want.predicted);
      EXPECT_EQ(got.alert, want.alert);
      EXPECT_EQ(got.alert_onset, want.alert_onset);
      ASSERT_EQ(got.distribution.numel(), want.distribution.numel());
      for (std::size_t i = 0; i < want.distribution.numel(); ++i) {
        // Bitwise: EXPECT_EQ on floats, not EXPECT_FLOAT_EQ.
        EXPECT_EQ(got.distribution[i], want.distribution[i])
            << "s=" << s << " t=" << t << " i=" << i;
      }
      EXPECT_FALSE(response.result.degraded);
      EXPECT_GE(response.result.latency_us, 0);
    }
    const engine::SessionState state =
        server.session(static_cast<std::uint64_t>(s));
    EXPECT_EQ(state.steps, kSteps);
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kSessions * kSteps));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kSessions * kSteps));
  EXPECT_EQ(stats.batched_rows, stats.completed);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.shed + stats.rejected + stats.timeouts, 0u);
}

TEST(ServeBackpressure, ShedOldestAdmitsTheNewcomer) {
  auto gate = std::make_shared<GatedClassifier>();
  auto ensemble = std::make_shared<engine::EnsembleClassifier>(
      gate, nullptr, bayes::ClassMap::darnet_default());

  serve::ShardConfig config;
  config.max_batch = 1;
  config.max_delay_us = 0;
  config.queue_capacity = 2;
  config.shed_oldest = true;
  serve::Server server(ensemble, config);

  const Tensor frame({1, kFeatures});
  gate->close_gate();

  // First request enters the model and blocks there.
  auto first = server.submit(make_request(1, frame));
  ASSERT_EQ(first.admit, serve::Admit::kAccepted);
  gate->await_entered(1);

  // Fill the queue to capacity behind the blocked batch.
  auto second = server.submit(make_request(2, frame));
  auto third = server.submit(make_request(3, frame));
  ASSERT_EQ(second.admit, serve::Admit::kAccepted);
  ASSERT_EQ(third.admit, serve::Admit::kAccepted);
  EXPECT_EQ(server.queue_depth(), 2u);

  // Overflow: the oldest queued request (2) is shed to admit 4.
  auto fourth = server.submit(make_request(4, frame));
  EXPECT_EQ(fourth.admit, serve::Admit::kShedOldest);
  EXPECT_EQ(server.queue_depth(), 2u);
  EXPECT_EQ(second.response.get().status, serve::Status::kShed);

  gate->release();
  server.drain();

  EXPECT_EQ(first.response.get().status, serve::Status::kOk);
  EXPECT_EQ(third.response.get().status, serve::Status::kOk);
  EXPECT_EQ(fourth.response.get().status, serve::Status::kOk);

  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.accepted, 4u);  // all four were admitted to the queue
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(ServeBackpressure, RejectsWhenSheddingDisabled) {
  auto gate = std::make_shared<GatedClassifier>();
  auto ensemble = std::make_shared<engine::EnsembleClassifier>(
      gate, nullptr, bayes::ClassMap::darnet_default());

  serve::ShardConfig config;
  config.max_batch = 1;
  config.max_delay_us = 0;
  config.queue_capacity = 1;
  config.shed_oldest = false;
  serve::Server server(ensemble, config);

  const Tensor frame({1, kFeatures});
  gate->close_gate();

  auto first = server.submit(make_request(1, frame));
  ASSERT_EQ(first.admit, serve::Admit::kAccepted);
  gate->await_entered(1);
  auto second = server.submit(make_request(2, frame));
  ASSERT_EQ(second.admit, serve::Admit::kAccepted);

  auto third = server.submit(make_request(3, frame));
  EXPECT_EQ(third.admit, serve::Admit::kRejected);
  EXPECT_EQ(third.response.get().status, serve::Status::kRejected);

  gate->release();
  server.drain();
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(ServeDeadlines, ExpiredRequestsTimeOutWithoutInference) {
  auto ensemble = make_dense_ensemble();
  serve::ShardConfig config;
  config.max_delay_us = 0;
  serve::Server server(ensemble, config);

  engine::ClassifyRequest request =
      make_request(9, Tensor({1, kFeatures}));
  request.deadline = Clock::now() - std::chrono::milliseconds(1);
  auto sub = server.submit(std::move(request));
  ASSERT_EQ(sub.admit, serve::Admit::kAccepted);

  const serve::Response response = sub.response.get();
  EXPECT_EQ(response.status, serve::Status::kTimeout);
  EXPECT_GE(response.result.latency_us, 0);

  server.drain();
  // The session was never advanced: no inference ran for the request.
  EXPECT_EQ(server.session(9).steps, 0);
  EXPECT_EQ(server.stats().timeouts, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(ServeDeadlines, DeadlineExactlyAtNowStillServes) {
  // Triage expires strictly-past deadlines (`deadline < now`): a request
  // whose deadline is the current instant is on time by contract.
  auto ensemble = make_dense_ensemble();
  auto frozen = std::make_shared<FrozenSource>();
  serve::ShardConfig config;
  config.max_delay_us = 0;
  config.time_source = frozen;
  serve::Server server(ensemble, config);

  engine::ClassifyRequest on_time = make_request(1, Tensor({1, kFeatures}));
  on_time.deadline = frozen->at;
  auto sub = server.submit(std::move(on_time));
  ASSERT_EQ(sub.admit, serve::Admit::kAccepted);
  EXPECT_EQ(sub.response.get().status, serve::Status::kOk);

  engine::ClassifyRequest late = make_request(2, Tensor({1, kFeatures}));
  late.deadline = frozen->at - std::chrono::nanoseconds(1);
  auto late_sub = server.submit(std::move(late));
  ASSERT_EQ(late_sub.admit, serve::Admit::kAccepted);
  EXPECT_EQ(late_sub.response.get().status, serve::Status::kTimeout);

  server.drain();
  EXPECT_EQ(server.stats().completed, 1u);
  EXPECT_EQ(server.stats().timeouts, 1u);
}

TEST(ServeDeterminism, NullTimeSourceMatchesExplicitWallClock) {
  // The nullptr default and a pass-through TimeSource must be the same
  // clock in behaviour: riffled multi-session streams stay bit-identical
  // between the two configurations.
  auto ensemble = make_dense_ensemble();
  constexpr int kSessions = 3;
  constexpr int kSteps = 8;

  util::Rng rng(23);
  std::vector<std::vector<Tensor>> frames(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    for (int t = 0; t < kSteps; ++t) {
      frames[s].push_back(Tensor::uniform({1, kFeatures}, 1.0f, rng));
    }
  }

  const auto run = [&](std::shared_ptr<serve::TimeSource> source) {
    serve::ShardConfig config;
    config.max_batch = 4;
    config.max_delay_us = 200;
    config.workers = 2;
    config.time_source = std::move(source);
    serve::Server server(ensemble, config);
    std::vector<std::vector<std::future<serve::Response>>> futures(kSessions);
    util::Rng riffle(29);
    std::vector<int> cursor(kSessions, 0);
    int remaining = kSessions * kSteps;
    while (remaining > 0) {
      const int s = static_cast<int>(riffle.uniform_index(kSessions));
      if (cursor[s] >= kSteps) continue;
      auto sub = server.submit(make_request(
          static_cast<std::uint64_t>(s), frames[s][cursor[s]]));
      EXPECT_EQ(sub.admit, serve::Admit::kAccepted);
      futures[s].push_back(std::move(sub.response));
      ++cursor[s];
      --remaining;
    }
    server.drain();
    std::vector<std::vector<engine::StreamingVerdict>> verdicts(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      for (auto& f : futures[s]) {
        serve::Response response = f.get();
        EXPECT_EQ(response.status, serve::Status::kOk);
        verdicts[s].push_back(std::move(response.result.verdict));
      }
    }
    return verdicts;
  };

  const auto with_null = run(nullptr);
  const auto with_wall = run(std::make_shared<WallClockSource>());
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(with_null[s].size(), with_wall[s].size());
    for (std::size_t t = 0; t < with_null[s].size(); ++t) {
      const auto& a = with_null[s][t];
      const auto& b = with_wall[s][t];
      EXPECT_EQ(a.predicted, b.predicted);
      EXPECT_EQ(a.alert, b.alert);
      ASSERT_EQ(a.distribution.numel(), b.distribution.numel());
      for (std::size_t i = 0; i < a.distribution.numel(); ++i) {
        EXPECT_EQ(a.distribution[i], b.distribution[i]);  // bitwise
      }
    }
  }
}

TEST(ServeHotSwap, SwapKeepsSessionStreamsBitIdentical) {
  // Two replicas built from the same seed are bit-identical in weights;
  // swapping one for the other mid-stream must be invisible to every
  // session (EWMA state lives in the server, not the ensemble).
  auto ensemble = make_dense_ensemble();
  constexpr int kSteps = 10;

  util::Rng rng(31);
  std::vector<Tensor> frames;
  for (int t = 0; t < kSteps; ++t) {
    frames.push_back(Tensor::uniform({1, kFeatures}, 1.0f, rng));
  }
  std::vector<engine::StreamingVerdict> reference;
  {
    engine::StreamingClassifier stream(ensemble, engine::StreamingConfig{});
    for (const Tensor& frame : frames) {
      reference.push_back(stream.step(frame, Tensor{}));
    }
  }

  serve::ShardConfig config;
  config.max_delay_us = 0;
  serve::Server server(ensemble, config);
  EXPECT_THROW(server.swap_ensemble(nullptr), std::invalid_argument);

  for (int t = 0; t < kSteps; ++t) {
    if (t == kSteps / 2) {
      auto previous = server.swap_ensemble(make_dense_ensemble());
      EXPECT_EQ(previous, ensemble);  // the old replica comes back out
      EXPECT_NE(server.ensemble(), ensemble);
    }
    auto sub = server.submit(make_request(5, frames[t]));
    ASSERT_EQ(sub.admit, serve::Admit::kAccepted);
    serve::Response response = sub.response.get();
    ASSERT_EQ(response.status, serve::Status::kOk);
    const auto& got = response.result.verdict;
    EXPECT_EQ(got.predicted, reference[t].predicted);
    for (std::size_t i = 0; i < reference[t].distribution.numel(); ++i) {
      EXPECT_EQ(got.distribution[i], reference[t].distribution[i]);
    }
  }

  server.drain();
  EXPECT_EQ(server.stats().ensemble_swaps, 1u);
  EXPECT_EQ(server.stats().completed, static_cast<std::uint64_t>(kSteps));
}

TEST(ServeDrain, LeavesNoPendingFuturesAndRejectsAfter) {
  auto ensemble = make_dense_ensemble();
  serve::ShardConfig config;
  config.max_batch = 4;
  config.max_delay_us = 50'000;  // long window: drain must cut it short
  serve::Server server(ensemble, config);

  util::Rng rng(11);
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 10; ++i) {
    auto sub = server.submit(make_request(
        static_cast<std::uint64_t>(i % 3),
        Tensor::uniform({1, kFeatures}, 1.0f, rng)));
    ASSERT_EQ(sub.admit, serve::Admit::kAccepted);
    futures.push_back(std::move(sub.response));
  }

  server.drain();
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f.get().status, serve::Status::kOk);
  }
  EXPECT_EQ(server.queue_depth(), 0u);

  // After drain the server stays drained: submissions are rejected and
  // their futures resolve immediately.
  auto late = server.submit(make_request(1, Tensor({1, kFeatures})));
  EXPECT_EQ(late.admit, serve::Admit::kRejected);
  ASSERT_EQ(late.response.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(late.response.get().status, serve::Status::kRejected);

  // Rejection after drain is deterministic, not racy: every subsequent
  // submit gets the same immediate answer.
  for (int i = 0; i < 5; ++i) {
    auto again = server.submit(make_request(2, Tensor({1, kFeatures})));
    EXPECT_EQ(again.admit, serve::Admit::kRejected);
    ASSERT_EQ(again.response.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(again.response.get().status, serve::Status::kRejected);
  }

  server.drain();  // idempotent
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.rejected, 6u);
}

TEST(ServeDegraded, WatermarkHysteresisSkipsTheFrameModel) {
  // Ensemble with a gated (expensive) frame model and a cheap IMU side,
  // fitted so the degraded path is available.
  auto gate = std::make_shared<GatedClassifier>();
  auto imu = std::make_shared<IdentityImu>();
  auto ensemble = std::make_shared<engine::EnsembleClassifier>(
      gate, imu, bayes::ClassMap::darnet_default());
  {
    const int n = 30;
    Tensor fit_frames({n, kFeatures});
    Tensor fit_imu({n, 3});
    std::vector<int> labels(n);
    for (int i = 0; i < n; ++i) {
      const int y = (i % 2) ? 2 : 0;
      labels[static_cast<std::size_t>(i)] = y;
      for (int c = 0; c < 3; ++c) fit_imu.at(i, c) = 0.05f;
      fit_imu.at(i, y == 2 ? 2 : 0) = 0.9f;
    }
    ensemble->fit(fit_frames, fit_imu, labels);
  }
  ASSERT_TRUE(ensemble->can_degrade());
  gate->entered = 0;
  gate->calls = 0;

  serve::ShardConfig config;
  config.max_batch = 8;
  config.max_delay_us = 0;
  config.queue_capacity = 32;
  config.degrade_high_watermark = 4;
  config.degrade_low_watermark = 1;
  serve::Server server(ensemble, config);

  const Tensor frame({1, kFeatures});
  Tensor window({1, 3});
  window.fill(1.0f / 3.0f);
  auto request = [&](std::uint64_t s) {
    engine::ClassifyRequest r;
    r.session_id = s;
    r.frame = frame;
    r.imu_window = window;
    return r;
  };

  // Batch 1 (depth 1 < high watermark): full path, blocks in the frame
  // model while the queue backs up past the high watermark.
  gate->close_gate();
  auto first = server.submit(request(1));
  ASSERT_EQ(first.admit, serve::Admit::kAccepted);
  gate->await_entered(1);
  std::vector<std::future<serve::Response>> backlog;
  for (int i = 0; i < 5; ++i) {
    auto sub = server.submit(request(static_cast<std::uint64_t>(i)));
    ASSERT_EQ(sub.admit, serve::Admit::kAccepted);
    backlog.push_back(std::move(sub.response));
  }
  EXPECT_EQ(server.queue_depth(), 5u);
  gate->release();

  // Batch 2 forms at depth 5 >= 4: degraded engages, the frame model is
  // skipped (its call count stays at 1).
  EXPECT_EQ(first.response.get().result.degraded, false);
  for (auto& f : backlog) {
    const serve::Response response = f.get();
    ASSERT_EQ(response.status, serve::Status::kOk);
    EXPECT_TRUE(response.result.degraded);
  }
  EXPECT_TRUE(server.degraded_mode());
  {
    sync::Lock lock(gate->mu);
    EXPECT_EQ(gate->calls, 1);
  }

  // Depth falls to the low watermark: hysteresis disengages and the full
  // path (frame model) serves again.
  auto recovered = server.submit(request(7));
  ASSERT_EQ(recovered.admit, serve::Admit::kAccepted);
  EXPECT_FALSE(recovered.response.get().result.degraded);
  EXPECT_FALSE(server.degraded_mode());
  {
    sync::Lock lock(gate->mu);
    EXPECT_EQ(gate->calls, 2);
  }

  server.drain();
  const auto stats = server.stats();
  EXPECT_GE(stats.degraded_batches, 1u);
  EXPECT_EQ(stats.completed, 7u);
}

}  // namespace
