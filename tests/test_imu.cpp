// Unit & property tests for the IMU substrate: trace generation physics,
// windowing geometry, and class separability structure.
#include <gtest/gtest.h>

#include <cmath>

#include "imu/imu.hpp"

namespace {

using namespace darnet;
using imu::ImuClass;
using imu::PhoneOrientation;

TEST(ImuClass, OrientationMappingMatchesTable1) {
  EXPECT_EQ(imu::imu_class_of(PhoneOrientation::kTextingLeft),
            ImuClass::kTexting);
  EXPECT_EQ(imu::imu_class_of(PhoneOrientation::kTextingRight),
            ImuClass::kTexting);
  EXPECT_EQ(imu::imu_class_of(PhoneOrientation::kTalkingLeft),
            ImuClass::kTalking);
  EXPECT_EQ(imu::imu_class_of(PhoneOrientation::kTalkingRight),
            ImuClass::kTalking);
  EXPECT_EQ(imu::imu_class_of(PhoneOrientation::kPocket), ImuClass::kNormal);
}

TEST(ImuTrace, SampleCountMatchesRateAndDuration) {
  util::Rng rng(1);
  imu::ImuGenConfig cfg;
  cfg.sample_hz = 40.0;
  cfg.duration_s = 5.0;
  const auto trace = imu::generate_trace(PhoneOrientation::kPocket, cfg, rng);
  EXPECT_EQ(trace.size(), 201u);  // 5 * 40 + 1
  EXPECT_NEAR(trace.back().timestamp_s, 5.0, 1e-9);
}

TEST(ImuTrace, TimestampsAreStrictlyIncreasing) {
  util::Rng rng(2);
  const auto trace = imu::generate_trace(PhoneOrientation::kTalkingLeft,
                                         imu::ImuGenConfig{}, rng);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].timestamp_s, trace[i - 1].timestamp_s);
  }
}

TEST(ImuTrace, GravityMagnitudeNearG) {
  util::Rng rng(3);
  for (int o = 0; o < 5; ++o) {
    const auto trace = imu::generate_trace(static_cast<PhoneOrientation>(o),
                                           imu::ImuGenConfig{}, rng);
    double mean_mag = 0.0;
    for (const auto& s : trace) {
      mean_mag += std::sqrt(s.gravity[0] * s.gravity[0] +
                            s.gravity[1] * s.gravity[1] +
                            s.gravity[2] * s.gravity[2]);
    }
    mean_mag /= static_cast<double>(trace.size());
    EXPECT_NEAR(mean_mag, 9.81, 0.6) << "orientation " << o;
  }
}

TEST(ImuTrace, RotationQuaternionStaysUnit) {
  util::Rng rng(4);
  const auto trace = imu::generate_trace(PhoneOrientation::kTextingRight,
                                         imu::ImuGenConfig{}, rng);
  for (const auto& s : trace) {
    const double norm =
        std::sqrt(s.rotation[0] * s.rotation[0] + s.rotation[1] * s.rotation[1] +
                  s.rotation[2] * s.rotation[2] + s.rotation[3] * s.rotation[3]);
    EXPECT_NEAR(norm, 1.0, 1e-3);
  }
}

TEST(ImuTrace, LeftRightVariantsMirrorLateralGravity) {
  // The left/right hand variants (opposite roll) flip the sign of the
  // lateral gravity component (device Y under the ZYX Euler convention) --
  // the structural nonlinearity behind RNN > SVM.
  util::Rng rng(5);
  double left = 0.0, right = 0.0;
  for (int rep = 0; rep < 8; ++rep) {
    for (const auto& s : imu::generate_trace(PhoneOrientation::kTalkingLeft,
                                             imu::ImuGenConfig{}, rng)) {
      left += s.gravity[1];
    }
    for (const auto& s : imu::generate_trace(PhoneOrientation::kTalkingRight,
                                             imu::ImuGenConfig{}, rng)) {
      right += s.gravity[1];
    }
  }
  EXPECT_LT(left * right, 0.0);          // opposite signs
  EXPECT_GT(std::abs(left), 1000.0);     // and decisively non-zero
  EXPECT_GT(std::abs(right), 1000.0);
}

TEST(ImuTrace, PitchOrdersMeanVerticalGravityByOrientation) {
  // The device attitude differs per orientation: texting (roll 35, pitch
  // 40) leaves the largest vertical gravity projection, talking (roll ~80)
  // rotates gravity mostly into the lateral axis, and the pocket (pitch
  // ~85) rotates it into the longitudinal axis. Mean device-frame gravity
  // Z must therefore order texting > talking > pocket -- the primary class
  // signal the models learn.
  util::Rng rng(6);
  auto mean_gz = [&rng](PhoneOrientation o) {
    double acc = 0.0;
    std::size_t n = 0;
    for (int rep = 0; rep < 6; ++rep) {
      for (const auto& s : imu::generate_trace(o, imu::ImuGenConfig{}, rng)) {
        acc += s.gravity[2];
        ++n;
      }
    }
    return acc / static_cast<double>(n);
  };
  const double talking = mean_gz(PhoneOrientation::kTalkingLeft);
  const double texting = mean_gz(PhoneOrientation::kTextingRight);
  const double pocket = mean_gz(PhoneOrientation::kPocket);
  EXPECT_GT(texting, talking);
  EXPECT_GT(talking, pocket);
}

TEST(ImuTrace, TextingTapsProduceImpulsiveAccelJumps) {
  // Tap bursts are sharp impulses: the count of large successive-sample
  // jumps in accel Z must be clearly higher while texting than in the
  // pocket, whose energy is smooth (gait + road sway).
  util::Rng rng(7);
  auto big_jumps = [&rng](PhoneOrientation o) {
    int count = 0;
    for (int rep = 0; rep < 8; ++rep) {
      const auto trace = imu::generate_trace(o, imu::ImuGenConfig{}, rng);
      for (std::size_t i = 1; i < trace.size(); ++i) {
        if (std::abs(trace[i].accel[2] - trace[i - 1].accel[2]) > 1.1) {
          ++count;
        }
      }
    }
    return count;
  };
  EXPECT_GT(big_jumps(PhoneOrientation::kTextingLeft),
            big_jumps(PhoneOrientation::kPocket) + 10);
}

TEST(ImuWindow, ShapeIsPaperGeometry) {
  util::Rng rng(7);
  const auto trace = imu::generate_trace(PhoneOrientation::kPocket,
                                         imu::ImuGenConfig{}, rng);
  const auto window = imu::to_window(trace);
  EXPECT_EQ(window.shape(),
            (std::vector<int>{imu::kWindowSteps, imu::kImuChannels}));
}

TEST(ImuWindow, ResamplingInterpolatesLinearSignalExactly) {
  // A hand-built trace whose accel.x rises linearly must resample to the
  // exact line at 4 Hz regardless of the source rate.
  std::vector<imu::ImuSample> trace;
  for (int i = 0; i <= 100; ++i) {
    imu::ImuSample s;
    s.timestamp_s = i * 0.05;  // 20 Hz
    s.accel[0] = static_cast<float>(s.timestamp_s * 2.0);
    trace.push_back(s);
  }
  const auto window = imu::to_window(trace);
  for (int step = 0; step < imu::kWindowSteps; ++step) {
    const double t = step / imu::kWindowHz;
    EXPECT_NEAR(window.at(step, 0), 2.0 * t, 1e-4);
  }
}

TEST(ImuWindow, RejectsTooShortTraces) {
  std::vector<imu::ImuSample> trace(3);
  trace[0].timestamp_s = 0.0;
  trace[1].timestamp_s = 0.5;
  trace[2].timestamp_s = 1.0;
  EXPECT_THROW((void)imu::to_window(trace), std::invalid_argument);
  EXPECT_THROW((void)imu::to_window(std::span<const imu::ImuSample>{}),
               std::invalid_argument);
}

TEST(ImuWindow, BatchGenerationIsDeterministicPerSeed) {
  const std::vector<PhoneOrientation> req{PhoneOrientation::kPocket,
                                          PhoneOrientation::kTextingLeft};
  util::Rng rng1(9), rng2(9);
  const auto a = imu::generate_windows(req, imu::ImuGenConfig{}, rng1);
  const auto b = imu::generate_windows(req, imu::ImuGenConfig{}, rng2);
  ASSERT_EQ(a.numel(), b.numel());
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ImuWindow, FlattenPreservesValuesRowMajor) {
  util::Rng rng(10);
  const std::vector<PhoneOrientation> req{PhoneOrientation::kPocket};
  const auto batch = imu::generate_windows(req, imu::ImuGenConfig{}, rng);
  const auto flat = imu::flatten_windows(batch);
  EXPECT_EQ(flat.shape(),
            (std::vector<int>{1, imu::kWindowSteps * imu::kImuChannels}));
  EXPECT_EQ(flat.at(0, imu::kImuChannels + 2), batch.at(0, 1, 2));
}

TEST(ImuTrace, ConfigValidation) {
  util::Rng rng(11);
  imu::ImuGenConfig bad;
  bad.sample_hz = 0.0;
  EXPECT_THROW(
      (void)imu::generate_trace(PhoneOrientation::kPocket, bad, rng),
      std::invalid_argument);
}

}  // namespace
