// Tests for the parallel execution layer: ThreadPool semantics, kernel
// parity between serial and parallel execution, and determinism of the
// sharded trainer / parallel data generator across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/dataset.hpp"
#include "engine/streaming.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "parallel/pool.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

/// RAII guard: force a thread count, restore the previous one on exit.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int count)
      : previous_(parallel::thread_count()) {
    parallel::set_thread_count(count);
  }
  ~ThreadCountGuard() { parallel::set_thread_count(previous_); }

 private:
  int previous_;
};

// ---------------------------------------------------------------------------
// ThreadPool unit tests
// ---------------------------------------------------------------------------

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  parallel::ThreadPool pool(3);
  int calls = 0;
  pool.for_range(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  pool.for_range(7, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  parallel::parallel_for(0, 0, 1,
                         [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, GrainLargerThanRangeRunsOneExactChunk) {
  parallel::ThreadPool pool(3);
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  pool.for_range(2, 9, /*grain=*/100,
                 [&](std::int64_t b, std::int64_t e) {
                   chunks.emplace_back(b, e);
                 });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2);
  EXPECT_EQ(chunks[0].second, 9);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  parallel::ThreadPool pool(4);
  constexpr std::int64_t kN = 10007;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_range(0, kN, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  parallel::ThreadPool pool(3);
  EXPECT_THROW(
      pool.for_range(0, 1000, 1,
                     [&](std::int64_t b, std::int64_t) {
                       if (b >= 0) throw std::runtime_error("boom");
                     }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  parallel::ThreadPool pool(3);
  EXPECT_THROW(pool.for_range(0, 100, 1,
                              [](std::int64_t, std::int64_t) {
                                throw std::logic_error("first region fails");
                              }),
               std::logic_error);

  // The pool must still schedule and complete subsequent regions.
  std::atomic<std::int64_t> sum{0};
  pool.for_range(0, 1000, 4, [&](std::int64_t b, std::int64_t e) {
    std::int64_t local = 0;
    for (std::int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000LL * 999 / 2);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadCountGuard guard(4);
  bool saw_nested_region = false;
  parallel::parallel_for(0, 4, 1, [&](std::int64_t b, std::int64_t) {
    EXPECT_TRUE(parallel::in_parallel_region());
    if (b == 0) {
      int calls = 0;
      parallel::parallel_for(0, 100, 1, [&](std::int64_t bb, std::int64_t ee) {
        ++calls;
        EXPECT_EQ(bb, 0);
        EXPECT_EQ(ee, 100);
      });
      EXPECT_EQ(calls, 1);  // inlined as one serial chunk
      saw_nested_region = true;
    }
  });
  EXPECT_TRUE(saw_nested_region);
  EXPECT_FALSE(parallel::in_parallel_region());
}

TEST(ThreadPool, SetThreadCountOneForcesSerialExecution) {
  ThreadCountGuard guard(1);
  int calls = 0;
  parallel::parallel_for(0, 1000, 1, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 1000);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SetThreadCountRejectsInvalidValues) {
  EXPECT_THROW(parallel::set_thread_count(0), std::invalid_argument);
  EXPECT_THROW(parallel::set_thread_count(-3), std::invalid_argument);
  EXPECT_THROW(parallel::set_thread_count(100000), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Kernel parity: parallel/blocked kernels vs naive serial references
// ---------------------------------------------------------------------------

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  }
  return c;
}

TEST(KernelParity, MatmulMatchesNaiveReference) {
  util::Rng rng(17);
  for (const auto [m, k, n] : {std::array{37, 53, 41}, std::array{128, 64, 96},
                               std::array{1, 7, 1}, std::array{65, 17, 130}}) {
    const Tensor a = Tensor::uniform({m, k}, 1.0f, rng);
    const Tensor b = Tensor::uniform({k, n}, 1.0f, rng);
    const Tensor got = tensor::matmul(a, b);
    const Tensor want = naive_matmul(a, b);
    for (std::size_t i = 0; i < want.numel(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-5f) << "element " << i;
    }
  }
}

TEST(KernelParity, MatmulBtAndAtMatchReference) {
  util::Rng rng(18);
  const int m = 47, k = 33, n = 59;
  const Tensor a = Tensor::uniform({m, k}, 1.0f, rng);
  const Tensor b = Tensor::uniform({k, n}, 1.0f, rng);
  const Tensor want = naive_matmul(a, b);

  // matmul_bt(a, b^T) == a b.
  const Tensor got_bt = tensor::matmul_bt(a, tensor::transpose(b));
  // matmul_at(a^T, b) == a b.
  const Tensor got_at = tensor::matmul_at(tensor::transpose(a), b);
  for (std::size_t i = 0; i < want.numel(); ++i) {
    ASSERT_NEAR(got_bt[i], want[i], 1e-5f) << "bt element " << i;
    ASSERT_NEAR(got_at[i], want[i], 1e-5f) << "at element " << i;
  }
}

TEST(KernelParity, MatmulIdenticalAcrossThreadCounts) {
  util::Rng rng(19);
  const Tensor a = Tensor::uniform({96, 80}, 1.0f, rng);
  const Tensor b = Tensor::uniform({80, 112}, 1.0f, rng);
  Tensor serial, parallel_result;
  {
    ThreadCountGuard guard(1);
    serial = tensor::matmul(a, b);
  }
  {
    ThreadCountGuard guard(4);
    parallel_result = tensor::matmul(a, b);
  }
  for (std::size_t i = 0; i < serial.numel(); ++i) {
    ASSERT_EQ(serial[i], parallel_result[i]) << "element " << i;
  }
}

Tensor naive_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                    int pad) {
  const int n = x.dim(0), ic = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int oc = w.dim(0), k = w.dim(2);
  const int oh = h + 2 * pad - k + 1, ow = wd + 2 * pad - k + 1;
  Tensor y({n, oc, oh, ow});
  for (int img = 0; img < n; ++img) {
    for (int o = 0; o < oc; ++o) {
      for (int r = 0; r < oh; ++r) {
        for (int c = 0; c < ow; ++c) {
          float acc = bias[static_cast<std::size_t>(o)];
          for (int i = 0; i < ic; ++i) {
            for (int kr = 0; kr < k; ++kr) {
              for (int kc = 0; kc < k; ++kc) {
                const int sr = r + kr - pad, sc = c + kc - pad;
                if (sr < 0 || sr >= h || sc < 0 || sc >= wd) continue;
                acc += w.at(o, i, kr, kc) * x.at(img, i, sr, sc);
              }
            }
          }
          y.at(img, o, r, c) = acc;
        }
      }
    }
  }
  return y;
}

TEST(KernelParity, ConvIm2colMatchesDirectAndReference) {
  util::Rng rng(21);
  nn::Conv2D conv(8, 16, 3, 1, rng);
  // 24x24 output plane: im2col+GEMM path. 6x6: direct fallback.
  ASSERT_TRUE(conv.use_gemm(24, 24));
  ASSERT_FALSE(conv.use_gemm(6, 6));

  for (const int size : {24, 6}) {
    const Tensor x = Tensor::uniform({3, 8, size, size}, 1.0f, rng);
    Tensor y = conv.forward(x, false);
    const Tensor want = naive_conv2d(
        x, conv.params()[0]->value, conv.params()[1]->value, 1);
    ASSERT_TRUE(y.same_shape(want));
    for (std::size_t i = 0; i < want.numel(); ++i) {
      ASSERT_NEAR(y[i], want[i], 1e-5f) << "size " << size << " elem " << i;
    }
  }
}

TEST(KernelParity, ConvForwardBackwardIdenticalAcrossThreadCounts) {
  const auto run = [](int threads) {
    ThreadCountGuard guard(threads);
    util::Rng rng(22);
    nn::Conv2D conv(4, 8, 3, 1, rng);
    const Tensor x = Tensor::uniform({5, 4, 16, 16}, 1.0f, rng);
    Tensor y = conv.forward(x, true);
    Tensor gx = conv.backward(y);
    std::vector<float> out(y.data(), y.data() + y.numel());
    out.insert(out.end(), gx.data(), gx.data() + gx.numel());
    const Tensor& dw = conv.params()[0]->grad;
    out.insert(out.end(), dw.data(), dw.data() + dw.numel());
    return out;
  };
  const auto serial = run(1);
  const auto threaded = run(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], threaded[i]) << "element " << i;
  }
}

// ---------------------------------------------------------------------------
// Trainer determinism
// ---------------------------------------------------------------------------

nn::Sequential make_model(std::uint64_t seed) {
  // Dropout-free so runs are comparable (Dropout draws layer-local RNG).
  util::Rng rng(seed);
  nn::Sequential model;
  model.emplace<nn::Conv2D>(1, 4, 3, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(4 * 12 * 12, 3, rng);
  return model;
}

std::vector<double> train_losses(int threads, int shards) {
  ThreadCountGuard guard(threads);
  util::Rng rng(23);
  const int n = 24;
  const Tensor x = Tensor::uniform({n, 1, 12, 12}, 1.0f, rng);
  std::vector<int> labels(n);
  for (auto& y : labels) y = static_cast<int>(rng.uniform_index(3));

  nn::Sequential model = make_model(7);
  nn::Sgd optimizer(0.05, 0.9, 0.0);
  nn::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  tc.shuffle_seed = 5;
  tc.shards = shards;
  if (shards > 1) {
    tc.make_replica = [] {
      return std::make_unique<nn::Sequential>(make_model(7));
    };
  }
  std::vector<double> losses;
  tc.on_epoch = [&](int, double loss) { losses.push_back(loss); };
  nn::train_classifier(model, optimizer, x, labels, tc);
  return losses;
}

TEST(TrainerDeterminism, SerialLossCurveIdenticalAcrossThreadCounts) {
  const auto one = train_losses(/*threads=*/1, /*shards=*/1);
  const auto four = train_losses(/*threads=*/4, /*shards=*/1);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i], four[i]) << "epoch " << i;  // bit-for-bit
  }
}

TEST(TrainerDeterminism, ShardedLossCurveIdenticalAcrossThreadCounts) {
  const auto one = train_losses(/*threads=*/1, /*shards=*/3);
  const auto four = train_losses(/*threads=*/4, /*shards=*/3);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i], four[i]) << "epoch " << i;  // bit-for-bit
  }
}

TEST(TrainerDeterminism, ShardedTrainingConvergesLikeSerial) {
  const auto serial = train_losses(/*threads=*/4, /*shards=*/1);
  const auto sharded = train_losses(/*threads=*/4, /*shards=*/2);
  // Different reduction order => different bits, but the same estimator:
  // losses must track closely and both must improve.
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_NEAR(serial[i], sharded[i], 1e-3) << "epoch " << i;
  }
  EXPECT_LT(serial.back(), serial.front());
  EXPECT_LT(sharded.back(), sharded.front());
}

TEST(TrainerDeterminism, ShardsRequireReplicaFactory) {
  util::Rng rng(29);
  const Tensor x = Tensor::uniform({8, 1, 12, 12}, 1.0f, rng);
  std::vector<int> labels(8, 0);
  nn::Sequential model = make_model(7);
  nn::Sgd optimizer(0.05, 0.9, 0.0);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 4;
  tc.shards = 2;  // no make_replica
  EXPECT_THROW(nn::train_classifier(model, optimizer, x, labels, tc),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// gather_rows_into, smooth_timelines, parallel dataset generation
// ---------------------------------------------------------------------------

TEST(GatherRows, IntoOverloadMatchesAndReusesAllocation) {
  util::Rng rng(31);
  const Tensor data = Tensor::uniform({10, 3, 4}, 1.0f, rng);
  const std::vector<std::size_t> idx = {7, 0, 3, 3};

  Tensor fresh = nn::gather_rows(data, idx);
  Tensor reused;
  nn::gather_rows_into(data, idx, reused);
  const float* buffer = reused.data();
  ASSERT_TRUE(fresh.same_shape(reused));
  for (std::size_t i = 0; i < fresh.numel(); ++i) {
    ASSERT_EQ(fresh[i], reused[i]);
  }

  // Same-shape refill must keep the existing buffer.
  const std::vector<std::size_t> idx2 = {1, 2, 9, 4};
  nn::gather_rows_into(data, idx2, reused);
  EXPECT_EQ(reused.data(), buffer);
  Tensor fresh2 = nn::gather_rows(data, idx2);
  for (std::size_t i = 0; i < fresh2.numel(); ++i) {
    ASSERT_EQ(fresh2[i], reused[i]);
  }
}

TEST(Streaming, SmoothTimelinesMatchesPerDriverTimeline) {
  util::Rng rng(33);
  engine::StreamingConfig cfg;
  std::vector<std::vector<Tensor>> drivers;
  for (int d = 0; d < 5; ++d) {
    std::vector<Tensor> timeline;
    for (int t = 0; t < 12; ++t) {
      timeline.push_back(
          tensor::softmax_rows(Tensor::uniform({1, 6}, 2.0f, rng)));
    }
    drivers.push_back(std::move(timeline));
  }

  const auto batch = engine::smooth_timelines(drivers, cfg);
  ASSERT_EQ(batch.size(), drivers.size());
  for (std::size_t d = 0; d < drivers.size(); ++d) {
    const auto single = engine::smooth_timeline(drivers[d], cfg);
    ASSERT_EQ(batch[d].size(), single.size());
    for (std::size_t t = 0; t < single.size(); ++t) {
      EXPECT_EQ(batch[d][t].predicted, single[t].predicted);
      EXPECT_EQ(batch[d][t].alert, single[t].alert);
      for (std::size_t i = 0; i < single[t].distribution.numel(); ++i) {
        ASSERT_EQ(batch[d][t].distribution[i], single[t].distribution[i]);
      }
    }
  }
}

TEST(Dataset, ParallelGenerationDeterministicAcrossThreadCounts) {
  core::DatasetConfig cfg;
  cfg.scale = 0.001;
  cfg.parallel = true;
  core::Dataset one, four;
  {
    ThreadCountGuard guard(1);
    one = core::generate_dataset(cfg);
  }
  {
    ThreadCountGuard guard(4);
    four = core::generate_dataset(cfg);
  }
  ASSERT_EQ(one.size(), four.size());
  EXPECT_EQ(one.labels, four.labels);
  EXPECT_EQ(one.imu_labels, four.imu_labels);
  EXPECT_EQ(one.driver_ids, four.driver_ids);
  for (std::size_t i = 0; i < one.frames.numel(); ++i) {
    ASSERT_EQ(one.frames[i], four.frames[i]) << "frame pixel " << i;
  }
  for (std::size_t i = 0; i < one.imu_windows.numel(); ++i) {
    ASSERT_EQ(one.imu_windows[i], four.imu_windows[i]) << "imu value " << i;
  }
}

}  // namespace
