// Fixture: the fd status of ::close is discarded as a bare statement.
namespace fix {

void hangup(int fd) {
  ::close(fd);
}

}  // namespace fix
