// Fixture: POSIX statuses are either checked or explicitly cast to void.
namespace fix {

int shutdown_pair(int a, int b) {
  if (::close(a) != 0) return -1;
  (void)::close(b);
  return 0;
}

}  // namespace fix
