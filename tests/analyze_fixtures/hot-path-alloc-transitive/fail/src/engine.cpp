// Fixture: classify_batch reaches a heap allocation two calls deep.
// The allocation itself is in leaf_helper; the rule must attribute it to
// the hot-path root through the call chain classify_batch -> mid_helper
// -> leaf_helper.
namespace fix {

float leaf_helper(int n) {
  std::vector<float> scratch(static_cast<std::size_t>(n), 0.0F);
  return scratch.empty() ? 0.0F : scratch[0];
}

float mid_helper(int n) {
  return leaf_helper(n);
}

float classify_batch(int n) {
  return mid_helper(n);
}

}  // namespace fix
