// Fixture: the same call shape as the fail tree, but the leaf writes into
// a caller-provided buffer instead of allocating.
namespace fix {

float leaf_helper(float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = 0.0F;
  return n > 0 ? out[0] : 0.0F;
}

float mid_helper(float* out, int n) {
  return leaf_helper(out, n);
}

float classify_batch(float* out, int n) {
  return mid_helper(out, n);
}

}  // namespace fix
