// Fixture: the tree itself is clean; the baseline next to it suppresses a
// finding that no longer exists, which must be reported as stale.
namespace fix {

int answer() {
  return 42;
}

}  // namespace fix
