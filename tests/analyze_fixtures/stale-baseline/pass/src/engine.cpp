// Fixture: a real hot-path allocation finding that the baseline next to
// this tree suppresses with a reviewed reason -- the analyzer must exit
// clean, proving baseline application works end to end.
namespace fix {

float classify_batch(int n) {
  std::vector<float> scratch(static_cast<std::size_t>(n), 0.0F);
  return scratch.empty() ? 0.0F : scratch[0];
}

}  // namespace fix
