// Fixture: acquires the documented serve hierarchy in reverse order.
// serve/exec (rank 1) is held while serve/admission (rank 0) is taken,
// which inverts the admission -> exec -> apply hierarchy.
namespace fix {

sync::Mutex g_admission{"serve/admission"};
sync::Mutex g_exec{"serve/exec"};

int inverted_path() {
  sync::Lock exec(g_exec);
  sync::Lock admission(g_admission);
  return 1;
}

}  // namespace fix
