// Fixture: acquires the documented serve hierarchy in the documented
// direction (serve/admission before serve/exec), which is clean.
namespace fix {

sync::Mutex g_admission{"serve/admission"};
sync::Mutex g_exec{"serve/exec"};

int ordered_path() {
  sync::Lock admission(g_admission);
  sync::Lock exec(g_exec);
  return 1;
}

}  // namespace fix
