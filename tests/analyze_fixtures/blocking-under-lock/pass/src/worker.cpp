// Fixture: the clean shapes. Blocking I/O happens outside the lock scope,
// and the one sanctioned in-scope block is a CondVar wait that names the
// held guard — the wait releases that lock for its duration.
namespace fix {

sync::Mutex g_mu{"serve/admission"};

struct Queue {
  sync::CondVar cv;
  int depth;
};

Queue g_queue;

int drain_socket(int fd) {
  char buf[16];
  return static_cast<int>(::recv(fd, buf, sizeof(buf), 0));
}

int wait_for_work() {
  sync::UniqueLock lock(g_mu);
  g_queue.cv.wait(lock, [] { return g_queue.depth > 0; });
  return g_queue.depth;
}

int locked_then_read(int fd) {
  {
    sync::Lock lock(g_mu);
    g_queue.depth = 0;
  }
  return drain_socket(fd);
}

}  // namespace fix
