// Fixture: blocking under a held sync::Lock, both directly (a POSIX recv in
// the lock scope) and transitively (a may-block helper called under the
// lock). Both must be reported.
namespace fix {

sync::Mutex g_mu{"serve/admission"};

int drain_socket(int fd) {
  char buf[16];
  return static_cast<int>(::recv(fd, buf, sizeof(buf), 0));
}

int locked_direct(int fd) {
  char buf[16];
  sync::Lock lock(g_mu);
  return static_cast<int>(::recv(fd, buf, sizeof(buf), 0));
}

int locked_transitive(int fd) {
  sync::Lock lock(g_mu);
  return drain_socket(fd);
}

}  // namespace fix
