// Fixture: a Status-returning call used as a bare statement -- the
// verdict is computed and thrown away.
namespace fix {

struct Status {
  bool ok = true;
};

Status try_admit(int n) {
  Status s;
  s.ok = n > 0;
  return s;
}

void caller(int n) {
  try_admit(n);
}

}  // namespace fix
