// Fixture: every Status-returning call binds or tests its result.
namespace fix {

struct Status {
  bool ok = true;
};

Status try_admit(int n) {
  Status s;
  s.ok = n > 0;
  return s;
}

int caller(int n) {
  const Status s = try_admit(n);
  if (!s.ok) return -1;
  return try_admit(n + 1).ok ? 1 : 0;
}

}  // namespace fix
