// Fixture: a raw wall-clock read in ordinary serving code, outside every
// whitelisted seam.
namespace fix {

long sample_latency() {
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<long>(t0.time_since_epoch().count());
}

}  // namespace fix
