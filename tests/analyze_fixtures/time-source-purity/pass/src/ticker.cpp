// Fixture: wall-clock reads live only behind the whitelisted TimeSource
// seam (Server::clock_now); everything else asks the seam for now().
namespace fix {

struct Server {
  long clock_now() const;
  long uptime() const;
};

long Server::clock_now() const {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long Server::uptime() const {
  return clock_now();
}

}  // namespace fix
