// Fixture: every access to the guarded member happens either under
// sync::Lock or after DARNET_ASSERT_HELD documents the precondition.
namespace fix {

class Counter {
 public:
  int locked_read();
  int asserted_read();
  void bump();

 private:
  sync::Mutex mu_{"fix/counter"};
  int count_ DARNET_GUARDED_BY(mu_) = 0;
};

int Counter::locked_read() {
  sync::Lock lock(mu_);
  return count_;
}

int Counter::asserted_read() {
  DARNET_ASSERT_HELD(mu_);
  return count_;
}

void Counter::bump() {
  sync::Lock lock(mu_);
  count_ += 1;
}

}  // namespace fix
