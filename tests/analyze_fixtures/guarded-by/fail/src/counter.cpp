// Fixture: reads a DARNET_GUARDED_BY member with no lock held and no
// DARNET_ASSERT_HELD on the path.
namespace fix {

class Counter {
 public:
  int bad_read();
  void bump();

 private:
  sync::Mutex mu_{"fix/counter"};
  int count_ DARNET_GUARDED_BY(mu_) = 0;
};

int Counter::bad_read() {
  return count_;
}

void Counter::bump() {
  sync::Lock lock(mu_);
  count_ += 1;
}

}  // namespace fix
