#!/usr/bin/env bash
# darnet_analyze self-test: one minimal pass/fail mini-tree per analyzer rule.
#
# Layout: tests/analyze_fixtures/<rule>/{pass,fail}/ -- each mode directory
# is a complete analysis root (it contains src/, and its own
# tools/analyze/analyze_baseline.json where the rule exercises baseline
# handling). A fail tree must make darnet_analyze exit 1 with at least one
# finding tagged [<rule>] carrying file:line attribution; a pass tree must
# analyze completely clean. This pins down every rule's trigger *and* its
# sanctioned alternative, so analyzer refactors cannot silently widen or
# narrow a rule.
#
# A mode directory may also carry an expect.grep file: every non-empty line
# must appear verbatim (fixed-string grep) in the analyzer output. This pins
# exact message contracts, e.g. that stale-baseline reports the copy-paste
# (rule, file, symbol) entry key.
#
# Usage: run_fixtures.sh <darnet_analyze-binary> <fixtures-dir>
set -u

ANALYZE="${1:?usage: run_fixtures.sh <darnet_analyze> <fixtures_dir>}"
FIXTURES="${2:?usage: run_fixtures.sh <darnet_analyze> <fixtures_dir>}"

if [ ! -x "$ANALYZE" ]; then
  echo "run_fixtures: analyzer binary '$ANALYZE' is not executable" >&2
  exit 2
fi

failures=0
cases=0

for rule_dir in "$FIXTURES"/*/; do
  [ -d "$rule_dir" ] || continue
  rule="$(basename "$rule_dir")"
  for mode in pass fail; do
    root="$rule_dir$mode"
    [ -d "$root" ] || continue
    cases=$((cases + 1))
    out="$("$ANALYZE" "$root" 2>&1)"
    status=$?
    if [ "$mode" = pass ]; then
      if [ "$status" -ne 0 ]; then
        echo "FIXTURE FAIL: $rule/pass must analyze clean (exit $status):" >&2
        echo "$out" >&2
        failures=$((failures + 1))
      fi
    else
      if [ "$status" -ne 1 ]; then
        echo "FIXTURE FAIL: $rule/fail must exit 1 (got $status):" >&2
        echo "$out" >&2
        failures=$((failures + 1))
      elif ! printf '%s' "$out" | grep -q "\[$rule\]"; then
        echo "FIXTURE FAIL: $rule/fail findings lack a [$rule] tag:" >&2
        echo "$out" >&2
        failures=$((failures + 1))
      elif ! printf '%s' "$out" | grep -Eq "[^ ]+:[0-9]+: \[$rule\]"; then
        echo "FIXTURE FAIL: $rule/fail findings lack file:line attribution:" >&2
        echo "$out" >&2
        failures=$((failures + 1))
      fi
    fi
    if [ -f "$root/expect.grep" ]; then
      while IFS= read -r want; do
        [ -n "$want" ] || continue
        if ! printf '%s' "$out" | grep -qF -- "$want"; then
          echo "FIXTURE FAIL: $rule/$mode output lacks expected text: $want" >&2
          echo "$out" >&2
          failures=$((failures + 1))
        fi
      done < "$root/expect.grep"
    fi
  done
done

if [ "$cases" -eq 0 ]; then
  echo "run_fixtures: no fixture cases found under $FIXTURES" >&2
  exit 2
fi
if [ "$failures" -ne 0 ]; then
  echo "run_fixtures: $failures of $cases fixture case(s) failed" >&2
  exit 1
fi
echo "run_fixtures: $cases fixture case(s) ok"
