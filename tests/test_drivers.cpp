// Tests for per-driver heterogeneity and the leave-one-driver-out split.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/dataset.hpp"

namespace {

using namespace darnet;

TEST(DriverStyle, SampledStylesDiffer) {
  util::Rng rng(1);
  const auto a = core::DriverStyle::sample(rng);
  const auto b = core::DriverStyle::sample(rng);
  EXPECT_NE(a.head_dx, b.head_dx);
  EXPECT_NE(a.tremor_scale, b.tremor_scale);
}

TEST(DriverStyle, NeutralIsIdentity) {
  const auto neutral = core::DriverStyle::neutral();
  vision::RenderConfig render;
  const auto applied = neutral.applied_to(render);
  EXPECT_EQ(applied.head_dx, 0.0);
  EXPECT_EQ(applied.body_scale, 1.0);
  imu::ImuGenConfig gen;
  const auto gen_applied = neutral.applied_to(gen);
  EXPECT_EQ(gen_applied.tremor_scale, 1.0);
}

TEST(DriverStyle, AppliedConfigsCarryStyle) {
  util::Rng rng(2);
  const auto style = core::DriverStyle::sample(rng);
  vision::RenderConfig render;
  const auto applied = style.applied_to(render);
  EXPECT_EQ(applied.head_dx, style.head_dx);
  EXPECT_EQ(applied.lighting_bias, style.lighting_bias);
  // Untouched fields survive.
  EXPECT_EQ(applied.size, render.size);
  EXPECT_EQ(applied.prop_visibility, render.prop_visibility);
}

TEST(DriverStyle, StylesShiftRenderedScenes) {
  // Two drivers with different seating must produce systematically
  // different mean images for the same class.
  util::Rng style_rng(3);
  const auto style_a = core::DriverStyle::sample(style_rng);
  const auto style_b = core::DriverStyle::sample(style_rng);
  vision::RenderConfig base;
  base.pixel_noise = 0.0;

  auto mean_image = [&](const core::DriverStyle& style) {
    util::Rng rng(55);  // same scene noise stream for both drivers
    const auto cfg = style.applied_to(base);
    std::vector<double> acc(static_cast<std::size_t>(base.size) * base.size);
    for (int rep = 0; rep < 16; ++rep) {
      const auto img = vision::render_driver_scene(
          vision::DriverClass::kNormal, cfg, rng);
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += img.pixels()[i];
    }
    return acc;
  };
  const auto ma = mean_image(style_a);
  const auto mb = mean_image(style_b);
  double diff = 0.0;
  for (std::size_t i = 0; i < ma.size(); ++i) {
    diff += std::abs(ma[i] - mb[i]);
  }
  EXPECT_GT(diff / static_cast<double>(ma.size()), 0.005);
}

TEST(Dataset, DriverIdsCoverConfiguredCount) {
  core::DatasetConfig cfg;
  cfg.scale = 0.003;
  cfg.num_drivers = 4;
  const auto data = core::generate_dataset(cfg);
  ASSERT_EQ(data.driver_ids.size(), static_cast<std::size_t>(data.size()));
  std::set<int> drivers(data.driver_ids.begin(), data.driver_ids.end());
  EXPECT_EQ(drivers.size(), 4u);
  for (int d : drivers) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 4);
  }
}

TEST(Dataset, SingleDriverIsNeutral) {
  core::DatasetConfig cfg;
  cfg.scale = 0.002;
  cfg.num_drivers = 1;
  const auto data = core::generate_dataset(cfg);
  for (int d : data.driver_ids) EXPECT_EQ(d, 0);
}

TEST(Dataset, LeaveOneDriverOutPartitionsByDriver) {
  core::DatasetConfig cfg;
  cfg.scale = 0.004;
  cfg.num_drivers = 3;
  const auto data = core::generate_dataset(cfg);
  const auto split = core::split_leave_one_driver_out(data, 1);
  EXPECT_EQ(split.train.size() + split.eval.size(), data.size());
  for (int d : split.eval.driver_ids) EXPECT_EQ(d, 1);
  for (int d : split.train.driver_ids) EXPECT_NE(d, 1);
  EXPECT_THROW((void)core::split_leave_one_driver_out(data, 9),
               std::invalid_argument);
}

TEST(Dataset, EveryDriverActsEveryClass) {
  core::DatasetConfig cfg;
  cfg.scale = 0.004;
  cfg.num_drivers = 3;
  const auto data = core::generate_dataset(cfg);
  // counts[driver][class] > 0 for all combinations.
  long counts[3][6] = {};
  for (int i = 0; i < data.size(); ++i) {
    ++counts[data.driver_ids[static_cast<std::size_t>(i)]]
            [data.labels[static_cast<std::size_t>(i)]];
  }
  for (auto& per_driver : counts) {
    for (long c : per_driver) EXPECT_GT(c, 0);
  }
}

}  // namespace
