// Tests for darnet::sync -- the annotated synchronisation layer.
//
// Four concerns, matching the layer's contract (sync.hpp header comment):
//   * Checked-build detectors: held-lock stack introspection, lock-order
//     cycle detection (AB/BA inversion aborts with both sites), held-lock
//     assertion violations, recursive / same-name nested acquisition, and
//     the CondVar wait watchdog. Abort paths run as gtest death tests
//     matching the "darnet::sync failure" diagnostic prefix.
//   * Zero-cost proof: with DARNET_CHECKED off the assertion macros must
//     not evaluate their arguments (side effects are counted).
//   * Build-mode parity: a served pipeline's bit-exact output hash equals
//     one hardcoded golden in BOTH checked and unchecked builds -- the
//     checking layer must never perturb execution.
//   * Teardown: Server destruction with in-flight requests and ThreadPool
//     reuse/destruction after a throwing region, exercising the
//     swap-then-join discipline (no lock held across join/notify).
//
// std::thread is banned outside src/parallel (darnet_lint
// thread-outside-parallel); cross-thread scenarios use
// parallel::ServiceThread and the serve tier's own workers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "engine/engine.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "parallel/pool.hpp"
#include "serve/serve.hpp"
#include "sync/sync.hpp"
#include "util/rng.hpp"

namespace {

using namespace darnet;
using namespace std::chrono_literals;
using tensor::Tensor;
using Clock = std::chrono::steady_clock;

constexpr int kFeatures = 4;
constexpr int kClasses = 6;

// -- Held-lock stack ---------------------------------------------------------

TEST(SyncMutex, HeldStackIntrospection) {
  sync::Mutex mu{"test/introspect"};
  EXPECT_FALSE(sync::held_by_current_thread(mu));
  {
    sync::Lock lock(mu);
    if (sync::enabled()) {
      EXPECT_TRUE(sync::held_by_current_thread(mu));
      EXPECT_GE(sync::held_count(), 1);
    }
    // The assertion macros must pass in every build mode.
    DARNET_ASSERT_HELD(mu);
  }
  EXPECT_FALSE(sync::held_by_current_thread(mu));
  DARNET_ASSERT_NOT_HELD(mu);
}

TEST(SyncMutex, TryLockAndUniqueLockOwnership) {
  sync::Mutex mu{"test/trylock"};
  ASSERT_TRUE(mu.try_lock());
  DARNET_ASSERT_HELD(mu);
  mu.unlock();

  sync::UniqueLock lock(mu);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  DARNET_ASSERT_NOT_HELD(mu);
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(SyncMutex, OrderEdgesAreRecorded) {
  if (!sync::enabled()) GTEST_SKIP() << "order graph is checked-build only";
  const std::uint64_t before = sync::order_edge_count();
  sync::Mutex outer{"test/edge_outer"};
  sync::Mutex inner{"test/edge_inner"};
  {
    sync::Lock lo(outer);
    sync::Lock li(inner);
  }
  EXPECT_GT(sync::order_edge_count(), before);
}

// -- Zero-cost proof ---------------------------------------------------------

TEST(SyncZeroCost, UncheckedAssertionsEvaluateNothing) {
  sync::Mutex mu{"test/zero_cost"};
  int evaluations = 0;
  const auto touch = [&]() -> sync::Mutex& {
    ++evaluations;
    return mu;
  };
  {
    sync::Lock lock(mu);
    DARNET_ASSERT_HELD(touch());
    EXPECT_EQ(evaluations, sync::enabled() ? 1 : 0)
        << "DARNET_ASSERT_HELD must not evaluate its argument when "
           "DARNET_CHECKED is off";
  }
  DARNET_ASSERT_NOT_HELD(touch());
  EXPECT_EQ(evaluations, sync::enabled() ? 2 : 0);
}

// -- Abort paths (death tests) -----------------------------------------------

TEST(SyncDeathTest, LockOrderInversionAborts) {
  if (!sync::enabled()) GTEST_SKIP() << "aborts are checked-build only";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto inversion = [] {
    sync::reset_order_graph_for_test();
    sync::Mutex a{"test/order_a"};
    sync::Mutex b{"test/order_b"};
    {
      sync::Lock la(a);
      sync::Lock lb(b);  // establishes test/order_a -> test/order_b
    }
    sync::Lock lb(b);
    sync::Lock la(a);  // inversion: aborts with both acquisition sites
  };
  EXPECT_DEATH(inversion(),
               "darnet::sync failure.*lock-order cycle.*test/order_a");
  // The conflicting sites must both be attributed to this file.
  EXPECT_DEATH(inversion(), "test_sync\\.cpp");
}

TEST(SyncDeathTest, AssertHeldViolationAborts) {
  if (!sync::enabled()) GTEST_SKIP() << "aborts are checked-build only";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sync::Mutex mu{"test/assert_held"};
  EXPECT_DEATH(DARNET_ASSERT_HELD(mu),
               "DARNET_ASSERT_HELD.*test/assert_held.*test_sync\\.cpp");
  const auto not_held_violation = [&] {
    sync::Lock lock(mu);
    DARNET_ASSERT_NOT_HELD(mu);
  };
  EXPECT_DEATH(not_held_violation(),
               "DARNET_ASSERT_NOT_HELD.*test/assert_held");
}

TEST(SyncDeathTest, RecursiveAcquisitionAborts) {
  if (!sync::enabled()) GTEST_SKIP() << "aborts are checked-build only";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto recursive = [] {
    sync::Mutex mu{"test/recursive"};
    sync::Lock first(mu);
    sync::Lock second(mu);  // std::mutex would deadlock; we abort
  };
  EXPECT_DEATH(recursive(), "darnet::sync failure.*test/recursive");
}

TEST(SyncDeathTest, SameNameNestingAborts) {
  if (!sync::enabled()) GTEST_SKIP() << "aborts are checked-build only";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto same_rank = [] {
    // Two instances sharing one name share one lock-order rank; nesting
    // them is an ordering violation even though the instances differ.
    sync::Mutex shard_a{"test/shard"};
    sync::Mutex shard_b{"test/shard"};
    sync::Lock la(shard_a);
    sync::Lock lb(shard_b);
  };
  EXPECT_DEATH(same_rank(), "darnet::sync failure.*test/shard");
}

// -- CondVar: predicate waits and the watchdog -------------------------------

TEST(SyncCondVar, CrossThreadSignal) {
  sync::Mutex mu{"test/signal"};
  sync::CondVar cv;
  bool ready DARNET_GUARDED_BY(mu) = false;
  parallel::ServiceThread producer([&] {
    sync::Lock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    sync::UniqueLock lock(mu);
    cv.wait(lock, [&] { return ready; });
    EXPECT_TRUE(ready);
    DARNET_ASSERT_HELD(mu);  // wait re-acquires before returning
  }
  producer.join();
}

TEST(SyncCondVar, WaitUntilTimesOutAndReportsPredicate) {
  sync::Mutex mu{"test/timeout"};
  sync::CondVar cv;
  sync::UniqueLock lock(mu);
  const bool result =
      cv.wait_until(lock, Clock::now() + 5ms, [] { return false; });
  EXPECT_FALSE(result);
  EXPECT_TRUE(lock.owns_lock());
}

TEST(SyncCondVar, WatchdogTripsOnOverlongWait) {
  if (!sync::enabled()) GTEST_SKIP() << "watchdog is checked-build only";
  const sync::WatchdogConfig previous = sync::wait_watchdog();
  sync::set_wait_watchdog({/*bound_us=*/2000, /*fatal=*/false});
  const std::uint64_t before = sync::watchdog_trips();
  {
    sync::Mutex mu{"test/watchdog"};
    sync::CondVar cv;
    sync::UniqueLock lock(mu);
    // Nothing ever signals: the 20ms timed wait exceeds the 2ms bound, so
    // the watchdog must flag a potential lost wakeup (warn, not abort).
    const bool woke =
        cv.wait_until(lock, Clock::now() + 20ms, [] { return false; });
    EXPECT_FALSE(woke);
  }
  EXPECT_GT(sync::watchdog_trips(), before);
  sync::set_wait_watchdog(previous);
}

// -- Build-mode parity golden ------------------------------------------------

/// FNV-1a over the bit patterns of a float span (plus fold-ins for ints):
/// bit-exact equality proxy that is stable across build modes.
struct BitHash {
  std::uint64_t state = 1469598103934665603ull;
  void fold(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xffu;
      state *= 1099511628211ull;
    }
  }
  void fold_floats(std::span<const float> values) {
    for (const float f : values) {
      std::uint32_t bits = 0;
      static_assert(sizeof bits == sizeof f);
      __builtin_memcpy(&bits, &f, sizeof bits);
      fold(bits);
    }
  }
};

std::shared_ptr<engine::EnsembleClassifier> make_dense_ensemble() {
  util::Rng rng(2024);
  auto model = std::make_shared<nn::Sequential>();
  model->emplace<nn::Dense>(kFeatures, kClasses, rng);
  auto frames =
      std::make_shared<engine::NeuralClassifier>(model, kClasses, "dense");
  return std::make_shared<engine::EnsembleClassifier>(
      frames, nullptr, bayes::ClassMap::darnet_default());
}

TEST(SyncParity, ServedPipelineBitIdenticalAcrossBuildModes) {
  // The same deterministic serve run is executed by the checked and the
  // unchecked build of this test; both must reproduce one golden hash, so
  // the sync layer (lock-order bookkeeping, CV wait slicing, watchdog)
  // provably never changes what the code under it computes.
  serve::ShardConfig config;
  config.max_batch = 4;
  config.max_delay_us = 500;
  config.workers = 1;
  serve::Server server(make_dense_ensemble(), config);

  util::Rng rng(7);
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 24; ++i) {
    engine::ClassifyRequest request;
    request.session_id = static_cast<std::uint64_t>(i % 3);
    request.frame = Tensor::uniform({1, kFeatures}, 1.0f, rng);
    auto submission = server.submit(std::move(request));
    ASSERT_EQ(submission.admit, serve::Admit::kAccepted);
    futures.push_back(std::move(submission.response));
  }

  BitHash hash;
  for (auto& future : futures) {
    const serve::Response response = future.get();
    ASSERT_EQ(response.status, serve::Status::kOk);
    hash.fold(static_cast<std::uint64_t>(response.result.verdict.predicted));
    hash.fold(response.result.verdict.alert ? 1 : 0);
    const Tensor& dist = response.result.verdict.distribution;
    hash.fold_floats(
        std::span<const float>(dist.data(), static_cast<std::size_t>(
                                                dist.numel())));
  }
  server.drain();

  constexpr std::uint64_t kGolden = 0x578b35c99211505aull;
  EXPECT_EQ(hash.state, kGolden)
      << "served-pipeline bit hash diverged: 0x" << std::hex << hash.state;
}

// -- Teardown under held-lock invariants -------------------------------------

/// Blocks inside probabilities() until release(), exactly like the serve
/// tests' gate: lets a teardown overlap an in-flight batch.
struct GatedClassifier final : engine::ProbabilisticClassifier {
  sync::Mutex mu{"test/gate"};
  sync::CondVar cv;
  int entered DARNET_GUARDED_BY(mu){0};
  bool open DARNET_GUARDED_BY(mu){true};

  Tensor probabilities(const Tensor& inputs) override {
    sync::UniqueLock lock(mu);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
    Tensor p({inputs.dim(0), kClasses});
    p.fill(1.0f / static_cast<float>(kClasses));
    return p;
  }
  int num_classes() const override { return kClasses; }
  std::string describe() const override { return "gated"; }

  void close_gate() {
    sync::Lock lock(mu);
    open = false;
  }
  void release() {
    {
      sync::Lock lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void await_entered(int n) {
    sync::UniqueLock lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }
};

TEST(SyncTeardown, ServerDestructionWithInflightRequests) {
  auto gate = std::make_shared<GatedClassifier>();
  auto ensemble = std::make_shared<engine::EnsembleClassifier>(
      gate, nullptr, bayes::ClassMap::darnet_default());
  serve::ShardConfig config;
  config.max_batch = 2;
  config.max_delay_us = 100;
  serve::Server server(ensemble, config);

  gate->close_gate();
  Tensor frame({1, kFeatures});
  frame.fill(0.5f);
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 6; ++i) {
    engine::ClassifyRequest request;
    request.session_id = static_cast<std::uint64_t>(i);
    request.frame = frame;
    futures.push_back(server.submit(std::move(request)).response);
  }
  gate->await_entered(1);  // a batch is now inside the model

  // Open the gate from a second thread while drain() is joining: the
  // destructor-path teardown must hold no lock across the notify/join
  // (DARNET_ASSERT_NOT_HELD inside drain()), or this interleaving hangs.
  parallel::ServiceThread releaser([gate] { gate->release(); });
  server.drain();
  releaser.join();

  for (auto& future : futures) {
    const serve::Response response = future.get();  // every future resolves
    EXPECT_TRUE(response.status == serve::Status::kOk ||
                response.status == serve::Status::kRejected ||
                response.status == serve::Status::kTimeout)
        << "unexpected status " << serve::status_name(response.status);
  }
}

TEST(SyncTeardown, PoolSurvivesThrowingRegionThenDestructs) {
  parallel::ThreadPool pool(2);
  EXPECT_THROW(
      pool.for_range(0, 128, 1,
                     [](std::int64_t, std::int64_t) {
                       throw std::runtime_error("chunk failure");
                     }),
      std::runtime_error);

  // The pool must remain fully usable after a failed region...
  std::atomic<std::int64_t> covered{0};
  pool.for_range(0, 128, 1, [&](std::int64_t b, std::int64_t e) {
    covered.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(covered.load(), 128);
  // ...and its destructor joins the workers with no lock held (the
  // swap-then-join discipline is asserted inside ~ThreadPool).
}

// -- Stress (the check.sh sync-stress leg runs this under tsan) --------------

TEST(SyncStress, ContendedProducersAndCondvarHandoff) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  sync::Mutex mu{"test/stress"};
  sync::CondVar cv;
  int tokens DARNET_GUARDED_BY(mu) = 0;
  int produced DARNET_GUARDED_BY(mu) = 0;

  std::vector<parallel::ServiceThread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        {
          sync::Lock lock(mu);
          ++tokens;
          ++produced;
        }
        cv.notify_one();
      }
    });
  }

  int consumed = 0;
  while (consumed < kProducers * kPerProducer) {
    sync::UniqueLock lock(mu);
    cv.wait_until(lock, Clock::now() + 50ms, [&] { return tokens > 0; });
    consumed += tokens;
    tokens = 0;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(consumed, kProducers * kPerProducer);

  // Mixed-in parallel_for keeps the pool's own locks in the picture.
  std::atomic<std::int64_t> sum{0};
  parallel::parallel_for(0, 1000, 16, [&](std::int64_t b, std::int64_t e) {
    sum.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000);
}

}  // namespace
