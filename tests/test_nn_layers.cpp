// Behavioural unit tests for layers, optimizers, metrics and the trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/inception.hpp"
#include "nn/lstm.hpp"
#include "nn/metrics.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/serialize.hpp"

namespace {

using darnet::tensor::Tensor;
using darnet::util::Rng;
namespace nn = darnet::nn;

TEST(Layers, DenseShapesAndBias) {
  Rng rng(1);
  nn::Dense layer(3, 2, rng);
  Tensor x({1, 3});  // zeros
  Tensor y = layer.forward(x, false);
  ASSERT_EQ(y.shape(), (std::vector<int>{1, 2}));
  // Zero input -> output equals bias (initialised to zero).
  EXPECT_EQ(y.at(0, 0), 0.0f);
  EXPECT_THROW(layer.forward(Tensor({1, 4}), false), std::invalid_argument);
}

TEST(Layers, ReLUClampsNegatives) {
  nn::ReLU relu;
  Tensor x({1, 4});
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = -0.5f;
  Tensor y = relu.forward(x, false);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 2.0f);
  EXPECT_EQ(y[2], 0.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(Layers, Conv2DIdentityKernelReproducesInput) {
  Rng rng(2);
  nn::Conv2D conv(1, 1, 3, 1, rng);
  // Set the kernel to the identity (centre 1) and bias to 0.
  auto params = conv.params();
  params[0]->value.zero();
  params[0]->value.at(0, 0, 1, 1) = 1.0f;
  params[1]->value.zero();

  Tensor x = Tensor::uniform({1, 1, 5, 5}, 1.0f, rng);
  Tensor y = conv.forward(x, false);
  ASSERT_TRUE(y.same_shape(x));
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Layers, Conv2DValidConvolutionShrinksOutput) {
  Rng rng(3);
  nn::Conv2D conv(1, 4, 3, 0, rng);
  Tensor y = conv.forward(Tensor({2, 1, 8, 8}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 4, 6, 6}));
}

TEST(Layers, MaxPoolSelectsMaxima) {
  nn::MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = 3.0f;
  x[3] = 2.0f;
  Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_EQ(y[0], 5.0f);
}

TEST(Layers, MaxPoolRejectsIndivisibleInput) {
  nn::MaxPool2D pool(2);
  EXPECT_THROW(pool.forward(Tensor({1, 1, 5, 4}), false),
               std::invalid_argument);
}

TEST(Layers, GlobalAvgPoolAverages) {
  nn::GlobalAvgPool pool;
  Tensor x({1, 2, 2, 2});
  for (int i = 0; i < 4; ++i) x[i] = 2.0f;       // channel 0
  for (int i = 4; i < 8; ++i) x[i] = static_cast<float>(i);  // channel 1
  Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 5.5f);
}

TEST(Layers, DropoutIdentityInEval) {
  nn::Dropout dropout(0.5, 7);
  Tensor x = Tensor::full({4, 8}, 3.0f);
  Tensor y = dropout.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 3.0f);
}

TEST(Layers, DropoutZeroesAndRescalesInTraining) {
  nn::Dropout dropout(0.5, 7);
  Tensor x = Tensor::full({8, 64}, 1.0f);
  Tensor y = dropout.forward(x, /*training=*/true);
  int zeros = 0, scaled = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
      ++scaled;
    }
  }
  EXPECT_GT(zeros, 100);
  EXPECT_GT(scaled, 100);
}

TEST(Layers, ParallelConcatConcatenatesChannels) {
  Rng rng(4);
  auto block = nn::make_micro_inception(3, 2, 3, 4, 1, rng);
  Tensor y = block->forward(Tensor({2, 3, 8, 8}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 10, 8, 8}));  // 2+3+4+1
}

TEST(Layers, BiLstmOutputShape) {
  Rng rng(5);
  nn::BiLstm lstm(7, 4, rng);
  Tensor y = lstm.forward(Tensor({3, 10, 7}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{3, 10, 8}));
}

TEST(Layers, BiLstmBackwardDirectionSeesFuture) {
  // With a pulse at the last timestep, the backward direction must carry
  // information to timestep 0 while the forward direction cannot.
  Rng rng(6);
  nn::BiLstm lstm(1, 2, rng);
  Tensor base({1, 6, 1});
  Tensor pulsed = base;
  pulsed.at(0, 5, 0) = 4.0f;

  Tensor y0 = lstm.forward(base, false);
  Tensor y1 = lstm.forward(pulsed, false);
  // Forward-direction hidden at t=0 (features 0..1) must be identical.
  EXPECT_FLOAT_EQ(y0.at(0, 0, 0), y1.at(0, 0, 0));
  EXPECT_FLOAT_EQ(y0.at(0, 0, 1), y1.at(0, 0, 1));
  // Backward-direction hidden at t=0 (features 2..3) must differ.
  const float diff = std::abs(y0.at(0, 0, 2) - y1.at(0, 0, 2)) +
                     std::abs(y0.at(0, 0, 3) - y1.at(0, 0, 3));
  EXPECT_GT(diff, 1e-4f);
}

TEST(Optimizer, SgdDescendsQuadratic) {
  // Minimise f(w) = 0.5 * ||w - target||^2 by feeding grad = w - target.
  nn::Param w(Tensor::full({4}, 5.0f));
  const float target = 1.0f;
  nn::Sgd sgd(0.1, 0.0);
  std::vector<nn::Param*> params{&w};
  for (int iter = 0; iter < 200; ++iter) {
    for (int i = 0; i < 4; ++i) w.grad[i] = w.value[i] - target;
    sgd.step(params);
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.value[i], target, 1e-3f);
}

TEST(Optimizer, AdamDescendsQuadratic) {
  nn::Param w(Tensor::full({4}, -3.0f));
  nn::Adam adam(0.05);
  std::vector<nn::Param*> params{&w};
  for (int iter = 0; iter < 400; ++iter) {
    for (int i = 0; i < 4; ++i) w.grad[i] = w.value[i] - 2.0f;
    adam.step(params);
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.value[i], 2.0f, 1e-2f);
}

TEST(Optimizer, StepZeroesGradients) {
  nn::Param w(Tensor::full({2}, 1.0f));
  w.grad.fill(3.0f);
  nn::Sgd sgd(0.1);
  std::vector<nn::Param*> params{&w};
  sgd.step(params);
  EXPECT_EQ(w.grad[0], 0.0f);
  EXPECT_EQ(w.grad[1], 0.0f);
}

TEST(Optimizer, ClipGradNormScalesDown) {
  nn::Param w(Tensor({2}));
  w.grad[0] = 3.0f;
  w.grad[1] = 4.0f;  // norm 5
  std::vector<nn::Param*> params{&w};
  const double before = nn::clip_grad_norm(params, 1.0);
  EXPECT_NEAR(before, 5.0, 1e-6);
  EXPECT_NEAR(std::hypot(w.grad[0], w.grad[1]), 1.0, 1e-5);
  // Below the cap: untouched.
  const double again = nn::clip_grad_norm(params, 10.0);
  EXPECT_NEAR(again, 1.0, 1e-5);
  EXPECT_NEAR(std::hypot(w.grad[0], w.grad[1]), 1.0, 1e-5);
}

TEST(Metrics, ConfusionMatrixAccuracyAndRecall) {
  nn::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_NEAR(cm.accuracy(), 3.0 / 5.0, 1e-9);
  EXPECT_NEAR(cm.class_recall(0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.confusion_rate(0, 1), 1.0 / 3.0, 1e-9);
  EXPECT_EQ(cm.count(2, 0), 1);
  EXPECT_THROW(cm.add(3, 0), std::out_of_range);
}

TEST(Metrics, RenderContainsClassNames) {
  nn::ConfusionMatrix cm(2, {"cat", "dog"});
  cm.add(0, 0);
  cm.add(1, 0);
  const std::string s = cm.render();
  EXPECT_NE(s.find("cat"), std::string::npos);
  EXPECT_NE(s.find("dog"), std::string::npos);
}

TEST(Trainer, GatherRowsSelectsAndReorders) {
  Tensor x({3, 2});
  for (int i = 0; i < 6; ++i) x[i] = static_cast<float>(i);
  const std::vector<std::size_t> idx{2, 0};
  Tensor g = nn::gather_rows(x, idx);
  EXPECT_EQ(g.shape(), (std::vector<int>{2, 2}));
  EXPECT_EQ(g.at(0, 0), 4.0f);
  EXPECT_EQ(g.at(1, 1), 1.0f);
}

TEST(Trainer, LearnsLinearlySeparableToyProblem) {
  // Two gaussian blobs in 2-D; a single dense layer must reach ~100%.
  Rng rng(8);
  const int n = 120;
  Tensor x({n, 2});
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    y[i] = cls;
    x.at(i, 0) = static_cast<float>(rng.gaussian(cls ? 2.0 : -2.0, 0.5));
    x.at(i, 1) = static_cast<float>(rng.gaussian(cls ? -1.0 : 1.0, 0.5));
  }
  nn::Sequential model;
  model.emplace<nn::Dense>(2, 2, rng);
  nn::Sgd opt(0.1);
  nn::TrainConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 16;
  nn::train_classifier(model, opt, x, y, cfg);
  const auto cm = nn::evaluate(model, x, y, 2);
  EXPECT_GT(cm.accuracy(), 0.97);
}

TEST(Trainer, CheckpointRoundTripPreservesOutputs) {
  Rng rng(9);
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 8, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(8, 3, rng);

  Tensor x = Tensor::uniform({5, 4}, 1.0f, rng);
  Tensor before = model.forward(x, false);

  darnet::util::BinaryWriter w;
  model.save_params(w);

  // A freshly-built model with different weights...
  Rng rng2(1234);
  nn::Sequential model2;
  model2.emplace<nn::Dense>(4, 8, rng2);
  model2.emplace<nn::ReLU>();
  model2.emplace<nn::Dense>(8, 3, rng2);
  // ...restored from the checkpoint must reproduce the outputs.
  darnet::util::BinaryReader r(w.bytes());
  model2.load_params(r);
  Tensor after = model2.forward(x, false);
  for (std::size_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
}

TEST(Trainer, LoadRejectsMismatchedArchitecture) {
  Rng rng(10);
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 4, rng);
  darnet::util::BinaryWriter w;
  model.save_params(w);

  nn::Sequential other;
  other.emplace<nn::Dense>(4, 5, rng);
  darnet::util::BinaryReader r(w.bytes());
  EXPECT_THROW(other.load_params(r), std::invalid_argument);
}

TEST(Trainer, ParameterCountMatchesArchitecture) {
  Rng rng(11);
  nn::Sequential model;
  model.emplace<nn::Dense>(10, 7, rng);  // 70 + 7
  model.emplace<nn::Dense>(7, 2, rng);   // 14 + 2
  EXPECT_EQ(model.parameter_count(), 93u);
}

}  // namespace
