// Unit tests for the multi-class linear SVM baseline.
#include <gtest/gtest.h>

#include "svm/svm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace {

using darnet::svm::LinearSvm;
using darnet::svm::SvmConfig;
using darnet::tensor::Tensor;
using darnet::util::Rng;

/// Three linearly separable gaussian blobs in 2-D.
struct Blobs {
  Tensor x;
  std::vector<int> y;
};

Blobs make_blobs(int per_class, double spread, std::uint64_t seed) {
  const double centers[3][2] = {{-4.0, 0.0}, {4.0, 0.0}, {0.0, 5.0}};
  Rng rng(seed);
  Blobs b{Tensor({3 * per_class, 2}), {}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      const int row = c * per_class + i;
      b.x.at(row, 0) = static_cast<float>(rng.gaussian(centers[c][0], spread));
      b.x.at(row, 1) = static_cast<float>(rng.gaussian(centers[c][1], spread));
      b.y.push_back(c);
    }
  }
  return b;
}

TEST(LinearSvm, RejectsBadConstruction) {
  EXPECT_THROW(LinearSvm(0, 3), std::invalid_argument);
  EXPECT_THROW(LinearSvm(4, 1), std::invalid_argument);
}

TEST(LinearSvm, PredictBeforeFitThrows) {
  LinearSvm svm(2, 3);
  EXPECT_THROW((void)svm.predict(Tensor({1, 2})), std::logic_error);
}

TEST(LinearSvm, SeparatesGaussianBlobs) {
  const Blobs b = make_blobs(60, 0.6, 5);
  LinearSvm svm(2, 3);
  svm.fit(b.x, b.y);
  const auto preds = svm.predict(b.x);
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == b.y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(preds.size()), 0.97);
}

TEST(LinearSvm, ProbabilitiesAreNormalisedDistributions) {
  const Blobs b = make_blobs(40, 0.8, 6);
  LinearSvm svm(2, 3);
  svm.fit(b.x, b.y);
  const Tensor p = svm.probabilities(b.x);
  ASSERT_EQ(p.dim(1), 3);
  for (int i = 0; i < p.dim(0); ++i) {
    double row = 0.0;
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(p.at(i, c), 0.0f);
      row += p.at(i, c);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(LinearSvm, DecisionValuesAgreeWithPredictions) {
  const Blobs b = make_blobs(30, 0.7, 7);
  LinearSvm svm(2, 3);
  svm.fit(b.x, b.y);
  const Tensor margins = svm.decision_values(b.x);
  const auto preds = svm.predict(b.x);
  for (int i = 0; i < margins.dim(0); ++i) {
    const int best = darnet::tensor::argmax(std::span<const float>(
        margins.data() + static_cast<std::size_t>(i) * 3, 3));
    EXPECT_EQ(best, preds[static_cast<std::size_t>(i)]);
  }
}

TEST(LinearSvm, StandardisationMakesScaleIrrelevant) {
  // The same blobs with one feature blown up 1000x must still separate,
  // because fit() standardises features internally.
  Blobs b = make_blobs(50, 0.5, 8);
  for (int i = 0; i < b.x.dim(0); ++i) b.x.at(i, 1) *= 1000.0f;
  LinearSvm svm(2, 3);
  svm.fit(b.x, b.y);
  const auto preds = svm.predict(b.x);
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == b.y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(preds.size()), 0.95);
}

TEST(LinearSvm, FitValidatesInputs) {
  LinearSvm svm(2, 3);
  const Blobs b = make_blobs(5, 0.5, 9);
  std::vector<int> bad_labels(b.y.size(), 7);  // out of range
  EXPECT_THROW(svm.fit(b.x, bad_labels), std::invalid_argument);
  std::vector<int> short_labels{0};
  EXPECT_THROW(svm.fit(b.x, short_labels), std::invalid_argument);
  EXPECT_THROW((void)LinearSvm(3, 3).predict(b.x), std::logic_error);
}

TEST(LinearSvm, SerializationRoundTripPreservesPredictions) {
  const Blobs b = make_blobs(40, 0.6, 10);
  LinearSvm svm(2, 3);
  svm.fit(b.x, b.y);
  darnet::util::BinaryWriter w;
  svm.serialize(w);
  darnet::util::BinaryReader r(w.bytes());
  const LinearSvm restored = LinearSvm::deserialize(r);
  const auto p1 = svm.predict(b.x);
  const auto p2 = restored.predict(b.x);
  EXPECT_EQ(p1, p2);
}

TEST(LinearSvm, XorLikeSignFlipIsHardForLinearModel) {
  // Mirror-image clusters mapped to the same class (the texting-left /
  // texting-right structure of the IMU data): a linear one-vs-rest model
  // cannot carve class 0 = {x < -2} ∪ {x > 2} against class 1 = {|x| < 1}.
  Rng rng(11);
  const int n = 200;
  Tensor x({n, 1});
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      const double sign = rng.chance(0.5) ? 1.0 : -1.0;
      x.at(i, 0) = static_cast<float>(rng.gaussian(3.0 * sign, 0.4));
      y[i] = 0;
    } else {
      x.at(i, 0) = static_cast<float>(rng.gaussian(0.0, 0.4));
      y[i] = 1;
    }
  }
  LinearSvm svm(1, 2);
  svm.fit(x, y);
  const auto preds = svm.predict(x);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    if (preds[static_cast<std::size_t>(i)] == y[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  // Markedly below perfect -- this is the structural weakness the BiLSTM
  // does not share (cf. RNN > SVM in Section 5.2).
  EXPECT_LT(static_cast<double>(correct) / n, 0.85);
}

}  // namespace
