// Tests for the privacy pipeline: distortion geometry, bandwidth
// accounting, reconstruction, distillation, and level routing.
#include <gtest/gtest.h>

#include <set>

#include "engine/architectures.hpp"
#include "nn/loss.hpp"
#include "privacy/privacy.hpp"
#include "util/rng.hpp"
#include "vision/renderer.hpp"

namespace {

using namespace darnet;
using nn::Tensor;
using privacy::DistortionLevel;

TEST(Distortion, FactorsMatchPaperRatios) {
  // 300 -> 100 / 50 / 25 in the paper = 3x / 6x / 12x linear reduction.
  EXPECT_EQ(privacy::distortion_factor(DistortionLevel::kNone), 1);
  EXPECT_EQ(privacy::distortion_factor(DistortionLevel::kLow), 3);
  EXPECT_EQ(privacy::distortion_factor(DistortionLevel::kMedium), 6);
  EXPECT_EQ(privacy::distortion_factor(DistortionLevel::kHigh), 12);
  EXPECT_EQ(privacy::distorted_size(DistortionLevel::kLow, 48), 16);
  EXPECT_EQ(privacy::distorted_size(DistortionLevel::kMedium, 48), 8);
  EXPECT_EQ(privacy::distorted_size(DistortionLevel::kHigh, 48), 4);
  EXPECT_THROW((void)privacy::distorted_size(DistortionLevel::kHigh, 8),
               std::invalid_argument);
}

TEST(Distortion, ModuleDownsamplesAndTags) {
  util::Rng rng(1);
  const vision::Image frame =
      vision::render_driver_scene(vision::DriverClass::kTexting, {}, rng);
  privacy::DistortionModule module(DistortionLevel::kMedium);
  const privacy::TaggedFrame tagged = module.process(frame);
  EXPECT_EQ(tagged.level, DistortionLevel::kMedium);
  EXPECT_EQ(tagged.image.width(), 8);
  EXPECT_EQ(tagged.image.height(), 8);
}

TEST(Distortion, WireBytesShrinkByExpectedRatios) {
  util::Rng rng(2);
  const vision::Image frame =
      vision::render_driver_scene(vision::DriverClass::kNormal, {}, rng);
  const auto none =
      privacy::wire_bytes(privacy::DistortionModule(DistortionLevel::kNone)
                              .process(frame));
  const auto low =
      privacy::wire_bytes(privacy::DistortionModule(DistortionLevel::kLow)
                              .process(frame));
  const auto high =
      privacy::wire_bytes(privacy::DistortionModule(DistortionLevel::kHigh)
                              .process(frame));
  // Ratios on the pixel payload: ~9x for low, ~144x for high.
  EXPECT_NEAR(static_cast<double>(none - 1) / static_cast<double>(low - 1), 9.0, 0.1);
  EXPECT_NEAR(static_cast<double>(none - 1) / static_cast<double>(high - 1), 144.0, 0.1);
}

TEST(Distortion, ReconstructRestoresModelInputSize) {
  util::Rng rng(3);
  const vision::Image frame =
      vision::render_driver_scene(vision::DriverClass::kEating, {}, rng);
  privacy::DistortionModule module(DistortionLevel::kHigh);
  const vision::Image rebuilt =
      privacy::reconstruct(module.process(frame), 48);
  EXPECT_EQ(rebuilt.width(), 48);
  // Only 16 distinct values can survive a 4x4 bottleneck.
  std::set<float> distinct(rebuilt.pixels().begin(), rebuilt.pixels().end());
  EXPECT_LE(distinct.size(), 16u);
}

TEST(Distortion, BatchApplicationMatchesPerImagePath) {
  util::Rng rng(4);
  const vision::Image frame =
      vision::render_driver_scene(vision::DriverClass::kTalking, {}, rng);
  const vision::Image batch_src[] = {frame};
  const auto batch = vision::to_batch_tensor(batch_src);
  const auto distorted =
      privacy::apply_distortion(batch, DistortionLevel::kMedium);
  const vision::Image expected = privacy::reconstruct(
      privacy::DistortionModule(DistortionLevel::kMedium).process(frame), 48);
  const vision::Image actual = vision::from_batch_tensor(distorted, 0);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 48; ++x) {
      ASSERT_EQ(actual.at(x, y), expected.at(x, y));
    }
  }
}

TEST(Distortion, InformationLossIsMonotoneInLevel) {
  // L2 distance between the original and its distort->reconstruct version
  // must grow with the distortion level.
  util::Rng rng(5);
  const vision::Image frame =
      vision::render_driver_scene(vision::DriverClass::kHairMakeup, {}, rng);
  auto loss = [&frame](DistortionLevel level) {
    const vision::Image rebuilt = privacy::reconstruct(
        privacy::DistortionModule(level).process(frame), frame.width());
    double acc = 0.0;
    for (int y = 0; y < frame.height(); ++y) {
      for (int x = 0; x < frame.width(); ++x) {
        const double d = frame.at(x, y) - rebuilt.at(x, y);
        acc += d * d;
      }
    }
    return acc;
  };
  const double none = loss(DistortionLevel::kNone);
  const double low = loss(DistortionLevel::kLow);
  const double medium = loss(DistortionLevel::kMedium);
  const double high = loss(DistortionLevel::kHigh);
  EXPECT_EQ(none, 0.0);
  EXPECT_LT(low, medium);
  EXPECT_LT(medium, high);
}

TEST(Distillation, StudentConvergesTowardTeacherOutputs) {
  // A tiny teacher/student pair: distillation must reduce the student-
  // teacher output gap on clean data (kNone level isolates the objective).
  util::Rng rng(6);
  engine::FrameCnnConfig cfg;
  cfg.input_size = 16;
  cfg.num_classes = 4;
  cfg.seed = 1;
  nn::Sequential teacher = engine::build_frame_cnn(cfg);
  cfg.seed = 2;
  nn::Sequential student = engine::build_frame_cnn(cfg);

  Tensor frames = Tensor::uniform({24, 1, 16, 16}, 0.5f, rng);
  for (auto& v : frames.flat()) v += 0.5f;  // into [0,1]

  const Tensor t_out = nn::predict_logits(teacher, frames);
  const Tensor s_before = nn::predict_logits(student, frames);
  const double gap_before = nn::l2_distillation(s_before, t_out).loss;

  nn::Sgd opt(0.02, 0.9);
  nn::TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 8;
  privacy::distill_dcnn(student, teacher, frames, DistortionLevel::kNone,
                        opt, tc);
  const Tensor s_after = nn::predict_logits(student, frames);
  const double gap_after = nn::l2_distillation(s_after, t_out).loss;
  EXPECT_LT(gap_after, gap_before * 0.5);
}

TEST(Router, RoutesByTagAndRejectsUnknownLevels) {
  util::Rng rng(7);
  engine::FrameCnnConfig cfg;
  cfg.input_size = 16;
  cfg.num_classes = 3;
  nn::Sequential model_full = engine::build_frame_cnn(cfg);
  nn::Sequential model_low = engine::build_frame_cnn(cfg);

  privacy::PrivacyRouter router;
  router.register_model(DistortionLevel::kNone, model_full, 16);
  router.register_model(DistortionLevel::kLow, model_low, 16);
  EXPECT_TRUE(router.has_model(DistortionLevel::kLow));
  EXPECT_FALSE(router.has_model(DistortionLevel::kHigh));

  vision::RenderConfig render;
  render.size = 16;
  const vision::Image frame =
      vision::render_driver_scene(vision::DriverClass::kNormal, render, rng);

  privacy::TaggedFrame clean{DistortionLevel::kNone, frame};
  const Tensor p = router.classify(clean);
  EXPECT_EQ(p.shape(), (std::vector<int>{1, 3}));
  double sum = 0.0;
  for (int c = 0; c < 3; ++c) sum += p.at(0, c);
  EXPECT_NEAR(sum, 1.0, 1e-5);

  privacy::TaggedFrame unrouted{DistortionLevel::kHigh, frame};
  EXPECT_THROW((void)router.classify(unrouted), std::out_of_range);
}

}  // namespace
