// Unit tests for the Bayesian-network ensemble combiner.
#include <gtest/gtest.h>

#include "bayes/combiner.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace {

using darnet::bayes::BayesianCombiner;
using darnet::bayes::ClassMap;
using darnet::bayes::FusionRule;
using darnet::tensor::Tensor;

Tensor one_hotish(std::initializer_list<std::pair<int, float>> rows, int c) {
  Tensor t({static_cast<int>(rows.size()), c});
  int i = 0;
  for (const auto& [cls, conf] : rows) {
    const float rest = (1.0f - conf) / static_cast<float>(c - 1);
    for (int j = 0; j < c; ++j) t.at(i, j) = (j == cls) ? conf : rest;
    ++i;
  }
  return t;
}

TEST(ClassMap, DarnetDefaultMapsNonPhoneClassesToNormal) {
  const ClassMap map = ClassMap::darnet_default();
  EXPECT_EQ(map.image_classes(), 6);
  EXPECT_EQ(map.imu_classes(), 3);
  EXPECT_EQ(map.map(0), 0);  // normal -> normal
  EXPECT_EQ(map.map(1), 1);  // talking -> talking
  EXPECT_EQ(map.map(2), 2);  // texting -> texting
  EXPECT_EQ(map.map(3), 0);  // eating -> normal
  EXPECT_EQ(map.map(4), 0);  // hair/makeup -> normal
  EXPECT_EQ(map.map(5), 0);  // reaching -> normal
}

TEST(ClassMap, ValidatesArguments) {
  EXPECT_THROW(ClassMap({0, 3}, 3), std::invalid_argument);
  EXPECT_THROW(ClassMap({}, 3), std::invalid_argument);
  const ClassMap map({0, 1}, 2);
  EXPECT_THROW((void)map.map(5), std::out_of_range);
}

TEST(BayesianCombiner, CombineBeforeFitThrows) {
  BayesianCombiner combiner(ClassMap::darnet_default());
  EXPECT_THROW((void)combiner.combine(Tensor({1, 6}), Tensor({1, 3})),
               std::logic_error);
}

TEST(BayesianCombiner, CptsReflectTruePositiveCounts) {
  // Toy 2-class / 2-class identity-mapped setting where the models are
  // always confident and always right -> P(y | a=1, b=1) must be high and
  // P(y | a=0, b=0) low.
  const ClassMap map({0, 1}, 2);
  BayesianCombiner combiner(map, /*laplace_alpha=*/0.5);
  Tensor p_img = one_hotish({{0, 0.9f}, {1, 0.9f}, {0, 0.9f}, {1, 0.9f}}, 2);
  Tensor p_imu = one_hotish({{0, 0.8f}, {1, 0.8f}, {0, 0.8f}, {1, 0.8f}}, 2);
  const std::vector<int> labels{0, 1, 0, 1};
  combiner.fit(p_img, p_imu, labels);

  EXPECT_GT(combiner.cpt(0, true, true), 0.5);
  EXPECT_LT(combiner.cpt(0, false, false), 0.3);
  EXPECT_GT(combiner.cpt(1, true, true), 0.5);
}

TEST(BayesianCombiner, OutputIsNormalisedDistribution) {
  BayesianCombiner combiner(ClassMap::darnet_default());
  darnet::util::Rng rng(3);
  const int n = 50;
  Tensor p_img({n, 6}), p_imu({n, 3});
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = static_cast<int>(rng.uniform_index(6));
    float sum6 = 0, sum3 = 0;
    for (int c = 0; c < 6; ++c) sum6 += p_img.at(i, c) = static_cast<float>(rng.uniform(0.01, 1.0));
    for (int c = 0; c < 3; ++c) sum3 += p_imu.at(i, c) = static_cast<float>(rng.uniform(0.01, 1.0));
    for (int c = 0; c < 6; ++c) p_img.at(i, c) /= sum6;
    for (int c = 0; c < 3; ++c) p_imu.at(i, c) /= sum3;
  }
  combiner.fit(p_img, p_imu, labels);
  const Tensor fused = combiner.combine(p_img, p_imu);
  for (int i = 0; i < n; ++i) {
    double row = 0.0;
    for (int c = 0; c < 6; ++c) {
      EXPECT_GE(fused.at(i, c), 0.0f);
      row += fused.at(i, c);
    }
    EXPECT_NEAR(row, 1.0, 1e-4);
  }
}

TEST(BayesianCombiner, ImuEvidenceDisambiguatesVisuallyConfusedClasses) {
  // The headline mechanism of the paper: the CNN cannot tell texting (2)
  // from normal (0), but the IMU can. Fit on data where the IMU verdict is
  // reliable; a texting-IMU verdict must then tip a visual tie to texting.
  BayesianCombiner combiner(ClassMap::darnet_default());
  darnet::util::Rng rng(4);
  const int n = 400;
  Tensor p_img({n, 6}), p_imu({n, 3});
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    const int y = (i % 2 == 0) ? 0 : 2;  // normal or texting
    labels[static_cast<std::size_t>(i)] = y;
    // CNN: a coin-flip between classes 0 and 2.
    const bool cnn_says_0 = rng.chance(0.5);
    for (int c = 0; c < 6; ++c) p_img.at(i, c) = 0.02f;
    p_img.at(i, cnn_says_0 ? 0 : 2) = 0.9f;
    // IMU: 95% reliable.
    const int imu_verdict = rng.chance(0.95) ? (y == 2 ? 2 : 0)
                                             : (y == 2 ? 0 : 2);
    for (int c = 0; c < 3; ++c) p_imu.at(i, c) = 0.05f;
    p_imu.at(i, imu_verdict) = 0.9f;
  }
  combiner.fit(p_img, p_imu, labels);

  int correct = 0;
  const auto preds = combiner.predict(p_img, p_imu);
  for (int i = 0; i < n; ++i) {
    if (preds[static_cast<std::size_t>(i)] == labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  // The CNN alone would get ~50% on this stream; the fused model must
  // recover most of the IMU's 95%.
  EXPECT_GT(static_cast<double>(correct) / n, 0.85);
}

TEST(BayesianCombiner, SerializationRoundTrip) {
  BayesianCombiner combiner(ClassMap::darnet_default(), 2.0);
  Tensor p_img = one_hotish({{0, 0.9f}, {2, 0.8f}}, 6);
  Tensor p_imu = one_hotish({{0, 0.7f}, {2, 0.9f}}, 3);
  const std::vector<int> labels{0, 2};
  combiner.fit(p_img, p_imu, labels);

  darnet::util::BinaryWriter w;
  combiner.serialize(w);
  darnet::util::BinaryReader r(w.bytes());
  const BayesianCombiner restored = BayesianCombiner::deserialize(r);
  EXPECT_TRUE(restored.trained());
  for (int c = 0; c < 6; ++c) {
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        EXPECT_DOUBLE_EQ(combiner.cpt(c, a, b), restored.cpt(c, a, b));
      }
    }
  }
}

TEST(Fuse, RulesProduceNormalisedOutput) {
  const ClassMap map = ClassMap::darnet_default();
  Tensor p_img = one_hotish({{1, 0.7f}, {4, 0.6f}}, 6);
  Tensor p_imu = one_hotish({{1, 0.8f}, {0, 0.9f}}, 3);
  for (auto rule :
       {FusionRule::kMean, FusionRule::kProduct, FusionRule::kMax}) {
    const Tensor fused = darnet::bayes::fuse(rule, map, p_img, p_imu);
    for (int i = 0; i < 2; ++i) {
      double row = 0.0;
      for (int c = 0; c < 6; ++c) row += fused.at(i, c);
      EXPECT_NEAR(row, 1.0, 1e-5);
    }
  }
}

TEST(Fuse, ProductRuleAmplifiesAgreement) {
  const ClassMap map({0, 1}, 2);
  Tensor p_img = one_hotish({{0, 0.6f}}, 2);
  Tensor p_imu = one_hotish({{0, 0.6f}}, 2);
  const Tensor fused =
      darnet::bayes::fuse(FusionRule::kProduct, map, p_img, p_imu);
  EXPECT_GT(fused.at(0, 0), 0.6f);  // 0.36 / (0.36 + 0.16) = 0.69
}

}  // namespace
