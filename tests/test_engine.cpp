// Tests for the analytics engine: classifier adapters, the ensemble, and
// the stream->model registry.
#include <gtest/gtest.h>

#include "engine/architectures.hpp"
#include "engine/engine.hpp"
#include "imu/imu.hpp"
#include "nn/dense.hpp"

namespace {

using namespace darnet;
using engine::ArchitectureKind;
using tensor::Tensor;

TEST(Architectures, FrameCnnShapesAndValidation) {
  engine::FrameCnnConfig cfg;
  cfg.input_size = 48;
  cfg.num_classes = 6;
  nn::Sequential cnn = engine::build_frame_cnn(cfg);
  Tensor out = cnn.forward(Tensor({2, 1, 48, 48}), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 6}));
  EXPECT_GT(cnn.parameter_count(), 1000u);

  cfg.input_size = 20;  // not divisible by 8
  EXPECT_THROW((void)engine::build_frame_cnn(cfg), std::invalid_argument);
}

TEST(Architectures, ImuRnnShapesMatchPaperWindow) {
  engine::ImuRnnConfig cfg;
  nn::Sequential rnn = engine::build_imu_rnn(cfg);
  Tensor out = rnn.forward(
      Tensor({3, imu::kWindowSteps, imu::kImuChannels}), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{3, 3}));
}

TEST(Architectures, ImuRnnIsDeepAndBidirectional) {
  // Two stacked BiLstm layers (paper: "2 bidirectional LSTM cells").
  engine::ImuRnnConfig cfg;
  cfg.layers = 2;
  nn::Sequential rnn = engine::build_imu_rnn(cfg);
  // layers: BiLstm, BiLstm, TemporalMeanPool, Dense.
  EXPECT_EQ(rnn.size(), 4u);
  EXPECT_EQ(rnn.layer(0).name(), "BiLstm");
  EXPECT_EQ(rnn.layer(1).name(), "BiLstm");
}

TEST(NeuralClassifier, EmitsNormalisedDistributions) {
  util::Rng rng(1);
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 3, rng);
  engine::NeuralClassifier classifier(engine::borrow(model), 3, "toy");
  const Tensor p = classifier.probabilities(Tensor::uniform({5, 4}, 1.0f, rng));
  ASSERT_EQ(p.shape(), (std::vector<int>{5, 3}));
  for (int i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) sum += p.at(i, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  EXPECT_EQ(classifier.describe(), "toy");
}

TEST(NeuralClassifier, DetectsClassCountMismatch) {
  util::Rng rng(2);
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 3, rng);
  engine::NeuralClassifier classifier(engine::borrow(model), 5, "bad");
  EXPECT_THROW((void)classifier.probabilities(Tensor({1, 4})),
               std::logic_error);
}

TEST(SvmClassifier, AcceptsWindowTensorsDirectly) {
  svm::LinearSvm model(imu::kWindowSteps * imu::kImuChannels, 3);
  util::Rng rng(3);
  Tensor windows = Tensor::uniform(
      {8, imu::kWindowSteps, imu::kImuChannels}, 1.0f, rng);
  std::vector<int> labels{0, 1, 2, 0, 1, 2, 0, 1};
  model.fit(imu::flatten_windows(windows), labels);
  engine::SvmClassifier classifier(engine::borrow(model));
  const Tensor p = classifier.probabilities(windows);  // un-flattened input
  EXPECT_EQ(p.shape(), (std::vector<int>{8, 3}));
}

TEST(Ensemble, CnnOnlyDegradesToFrameModel) {
  util::Rng rng(4);
  nn::Sequential frame_model;
  frame_model.emplace<nn::Dense>(10, 6, rng);
  engine::NeuralClassifier frames(engine::borrow(frame_model), 6, "cnn");
  engine::EnsembleClassifier ensemble(engine::borrow(frames), nullptr,
                                      bayes::ClassMap::darnet_default());
  EXPECT_FALSE(ensemble.has_imu_model());

  Tensor x = Tensor::uniform({4, 10}, 1.0f, rng);
  const Tensor direct = frames.probabilities(x);
  const Tensor fused = ensemble.classify_batch(x, Tensor({4, 1, 1}));
  for (std::size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_FLOAT_EQ(direct[i], fused[i]);
  }
}

TEST(Ensemble, RejectsClassMapMismatch) {
  util::Rng rng(5);
  nn::Sequential frame_model;
  frame_model.emplace<nn::Dense>(10, 4, rng);  // 4 != 6 image classes
  engine::NeuralClassifier frames(engine::borrow(frame_model), 4, "cnn");
  EXPECT_THROW(engine::EnsembleClassifier(engine::borrow(frames), nullptr,
                                          bayes::ClassMap::darnet_default()),
               std::invalid_argument);
}

TEST(Ensemble, FusionImprovesOnConfusedFrameModel) {
  // Frame model: uninformative between classes 0 and 2 (always 50/50).
  // IMU model: reliable. The fitted ensemble must beat the frame model.
  util::Rng rng(6);
  const int n = 300;
  Tensor frame_inputs({n, 2});   // feature: which of {0,2} the CNN "sees"
  Tensor imu_inputs({n, 3});     // one-hot-ish IMU evidence
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    const int y = (i % 2) ? 2 : 0;
    labels[static_cast<std::size_t>(i)] = y;
    frame_inputs.at(i, 0) = 1.0f;  // constant: the CNN learns nothing
    frame_inputs.at(i, 1) = 0.0f;
    for (int c = 0; c < 3; ++c) imu_inputs.at(i, c) = 0.05f;
    const int imu_verdict = rng.chance(0.93) ? (y == 2 ? 2 : 0)
                                             : (y == 2 ? 0 : 2);
    imu_inputs.at(i, imu_verdict) = 0.9f;
  }

  nn::Sequential frame_model;
  frame_model.emplace<nn::Dense>(2, 6, rng);
  engine::NeuralClassifier frames(engine::borrow(frame_model), 6, "cnn");

  // Identity "model" over the IMU evidence distribution.
  struct Identity final : engine::ProbabilisticClassifier {
    Tensor probabilities(const Tensor& inputs) override { return inputs; }
    int num_classes() const override { return 3; }
    std::string describe() const override { return "identity"; }
  } imu_model;

  engine::EnsembleClassifier ensemble(engine::borrow(frames),
                                      engine::borrow(imu_model),
                                      bayes::ClassMap::darnet_default());
  ensemble.fit(frame_inputs, imu_inputs, labels);
  const auto cm = ensemble.evaluate(frame_inputs, imu_inputs, labels);
  EXPECT_GT(cm.accuracy(), 0.85);  // frame model alone would be ~17-50%
}

TEST(Registry, OneToOneMappingEnforced) {
  util::Rng rng(7);
  nn::Sequential m1, m2;
  m1.emplace<nn::Dense>(4, 3, rng);
  m2.emplace<nn::Dense>(4, 3, rng);
  engine::NeuralClassifier c1(engine::borrow(m1), 3, "a");
  engine::NeuralClassifier c2(engine::borrow(m2), 3, "b");

  engine::AnalyticsEngine registry;
  registry.register_stream("camera", engine::borrow(c1));
  EXPECT_TRUE(registry.has_stream("camera"));
  EXPECT_THROW(registry.register_stream("camera", engine::borrow(c2)),
               std::invalid_argument);
  registry.register_stream("imu", engine::borrow(c2));
  EXPECT_EQ(registry.streams(),
            (std::vector<std::string>{"camera", "imu"}));
  EXPECT_EQ(registry.model_for("imu").describe(), "b");
  EXPECT_THROW((void)registry.model_for("lidar"), std::out_of_range);
}

TEST(Architectures, Names) {
  EXPECT_STREQ(engine::architecture_name(ArchitectureKind::kCnnOnly), "CNN");
  EXPECT_STREQ(engine::architecture_name(ArchitectureKind::kCnnSvm),
               "CNN+SVM");
  EXPECT_STREQ(engine::architecture_name(ArchitectureKind::kCnnRnn),
               "CNN+RNN");
}

}  // namespace
