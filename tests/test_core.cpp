// Tests for the core module: dataset assembly (Table 1 proportions),
// splits, the DarNet facade, and session scripting.
#include <gtest/gtest.h>

#include <numeric>

#include "core/darnet.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

TEST(Dataset, ScaledCountsPreservePaperProportions) {
  const auto counts = core::scaled_counts(1.0);
  EXPECT_EQ(counts, core::kPaperFrameCounts);
  const int total = std::accumulate(counts.begin(), counts.end(), 0);
  EXPECT_EQ(total, core::kPaperTotalFrames);

  const auto small = core::scaled_counts(0.01);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_NEAR(small[i], core::kPaperFrameCounts[i] * 0.01, 1.0);
  }
  EXPECT_THROW((void)core::scaled_counts(0.0), std::invalid_argument);
  EXPECT_THROW((void)core::scaled_counts(1.5), std::invalid_argument);
}

TEST(Dataset, GenerationPairsModalitiesConsistently) {
  core::DatasetConfig cfg;
  cfg.scale = 0.004;
  const core::Dataset data = core::generate_dataset(cfg);
  ASSERT_GT(data.size(), 100);
  EXPECT_EQ(data.frames.dim(0), data.size());
  EXPECT_EQ(data.imu_windows.dim(0), data.size());
  EXPECT_EQ(data.imu_windows.dim(1), imu::kWindowSteps);
  EXPECT_EQ(data.imu_windows.dim(2), imu::kImuChannels);

  // Table 1's class->IMU mapping: only talking (1) and texting (2) carry
  // their own IMU class; everything else is IMU-normal.
  for (int i = 0; i < data.size(); ++i) {
    const int img = data.labels[static_cast<std::size_t>(i)];
    const int imu_cls = data.imu_labels[static_cast<std::size_t>(i)];
    if (img == 1) {
      EXPECT_EQ(imu_cls, 1);
    } else if (img == 2) {
      EXPECT_EQ(imu_cls, 2);
    } else {
      EXPECT_EQ(imu_cls, 0);
    }
  }
}

TEST(Dataset, GenerationIsDeterministicPerSeed) {
  core::DatasetConfig cfg;
  cfg.scale = 0.002;
  const core::Dataset a = core::generate_dataset(cfg);
  const core::Dataset b = core::generate_dataset(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.frames.numel(); i += 97) {
    ASSERT_EQ(a.frames[i], b.frames[i]);
  }
}

TEST(Dataset, SplitPartitionsWithoutOverlapOrLoss) {
  core::DatasetConfig cfg;
  cfg.scale = 0.003;
  const core::Dataset data = core::generate_dataset(cfg);
  const auto split = core::split_dataset(data, 0.8, 5);
  EXPECT_EQ(split.train.size() + split.eval.size(), data.size());
  EXPECT_NEAR(static_cast<double>(split.train.size()) / data.size(), 0.8,
              0.02);
  // Class totals must be conserved across the split.
  std::array<int, 6> before{}, after{};
  for (int y : data.labels) ++before[static_cast<std::size_t>(y)];
  for (int y : split.train.labels) ++after[static_cast<std::size_t>(y)];
  for (int y : split.eval.labels) ++after[static_cast<std::size_t>(y)];
  EXPECT_EQ(before, after);
  EXPECT_THROW((void)core::split_dataset(data, 1.0, 5),
               std::invalid_argument);
}

TEST(Dataset, FineDatasetCoversEighteenClasses) {
  vision::RenderConfig render;
  const core::FineDataset fine = core::generate_fine_dataset(3, render, 9);
  EXPECT_EQ(fine.frames.dim(0), 54);
  std::array<int, 18> counts{};
  for (int y : fine.labels) ++counts[static_cast<std::size_t>(y)];
  for (int c : counts) EXPECT_EQ(c, 3);
}

TEST(Dataset, OrientationForMatchesTable1Semantics) {
  util::Rng rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    EXPECT_EQ(imu::imu_class_of(core::orientation_for(
                  vision::DriverClass::kTalking, rng)),
              imu::ImuClass::kTalking);
    EXPECT_EQ(imu::imu_class_of(core::orientation_for(
                  vision::DriverClass::kReaching, rng)),
              imu::ImuClass::kNormal);
  }
}

TEST(DarNet, GuardsAgainstUseBeforeTraining) {
  core::DarNet darnet{core::DarNetConfig{}};
  EXPECT_FALSE(darnet.trained());
  core::DatasetConfig cfg;
  cfg.scale = 0.002;
  const core::Dataset data = core::generate_dataset(cfg);
  EXPECT_THROW((void)darnet.evaluate(data, engine::ArchitectureKind::kCnnRnn),
               std::logic_error);
  EXPECT_THROW(
      (void)darnet.classify(data.frames, data.imu_windows,
                            engine::ArchitectureKind::kCnnOnly),
      std::logic_error);
}

TEST(DarNet, TrainThenEvaluateEndToEnd) {
  // Smoke-scale end-to-end training: must produce normalised distributions
  // and beat chance (1/6) by a clear margin on every architecture.
  core::DatasetConfig data_cfg;
  data_cfg.scale = 0.008;
  const core::Dataset data = core::generate_dataset(data_cfg);
  const auto split = core::split_dataset(data, 0.8, 3);

  core::DarNetConfig cfg;
  cfg.cnn_epochs = 5;
  cfg.rnn_epochs = 3;
  core::DarNet darnet{cfg};
  const auto report = darnet.train(split.train);
  EXPECT_TRUE(darnet.trained());
  EXPECT_GT(report.train_seconds, 0.0);

  // At this smoke scale the CNN is deliberately undertrained; it must
  // still beat chance (1/6) and the IMU-backed ensembles must beat it by
  // a wide margin (the paper's central claim).
  const double cnn_acc =
      darnet.evaluate(split.eval, engine::ArchitectureKind::kCnnOnly)
          .accuracy();
  EXPECT_GT(cnn_acc, 0.22);
  for (auto kind : {engine::ArchitectureKind::kCnnSvm,
                    engine::ArchitectureKind::kCnnRnn}) {
    const auto cm = darnet.evaluate(split.eval, kind);
    EXPECT_GT(cm.accuracy(), 0.45) << engine::architecture_name(kind);
  }

  const Tensor p = darnet.classify(split.eval.frames, split.eval.imu_windows,
                                   engine::ArchitectureKind::kCnnRnn);
  for (int i = 0; i < p.dim(0); ++i) {
    double sum = 0.0;
    for (int c = 0; c < 6; ++c) sum += p.at(i, c);
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(SessionScript, BehaviourLookupAndDuration) {
  core::SessionScript script;
  script.segments = {{vision::DriverClass::kNormal, 10.0},
                     {vision::DriverClass::kTexting, 5.0}};
  EXPECT_DOUBLE_EQ(script.total_duration(), 15.0);
  EXPECT_EQ(script.behaviour_at(3.0), vision::DriverClass::kNormal);
  EXPECT_EQ(script.behaviour_at(12.0), vision::DriverClass::kTexting);
  EXPECT_EQ(script.behaviour_at(99.0), vision::DriverClass::kTexting);
}

TEST(SessionScript, PaperScriptCoversAllClassesPerRepeat) {
  const auto script = core::SessionScript::paper_script(2, 15.0);
  EXPECT_EQ(script.segments.size(), 12u);
  EXPECT_DOUBLE_EQ(script.total_duration(), 180.0);
  EXPECT_EQ(script.segments[6].behaviour, vision::DriverClass::kNormal);
}

}  // namespace
