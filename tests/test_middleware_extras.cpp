// Tests for the processing-placement decision and session record/replay.
#include <gtest/gtest.h>

#include <cstdio>

#include "collection/agent.hpp"
#include "collection/controller.hpp"
#include "collection/processing.hpp"
#include "collection/recording.hpp"

namespace {

using namespace darnet::collection;

TEST(NetworkEstimator, EwmaSmoothsMeasurements) {
  NetworkEstimator est(0.5);
  EXPECT_FALSE(est.has_estimate());
  est.observe(0.1, 1e6);
  EXPECT_DOUBLE_EQ(est.rtt_s(), 0.1);
  est.observe(0.3, 3e6);
  EXPECT_DOUBLE_EQ(est.rtt_s(), 0.2);       // midway at alpha 0.5
  EXPECT_DOUBLE_EQ(est.bandwidth_bps(), 2e6);
  EXPECT_THROW(est.observe(-1.0, 1e6), std::invalid_argument);
  EXPECT_THROW(NetworkEstimator(0.0), std::invalid_argument);
}

TEST(ProcessingDecision, GoodNetworkGoesRemote) {
  // Server is 20x faster; a fast link makes remote the clear winner.
  ComputeProfile profile;
  profile.local_inference_s = 0.080;
  profile.remote_inference_s = 0.004;
  profile.remote_payload_bytes = 2305;
  NetworkEstimator net;
  net.observe(0.010, 8e6);  // 10 ms RTT, 8 Mb/s
  ProcessingDecision decision(profile);
  EXPECT_EQ(decision.decide(net), Placement::kRemote);
  const double remote = predicted_latency_s(Placement::kRemote, profile, net);
  EXPECT_LT(remote, profile.local_inference_s);
}

TEST(ProcessingDecision, PoorNetworkStaysLocal) {
  ComputeProfile profile;
  NetworkEstimator net;
  net.observe(0.500, 5e4);  // 500 ms RTT, 50 kb/s: shipping is hopeless
  ProcessingDecision decision(profile);
  EXPECT_EQ(decision.decide(net), Placement::kLocal);
}

TEST(ProcessingDecision, NoEstimateMeansLocal) {
  ProcessingDecision decision(ComputeProfile{});
  NetworkEstimator net;
  EXPECT_EQ(decision.decide(net), Placement::kLocal);
  EXPECT_THROW(
      (void)predicted_latency_s(Placement::kRemote, ComputeProfile{}, net),
      std::logic_error);
}

TEST(ProcessingDecision, HysteresisPreventsFlapping) {
  // Construct a network where remote is only marginally better: the
  // policy must NOT switch away from local.
  ComputeProfile profile;
  profile.local_inference_s = 0.050;
  profile.remote_inference_s = 0.010;
  profile.remote_payload_bytes = 2305;
  NetworkEstimator net;
  // remote = rtt + transfer + 0.010; choose rtt so remote ~= 0.045.
  net.observe(0.030, 4e6);  // transfer ~4.6 ms -> remote ~0.0446
  ProcessingDecision decision(profile, /*switch_margin=*/0.2);
  EXPECT_EQ(decision.decide(net), Placement::kLocal);  // within margin

  // A clearly better network does flip it.
  NetworkEstimator fast;
  fast.observe(0.004, 40e6);
  EXPECT_EQ(decision.decide(fast), Placement::kRemote);
  // And a marginally-worse-than-local network does not flip it back.
  EXPECT_EQ(decision.decide(net), Placement::kRemote);
}

TEST(ProcessingDecision, EstimatorIngestsLinkStats) {
  Simulation sim;
  LinkConfig cfg;
  cfg.base_latency_s = 0.02;
  cfg.jitter_s = 0.0;
  VirtualLink link(sim, cfg, 5);
  link.set_receiver([](std::vector<std::uint8_t>) {});
  link.send({1, 2, 3, 4});
  sim.run_until(1.0);

  NetworkEstimator est;
  est.observe_link(link);
  ASSERT_TRUE(est.has_estimate());
  EXPECT_NEAR(est.rtt_s(), 0.04, 0.01);
  EXPECT_DOUBLE_EQ(est.bandwidth_bps(), cfg.bandwidth_bps);
}

TEST(Recording, AppendValidatesOrderingAndPayload) {
  SessionRecording rec;
  rec.append(1.0, {1});
  EXPECT_THROW(rec.append(0.5, {2}), std::invalid_argument);
  EXPECT_THROW(rec.append(2.0, {}), std::invalid_argument);
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.duration(), 1.0);
}

TEST(Recording, DrainDeliversEverythingInOrder) {
  SessionRecording rec;
  DataBatch batch;
  batch.agent_id = 1;
  batch.readings.push_back({"s", 0.5, {1.0f}, 0});
  rec.append(0.1, encode(RegisterMessage{1, {"s"}}));
  rec.append(0.6, encode(batch));

  Simulation sim;
  Controller controller(sim, {});
  rec.drain_into(controller);
  EXPECT_EQ(controller.tuples_received(), 1u);
  EXPECT_EQ(controller.streams_of(1), (std::vector<std::string>{"s"}));
}

TEST(Recording, ReplayPreservesArrivalTiming) {
  SessionRecording rec;
  DataBatch batch;
  batch.agent_id = 1;
  batch.readings.push_back({"s", 1.0, {1.0f}, 0});
  rec.append(2.5, encode(batch));

  Simulation sim;
  Controller controller(sim, {});
  rec.replay_into(sim, controller);
  sim.run_until(2.0);
  EXPECT_EQ(controller.tuples_received(), 0u);  // not yet
  sim.run_until(3.0);
  EXPECT_EQ(controller.tuples_received(), 1u);
}

TEST(Recording, SerializationAndFileRoundTrip) {
  SessionRecording rec;
  rec.append(0.5, {1, 2, 3});
  rec.append(1.5, std::vector<std::uint8_t>(300, 7));

  const std::string path = "/tmp/darnet_test_recording.bin";
  rec.save(path);
  const SessionRecording loaded = SessionRecording::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.messages()[0].arrival_time, 0.5);
  EXPECT_EQ(loaded.messages()[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(loaded.messages()[1].payload.size(), 300u);
  std::remove(path.c_str());
}

TEST(Recording, TapRecordsWhileDelivering) {
  Simulation sim;
  Controller controller(sim, {});
  SessionRecording rec;
  RecordingTap tap(sim, controller, rec);

  sim.schedule(1.0, [&] { tap(encode(RegisterMessage{3, {"x"}})); });
  sim.run_until(2.0);
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.messages()[0].arrival_time, 1.0);
  EXPECT_EQ(controller.streams_of(3), (std::vector<std::string>{"x"}));
}

}  // namespace
