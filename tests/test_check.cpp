// Tests for darnet::check -- the checked-build invariant layer.
//
// Covers four things:
//  1. Macro semantics: conditions are evaluated exactly when DARNET_CHECKED
//     is on, and never in unchecked builds (zero-cost proof).
//  2. The always-on utilities: finite scanning and ShardWriteTracker,
//     including their abort paths (death tests).
//  3. Checked-build integration: OOB tensor indexing, Sequential
//     shape-contract verification with layer attribution, and NaN
//     finite-guard trips abort with a matchable diagnostic.
//  4. Parity: the numerical results of the library are bit-identical
//     whether or not the invariant layer is compiled in. The goldens below
//     were recorded from an unchecked Release build; every matrix leg
//     (checked, asan, ubsan, tsan) must reproduce them exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "check/check.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "parallel/pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using darnet::nn::Dense;
using darnet::nn::ReLU;
using darnet::nn::Sequential;
using darnet::nn::ShapeContract;
using darnet::tensor::Tensor;

namespace check = darnet::check;

// ---------------------------------------------------------------------------
// 1. Macro semantics.

TEST(CheckMacros, ConditionEvaluationMatchesBuildMode) {
  int calls = 0;
  auto touch = [&calls]() {
    ++calls;
    return true;
  };
  DARNET_CHECK(touch());
  DARNET_CHECK_MSG(touch(), "never shown");
  if (check::enabled()) {
    // Checked builds evaluate the condition (and pass).
    EXPECT_EQ(calls, 2);
  } else {
    // Unchecked builds compile the condition into an unevaluated sizeof:
    // zero side effects, zero cost.
    EXPECT_EQ(calls, 0);
  }
}

TEST(CheckMacros, EnabledMatchesCompileFlag) {
#ifdef DARNET_CHECKED
  EXPECT_TRUE(check::enabled());
#else
  EXPECT_FALSE(check::enabled());
#endif
}

// ---------------------------------------------------------------------------
// 2. Always-on utilities.

TEST(FiniteScan, DetectsNanAndInf) {
  const std::vector<float> clean{0.0f, -1.5f, 3.25f};
  EXPECT_TRUE(check::all_finite(clean));
  EXPECT_FALSE(check::first_nonfinite(clean).has_value());

  std::vector<float> bad = clean;
  bad.push_back(std::numeric_limits<float>::quiet_NaN());
  EXPECT_FALSE(check::all_finite(bad));
  ASSERT_TRUE(check::first_nonfinite(bad).has_value());
  EXPECT_EQ(*check::first_nonfinite(bad), 3u);

  bad[3] = -std::numeric_limits<float>::infinity();
  EXPECT_FALSE(check::all_finite(bad));
  EXPECT_EQ(*check::first_nonfinite(bad), 3u);
}

TEST(ShardWriteTracker, AcceptsDisjointShardsAndReportsCoverage) {
  check::ShardWriteTracker tracker("test rows");
  tracker.record(4, 8);
  tracker.record(0, 4);
  tracker.record(8, 10);
  EXPECT_EQ(tracker.covered(), 10);
  tracker.expect_exact_cover(0, 10);  // must not abort
}

TEST(ShardWriteTrackerDeathTest, AbortsOnOverlappingWriters) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  check::ShardWriteTracker tracker("overlap rows");
  tracker.record(0, 4);
  EXPECT_DEATH(tracker.record(2, 6),
               "darnet::check failure.*overlap rows.*\\[2, 6\\).*overlaps."
               "*\\[0, 4\\)");
}

TEST(ShardWriteTrackerDeathTest, AbortsOnIncompleteCover) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  check::ShardWriteTracker tracker("gap rows");
  tracker.record(0, 4);
  tracker.record(6, 8);
  EXPECT_DEATH(tracker.expect_exact_cover(0, 8),
               "darnet::check failure.*do not exactly tile");
}

TEST(ShardWriteTrackerDeathTest, CatchesOverlapFromParallelForWriters) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A deliberately broken parallel writer: every chunk claims the same
  // output range. The tracker must abort no matter which thread trips it.
  // The child forces a real pool so the range actually splits into
  // multiple chunks even on single-core CI machines.
  auto broken_kernel = [] {
    darnet::parallel::set_thread_count(2);
    check::ShardWriteTracker tracker("parallel_for writer rows");
    std::vector<float> out(64, 0.0f);
    darnet::parallel::parallel_for(
        0, 64, /*grain=*/1, [&](std::int64_t, std::int64_t) {
          tracker.record(0, 8);  // overlapping on the second chunk
          out[0] += 1.0f;
        });
  };
  EXPECT_DEATH(broken_kernel(), "darnet::check failure.*overlaps");
}

TEST(FiniteGuardDeathTest, AssertAllFiniteAbortsWithAttribution) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<float> values{1.0f, 2.0f,
                            std::numeric_limits<float>::quiet_NaN(), 4.0f};
  EXPECT_DEATH(
      check::assert_all_finite(values, "activations", "unit-test buffer"),
      "darnet::check failure.*non-finite value.*flat index 2 of 4.*"
      "unit-test buffer");
}

// ---------------------------------------------------------------------------
// 3. Checked-build integration (death tests only exist when the library
//    was compiled with the invariants).

#ifdef DARNET_CHECKED

TEST(CheckedBuildDeathTest, TensorFlatIndexOutOfRangeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Tensor t({2, 2});
  EXPECT_DEATH(t[4] = 1.0f,
               "darnet::check failure.*Tensor flat index out of range");
}

/// Declares one output shape but produces another: only the boundary
/// verification in Sequential can catch this class of bug.
class LyingLayer final : public darnet::nn::Layer {
 public:
  Tensor forward(const Tensor& input, bool) override {
    return Tensor({input.dim(0), 7});  // contract says width 3
  }
  Tensor backward(const Tensor& grad_output) override { return grad_output; }
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& in) const override {
    return ShapeContract::ok({in[0], 3});
  }
  [[nodiscard]] std::string name() const override { return "LyingLayer"; }
};

TEST(CheckedBuildDeathTest, SequentialCatchesContractViolationWithLayerName) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Sequential model;
  model.emplace<LyingLayer>();
  Tensor x({2, 5});
  EXPECT_DEATH(
      model.forward(x, /*training=*/false),
      "darnet::check failure.*layer #0 \\(LyingLayer\\).*declared output "
      "\\[2, 3\\] but produced \\[2, 7\\]");
}

/// Emits a NaN mid-activation; the per-boundary finite guard must trip.
class NanLayer final : public darnet::nn::Layer {
 public:
  Tensor forward(const Tensor& input, bool) override {
    Tensor out = input;
    out[1] = std::numeric_limits<float>::quiet_NaN();
    return out;
  }
  Tensor backward(const Tensor& grad_output) override { return grad_output; }
  [[nodiscard]] std::string name() const override { return "NanLayer"; }
};

TEST(CheckedBuildDeathTest, SequentialFiniteGuardTripsOnInjectedNan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Sequential model;
  model.emplace<NanLayer>();
  Tensor x({1, 4});
  EXPECT_DEATH(model.forward(x, /*training=*/false),
               "darnet::check failure.*non-finite value.*NanLayer");
}

#endif  // DARNET_CHECKED

// ---------------------------------------------------------------------------
// Shape contracts are pure declarations; they must agree across build
// modes, so these run everywhere.

TEST(ShapeContracts, SequentialFoldsContractsFrontToBack) {
  darnet::util::Rng rng(7);
  Sequential model;
  model.emplace<Dense>(4, 3, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(3, 2, rng);

  const ShapeContract ok = model.shape_contract({5, 4});
  ASSERT_EQ(ok.kind, ShapeContract::Kind::kOk);
  EXPECT_EQ(ok.output_shape, (std::vector<int>{5, 2}));

  const ShapeContract bad = model.shape_contract({5, 9});
  ASSERT_EQ(bad.kind, ShapeContract::Kind::kBad);
  EXPECT_NE(bad.error.find("layer #0"), std::string::npos);
  EXPECT_NE(bad.error.find("Dense"), std::string::npos);
}

TEST(ShapeContracts, DefaultDeclines) {
  class Opaque final : public darnet::nn::Layer {
   public:
    Tensor forward(const Tensor& input, bool) override { return input; }
    Tensor backward(const Tensor& g) override { return g; }
    [[nodiscard]] std::string name() const override { return "Opaque"; }
  };
  Sequential model;
  model.add(std::make_unique<Opaque>());
  EXPECT_EQ(model.shape_contract({1, 2}).kind,
            ShapeContract::Kind::kUnchecked);
}

// ---------------------------------------------------------------------------
// 4. Checked/unchecked parity: bit-identical numerics in every build mode.

/// FNV-1a over the raw bit patterns: any single-ULP difference between
/// build modes changes the hash.
std::uint64_t bit_hash(std::span<const float> values) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const float f : values) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof bits);
    for (int b = 0; b < 4; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

TEST(CheckedParity, MatmulBitsMatchGolden) {
  darnet::util::Rng rng(123);
  const Tensor a = Tensor::he_normal({48, 32}, 32, rng);
  const Tensor b = Tensor::he_normal({32, 24}, 32, rng);
  const Tensor c = darnet::tensor::matmul(a, b);
  EXPECT_EQ(bit_hash(c.flat()), 0x391700a975ec146dULL)
      << "matmul result bits differ from the recorded unchecked-build "
         "golden";
}

TEST(CheckedParity, SmallConvNetForwardBitsMatchGolden) {
  darnet::util::Rng rng(321);
  Sequential model;
  model.emplace<darnet::nn::Conv2D>(2, 3, 3, 1, rng);
  model.emplace<ReLU>();
  const Tensor x = Tensor::he_normal({2, 2, 8, 8}, 2 * 8 * 8, rng);
  const Tensor y = model.forward(x, /*training=*/false);
  EXPECT_EQ(bit_hash(y.flat()), 0xecfd84869c9ccb3aULL)
      << "conv forward bits differ from the recorded unchecked-build "
         "golden";
}

}  // namespace
