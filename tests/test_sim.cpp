// Fleet-simulator suite: determinism, virtual-link invariants, device
// clocks, the serve::TimeSource regression, and a 100-vehicle smoke run.
// See docs/SIMULATION.md for the contracts these pin down.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bayes/combiner.hpp"
#include "engine/engine.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "obs/obs.hpp"
#include "serve/serve.hpp"
#include "sim/fleet.hpp"
#include "sim/link.hpp"
#include "sim/queue.hpp"
#include "sim/scenario.hpp"
#include "sim/vehicle.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace darnet;

// ---------------------------------------------------------------- queue

TEST(SimQueue, StableTieBreakAndHorizon) {
  sim::Simulation sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(1.0, [&] { order.push_back(2); });  // same instant: FIFO
  sim.schedule(0.5, [&] { order.push_back(0); });
  sim.schedule(5.0, [&] { order.push_back(9); });  // past the horizon
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.executed(), 3u);
  EXPECT_EQ(sim.pending(), 1u);  // the 5.0 event stays queued
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

// ---------------------------------------------------------------- clock

TEST(SimClock, DriftAccumulatesAndSyncZeroesError) {
  sim::SimClock clock(500.0, 0.002);  // +500 ppm, 2 ms ahead
  EXPECT_NEAR(clock.error(0.0), 0.002, 1e-12);
  // After 100 true seconds: 100 * 500e-6 = 50 ms of drift + the offset.
  EXPECT_NEAR(clock.error(100.0), 0.052, 1e-9);
  // A sync slams read(t) to the master's time; error vanishes at t...
  clock.set(100.0, 100.0);
  EXPECT_NEAR(clock.error(100.0), 0.0, 1e-12);
  // ...but the rate error is still there and re-accumulates.
  EXPECT_NEAR(clock.error(110.0), 10.0 * 500e-6, 1e-9);
}

TEST(SimClock, TimePointRoundTrip) {
  const double t = 1234.567891;
  EXPECT_NEAR(sim::to_sim_time(sim::to_time_point(t)), t, 1e-8);
  EXPECT_EQ(sim::to_time_point(0.0).time_since_epoch().count(), 0);
}

// ----------------------------------------------------------------- link

TEST(VirtualLink, LossyLinkConservesMessages) {
  sim::Simulation sim;
  sim::LinkConfig config;
  config.loss_rate = 0.3;
  config.jitter_s = 0.004;
  sim::VirtualLink link(sim, config, 7);

  std::uint64_t delivered = 0;
  bool corrupted = false;
  link.set_receiver([&](std::vector<std::uint8_t> payload) {
    ++delivered;
    if (payload.size() != 3 || payload[0] != 0xAB) corrupted = true;
  });
  const int kSends = 500;
  for (int i = 0; i < kSends; ++i) {
    sim.schedule(0.01 * i, [&] { link.send({0xAB, 0xCD, 0xEF}); });
  }
  sim.run_until(100.0);

  const sim::LinkStats& stats = link.stats();
  EXPECT_EQ(stats.messages_sent, static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(stats.messages_sent - stats.messages_dropped, delivered);
  EXPECT_GT(stats.messages_dropped, 0u);  // 0.3 loss over 500 sends
  EXPECT_LT(stats.messages_dropped, static_cast<std::uint64_t>(kSends));
  EXPECT_FALSE(corrupted);
  EXPECT_EQ(stats.bytes_sent, static_cast<std::uint64_t>(kSends) * 3u);
}

TEST(VirtualLink, ReorderHoldBackInvertsDeliveryOrder) {
  sim::Simulation sim;
  sim::LinkConfig config;
  config.jitter_s = 0.0;
  config.reorder_rate = 0.5;
  config.reorder_delay_s = 0.2;  // >> the 0.01 s send spacing below
  sim::VirtualLink link(sim, config, 11);
  link.set_receiver([](std::vector<std::uint8_t>) {});
  for (int i = 0; i < 200; ++i) {
    sim.schedule(0.01 * i, [&] { link.send({1}); });
  }
  sim.run_until(100.0);
  EXPECT_GT(link.stats().messages_reordered, 0u);
  EXPECT_GT(link.stats().messages_out_of_order, 0u);
  EXPECT_EQ(link.stats().messages_dropped, 0u);
}

TEST(VirtualLink, SameSeedSameDeliverySchedule) {
  const auto run = [](std::uint64_t seed) {
    sim::Simulation sim;
    sim::LinkConfig config;
    config.loss_rate = 0.1;
    config.jitter_s = 0.01;
    sim::VirtualLink link(sim, config, seed);
    std::vector<double> times;
    link.set_receiver(
        [&](std::vector<std::uint8_t>) { times.push_back(sim.now()); });
    for (int i = 0; i < 100; ++i) {
      sim.schedule(0.02 * i, [&] { link.send({42}); });
    }
    sim.run_until(50.0);
    return times;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

// ----------------------------------------------------- load curve shapes

TEST(LoadCurve, BurstAndDiurnalShapes) {
  sim::LoadCurve burst;
  burst.kind = sim::LoadCurve::Kind::kBurst;
  burst.burst_factor = 10.0;
  burst.burst_start_s = 4.0;
  burst.burst_end_s = 7.0;
  EXPECT_DOUBLE_EQ(burst.factor(3.9), 1.0);
  EXPECT_DOUBLE_EQ(burst.factor(5.0), 10.0);
  EXPECT_DOUBLE_EQ(burst.factor(7.0), 1.0);  // window is half-open

  sim::LoadCurve diurnal;
  diurnal.kind = sim::LoadCurve::Kind::kDiurnal;
  diurnal.diurnal_min = 0.25;
  diurnal.diurnal_max = 2.5;
  diurnal.diurnal_period_s = 10.0;
  EXPECT_NEAR(diurnal.factor(0.0), 0.25, 1e-9);   // trough at t=0
  EXPECT_NEAR(diurnal.factor(5.0), 2.5, 1e-9);    // peak at half-period
  EXPECT_NEAR(diurnal.factor(10.0), 0.25, 1e-9);  // back to the trough
}

// ------------------------------------------- serve::TimeSource regression

class FakeTimeSource final : public serve::TimeSource {
 public:
  [[nodiscard]] std::chrono::steady_clock::time_point now()
      const noexcept override {
    return tp_;
  }
  void set(double sim_seconds) { tp_ = sim::to_time_point(sim_seconds); }

 private:
  std::chrono::steady_clock::time_point tp_{sim::to_time_point(1.0)};
};

std::shared_ptr<engine::EnsembleClassifier> tiny_ensemble() {
  util::Rng rng(5);
  auto model = std::make_shared<nn::Sequential>();
  model->emplace<nn::Dense>(8, 6, rng);
  auto frames =
      std::make_shared<engine::NeuralClassifier>(model, 6, "tiny");
  return std::make_shared<engine::EnsembleClassifier>(
      frames, nullptr, bayes::ClassMap::darnet_default());
}

// The server must read the injected clock for deadline triage -- never
// std::chrono::steady_clock directly. The fake clock sits at 1 s past
// epoch while the real steady clock is far beyond that, so a deadline a
// second into *virtual* time discriminates: one hidden wall-clock read
// and this request would be triaged as hours past due and time out.
TEST(ServeTimeSource, DeadlinesAreJudgedOnTheInjectedClock) {
  auto time = std::make_shared<FakeTimeSource>();
  time->set(1.0);
  ASSERT_GT(std::chrono::steady_clock::now().time_since_epoch().count(),
            sim::to_time_point(2.0).time_since_epoch().count())
      << "host steady clock too young for this regression to discriminate";

  serve::ShardConfig config;
  config.max_delay_us = 0;
  config.time_source = time;
  serve::Server server(tiny_ensemble(), config);

  util::Rng rng(9);
  engine::ClassifyRequest request;
  request.session_id = 1;
  request.frame = tensor::Tensor::uniform({1, 8}, 1.0f, rng);
  request.deadline = sim::to_time_point(2.0);  // 1 virtual second away

  auto sub = server.submit(request);
  ASSERT_EQ(sub.admit, serve::Admit::kAccepted);
  EXPECT_EQ(sub.response.get().status, serve::Status::kOk);

  // And a deadline in the virtual past must time out, served by the same
  // injected clock.
  request.deadline = sim::to_time_point(0.5);
  auto late = server.submit(request);
  ASSERT_EQ(late.admit, serve::Admit::kAccepted);
  EXPECT_EQ(late.response.get().status, serve::Status::kTimeout);
  server.drain();
}

TEST(ServeTimeSource, ForceDegradedOverridesHysteresis) {
  serve::ShardConfig config;
  config.max_delay_us = 0;
  auto ensemble = tiny_ensemble();
  serve::Server server(ensemble, config);
  EXPECT_FALSE(server.degraded_mode());
  server.force_degraded(true);
  EXPECT_TRUE(server.degraded_mode());
  server.force_degraded(std::nullopt);
  EXPECT_FALSE(server.degraded_mode());  // hysteresis resumes control
  server.drain();
}

// ------------------------------------------------------ scenario catalogue

TEST(Scenario, CatalogueIsCompleteAndFindable) {
  const std::vector<std::string> expected = {
      "steady",      "burst",         "diurnal",          "churn",
      "clock_storm", "degraded_flap", "overload_brownout"};
  ASSERT_EQ(sim::scenarios().size(), expected.size());
  for (const std::string& name : expected) {
    const sim::Scenario* scenario = sim::find_scenario(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_EQ(scenario->name, name);
    EXPECT_FALSE(scenario->stresses.empty()) << name;
    const sim::ScenarioConfig config = scenario->make(3, 1);
    EXPECT_EQ(config.name, name);
    EXPECT_EQ(config.sessions, 3);
  }
  EXPECT_EQ(sim::find_scenario("no-such-scenario"), nullptr);
}

TEST(Scenario, SetDurationRescalesTimedFeatures) {
  sim::ScenarioConfig config = sim::find_scenario("burst")->make(2, 1);
  const double ratio = 5.0 / config.duration_s;
  const double start = config.load.burst_start_s;
  const double end = config.load.burst_end_s;
  sim::set_duration(config, 5.0);
  EXPECT_DOUBLE_EQ(config.duration_s, 5.0);
  EXPECT_DOUBLE_EQ(config.load.burst_start_s, start * ratio);
  EXPECT_DOUBLE_EQ(config.load.burst_end_s, end * ratio);
  EXPECT_THROW(sim::set_duration(config, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------ fleet runs

TEST(FleetSimulator, SameSeedBitIdenticalExport) {
  const auto run = [](std::uint64_t seed) {
    sim::ScenarioConfig config = sim::find_scenario("steady")->make(25, seed);
    sim::set_duration(config, 3.0);
    sim::FleetSimulator fleet(config);
    fleet.run();
    return fleet.metrics_json();
  };
  const std::string a = run(42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run(42));   // the determinism contract, bit-for-bit
  EXPECT_NE(a, run(43));   // and the seed actually reaches the run
}

TEST(FleetSimulator, HundredVehicleSmoke) {
  sim::ScenarioConfig config = sim::find_scenario("steady")->make(100, 42);
  sim::set_duration(config, 4.0);
  sim::FleetSimulator fleet(config);
  fleet.run();

  const sim::FleetReport& report = fleet.report();
  EXPECT_GT(report.events_executed, 0u);
  EXPECT_GT(report.requests, 0u);
  EXPECT_GT(report.served, 0u);
  EXPECT_EQ(report.requests,
            report.served + report.timeouts + report.shed + report.rejected);
  EXPECT_GT(report.messages_sent, 0u);
  EXPECT_GT(report.latency_p50_ms, 0.0);
  EXPECT_GE(report.latency_p99_ms, report.latency_p50_ms);
  EXPECT_GE(report.latency_max_ms, report.latency_p99_ms);
  // Steady-state: clean links, mild clocks.
  EXPECT_EQ(report.messages_dropped, 0u);
  EXPECT_LT(report.clock_max_abs_error_ms, 50.0);
  EXPECT_GT(report.clock_probes, 0u);

  std::uint64_t verdict_total = 0;
  for (const std::uint64_t count : report.verdicts) verdict_total += count;
  EXPECT_EQ(verdict_total, report.served);

  // The run flows through the production obs registry like the real tier.
  if (obs::enabled()) {
    const std::string json = obs::registry().to_json();
    EXPECT_NE(json.find("sim/"), std::string::npos);
    EXPECT_NE(json.find("serve/"), std::string::npos);
  }
}

TEST(FleetSimulator, DegradedFlapTogglesTheServePath) {
  sim::ScenarioConfig config =
      sim::find_scenario("degraded_flap")->make(10, 42);
  sim::set_duration(config, 4.0);
  sim::FleetSimulator fleet(config);
  fleet.run();
  const sim::FleetReport& report = fleet.report();
  ASSERT_GT(report.served, 0u);
  EXPECT_GT(report.degraded, 0u);             // the flap engaged
  EXPECT_LT(report.degraded, report.served);  // ...and disengaged
}

TEST(FleetSimulator, OverloadBrownoutClipsAtTheQuotaFloor) {
  sim::ScenarioConfig config =
      sim::find_scenario("overload_brownout")->make(20, 42);
  sim::set_duration(config, 3.0);
  sim::FleetSimulator fleet(config);
  fleet.run();

  const sim::FleetReport& report = fleet.report();
  ASSERT_GT(report.requests, 0u);
  // At 40 Hz the first inferences fire before any frame is delivered, so
  // skipped requests are part of the ledger here.
  EXPECT_EQ(report.requests, report.served + report.timeouts + report.shed +
                                 report.rejected + report.skipped);
  // Brown-out, not black-out: the bulk of the 10x offered load is clipped
  // at the router door...
  EXPECT_GT(report.rejected, report.served);
  EXPECT_EQ(report.quota_rejected, report.rejected);
  // ...while the admitted floor keeps flowing. The quota refills at the
  // nominal 1x aggregate; demand saturates the buckets, so served traffic
  // must reach at least half the nominal rate over the run.
  const double floor = 0.5 * config.tenant_refill_per_s *
                       static_cast<double>(config.tenants) *
                       config.duration_s;
  EXPECT_GE(static_cast<double>(report.served), floor);
  // Both shards took traffic (consistent hashing spread 20 sessions).
  const serve::Router::Stats stats = fleet.router().stats();
  ASSERT_EQ(stats.per_shard.size(), 2u);
  EXPECT_GT(stats.per_shard[0].batches, 0u);
  EXPECT_GT(stats.per_shard[1].batches, 0u);
  EXPECT_EQ(stats.quota_rejected, report.quota_rejected);
}

TEST(FleetSimulator, BrownoutSameSeedBitIdenticalExport) {
  const auto run = [] {
    sim::ScenarioConfig config =
        sim::find_scenario("overload_brownout")->make(10, 7);
    sim::set_duration(config, 2.0);
    sim::FleetSimulator fleet(config);
    fleet.run();
    return fleet.metrics_json();
  };
  const std::string a = run();
  EXPECT_NE(a.find("\"quota_rejected\""), std::string::npos);
  EXPECT_EQ(a, run());  // routing + quotas stay on the determinism contract
}

TEST(FleetSimulator, ClockStormKeepsErrorBoundedBySync) {
  sim::ScenarioConfig config =
      sim::find_scenario("clock_storm")->make(10, 42);
  sim::set_duration(config, 6.0);
  sim::FleetSimulator fleet(config);
  fleet.run();
  const sim::FleetReport& report = fleet.report();
  EXPECT_GT(report.clock_probes, 0u);
  EXPECT_GT(report.clock_mean_abs_error_ms, 0.0);
  // 2000 ppm + 50 ms initial offset, sync every 10 s: error stays within
  // offset + drift-per-sync-interval, far under an unsynced free run.
  EXPECT_LT(report.clock_max_abs_error_ms, 100.0);
  EXPECT_GT(report.out_of_sequence, 0u);  // reordering reached the tap
}

}  // namespace
