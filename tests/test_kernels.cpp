// SIMD kernel dispatch + tolerance parity suite (DESIGN.md "Kernel
// architecture").
//
// Every golden hash elsewhere in the tree is pinned to the scalar
// reference kernels; this suite is where the vector kernels (AVX2+FMA,
// AVX-512F) earn their keep. For each ISA the machine supports it runs
// the same workloads through kernels::set_isa() and holds the results to
// a relative tolerance of the scalar answer -- FMA and lane-split
// accumulation reorder the floating-point sums, so bit equality is not
// the contract here; *thread-count* bit equality still is, per ISA.
//
// Shapes are deliberately awkward: 1x1, primes, and widths straddling
// every tile boundary in the kernels (vector width, half, quarter,
// scalar column tail; conv_min_ow GEMM fallback; mid-panel GEMM rows).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "parallel/pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using darnet::tensor::Tensor;
namespace kernels = darnet::tensor::kernels;
namespace nn = darnet::nn;
namespace ops = darnet::tensor;
using darnet::util::Rng;

/// The vector ISAs this machine can actually run (may be empty -- the
/// suite then degenerates to scalar self-checks and still passes).
std::vector<kernels::Isa> supported_vector_isas() {
  std::vector<kernels::Isa> out;
  for (kernels::Isa isa : {kernels::Isa::kAvx2, kernels::Isa::kAvx512}) {
    if (kernels::isa_supported(isa)) out.push_back(isa);
  }
  return out;
}

/// RAII: restore the scalar golden ISA and the entry thread count no
/// matter how the test exits, so later suites see the pinned config.
struct IsaGuard {
  int entry_threads{darnet::parallel::thread_count()};
  ~IsaGuard() {
    kernels::set_isa(kernels::Isa::kScalar);
    darnet::parallel::set_thread_count(entry_threads);
  }
};

void expect_close(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_TRUE(got.same_shape(want)) << what;
  for (std::size_t i = 0; i < want.numel(); ++i) {
    const float a = got[i];
    const float b = want[i];
    const float tol =
        1e-4F * std::max(1.0F, std::max(std::fabs(a), std::fabs(b)));
    ASSERT_NEAR(a, b, tol) << what << " at flat index " << i;
  }
}

TEST(Kernels, ScalarAlwaysSupportedAndHasNoTable) {
  IsaGuard guard;
  EXPECT_TRUE(kernels::isa_supported(kernels::Isa::kScalar));
  EXPECT_EQ(kernels::set_isa(kernels::Isa::kScalar), kernels::Isa::kScalar);
  EXPECT_EQ(kernels::active(), kernels::Isa::kScalar);
  EXPECT_EQ(kernels::active_kernels(), nullptr);
}

TEST(Kernels, SetIsaFallsBackToSupported) {
  IsaGuard guard;
  // Requesting any ISA must land on a supported one -- never an illegal
  // instruction later. On AVX-512 hardware this is identity; elsewhere
  // it degrades (avx512 -> avx2 -> scalar).
  const kernels::Isa got = kernels::set_isa(kernels::Isa::kAvx512);
  EXPECT_TRUE(kernels::isa_supported(got));
  EXPECT_EQ(kernels::active(), got);
  if (got != kernels::Isa::kScalar) {
    const kernels::Kernels* kv = kernels::active_kernels();
    ASSERT_NE(kv, nullptr);
    EXPECT_GE(kv->conv_min_ow, 1);
  }
}

TEST(Kernels, MatmulParityOnAwkwardShapes) {
  IsaGuard guard;
  // m/k/n straddle the panel size (4 rows), the vector width and its
  // half/quarter tails: 1x1, primes, one-past and one-short of 16/32.
  const int shapes[][3] = {{1, 1, 1},   {1, 7, 1},   {3, 5, 7},
                           {4, 4, 16},  {5, 13, 17}, {7, 19, 15},
                           {8, 31, 33}, {17, 23, 9}, {2, 3, 1}};
  Rng rng(11);
  for (const auto& s : shapes) {
    Tensor a = Tensor::uniform({s[0], s[1]}, 1.0F, rng);
    Tensor b = Tensor::uniform({s[1], s[2]}, 1.0F, rng);
    Tensor bt = Tensor::uniform({s[2], s[1]}, 1.0F, rng);
    Tensor at = Tensor::uniform({s[1], s[0]}, 1.0F, rng);
    kernels::set_isa(kernels::Isa::kScalar);
    Tensor ab = ops::matmul(a, b);
    Tensor abt = ops::matmul_bt(a, bt);
    Tensor atb = ops::matmul_at(at, b);
    for (kernels::Isa isa : supported_vector_isas()) {
      kernels::set_isa(isa);
      expect_close(ops::matmul(a, b), ab, "matmul");
      expect_close(ops::matmul_bt(a, bt), abt, "matmul_bt");
      expect_close(ops::matmul_at(at, b), atb, "matmul_at");
    }
  }
}

TEST(Kernels, DenseForwardParity) {
  IsaGuard guard;
  // Dense packs W^T once and dispatches gemv_bias_wt; odd feature counts
  // exercise the dot-product tail lanes.
  Rng rng(12);
  nn::Dense dense(37, 11, rng);
  Tensor x = Tensor::uniform({5, 37}, 1.0F, rng);
  kernels::set_isa(kernels::Isa::kScalar);
  Tensor want = dense.forward(x, false);
  for (kernels::Isa isa : supported_vector_isas()) {
    kernels::set_isa(isa);
    expect_close(dense.forward(x, false), want, "dense forward");
  }
}

TEST(Kernels, Conv2DForwardParityOnAwkwardShapes) {
  IsaGuard guard;
  // Widths cover: 1x1 outputs, conv_min_ow GEMM fallback (narrow), the
  // direct path's full/half/quarter column strips and the scalar column
  // tail (e.g. ow = 13 on AVX-512 = 8 + 4 + 1), plus the unit-conv
  // (k = 1, pad = 0) packed-GEMM route used by the Inception bottlenecks.
  struct Case {
    int in_ch, out_ch, k, pad, hw, n;
  };
  const Case cases[] = {
      {1, 1, 1, 0, 1, 1},  {1, 3, 3, 1, 1, 1},  {2, 3, 3, 1, 3, 1},
      {1, 2, 3, 0, 5, 2},  {8, 4, 1, 0, 12, 1}, {3, 5, 3, 1, 7, 1},
      {2, 4, 3, 1, 13, 1}, {4, 2, 5, 2, 17, 1}, {1, 8, 3, 1, 24, 1},
      {2, 2, 3, 1, 12, 3}, {3, 2, 5, 2, 8, 2},  {1, 4, 3, 1, 48, 1},
  };
  Rng rng(13);
  for (const Case& c : cases) {
    nn::Conv2D conv(c.in_ch, c.out_ch, c.k, c.pad, rng);
    Tensor x = Tensor::uniform({c.n, c.in_ch, c.hw, c.hw}, 1.0F, rng);
    kernels::set_isa(kernels::Isa::kScalar);
    Tensor want = conv.forward(x, false);
    for (kernels::Isa isa : supported_vector_isas()) {
      kernels::set_isa(isa);
      expect_close(conv.forward(x, false), want, "conv2d forward");
    }
  }
}

TEST(Kernels, ThreadCountCannotChangeResults) {
  IsaGuard guard;
  // The determinism contract holds per ISA: for a fixed kernel set the
  // result is bit-identical for every DARNET_THREADS value (rows are
  // disjoint; each element's accumulation order is fixed).
  Rng rng(14);
  Tensor a = Tensor::uniform({17, 23}, 1.0F, rng);
  Tensor b = Tensor::uniform({23, 19}, 1.0F, rng);
  nn::Conv2D conv(3, 4, 3, 1, rng);
  Tensor x = Tensor::uniform({2, 3, 13, 13}, 1.0F, rng);
  std::vector<kernels::Isa> isas = {kernels::Isa::kScalar};
  for (kernels::Isa isa : supported_vector_isas()) isas.push_back(isa);
  for (kernels::Isa isa : isas) {
    kernels::set_isa(isa);
    darnet::parallel::set_thread_count(1);
    Tensor mm1 = ops::matmul(a, b);
    Tensor cv1 = conv.forward(x, false);
    for (int threads : {2, 3, 8}) {
      darnet::parallel::set_thread_count(threads);
      Tensor mm = ops::matmul(a, b);
      Tensor cv = conv.forward(x, false);
      for (std::size_t i = 0; i < mm1.numel(); ++i) {
        ASSERT_EQ(mm[i], mm1[i]) << "matmul, threads=" << threads;
      }
      for (std::size_t i = 0; i < cv1.numel(); ++i) {
        ASSERT_EQ(cv[i], cv1[i]) << "conv, threads=" << threads;
      }
    }
  }
}

TEST(Kernels, PackedWeightsFollowParamMutation) {
  IsaGuard guard;
  // The packed-weight cache keys on Param::version: mutating a weight
  // and calling mark_dirty() must repack before the next forward (a
  // stale cache would keep answering with the old weights).
  if (supported_vector_isas().empty()) GTEST_SKIP() << "no vector ISA";
  Rng rng(15);
  nn::Dense dense(9, 4, rng);
  Tensor x = Tensor::uniform({3, 9}, 1.0F, rng);
  kernels::set_isa(supported_vector_isas().front());
  Tensor before = dense.forward(x, false);
  auto params = dense.params();
  params[0]->value[0] += 2.5F;
  params[0]->mark_dirty();
  kernels::set_isa(kernels::Isa::kScalar);
  Tensor want = dense.forward(x, false);
  kernels::set_isa(supported_vector_isas().front());
  Tensor after = dense.forward(x, false);
  expect_close(after, want, "dense after mark_dirty");
  // And the mutation genuinely changed the answer (the test would be
  // vacuous otherwise).
  EXPECT_NE(before[0], after[0]);
}

}  // namespace
