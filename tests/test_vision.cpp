// Unit tests for the vision substrate: image type, nearest-neighbour
// resize (the privacy distortion primitive), renderer structure, IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "vision/image.hpp"
#include "vision/renderer.hpp"

namespace {

using namespace darnet;
using vision::DriverClass;
using vision::Image;

TEST(Image, ConstructionAndBounds) {
  Image img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.at(3, 2), 0.5f);
  EXPECT_THROW((void)img.at(4, 0), std::out_of_range);
  EXPECT_THROW(Image(0, 3), std::invalid_argument);
}

TEST(Image, SampleClampsOutOfBoundsToZero) {
  Image img(2, 2, 1.0f);
  EXPECT_EQ(img.sample(-1, 0), 0.0f);
  EXPECT_EQ(img.sample(0, 5), 0.0f);
  EXPECT_EQ(img.sample(1, 1), 1.0f);
}

TEST(Image, BlendMixesWithAlpha) {
  Image img(1, 1, 0.0f);
  img.blend(0, 0, 1.0f, 0.25f);
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.25f);
  img.blend(5, 5, 1.0f);  // silently clipped
}

TEST(Resize, DownsampleSelectsNearestPixels) {
  // 4x4 checkerboard of 2x2 blocks -> 2x2 picks one pixel per block.
  Image src(4, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      src.at(x, y) = ((x / 2 + y / 2) % 2 == 0) ? 1.0f : 0.0f;
    }
  }
  const Image dst = vision::resize_nearest(src, 2, 2);
  EXPECT_EQ(dst.at(0, 0), 1.0f);
  EXPECT_EQ(dst.at(1, 0), 0.0f);
  EXPECT_EQ(dst.at(0, 1), 0.0f);
  EXPECT_EQ(dst.at(1, 1), 1.0f);
}

TEST(Resize, UpsampleReplicatesPixels) {
  Image src(2, 1);
  src.at(0, 0) = 0.2f;
  src.at(1, 0) = 0.8f;
  const Image dst = vision::resize_nearest(src, 4, 2);
  EXPECT_EQ(dst.at(0, 0), 0.2f);
  EXPECT_EQ(dst.at(1, 1), 0.2f);
  EXPECT_EQ(dst.at(2, 0), 0.8f);
  EXPECT_EQ(dst.at(3, 1), 0.8f);
}

TEST(Resize, RoundTripDownUpIsLossyButDownDownIsConsistent) {
  // Down-sampling then up-sampling must keep only block structure; two
  // successive downsamples equal one direct downsample (nearest-neighbour
  // property on power-of-two factors).
  Image src(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      src.at(x, y) = static_cast<float>((x * 31 + y * 17) % 256) / 255.0f;
    }
  }
  const Image direct = vision::resize_nearest(src, 4, 4);
  const Image staged =
      vision::resize_nearest(vision::resize_nearest(src, 8, 8), 4, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(direct.at(x, y), staged.at(x, y));
    }
  }
}

TEST(BatchTensor, RoundTrip) {
  Image a(3, 3, 0.1f), b(3, 3, 0.9f);
  a.at(1, 2) = 0.7f;
  const Image batch_src[] = {a, b};
  const auto batch = vision::to_batch_tensor(batch_src);
  EXPECT_EQ(batch.shape(), (std::vector<int>{2, 1, 3, 3}));
  const Image a2 = vision::from_batch_tensor(batch, 0);
  EXPECT_EQ(a2.at(1, 2), 0.7f);
  const Image b2 = vision::from_batch_tensor(batch, 1);
  EXPECT_EQ(b2.at(0, 0), 0.9f);
  EXPECT_THROW((void)vision::from_batch_tensor(batch, 2), std::out_of_range);
}

TEST(BatchTensor, RejectsMixedSizes) {
  const Image imgs[] = {Image(3, 3), Image(4, 4)};
  EXPECT_THROW((void)vision::to_batch_tensor(imgs), std::invalid_argument);
}

TEST(Pgm, WritesValidHeaderAndPayload) {
  Image img(3, 2);
  img.at(0, 0) = 1.0f;
  const std::string path = "/tmp/darnet_test_image.pgm";
  vision::write_pgm(path, img);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  EXPECT_EQ(in.get(), 255);  // first pixel saturated
  std::remove(path.c_str());
}

TEST(Ascii, ProducesDrawableText) {
  util::Rng rng(1);
  const Image img =
      vision::render_driver_scene(DriverClass::kNormal, {}, rng);
  const std::string art = vision::to_ascii(img, 32);
  EXPECT_GT(art.size(), 100u);
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(Renderer, FramesAreConfiguredSizeAndInRange) {
  util::Rng rng(2);
  vision::RenderConfig cfg;
  cfg.size = 48;
  for (int c = 0; c < vision::kDriverClassCount; ++c) {
    const Image img =
        vision::render_driver_scene(static_cast<DriverClass>(c), cfg, rng);
    EXPECT_EQ(img.width(), 48);
    EXPECT_EQ(img.height(), 48);
    for (float p : img.pixels()) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
    }
  }
}

TEST(Renderer, DeterministicPerSeed) {
  vision::RenderConfig cfg;
  util::Rng rng1(5), rng2(5);
  const Image a = vision::render_driver_scene(DriverClass::kTexting, cfg, rng1);
  const Image b = vision::render_driver_scene(DriverClass::kTexting, cfg, rng2);
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      ASSERT_EQ(a.at(x, y), b.at(x, y));
    }
  }
}

TEST(Renderer, ClassesDifferMoreAcrossThanWithin) {
  // Mean per-class images must differ between e.g. reaching and talking
  // more than two same-class renders differ -- i.e. the classes carry
  // signal beyond the noise.
  vision::RenderConfig cfg;
  cfg.pixel_noise = 0.0;
  auto mean_image = [&](DriverClass c, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<double> acc(static_cast<std::size_t>(cfg.size) * cfg.size,
                            0.0);
    constexpr int kReps = 96;
    for (int r = 0; r < kReps; ++r) {
      const Image img = vision::render_driver_scene(c, cfg, rng);
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += img.pixels()[i];
    }
    for (auto& v : acc) v /= kReps;
    return acc;
  };
  auto l2 = [](const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      acc += (a[i] - b[i]) * (a[i] - b[i]);
    }
    return std::sqrt(acc);
  };
  const auto reach1 = mean_image(DriverClass::kReaching, 100);
  const auto reach2 = mean_image(DriverClass::kReaching, 200);
  const auto talk = mean_image(DriverClass::kTalking, 300);
  EXPECT_GT(l2(reach1, talk), 1.5 * l2(reach1, reach2));
}

TEST(Renderer, FineSceneCoversAllClassesAndValidates) {
  util::Rng rng(6);
  vision::RenderConfig cfg;
  for (int c = 0; c < vision::kFineClassCount; ++c) {
    const Image img = vision::render_fine_scene(c, cfg, rng);
    EXPECT_EQ(img.width(), cfg.size);
  }
  EXPECT_THROW((void)vision::render_fine_scene(18, cfg, rng),
               std::invalid_argument);
  EXPECT_THROW((void)vision::render_fine_scene(-1, cfg, rng),
               std::invalid_argument);
}

TEST(Renderer, ClassNamesMatchTable1) {
  EXPECT_STREQ(vision::driver_class_name(DriverClass::kNormal),
               "Normal Driving");
  EXPECT_STREQ(vision::driver_class_name(DriverClass::kEating),
               "Eating/Drinking");
  EXPECT_STREQ(vision::driver_class_name(DriverClass::kReaching), "Reaching");
}

}  // namespace
