// test_analyze: unit tests for the darnet_analyze lexer and symbol index,
// plus the runtime-vs-static lock-order consistency check: every edge the
// checked sync runtime records while this suite's workload runs must be
// compatible with the graph darnet_analyze extracts statically (no inverted
// pair, and the union of both graphs stays acyclic).

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/pool.hpp"
#include "sync/sync.hpp"
#include "tools/analyze/index.hpp"
#include "tools/analyze/lexer.hpp"
#include "tools/analyze/rules.hpp"

namespace {

namespace analyze = darnet::analyze;
using analyze::Tok;

std::vector<std::string> idents(const analyze::LexedFile& lexed) {
  std::vector<std::string> out;
  for (const analyze::Token& t : lexed.tokens) {
    if (t.kind == Tok::kIdent) out.push_back(t.text);
  }
  return out;
}

bool has_ident(const analyze::LexedFile& lexed, std::string_view text) {
  for (const analyze::Token& t : lexed.tokens) {
    if (t.kind == Tok::kIdent && t.text == text) return true;
  }
  return false;
}

TEST(AnalyzeLexer, RawStringsAreOpaque) {
  const auto lexed = analyze::lex(
      "auto s = R\"x(std::mutex m; /* not a comment */ \"inner\")x\";",
      "t.cpp");
  ASSERT_EQ(lexed.tokens.size(), 5u);  // auto s = <string> ;
  EXPECT_EQ(lexed.tokens[3].kind, Tok::kString);
  EXPECT_EQ(lexed.tokens[3].text,
            "std::mutex m; /* not a comment */ \"inner\"");
  EXPECT_FALSE(has_ident(lexed, "mutex"));
}

TEST(AnalyzeLexer, EncodingPrefixesAreNotIdentifiers) {
  const auto lexed = analyze::lex(
      "auto a = u8R\"(raw)\"; auto b = L\"wide\"; auto c = u'x';", "t.cpp");
  EXPECT_FALSE(has_ident(lexed, "u8R"));
  EXPECT_FALSE(has_ident(lexed, "L"));
  EXPECT_FALSE(has_ident(lexed, "u"));
  int strings = 0;
  int chars = 0;
  for (const analyze::Token& t : lexed.tokens) {
    if (t.kind == Tok::kString) ++strings;
    if (t.kind == Tok::kChar) ++chars;
  }
  EXPECT_EQ(strings, 2);
  EXPECT_EQ(chars, 1);
}

TEST(AnalyzeLexer, LineContinuations) {
  // A spliced line comment swallows the next physical line; a spliced
  // string folds into one token; line numbers keep counting physical lines.
  const auto lexed = analyze::lex(
      "// comment \\\nstill_comment\nint x = \"ab\\\ncd\";\n", "t.cpp");
  EXPECT_FALSE(has_ident(lexed, "still_comment"));
  ASSERT_GE(lexed.tokens.size(), 4u);
  EXPECT_EQ(lexed.tokens[0].text, "int");
  EXPECT_EQ(lexed.tokens[0].line, 3);
  EXPECT_EQ(lexed.tokens[3].kind, Tok::kString);
  EXPECT_EQ(lexed.tokens[3].text, "abcd");
}

TEST(AnalyzeLexer, BlockCommentsDoNotNest) {
  const auto lexed =
      analyze::lex("/* outer /* inner */ tail(); /* x */ int y;", "t.cpp");
  const std::vector<std::string> ids = idents(lexed);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], "tail");  // "*/" closes at the first terminator
  EXPECT_EQ(ids[1], "int");
  EXPECT_EQ(ids[2], "y");
}

TEST(AnalyzeLexer, IfZeroRegionsAreSkipped) {
  const auto lexed = analyze::lex(
      "#if 0\n"
      "std::mutex hidden; // \" unbalanced quote in a comment\n"
      "#else\n"
      "int visible;\n"
      "#endif\n"
      "int after;\n",
      "t.cpp");
  EXPECT_FALSE(has_ident(lexed, "hidden"));
  EXPECT_FALSE(has_ident(lexed, "mutex"));
  EXPECT_TRUE(has_ident(lexed, "visible"));
  EXPECT_TRUE(has_ident(lexed, "after"));
}

TEST(AnalyzeLexer, ConditionalsOtherThanIfZeroEmitBothSides) {
  const auto lexed = analyze::lex(
      "#ifdef DARNET_CHECKED\nint checked_side;\n#else\n"
      "int unchecked_side;\n#endif\n",
      "t.cpp");
  EXPECT_TRUE(has_ident(lexed, "checked_side"));
  EXPECT_TRUE(has_ident(lexed, "unchecked_side"));
}

TEST(AnalyzeLexer, DirectivesAndIncludesRecordedOutOfBand) {
  const auto lexed = analyze::lex(
      "#include <vector>\n#include \"sync/sync.hpp\"\n#define FOO 1\n",
      "t.cpp");
  EXPECT_TRUE(lexed.tokens.empty());
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0], "vector");
  EXPECT_EQ(lexed.includes[1], "sync/sync.hpp");
  ASSERT_EQ(lexed.directives.size(), 3u);
  EXPECT_EQ(lexed.directives[2].name, "define");
  EXPECT_EQ(lexed.directives[2].rest, "FOO 1");
}

TEST(AnalyzeIndex, ClassMembersLocksAndCalls) {
  const char* src = R"cpp(
namespace fix {
class Counter {
 public:
  int get();
 private:
  sync::Mutex mu_{"fix/counter"};
  int count_ DARNET_GUARDED_BY(mu_) = 0;
};
int Counter::get() {
  sync::Lock lock(mu_);
  return count_;
}
int free_helper(int n) {
  std::vector<float> scratch(static_cast<std::size_t>(n), 0.0F);
  return other_helper(n) + static_cast<int>(scratch.size());
}
}  // namespace fix
)cpp";
  analyze::Index idx;
  analyze::index_file(idx, analyze::lex(src, "src/fix.cpp"));

  ASSERT_TRUE(idx.classes.count("Counter"));
  const analyze::ClassInfo& cls = idx.classes.at("Counter");
  ASSERT_TRUE(cls.mutex_names.count("mu_"));
  EXPECT_EQ(cls.mutex_names.at("mu_"), "fix/counter");
  ASSERT_TRUE(cls.guards.count("count_"));
  EXPECT_EQ(cls.guards.at("count_"), "mu_");

  ASSERT_TRUE(idx.by_name.count("get"));
  const analyze::FunctionInfo& get = idx.fn(idx.by_name.at("get").front());
  EXPECT_EQ(get.klass, "Counter");
  ASSERT_EQ(get.locks.size(), 1u);
  EXPECT_EQ(get.locks[0].mutex_expr_last, "mu_");

  ASSERT_TRUE(idx.by_name.count("free_helper"));
  const analyze::FunctionInfo& helper =
      idx.fn(idx.by_name.at("free_helper").front());
  EXPECT_TRUE(helper.klass.empty());
  EXPECT_FALSE(helper.allocs.empty());
  bool calls_other = false;
  for (const analyze::CallSite& c : helper.calls) {
    if (c.callee == "other_helper") calls_other = true;
  }
  EXPECT_TRUE(calls_other);
}

// Depth-first cycle check over a name -> successors adjacency map.
bool has_cycle(const std::map<std::string, std::set<std::string>>& adj) {
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  struct Walker {
    const std::map<std::string, std::set<std::string>>& adj;
    std::map<std::string, int>& color;
    bool visit(const std::string& n) {
      color[n] = 1;
      auto it = adj.find(n);
      if (it != adj.end()) {
        for (const std::string& next : it->second) {
          const int c = color.count(next) ? color.at(next) : 0;
          if (c == 1) return true;
          if (c == 0 && visit(next)) return true;
        }
      }
      color[n] = 2;
      return false;
    }
  } walker{adj, color};
  for (const auto& [n, succs] : adj) {
    (void)succs;
    if ((color.count(n) ? color.at(n) : 0) == 0 && walker.visit(n)) {
      return true;
    }
  }
  return false;
}

// The acceptance check for the static lock-order extraction: run a real
// workload, snapshot the runtime lock-order graph recorded by src/sync
// (checked builds; empty otherwise), and require that the statically
// extracted graph never disagrees -- no pair of mutexes ordered one way at
// runtime and the other way statically, and no cycle in the union.
TEST(AnalyzeConsistency, RuntimeLockOrderAgreesWithStaticGraph) {
  namespace dsync = darnet::sync;

  // Manufacture one nested acquisition in the documented direction so the
  // runtime graph is non-empty in checked builds even on 1-core hosts
  // (where parallel_for degenerates to the serial path).
  {
    static dsync::Mutex admission{"serve/admission"};
    static dsync::Mutex exec{"serve/exec"};
    dsync::Lock a(admission);
    dsync::Lock e(exec);
  }
  // Real workload: drives the pool's submit -> pool / region-error edges
  // when workers are available.
  std::atomic<std::int64_t> sum{0};
  darnet::parallel::parallel_for(
      0, 4096, 16, [&](std::int64_t b, std::int64_t e) {
        std::int64_t local = 0;
        for (std::int64_t i = b; i < e; ++i) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(4096) * 4095 / 2);

  const std::vector<dsync::OrderEdge> runtime = dsync::order_graph_snapshot();
#if defined(DARNET_CHECKED)
  EXPECT_FALSE(runtime.empty());  // at least the manufactured edge
#else
  EXPECT_TRUE(runtime.empty());  // unchecked builds keep no graph
#endif

  const analyze::AnalysisResult res = analyze::analyze_tree(DARNET_REPO_ROOT);
  EXPECT_GT(res.files_indexed, 0);
  EXPECT_GT(res.functions_indexed, 0);

  std::set<std::pair<std::string, std::string>> static_edges;
  for (const analyze::LockEdge& e : res.lock_edges) {
    static_edges.insert({e.from, e.to});
  }
  for (const dsync::OrderEdge& e : runtime) {
    EXPECT_FALSE(static_edges.count({e.to, e.from}))
        << "runtime edge " << e.from << " -> " << e.to << " (first seen at "
        << e.acquire_file << ":" << e.acquire_line
        << ") inverts a statically extracted edge";
  }

  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [from, to] : static_edges) adj[from].insert(to);
  for (const dsync::OrderEdge& e : runtime) adj[e.from].insert(e.to);
  EXPECT_FALSE(has_cycle(adj))
      << "union of runtime and static lock-order graphs has a cycle";
}

// Index a snippet and return its computed effects keyed by symbol.
std::map<std::string, analyze::Effects> effects_of(const char* src) {
  analyze::Index idx;
  analyze::index_file(idx, analyze::lex(src, "src/fix.cpp"));
  std::map<std::string, analyze::Effects> out;
  for (const auto& [id, e] : analyze::compute_effects(idx)) {
    const analyze::FunctionInfo& F = idx.fn(id);
    out[F.klass.empty() ? F.name : F.klass + "::" + F.name] = e;
  }
  return out;
}

TEST(AnalyzeEffects, DirectPrimitives) {
  auto eff = effects_of(R"cpp(
namespace fix {
struct Queue {
  sync::CondVar cv;
};
int read_fd(int fd) {
  char buf[8];
  return static_cast<int>(::recv(fd, buf, sizeof(buf), 0));
}
long read_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
int wait_on(Queue& q, sync::UniqueLock& lock) {
  q.cv.wait(lock);
  return 0;
}
void pause_briefly() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
int pure(int x) { return x * 2; }
}  // namespace fix
)cpp");
  EXPECT_TRUE(eff.at("read_fd").may_block);
  EXPECT_FALSE(eff.at("read_fd").reads_clock);
  EXPECT_TRUE(eff.at("read_clock").reads_clock);
  EXPECT_FALSE(eff.at("read_clock").may_block);
  EXPECT_TRUE(eff.at("wait_on").may_block);
  EXPECT_TRUE(eff.at("pause_briefly").may_block);
  EXPECT_FALSE(eff.at("pure").may_block);
  EXPECT_FALSE(eff.at("pure").reads_clock);
}

TEST(AnalyzeEffects, OneHopPropagationWithWitnessPath) {
  auto eff = effects_of(R"cpp(
namespace fix {
int leaf(int fd) {
  char buf[8];
  return static_cast<int>(::recv(fd, buf, sizeof(buf), 0));
}
int caller(int fd) { return leaf(fd); }
}  // namespace fix
)cpp");
  ASSERT_TRUE(eff.at("leaf").may_block);
  ASSERT_TRUE(eff.at("caller").may_block);
  ASSERT_FALSE(eff.at("caller").block_path.empty());
  EXPECT_EQ(eff.at("caller").block_path.front(), "leaf");
  EXPECT_NE(eff.at("caller").block_path.back().find("::recv"),
            std::string::npos);
}

// A call-graph cycle must converge with both members marked: this is the
// case memoized recursion (acquires()-style) gets wrong when the blocking
// member is visited second.
TEST(AnalyzeEffects, CyclePropagationConverges) {
  auto eff = effects_of(R"cpp(
namespace fix {
int pong(int n);
int ping(int n) {
  if (n <= 0) return 0;
  return pong(n - 1);
}
int pong(int n) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return ping(n - 1);
}
}  // namespace fix
)cpp");
  EXPECT_TRUE(eff.at("ping").may_block);
  EXPECT_TRUE(eff.at("pong").may_block);
}

TEST(AnalyzeEffects, ReceiverTypeDispatch) {
  auto eff = effects_of(R"cpp(
namespace fix {
struct Blocking {
  int poll(int fd) {
    char buf[8];
    return static_cast<int>(::recv(fd, buf, sizeof(buf), 0));
  }
};
struct Counting {
  int poll(int fd) { return fd; }
};
int uses_blocking(int fd) {
  Blocking b;
  return b.poll(fd);
}
int uses_counting(int fd) {
  Counting c;
  return c.poll(fd);
}
}  // namespace fix
)cpp");
  EXPECT_TRUE(eff.at("Blocking::poll").may_block);
  EXPECT_FALSE(eff.at("Counting::poll").may_block);
  EXPECT_TRUE(eff.at("uses_blocking").may_block);
  EXPECT_FALSE(eff.at("uses_counting").may_block);
}

// Ground truth for the may-block effect: every in-tree function the runtime
// CV watchdog has observed waiting must be marked may-block statically.
TEST(AnalyzeConsistency, RuntimeCvWaitersAreStaticallyMayBlock) {
  // Drive a workload whose threads wait on in-tree CondVars (pool workers
  // idle-wait; for_range waits for region completion when workers exist).
  std::atomic<std::int64_t> sum{0};
  darnet::parallel::parallel_for(
      0, 8192, 16, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
          sum.fetch_add(i, std::memory_order_relaxed);
      });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(8192) * 8191 / 2);

  const std::vector<std::string> waiters =
      darnet::sync::cv_wait_sites_snapshot();
#if !defined(DARNET_CHECKED)
  EXPECT_TRUE(waiters.empty());  // unchecked builds keep no wait bookkeeping
#endif

  const analyze::AnalysisResult res = analyze::analyze_tree(DARNET_REPO_ROOT);
  std::vector<std::string> may_block;
  for (const analyze::EffectEntry& e : res.effects) {
    if (e.may_block) may_block.push_back(e.symbol);
  }
  for (const std::string& pretty : waiters) {
    // Only in-tree waiters participate: the test binary itself is not under
    // an indexed directory, and its pretty names lack a darnet:: scope.
    if (pretty.find("darnet::") == std::string::npos) continue;
    bool matched = false;
    for (const std::string& sym : may_block) {
      if (pretty.find(sym) != std::string::npos) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "runtime CV waiter not statically may-block: "
                         << pretty;
  }
}

}  // namespace
