// Parameterized property tests (TEST_P sweeps) over the library's core
// invariants: numeric kernels, serialisation, distortion geometry, clock
// synchronisation, and store alignment.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "collection/agent.hpp"
#include "collection/controller.hpp"
#include "collection/store.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "privacy/privacy.hpp"
#include "tensor/ops.hpp"
#include "util/serialize.hpp"
#include "vision/renderer.hpp"

namespace {

using namespace darnet;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Softmax rows are probability distributions for any shape.

class SoftmaxProperty : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(SoftmaxProperty, RowsAreDistributions) {
  const auto [n, c] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 131 + c));
  const Tensor logits = Tensor::uniform({n, c}, 8.0f, rng);
  const Tensor p = tensor::softmax_rows(logits);
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int j = 0; j < c; ++j) {
      EXPECT_GE(p.at(i, j), 0.0f);
      EXPECT_LE(p.at(i, j), 1.0f);
      sum += p.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
    // Order preservation: argmax of logits == argmax of probabilities.
    const auto row_l = std::span<const float>(
        logits.data() + static_cast<std::size_t>(i) * c,
        static_cast<std::size_t>(c));
    const auto row_p = std::span<const float>(
        p.data() + static_cast<std::size_t>(i) * c,
        static_cast<std::size_t>(c));
    EXPECT_EQ(tensor::argmax(row_l), tensor::argmax(row_p));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxProperty,
                         ::testing::Values(std::pair{1, 2}, std::pair{3, 6},
                                           std::pair{17, 3}, std::pair{8, 18},
                                           std::pair{64, 5}));

// ---------------------------------------------------------------------------
// Matmul agrees with a naive reference implementation across shapes.

class MatmulProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulProperty, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 7 + k * 3 + n));
  const Tensor a = Tensor::uniform({m, k}, 1.0f, rng);
  const Tensor b = Tensor::uniform({k, n}, 1.0f, rng);
  const Tensor c = tensor::matmul(a, b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      }
      ASSERT_NEAR(c.at(i, j), acc, 1e-3) << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulProperty,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{5, 1, 7}, std::tuple{16, 16, 16},
                      std::tuple{3, 31, 2}));

// ---------------------------------------------------------------------------
// Conv2D output geometry follows the padding arithmetic for any (k, pad).

class ConvShapeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvShapeProperty, OutputGeometry) {
  const auto [kernel, pad, size] = GetParam();
  util::Rng rng(9);
  nn::Conv2D conv(2, 3, kernel, pad, rng);
  const Tensor y = conv.forward(Tensor({1, 2, size, size}), false);
  const int expected = size + 2 * pad - kernel + 1;
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 3, expected, expected}));
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConvShapeProperty,
    ::testing::Values(std::tuple{1, 0, 8}, std::tuple{3, 1, 8},
                      std::tuple{3, 0, 8}, std::tuple{5, 2, 12},
                      std::tuple{5, 0, 12}, std::tuple{7, 3, 16}));

// ---------------------------------------------------------------------------
// Tensor serialisation round-trips for any rank/shape.

class TensorRoundTrip : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(TensorRoundTrip, Identity) {
  util::Rng rng(42);
  const Tensor t = Tensor::uniform(GetParam(), 3.0f, rng);
  util::BinaryWriter w;
  t.serialize(w);
  util::BinaryReader r(w.bytes());
  const Tensor u = Tensor::deserialize(r);
  ASSERT_TRUE(u.same_shape(t));
  for (std::size_t i = 0; i < t.numel(); ++i) ASSERT_EQ(t[i], u[i]);
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TensorRoundTrip,
    ::testing::Values(std::vector<int>{1}, std::vector<int>{7},
                      std::vector<int>{3, 4}, std::vector<int>{2, 3, 4},
                      std::vector<int>{2, 1, 5, 3}));

// ---------------------------------------------------------------------------
// Distortion geometry: factor arithmetic and reconstruction size hold for
// every level across frame sizes.

class DistortionProperty
    : public ::testing::TestWithParam<
          std::tuple<privacy::DistortionLevel, int>> {};

TEST_P(DistortionProperty, GeometryAndReconstruction) {
  const auto [level, size] = GetParam();
  util::Rng rng(3);
  vision::RenderConfig render;
  render.size = size;
  const vision::Image frame =
      vision::render_driver_scene(vision::DriverClass::kNormal, render, rng);
  privacy::DistortionModule module(level);
  const privacy::TaggedFrame tagged = module.process(frame);
  EXPECT_EQ(tagged.image.width(),
            size / privacy::distortion_factor(level));
  EXPECT_EQ(privacy::wire_bytes(tagged),
            static_cast<std::size_t>(tagged.image.width()) *
                    tagged.image.height() + 1);
  const vision::Image rebuilt = privacy::reconstruct(tagged, size);
  EXPECT_EQ(rebuilt.width(), size);
  EXPECT_EQ(rebuilt.height(), size);
}

INSTANTIATE_TEST_SUITE_P(
    LevelsAndSizes, DistortionProperty,
    ::testing::Combine(::testing::Values(privacy::DistortionLevel::kNone,
                                         privacy::DistortionLevel::kLow,
                                         privacy::DistortionLevel::kMedium,
                                         privacy::DistortionLevel::kHigh),
                       ::testing::Values(48, 96)));

// ---------------------------------------------------------------------------
// Clock sync convergence: for any drift within commodity range and any
// sync period, the steady-state error is bounded by
// drift * period + slop; without sync it exceeds that bound.

class ClockSyncProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ClockSyncProperty, SteadyStateErrorBounded) {
  const auto [drift_ppm, period_s] = GetParam();
  collection::Simulation sim;
  collection::LinkConfig link_cfg;
  collection::VirtualLink up(sim, link_cfg, 1);
  collection::VirtualLink down(sim, link_cfg, 2);
  collection::ControllerConfig ctrl_cfg;
  ctrl_cfg.clock_sync_period_s = period_s;
  collection::Controller controller(sim, ctrl_cfg);
  collection::AgentConfig agent_cfg;
  agent_cfg.agent_id = 1;
  agent_cfg.clock_drift_ppm = drift_ppm;
  agent_cfg.clock_initial_offset_s = 0.2;
  agent_cfg.latency_compensation_s = link_cfg.base_latency_s;
  collection::CollectionAgent agent(sim, agent_cfg, up);
  up.set_receiver(
      [&](std::vector<std::uint8_t> b) { controller.on_message(b); });
  down.set_receiver(
      [&](std::vector<std::uint8_t> b) { agent.on_message(b); });
  controller.attach_agent(1, down);
  agent.add_sensor(std::make_unique<collection::CallbackSensor>(
      "s", 0.1, [](collection::SimTime) {
        return std::vector<float>{0.0f};
      }));
  controller.start();
  agent.start();
  sim.run_until(60.0);

  const double bound = drift_ppm * 1e-6 * period_s + 0.012;
  EXPECT_LT(std::abs(agent.clock_error_now()), bound)
      << "drift " << drift_ppm << "ppm period " << period_s;
}

INSTANTIATE_TEST_SUITE_P(
    DriftAndPeriod, ClockSyncProperty,
    ::testing::Combine(::testing::Values(50.0, 500.0, 2000.0),
                       ::testing::Values(1.0, 5.0, 10.0)));

// ---------------------------------------------------------------------------
// Store alignment: interpolation is exact on linear signals for any
// source rate / grid step combination.

class AlignmentProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AlignmentProperty, LinearSignalsAlignExactly) {
  const auto [source_hz, grid_dt] = GetParam();
  collection::TimeSeriesStore store;
  const double slope = 2.5, intercept = -1.0;
  for (int i = 0; static_cast<double>(i) / source_hz <= 10.0; ++i) {
    const double t = static_cast<double>(i) / source_hz;
    store.append("lin",
                 {t, {static_cast<float>(slope * t + intercept)}, 0});
  }
  std::vector<double> grid;
  const auto rows = store.aligned({"lin"}, 0.5, 9.5, grid_dt, 0.0, &grid);
  ASSERT_FALSE(rows.empty());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(rows[i][0], slope * grid[i] + intercept, 2e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSteps, AlignmentProperty,
    ::testing::Combine(::testing::Values(7.0, 40.0, 100.0),
                       ::testing::Values(0.25, 0.1, 0.33)));

// ---------------------------------------------------------------------------
// Model checkpointing round-trips through bytes for varying architectures.

class CheckpointProperty : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointProperty, ForwardIdenticalAfterReload) {
  const int hidden = GetParam();
  auto build = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    nn::Sequential m;
    m.emplace<nn::Conv2D>(1, hidden, 3, 1, rng);
    m.emplace<nn::ReLU>();
    m.emplace<nn::Flatten>();
    m.emplace<nn::Dense>(hidden * 8 * 8, 4, rng);
    return m;
  };
  nn::Sequential original = build(1);
  nn::Sequential reloaded = build(999);
  util::BinaryWriter w;
  original.save_params(w);
  util::BinaryReader r(w.bytes());
  reloaded.load_params(r);

  util::Rng rng(5);
  const Tensor x = Tensor::uniform({2, 1, 8, 8}, 1.0f, rng);
  const Tensor ya = original.forward(x, false);
  const Tensor yb = reloaded.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i) ASSERT_EQ(ya[i], yb[i]);
}

INSTANTIATE_TEST_SUITE_P(Widths, CheckpointProperty,
                         ::testing::Values(2, 4, 8));

}  // namespace
