// Unit tests for the tensor substrate.
#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace {

using darnet::tensor::Tensor;
namespace ops = darnet::tensor;

TEST(Tensor, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1}), std::invalid_argument);
}

TEST(Tensor, CheckedAccessByRank) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t.at(1, 2, 3, 4), 7.0f);
  EXPECT_THROW(t.at(2, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 0), std::out_of_range);  // wrong rank
}

TEST(Tensor, RowMajorLayout) {
  Tensor t({2, 3});
  t.at(0, 2) = 1.0f;
  t.at(1, 0) = 2.0f;
  EXPECT_EQ(t[2], 1.0f);
  EXPECT_EQ(t[3], 2.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, SerializationRoundTrip) {
  darnet::util::Rng rng(3);
  Tensor t = Tensor::he_normal({3, 4, 2}, 12, rng);
  darnet::util::BinaryWriter w;
  t.serialize(w);
  darnet::util::BinaryReader r(w.bytes());
  Tensor u = Tensor::deserialize(r);
  ASSERT_TRUE(u.same_shape(t));
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], u[i]);
}

TEST(Tensor, HeNormalStddevScalesWithFanIn) {
  darnet::util::Rng rng(4);
  Tensor t = Tensor::he_normal({200, 200}, 50, rng);
  double sq = 0.0;
  for (float v : t.flat()) sq += static_cast<double>(v) * v;
  const double stddev = std::sqrt(sq / static_cast<double>(t.numel()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 50), 0.01);
}

TEST(Ops, MatmulMatchesHandComputation) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  for (int i = 0; i < 6; ++i) a[i] = static_cast<float>(i + 1);
  for (int i = 0; i < 6; ++i) b[i] = static_cast<float>(i + 7);
  Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulShapeChecks) {
  Tensor a({2, 3}), b({2, 2});
  EXPECT_THROW(ops::matmul(a, b), std::invalid_argument);
}

TEST(Ops, TransposedVariantsAgreeWithExplicitTranspose) {
  darnet::util::Rng rng(5);
  Tensor a = Tensor::uniform({4, 6}, 1.0f, rng);
  Tensor b = Tensor::uniform({6, 5}, 1.0f, rng);

  // matmul_bt(a, b^T) == a * b.
  Tensor bt = ops::transpose(b);
  Tensor c1 = ops::matmul(a, b);
  Tensor c2 = ops::matmul_bt(a, bt);
  ASSERT_TRUE(c1.same_shape(c2));
  for (std::size_t i = 0; i < c1.numel(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-4f);
  }

  // matmul_at(a^T, b2) == a * b2 where a^T is stored transposed.
  Tensor at = ops::transpose(a);
  Tensor c3 = ops::matmul_at(at, b);
  for (std::size_t i = 0; i < c1.numel(); ++i) {
    EXPECT_NEAR(c1[i], c3[i], 1e-4f);
  }
}

TEST(Ops, SoftmaxRowsNormalisedAndOrderPreserving) {
  Tensor logits({2, 3});
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 2.0f;
  logits.at(0, 2) = 3.0f;
  logits.at(1, 0) = 100.0f;  // large values: numerical stability
  logits.at(1, 1) = 100.0f;
  logits.at(1, 2) = 100.0f;
  Tensor p = ops::softmax_rows(logits);
  double row0 = p.at(0, 0) + p.at(0, 1) + p.at(0, 2);
  EXPECT_NEAR(row0, 1.0, 1e-5);
  EXPECT_LT(p.at(0, 0), p.at(0, 1));
  EXPECT_LT(p.at(0, 1), p.at(0, 2));
  EXPECT_NEAR(p.at(1, 0), 1.0f / 3.0f, 1e-5);
}

TEST(Ops, ElementwiseHelpers) {
  Tensor a({3});
  Tensor b({3});
  for (int i = 0; i < 3; ++i) {
    a[i] = static_cast<float>(i + 1);
    b[i] = 2.0f;
  }
  ops::add_inplace(a, b);  // a = [3,4,5]
  EXPECT_EQ(a[2], 5.0f);
  ops::axpy(0.5f, b, a);  // a = [4,5,6]
  EXPECT_EQ(a[0], 4.0f);
  ops::scale_inplace(a, 2.0f);
  EXPECT_EQ(a[2], 12.0f);
  Tensor h = ops::hadamard(a, b);
  EXPECT_EQ(h[0], 16.0f);  // 8 * 2
  EXPECT_DOUBLE_EQ(ops::sum(b), 6.0);
  EXPECT_DOUBLE_EQ(ops::mean(b), 2.0);
  EXPECT_EQ(ops::max_value(a), 12.0f);
}

TEST(Ops, ArgmaxPicksFirstMaximum) {
  std::vector<float> v{1.0f, 5.0f, 5.0f, 2.0f};
  EXPECT_EQ(ops::argmax(v), 1);
  EXPECT_THROW((void)ops::argmax(std::span<const float>{}), std::invalid_argument);
}

}  // namespace
