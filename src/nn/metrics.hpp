// Classification metrics: Top-1 accuracy and confusion matrices -- the
// quantities Tables 2/3 and Figure 5 of the paper report.
#pragma once

#include <string>
#include <vector>

namespace darnet::nn {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes,
                           std::vector<std::string> class_names = {});

  void add(int true_class, int predicted_class);

  [[nodiscard]] int num_classes() const noexcept { return classes_; }
  [[nodiscard]] long count(int true_class, int predicted_class) const;
  [[nodiscard]] long total() const noexcept { return total_; }

  /// Overall Top-1 accuracy (Hit@1 in the paper's terminology).
  [[nodiscard]] double accuracy() const;

  /// Recall of one class: correct / row total (0 if the class is absent).
  [[nodiscard]] double class_recall(int true_class) const;

  /// Precision of one class: correct / column total (0 if never
  /// predicted).
  [[nodiscard]] double class_precision(int predicted_class) const;

  /// Harmonic mean of precision and recall (0 when both are 0).
  [[nodiscard]] double class_f1(int cls) const;

  /// Unweighted mean of per-class F1 scores.
  [[nodiscard]] double macro_f1() const;

  /// Fraction of class `true_class` samples predicted as `predicted_class`
  /// (a single row-normalised confusion cell, as plotted in Figure 5).
  [[nodiscard]] double confusion_rate(int true_class,
                                      int predicted_class) const;

  /// Render the row-normalised matrix as an ASCII table.
  [[nodiscard]] std::string render() const;

 private:
  int classes_;
  std::vector<std::string> names_;
  std::vector<long> counts_;  // row-major [true][pred]
  long total_{0};
};

/// Top-1 accuracy of predictions vs labels.
[[nodiscard]] double top1_accuracy(const std::vector<int>& predictions,
                                   const std::vector<int>& labels);

/// Top-k accuracy from score rows: a sample counts as a hit when its true
/// class is among the k highest-scoring classes of its row.
/// `scores`: row-major [N, C]; labels.size() == N; 1 <= k <= C.
[[nodiscard]] double topk_accuracy(const std::vector<float>& scores,
                                   int num_classes,
                                   const std::vector<int>& labels, int k);

}  // namespace darnet::nn
