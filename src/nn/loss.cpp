#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace darnet::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: [N, C] required");
  }
  const int n = logits.dim(0), c = logits.dim(1);
  if (labels.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  Tensor probs = tensor::softmax_rows(logits);
  double loss = 0.0;
  const float invn = 1.0f / static_cast<float>(n);
  Tensor grad = probs;  // copy; becomes (p - onehot)/N below
  for (int i = 0; i < n; ++i) {
    const int y = labels[i];
    if (y < 0 || y >= c) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    const float p = probs.at(i, y);
    loss -= std::log(std::max(p, 1e-12f));
    grad.at(i, y) -= 1.0f;
  }
  tensor::scale_inplace(grad, invn);
  return {loss / n, std::move(grad)};
}

LossResult l2_distillation(const Tensor& student_out,
                           const Tensor& teacher_out) {
  if (!student_out.same_shape(teacher_out)) {
    throw std::invalid_argument("l2_distillation: shape mismatch");
  }
  const int n = student_out.dim(0);
  Tensor grad(student_out.shape());
  const float* s = student_out.data();
  const float* t = teacher_out.data();
  float* g = grad.data();
  double loss = 0.0;
  const float invn = 1.0f / static_cast<float>(n);
  const std::size_t total = student_out.numel();
  for (std::size_t i = 0; i < total; ++i) {
    const float d = s[i] - t[i];
    loss += 0.5 * static_cast<double>(d) * d;
    g[i] = d * invn;
  }
  return {loss / n, std::move(grad)};
}

}  // namespace darnet::nn
