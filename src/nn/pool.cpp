#include "nn/pool.hpp"

namespace darnet::nn {

namespace {
void check_nchw(const Tensor& input, const char* who) {
  if (input.rank() != 4) {
    throw std::invalid_argument(std::string(who) + ": NCHW input required");
  }
}

/// Shared contract for the non-overlapping (kernel == stride) poolers.
ShapeContract pool_contract(const std::vector<int>& in, int k,
                            const char* who) {
  if (in.size() != 4) {
    return ShapeContract::bad(std::string(who) +
                              " expects rank-4 NCHW input, got rank " +
                              std::to_string(in.size()));
  }
  if (in[2] % k != 0 || in[3] % k != 0) {
    return ShapeContract::bad(std::string(who) + " expects H and W (" +
                              std::to_string(in[2]) + "x" +
                              std::to_string(in[3]) +
                              ") divisible by kernel " + std::to_string(k));
  }
  return ShapeContract::ok({in[0], in[1], in[2] / k, in[3] / k});
}
}  // namespace

MaxPool2D::MaxPool2D(int kernel) : k_(kernel) {
  if (kernel <= 1) throw std::invalid_argument("MaxPool2D: kernel must be >1");
}

Tensor MaxPool2D::forward(const Tensor& input, bool training) {
  check_nchw(input, "MaxPool2D");
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  if (h % k_ != 0 || w % k_ != 0) {
    throw std::invalid_argument("MaxPool2D: H and W must be divisible by k");
  }
  const int oh = h / k_, ow = w / k_;
  // Fully overwritten below -- skip the zero memset.
  Tensor out = Tensor::uninit({n, c, oh, ow});
  const float* x = input.data();
  float* y = out.data();
  if (!training) {
    // Inference fast path: same first-max scan order (bit-identical
    // values), but no argmax bookkeeping and no per-element index math.
    const std::int64_t planes = static_cast<std::int64_t>(n) * c;
    std::size_t oi = 0;
    if (k_ == 2) {
      // Branchless 2x2 window: vertical max per column, then the
      // horizontal pair. Tie resolution keeps the earlier element in the
      // scan order (ternaries prefer their second operand), so even mixed
      // +-0.0 windows reproduce the generic scan bit-for-bit.
      for (std::int64_t pl = 0; pl < planes; ++pl) {
        const float* plane = x + static_cast<std::size_t>(pl) * h * w;
        for (int r = 0; r < oh; ++r) {
          const float* a = plane + static_cast<std::size_t>(2 * r) * w;
          const float* b = a + w;
          for (int j = 0; j < ow; ++j, ++oi) {
            const float a0 = a[2 * j], a1 = a[2 * j + 1];
            const float b0 = b[2 * j], b1 = b[2 * j + 1];
            const float m0 = b0 > a0 ? b0 : a0;
            const float m1 = b1 > a1 ? b1 : a1;
            y[oi] = m1 > m0 ? m1 : m0;
          }
        }
      }
      return out;
    }
    for (std::int64_t pl = 0; pl < planes; ++pl) {
      const float* plane = x + static_cast<std::size_t>(pl) * h * w;
      for (int r = 0; r < oh; ++r) {
        const float* rbase = plane + static_cast<std::size_t>(r) * k_ * w;
        for (int col = 0; col < ow; ++col, ++oi) {
          const float* cell = rbase + static_cast<std::size_t>(col) * k_;
          float best = cell[0];
          for (int dr = 0; dr < k_; ++dr) {
            const float* prow = cell + static_cast<std::size_t>(dr) * w;
            for (int dc = 0; dc < k_; ++dc) {
              if (prow[dc] > best) best = prow[dc];
            }
          }
          y[oi] = best;
        }
      }
    }
    return out;
  }
  input_shape_ = input.shape();
  argmax_.assign(out.numel(), 0);
  std::size_t oi = 0;
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x + (static_cast<std::size_t>(img) * c + ch) * h * w;
      const std::size_t plane_base =
          (static_cast<std::size_t>(img) * c + ch) * h * w;
      for (int r = 0; r < oh; ++r) {
        for (int col = 0; col < ow; ++col, ++oi) {
          float best = plane[static_cast<std::size_t>(r * k_) * w + col * k_];
          int best_idx = r * k_ * w + col * k_;
          for (int dr = 0; dr < k_; ++dr) {
            for (int dc = 0; dc < k_; ++dc) {
              const int idx = (r * k_ + dr) * w + (col * k_ + dc);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          y[oi] = best;
          argmax_[oi] = static_cast<int>(plane_base) + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("MaxPool2D::backward before forward");
  }
  if (grad_output.numel() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2D::backward: grad shape mismatch");
  }
  Tensor grad_in(input_shape_);
  float* gi = grad_in.data();
  const float* g = grad_output.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    gi[argmax_[i]] += g[i];
  }
  return grad_in;
}

AvgPool2D::AvgPool2D(int kernel) : k_(kernel) {
  if (kernel <= 1) throw std::invalid_argument("AvgPool2D: kernel must be >1");
}

Tensor AvgPool2D::forward(const Tensor& input, bool training) {
  check_nchw(input, "AvgPool2D");
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  if (h % k_ != 0 || w % k_ != 0) {
    throw std::invalid_argument("AvgPool2D: H and W must be divisible by k");
  }
  if (training) input_shape_ = input.shape();
  const int oh = h / k_, ow = w / k_;
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  Tensor out = Tensor::uninit({n, c, oh, ow});
  const float* x = input.data();
  float* y = out.data();
  std::size_t oi = 0;
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x + (static_cast<std::size_t>(img) * c + ch) * h * w;
      for (int r = 0; r < oh; ++r) {
        for (int col = 0; col < ow; ++col, ++oi) {
          float acc = 0.0f;
          for (int dr = 0; dr < k_; ++dr) {
            for (int dc = 0; dc < k_; ++dc) {
              acc += plane[(r * k_ + dr) * w + (col * k_ + dc)];
            }
          }
          y[oi] = acc * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("AvgPool2D::backward before forward");
  }
  const int n = input_shape_[0], c = input_shape_[1], h = input_shape_[2],
            w = input_shape_[3];
  const int oh = h / k_, ow = w / k_;
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  Tensor grad_in(input_shape_);
  float* gi = grad_in.data();
  const float* g = grad_output.data();
  std::size_t oi = 0;
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      float* plane = gi + (static_cast<std::size_t>(img) * c + ch) * h * w;
      for (int r = 0; r < oh; ++r) {
        for (int col = 0; col < ow; ++col, ++oi) {
          const float v = g[oi] * inv;
          for (int dr = 0; dr < k_; ++dr) {
            for (int dc = 0; dc < k_; ++dc) {
              plane[(r * k_ + dr) * w + (col * k_ + dc)] += v;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  check_nchw(input, "GlobalAvgPool");
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  if (training) input_shape_ = input.shape();
  const float inv = 1.0f / static_cast<float>(h * w);
  Tensor out = Tensor::uninit({n, c});
  const float* x = input.data();
  float* y = out.data();
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x + (static_cast<std::size_t>(img) * c + ch) * h * w;
      double acc = 0.0;
      for (int i = 0; i < h * w; ++i) acc += plane[i];
      y[static_cast<std::size_t>(img) * c + ch] =
          static_cast<float>(acc) * inv;
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("GlobalAvgPool::backward before forward");
  }
  const int n = input_shape_[0], c = input_shape_[1], h = input_shape_[2],
            w = input_shape_[3];
  const float inv = 1.0f / static_cast<float>(h * w);
  Tensor grad_in(input_shape_);
  float* gi = grad_in.data();
  const float* g = grad_output.data();
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float v = g[static_cast<std::size_t>(img) * c + ch] * inv;
      float* plane = gi + (static_cast<std::size_t>(img) * c + ch) * h * w;
      for (int i = 0; i < h * w; ++i) plane[i] = v;
    }
  }
  return grad_in;
}

ShapeContract MaxPool2D::shape_contract(
    const std::vector<int>& input_shape) const {
  return pool_contract(input_shape, k_, "MaxPool2D");
}

ShapeContract AvgPool2D::shape_contract(
    const std::vector<int>& input_shape) const {
  return pool_contract(input_shape, k_, "AvgPool2D");
}

ShapeContract GlobalAvgPool::shape_contract(
    const std::vector<int>& input_shape) const {
  if (input_shape.size() != 4) {
    return ShapeContract::bad(
        "GlobalAvgPool expects rank-4 NCHW input, got rank " +
        std::to_string(input_shape.size()));
  }
  return ShapeContract::ok({input_shape[0], input_shape[1]});
}

}  // namespace darnet::nn
