#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "check/check.hpp"

namespace darnet::nn {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be positive");
}

void Sgd::step(const std::vector<Param*>& params) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (Param* p : params) velocity_.emplace_back(p->value.shape());
  }
  if (velocity_.size() != params.size()) {
    throw std::logic_error("Sgd: parameter list changed between steps");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    float* w = p.value.data();
    float* g = p.grad.data();
    float* v = velocity_[i].data();
    const std::size_t n = p.value.numel();
    const float lr = static_cast<float>(lr_);
    const float mu = static_cast<float>(momentum_);
    const float wd = static_cast<float>(weight_decay_);
    for (std::size_t j = 0; j < n; ++j) {
      v[j] = mu * v[j] + g[j];
      w[j] -= lr * (v[j] + wd * w[j]);
      g[j] = 0.0f;
    }
    p.mark_dirty();  // invalidate packed-weight caches (Dense/Conv2D)
    DARNET_CHECK_FINITE(p.value.flat(),
                        "Sgd::step updated param #" + std::to_string(i));
  }
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be positive");
}

void Adam::step(const std::vector<Param*>& params) {
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (Param* p : params) {
      m_.emplace_back(p->value.shape());
      v_.emplace_back(p->value.shape());
    }
  }
  if (m_.size() != params.size()) {
    throw std::logic_error("Adam: parameter list changed between steps");
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, t_);
  const double bias2 = 1.0 - std::pow(beta2_, t_);
  const float lr_t = static_cast<float>(lr_ * std::sqrt(bias2) / bias1);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(epsilon_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    float* w = p.value.data();
    float* g = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::size_t n = p.value.numel();
    for (std::size_t j = 0; j < n; ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      w[j] -= lr_t * m[j] / (std::sqrt(v[j]) + eps);
      g[j] = 0.0f;
    }
    p.mark_dirty();  // invalidate packed-weight caches (Dense/Conv2D)
    DARNET_CHECK_FINITE(p.value.flat(),
                        "Adam::step updated param #" + std::to_string(i));
  }
}

double clip_grad_norm(const std::vector<Param*>& params, double max_norm) {
  double sq = 0.0;
  for (Param* p : params) {
    for (float g : p->grad.flat()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Param* p : params) {
      for (float& g : p->grad.flat()) g *= scale;
    }
  }
  return norm;
}

}  // namespace darnet::nn
