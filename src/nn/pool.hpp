// Pooling layers over NCHW tensors.
#pragma once

#include "nn/layer.hpp"

namespace darnet::nn {

/// Non-overlapping max pooling (kernel == stride). Input H/W must be
/// divisible by the kernel.
class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(int kernel);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2D"; }
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  int k_;
  std::vector<int> argmax_;       // flat input index per output element
  std::vector<int> input_shape_;  // NCHW of forward input
};

/// Non-overlapping average pooling (kernel == stride). Used by inception
/// pool branches.
class AvgPool2D final : public Layer {
 public:
  explicit AvgPool2D(int kernel);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "AvgPool2D"; }
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  int k_;
  std::vector<int> input_shape_;
};

/// Collapses each channel plane to its mean: [N, C, H, W] -> [N, C].
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  std::vector<int> input_shape_;
};

}  // namespace darnet::nn
