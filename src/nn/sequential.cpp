#include "nn/sequential.hpp"

namespace darnet::nn {

Sequential& Sequential::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  if (layers_.empty()) return input;
  // First layer reads the caller's tensor; every later layer receives the
  // previous activation as an rvalue so caching layers (Conv2D, Dense,
  // BiLstm) can steal the buffer instead of deep-copying it.
  Tensor x = layers_.front()->forward(input, training);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    x = layers_[i]->forward_moved(std::move(x), training);
  }
  return x;
}

Tensor Sequential::forward_moved(Tensor&& input, bool training) {
  Tensor x = std::move(input);
  for (auto& layer : layers_) x = layer->forward_moved(std::move(x), training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

void Sequential::save_params(util::BinaryWriter& writer) {
  const auto all = params();
  writer.write_u32(static_cast<std::uint32_t>(all.size()));
  for (Param* p : all) p->value.serialize(writer);
}

void Sequential::load_params(util::BinaryReader& reader) {
  const auto all = params();
  const auto n = reader.read_u32();
  if (n != all.size()) {
    throw std::invalid_argument(
        "Sequential::load_params: checkpoint/architecture mismatch");
  }
  for (Param* p : all) {
    Tensor loaded = Tensor::deserialize(reader);
    if (!loaded.same_shape(p->value)) {
      throw std::invalid_argument(
          "Sequential::load_params: parameter shape mismatch");
    }
    p->value = std::move(loaded);
    p->grad = Tensor(p->value.shape());
  }
}

void zero_grads(Layer& model) {
  for (Param* p : model.params()) p->zero_grad();
}

}  // namespace darnet::nn
