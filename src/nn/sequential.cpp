#include "nn/sequential.hpp"

#include <sstream>

#include "check/check.hpp"
#include "obs/obs.hpp"

namespace darnet::nn {

namespace {

[[maybe_unused]] std::string shape_string(const std::vector<int>& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

}  // namespace

Sequential& Sequential::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

ShapeContract Sequential::shape_contract(
    const std::vector<int>& input_shape) const {
  std::vector<int> shape = input_shape;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const ShapeContract c = layers_[i]->shape_contract(shape);
    if (c.kind == ShapeContract::Kind::kBad) {
      return ShapeContract::bad("layer #" + std::to_string(i) + " (" +
                                layers_[i]->name() + "): " + c.error);
    }
    if (c.kind == ShapeContract::Kind::kUnchecked) {
      return ShapeContract::unchecked();
    }
    shape = c.output_shape;
  }
  return ShapeContract::ok(std::move(shape));
}

#ifdef DARNET_CHECKED
void Sequential::verify_boundary(std::size_t i,
                                 const std::vector<int>& in_shape,
                                 const Tensor& output) const {
  const Layer& layer = *layers_[i];
  const std::string where =
      "layer #" + std::to_string(i) + " (" + layer.name() + ")";
  const ShapeContract c = layer.shape_contract(in_shape);
  if (c.kind == ShapeContract::Kind::kBad) {
    check::fail("layer shape contract", __FILE__, __LINE__,
                "Sequential::" + where + ": input " + shape_string(in_shape) +
                    " violates contract: " + c.error);
  }
  if (c.kind == ShapeContract::Kind::kOk &&
      c.output_shape != output.shape()) {
    check::fail("layer shape contract", __FILE__, __LINE__,
                "Sequential::" + where + ": declared output " +
                    shape_string(c.output_shape) + " but produced " +
                    shape_string(output.shape()));
  }
  DARNET_CHECK_FINITE(output.flat(), "forward output of " + where);
}
#endif

Tensor Sequential::forward(const Tensor& input, bool training) {
  if (layers_.empty()) return input;
  DARNET_TIMER("nn/forward_ns");
#ifdef DARNET_CHECKED
  checked_in_shapes_.assign(layers_.size(), {});
  checked_in_shapes_[0] = input.shape();
#endif
  // First layer reads the caller's tensor; every later layer receives the
  // previous activation as an rvalue so caching layers (Conv2D, Dense,
  // BiLstm) can steal the buffer instead of deep-copying it.
  Tensor x;
  {
    DARNET_SPAN_DETAIL("nn/layer_forward", layers_.front()->name());
    x = layers_.front()->forward(input, training);
  }
#ifdef DARNET_CHECKED
  verify_boundary(0, checked_in_shapes_[0], x);
#endif
  for (std::size_t i = 1; i < layers_.size(); ++i) {
#ifdef DARNET_CHECKED
    checked_in_shapes_[i] = x.shape();
#endif
    {
      DARNET_SPAN_DETAIL("nn/layer_forward", layers_[i]->name());
      x = layers_[i]->forward_moved(std::move(x), training);
    }
#ifdef DARNET_CHECKED
    verify_boundary(i, checked_in_shapes_[i], x);
#endif
  }
  return x;
}

Tensor Sequential::forward_moved(Tensor&& input, bool training) {
  DARNET_TIMER("nn/forward_ns");
  Tensor x = std::move(input);
#ifdef DARNET_CHECKED
  checked_in_shapes_.assign(layers_.size(), {});
#endif
  for (std::size_t i = 0; i < layers_.size(); ++i) {
#ifdef DARNET_CHECKED
    checked_in_shapes_[i] = x.shape();
#endif
    {
      DARNET_SPAN_DETAIL("nn/layer_forward", layers_[i]->name());
      x = layers_[i]->forward_moved(std::move(x), training);
    }
#ifdef DARNET_CHECKED
    verify_boundary(i, checked_in_shapes_[i], x);
#endif
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  DARNET_TIMER("nn/backward_ns");
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    {
      DARNET_SPAN_DETAIL("nn/layer_backward", (*it)->name());
      g = (*it)->backward(g);
    }
#ifdef DARNET_CHECKED
    const auto i =
        static_cast<std::size_t>(std::distance(it, layers_.rend())) - 1;
    const std::string where =
        "layer #" + std::to_string(i) + " (" + (*it)->name() + ")";
    if (i < checked_in_shapes_.size() && !checked_in_shapes_[i].empty()) {
      DARNET_CHECK_MSG(g.shape() == checked_in_shapes_[i],
                       "Sequential::" + where + ": input-gradient shape " +
                           shape_string(g.shape()) +
                           " != forward input shape " +
                           shape_string(checked_in_shapes_[i]));
    }
    DARNET_CHECK_FINITE(g.flat(), "backward gradient of " + where);
#endif
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

void Sequential::save_params(util::BinaryWriter& writer) {
  const auto all = params();
  writer.write_u32(static_cast<std::uint32_t>(all.size()));
  for (Param* p : all) p->value.serialize(writer);
}

void Sequential::load_params(util::BinaryReader& reader) {
  const auto all = params();
  const auto n = reader.read_u32();
  if (n != all.size()) {
    throw std::invalid_argument(
        "Sequential::load_params: checkpoint/architecture mismatch");
  }
  for (Param* p : all) {
    Tensor loaded = Tensor::deserialize(reader);
    if (!loaded.same_shape(p->value)) {
      throw std::invalid_argument(
          "Sequential::load_params: parameter shape mismatch");
    }
    p->value = std::move(loaded);
    p->grad = Tensor(p->value.shape());
    p->mark_dirty();  // invalidate packed-weight caches (Dense/Conv2D)
  }
}

void zero_grads(Layer& model) {
  for (Param* p : model.params()) p->zero_grad();
}

}  // namespace darnet::nn
