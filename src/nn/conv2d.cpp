#include "nn/conv2d.hpp"

#include <algorithm>

namespace darnet::nn {

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int padding,
               util::Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      pad_(padding),
      weight_(Tensor::he_normal({out_channels, in_channels, kernel, kernel},
                                in_channels * kernel * kernel, rng)),
      bias_(Tensor({out_channels})) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || padding < 0) {
    throw std::invalid_argument("Conv2D: invalid hyper-parameters");
  }
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv2D::forward: expected NCHW with C=" +
                                std::to_string(in_ch_) + ", got " +
                                input.shape_string());
  }
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = h + 2 * pad_ - k_ + 1;
  const int ow = w + 2 * pad_ - k_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("Conv2D::forward: kernel larger than input");
  }
  if (training) cached_input_ = input;

  Tensor out({n, out_ch_, oh, ow});
  const float* wts = weight_.value.data();
  const float* bias = bias_.value.data();
  const float* in = input.data();
  float* o = out.data();

  const std::size_t in_img = static_cast<std::size_t>(in_ch_) * h * w;
  const std::size_t out_img = static_cast<std::size_t>(out_ch_) * oh * ow;

  for (int img = 0; img < n; ++img) {
    const float* x = in + img * in_img;
    float* y = o + img * out_img;
    for (int oc = 0; oc < out_ch_; ++oc) {
      float* yplane = y + static_cast<std::size_t>(oc) * oh * ow;
      std::fill(yplane, yplane + static_cast<std::size_t>(oh) * ow, bias[oc]);
      for (int ic = 0; ic < in_ch_; ++ic) {
        const float* xplane = x + static_cast<std::size_t>(ic) * h * w;
        const float* kern =
            wts + ((static_cast<std::size_t>(oc) * in_ch_ + ic) * k_) * k_;
        for (int kr = 0; kr < k_; ++kr) {
          for (int kc = 0; kc < k_; ++kc) {
            const float kv = kern[kr * k_ + kc];
            if (kv == 0.0f) continue;
            // Valid output range for this kernel offset.
            const int r0 = std::max(0, pad_ - kr);
            const int r1 = std::min(oh, h + pad_ - kr);
            const int c0 = std::max(0, pad_ - kc);
            const int c1 = std::min(ow, w + pad_ - kc);
            for (int r = r0; r < r1; ++r) {
              const float* xrow =
                  xplane + static_cast<std::size_t>(r + kr - pad_) * w +
                  (c0 + kc - pad_);
              float* yrow = yplane + static_cast<std::size_t>(r) * ow + c0;
              const int len = c1 - c0;
              for (int c = 0; c < len; ++c) yrow[c] += kv * xrow[c];
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2D::backward before forward(training=true)");
  }
  const Tensor& input = cached_input_;
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = grad_output.dim(2), ow = grad_output.dim(3);
  if (grad_output.dim(0) != n || grad_output.dim(1) != out_ch_) {
    throw std::invalid_argument("Conv2D::backward: grad shape mismatch");
  }

  Tensor grad_in(input.shape());
  const float* wts = weight_.value.data();
  float* dw = weight_.grad.data();
  float* db = bias_.grad.data();
  const float* in = input.data();
  const float* g = grad_output.data();
  float* gi = grad_in.data();

  const std::size_t in_img = static_cast<std::size_t>(in_ch_) * h * w;
  const std::size_t out_img = static_cast<std::size_t>(out_ch_) * oh * ow;

  for (int img = 0; img < n; ++img) {
    const float* x = in + img * in_img;
    const float* gy = g + img * out_img;
    float* gx = gi + img * in_img;
    for (int oc = 0; oc < out_ch_; ++oc) {
      const float* gplane = gy + static_cast<std::size_t>(oc) * oh * ow;
      // Bias gradient: sum over the output plane.
      double acc = 0.0;
      for (std::size_t i = 0; i < static_cast<std::size_t>(oh) * ow; ++i) {
        acc += gplane[i];
      }
      db[oc] += static_cast<float>(acc);

      for (int ic = 0; ic < in_ch_; ++ic) {
        const float* xplane = x + static_cast<std::size_t>(ic) * h * w;
        float* gxplane = gx + static_cast<std::size_t>(ic) * h * w;
        const std::size_t kbase =
            (static_cast<std::size_t>(oc) * in_ch_ + ic) * k_ * k_;
        for (int kr = 0; kr < k_; ++kr) {
          for (int kc = 0; kc < k_; ++kc) {
            const int r0 = std::max(0, pad_ - kr);
            const int r1 = std::min(oh, h + pad_ - kr);
            const int c0 = std::max(0, pad_ - kc);
            const int c1 = std::min(ow, w + pad_ - kc);
            const float kv = wts[kbase + kr * k_ + kc];
            double wacc = 0.0;
            for (int r = r0; r < r1; ++r) {
              const float* xrow =
                  xplane + static_cast<std::size_t>(r + kr - pad_) * w +
                  (c0 + kc - pad_);
              float* gxrow =
                  gxplane + static_cast<std::size_t>(r + kr - pad_) * w +
                  (c0 + kc - pad_);
              const float* grow = gplane + static_cast<std::size_t>(r) * ow + c0;
              const int len = c1 - c0;
              for (int c = 0; c < len; ++c) {
                wacc += static_cast<double>(xrow[c]) * grow[c];
                gxrow[c] += kv * grow[c];
              }
            }
            dw[kbase + kr * k_ + kc] += static_cast<float>(wacc);
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace darnet::nn
