#include "nn/conv2d.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "check/check.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "tensor/arena.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace darnet::nn {

namespace kernels = tensor::kernels;

namespace {

// Work below this many flops is not worth a dispatch to the pool; used to
// derive the per-image grain for batch sharding.
constexpr std::int64_t kChunkFlops = 1 << 18;

std::int64_t image_grain(std::int64_t flops_per_image) noexcept {
  return std::max<std::int64_t>(
      1, kChunkFlops / std::max<std::int64_t>(1, flops_per_image));
}

// Copy the in_ch input planes into a zero-bordered (h+2p) x (w+2p) layout
// for the branch-free direct kernel. Much smaller than an im2col unfold
// (in_ch vs in_ch*k*k copies of the plane).
void pad_planes(const float* x, int in_ch, int h, int w, int pad,
                float* xp) {
  const int ph = h + 2 * pad, pw = w + 2 * pad;
  for (int ic = 0; ic < in_ch; ++ic) {
    const float* src = x + static_cast<std::size_t>(ic) * h * w;
    float* dst = xp + static_cast<std::size_t>(ic) * ph * pw;
    std::fill(dst, dst + static_cast<std::size_t>(pad) * pw, 0.0f);
    float* row = dst + static_cast<std::size_t>(pad) * pw;
    for (int r = 0; r < h; ++r, row += pw) {
      std::fill(row, row + pad, 0.0f);
      const float* srow = src + static_cast<std::size_t>(r) * w;
      std::copy(srow, srow + w, row + pad);
      std::fill(row + pad + w, row + pw, 0.0f);
    }
    std::fill(row, row + static_cast<std::size_t>(pad) * pw, 0.0f);
  }
}

}  // namespace

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int padding,
               util::Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      pad_(padding),
      weight_(Tensor::he_normal({out_channels, in_channels, kernel, kernel},
                                in_channels * kernel * kernel, rng)),
      bias_(Tensor({out_channels})) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || padding < 0) {
    throw std::invalid_argument("Conv2D: invalid hyper-parameters");
  }
}

bool Conv2D::use_gemm(int oh, int ow) const noexcept {
  // The patch matrix must be tall enough to amortise its construction and
  // wide enough that the register-tiled GEMM kernel can stream B rows.
  const std::int64_t patch = static_cast<std::int64_t>(in_ch_) * k_ * k_;
  const std::int64_t pixels = static_cast<std::int64_t>(oh) * ow;
  return patch * pixels >= 2048 && pixels >= 64;
}

void Conv2D::validate_input(const Tensor& input) const {
  if (input.rank() != 4 || input.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv2D::forward: expected NCHW with C=" +
                                std::to_string(in_ch_) + ", got " +
                                input.shape_string());
  }
  const int h = input.dim(2), w = input.dim(3);
  if (h + 2 * pad_ - k_ + 1 <= 0 || w + 2 * pad_ - k_ + 1 <= 0) {
    throw std::invalid_argument("Conv2D::forward: kernel larger than input");
  }
}

ShapeContract Conv2D::shape_contract(
    const std::vector<int>& input_shape) const {
  if (input_shape.size() != 4) {
    return ShapeContract::bad("Conv2D expects rank-4 NCHW input, got rank " +
                              std::to_string(input_shape.size()));
  }
  if (input_shape[1] != in_ch_) {
    return ShapeContract::bad("Conv2D expects C=" + std::to_string(in_ch_) +
                              " input channels, got " +
                              std::to_string(input_shape[1]));
  }
  const int oh = input_shape[2] + 2 * pad_ - k_ + 1;
  const int ow = input_shape[3] + 2 * pad_ - k_ + 1;
  if (oh <= 0 || ow <= 0) {
    return ShapeContract::bad("Conv2D kernel " + std::to_string(k_) +
                              " larger than padded input plane");
  }
  return ShapeContract::ok({input_shape[0], out_ch_, oh, ow});
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  validate_input(input);
  if (training) cached_input_ = input;
  return run_forward(input);
}

Tensor Conv2D::forward_moved(Tensor&& input, bool training) {
  validate_input(input);
  if (training) {
    // Steal the caller's buffer instead of deep-copying it; the forward
    // pass then reads the activation out of the cache.
    cached_input_ = std::move(input);
    return run_forward(cached_input_);
  }
  return run_forward(input);
}

void Conv2D::im2col(const float* x, int h, int w, int oh, int ow,
                    float* col) const {
  const std::size_t pixels = static_cast<std::size_t>(oh) * ow;
  for (int ic = 0; ic < in_ch_; ++ic) {
    const float* xplane = x + static_cast<std::size_t>(ic) * h * w;
    for (int kr = 0; kr < k_; ++kr) {
      for (int kc = 0; kc < k_; ++kc) {
        float* row =
            col + (static_cast<std::size_t>(ic) * k_ * k_ + kr * k_ + kc) *
                      pixels;
        const int c0 = std::max(0, pad_ - kc);
        const int c1 = std::min(ow, w + pad_ - kc);
        for (int r = 0; r < oh; ++r) {
          float* dst = row + static_cast<std::size_t>(r) * ow;
          const int sr = r + kr - pad_;
          if (sr < 0 || sr >= h || c0 >= c1) {
            std::fill(dst, dst + ow, 0.0f);
            continue;
          }
          std::fill(dst, dst + c0, 0.0f);
          const float* src =
              xplane + static_cast<std::size_t>(sr) * w + (c0 + kc - pad_);
          std::copy(src, src + (c1 - c0), dst + c0);
          std::fill(dst + c1, dst + ow, 0.0f);
        }
      }
    }
  }
}

void Conv2D::forward_image_direct(const float* x, int h, int w, int oh,
                                  int ow, float* y) const {
  const float* wts = weight_.value.data();
  const float* bias = bias_.value.data();
  for (int oc = 0; oc < out_ch_; ++oc) {
    float* yplane = y + static_cast<std::size_t>(oc) * oh * ow;
    std::fill(yplane, yplane + static_cast<std::size_t>(oh) * ow, bias[oc]);
    for (int ic = 0; ic < in_ch_; ++ic) {
      const float* xplane = x + static_cast<std::size_t>(ic) * h * w;
      const float* kern =
          wts + ((static_cast<std::size_t>(oc) * in_ch_ + ic) * k_) * k_;
      for (int kr = 0; kr < k_; ++kr) {
        for (int kc = 0; kc < k_; ++kc) {
          const float kv = kern[kr * k_ + kc];
          // Valid output range for this kernel offset. (No zero-skip on kv:
          // the branch costs more than the multiply and adding kv*x == +-0
          // never changes accumulator bits.)
          const int r0 = std::max(0, pad_ - kr);
          const int r1 = std::min(oh, h + pad_ - kr);
          const int c0 = std::max(0, pad_ - kc);
          const int c1 = std::min(ow, w + pad_ - kc);
          for (int r = r0; r < r1; ++r) {
            const float* xrow =
                xplane + static_cast<std::size_t>(r + kr - pad_) * w +
                (c0 + kc - pad_);
            float* yrow = yplane + static_cast<std::size_t>(r) * ow + c0;
            const int len = c1 - c0;
            for (int c = 0; c < len; ++c) yrow[c] += kv * xrow[c];
          }
        }
      }
    }
  }
}

void Conv2D::ensure_packed() const {
  if (packed_for_ == weight_.version) return;
  const int patch = in_ch_ * k_ * k_;
  packed_w_.resize_uninit(static_cast<std::size_t>(out_ch_) * patch);
  kernels::pack_rows_mr4(weight_.value.data(), out_ch_, patch,
                         packed_w_.data());
  packed_for_ = weight_.version;
  DARNET_COUNTER_ADD("engine/pack_total", 1);
}

Tensor Conv2D::run_forward(const Tensor& input) const {
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = h + 2 * pad_ - k_ + 1;
  const int ow = w + 2 * pad_ - k_ + 1;

  // Every element is written below (bias fill / overwrite-semantics
  // kernels / direct path's bias fill), so skip the zero memset.
  Tensor out = Tensor::uninit({n, out_ch_, oh, ow});
  const float* wts = weight_.value.data();
  const float* bias = bias_.value.data();
  const float* in = input.data();
  float* o = out.data();

  const int patch = in_ch_ * k_ * k_;
  const std::size_t pixels = static_cast<std::size_t>(oh) * ow;
  const std::size_t in_img = static_cast<std::size_t>(in_ch_) * h * w;
  const std::size_t out_img = static_cast<std::size_t>(out_ch_) * pixels;
  const bool gemm = use_gemm(oh, ow);
  // A 1x1 unpadded conv's patch matrix *is* the input plane matrix
  // ([in_ch, h*w] row-major -- exactly what im2col would copy out), so
  // both paths feed the GEMM the input directly. Bit-identical: the
  // unfold is a pure copy for k=1, pad=0.
  const bool unit = k_ == 1 && pad_ == 0;
  const kernels::Kernels* kv = kernels::active_kernels();
  // Vector dispatch: wide-enough spatial (k > 1) convs go to the
  // im2col-free direct kernel -- the unfold copy costs more than it buys
  // at these plane sizes -- while 1x1 convs keep the packed-panel GEMM
  // (B is the input plane matrix itself, and the 4-row panels share its
  // rows). Rows narrower than one vector stay on the GEMM path too.
  const bool vecdirect =
      kv != nullptr && !unit && ow >= kv->conv_min_ow;
  if (kv != nullptr && gemm && !vecdirect) ensure_packed();
  const int ph = h + 2 * pad_, pw = w + 2 * pad_;

  if (vecdirect && n == 1) {
    tensor::Storage xpad;
    const float* xp = in;
    if (pad_ > 0) {
      xpad.resize_uninit(static_cast<std::size_t>(in_ch_) * ph * pw);
      pad_planes(in, in_ch_, h, w, pad_, xpad.data());
      xp = xpad.data();
    }
    const std::int64_t oc_flops =
        2LL * patch * static_cast<std::int64_t>(pixels);
    parallel::parallel_for(
        0, out_ch_, image_grain(oc_flops),
        [&](std::int64_t i0, std::int64_t i1) {
          kv->conv2d_direct(xp, wts, bias, o, static_cast<int>(i0),
                            static_cast<int>(i1), in_ch_, k_, ph, pw, oh,
                            ow);
        });
    return out;
  }

  if (gemm && !vecdirect && n == 1) {
    // Single image (the streaming-inference hot path): unfold once, then
    // shard the GEMM's disjoint output rows across the pool.
    tensor::Storage col;
    const float* bmat = in;
    if (!unit) {
      col.resize_uninit(static_cast<std::size_t>(patch) * pixels);
      im2col(in, h, w, oh, ow, col.data());
      bmat = col.data();
    }
    const std::int64_t row_flops =
        2LL * patch * static_cast<std::int64_t>(pixels);
    if (kv != nullptr) {
      // Vector path: bias is folded into the packed-GEMM accumulators;
      // shard on 4-row panel boundaries (the kernel's precondition).
      const std::int64_t panels = (out_ch_ + 3) / 4;
      parallel::parallel_for(
          0, panels, image_grain(4 * row_flops),
          [&](std::int64_t p0, std::int64_t p1) {
            kv->gemm_bias_packed(packed_w_.data(), bias, bmat, o,
                                 static_cast<int>(4 * p0),
                                 std::min(out_ch_, static_cast<int>(4 * p1)),
                                 out_ch_, patch, static_cast<int>(pixels));
          });
      return out;
    }
    parallel::parallel_for(
        0, out_ch_, image_grain(row_flops),
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t oc = i0; oc < i1; ++oc) {
            std::fill(o + oc * pixels, o + (oc + 1) * pixels,
                      bias[static_cast<std::size_t>(oc)]);
          }
          tensor::gemm_rows_serial(wts, bmat, o, i0, i1, patch,
                                   static_cast<int>(pixels));
        });
    return out;
  }

  const std::int64_t flops =
      2LL * out_ch_ * patch * static_cast<std::int64_t>(pixels);
#ifdef DARNET_CHECKED
  // Checked builds: batch shards must write disjoint images covering the
  // batch exactly.
  check::ShardWriteTracker tracker("Conv2D::forward batch images");
#endif
  parallel::parallel_for(
      0, n, image_grain(flops), [&](std::int64_t i0, std::int64_t i1) {
#ifdef DARNET_CHECKED
        tracker.record(i0, i1);
#endif
        tensor::Storage col;
        if (gemm && !unit && !vecdirect) {
          col.resize_uninit(static_cast<std::size_t>(patch) * pixels);
        }
        tensor::Storage xpad;
        if (vecdirect && pad_ > 0) {
          xpad.resize_uninit(static_cast<std::size_t>(in_ch_) * ph * pw);
        }
        for (std::int64_t img = i0; img < i1; ++img) {
          const float* x = in + static_cast<std::size_t>(img) * in_img;
          float* y = o + static_cast<std::size_t>(img) * out_img;
          if (vecdirect) {
            const float* xp = x;
            if (pad_ > 0) {
              pad_planes(x, in_ch_, h, w, pad_, xpad.data());
              xp = xpad.data();
            }
            kv->conv2d_direct(xp, wts, bias, y, 0, out_ch_, in_ch_, k_, ph,
                              pw, oh, ow);
          } else if (gemm) {
            const float* bmat = x;
            if (!unit) {
              im2col(x, h, w, oh, ow, col.data());
              bmat = col.data();
            }
            if (kv != nullptr) {
              kv->gemm_bias_packed(packed_w_.data(), bias, bmat, y, 0,
                                   out_ch_, out_ch_, patch,
                                   static_cast<int>(pixels));
            } else {
              for (int oc = 0; oc < out_ch_; ++oc) {
                std::fill(y + oc * pixels, y + (oc + 1) * pixels, bias[oc]);
              }
              tensor::gemm_rows_serial(wts, bmat, y, 0, out_ch_, patch,
                                       static_cast<int>(pixels));
            }
          } else {
            forward_image_direct(x, h, w, oh, ow, y);
          }
        }
      });
#ifdef DARNET_CHECKED
  tracker.expect_exact_cover(0, n);
#endif
  return out;
}

void Conv2D::backward_image_direct(const float* x, const float* gy,
                                   float* gx, int h, int w, int oh, int ow,
                                   float* dw_out, float* db_out) const {
  const float* wts = weight_.value.data();
  for (int oc = 0; oc < out_ch_; ++oc) {
    const float* gplane = gy + static_cast<std::size_t>(oc) * oh * ow;
    // Bias gradient: sum over the output plane.
    double acc = 0.0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(oh) * ow; ++i) {
      acc += gplane[i];
    }
    db_out[oc] += static_cast<float>(acc);

    for (int ic = 0; ic < in_ch_; ++ic) {
      const float* xplane = x + static_cast<std::size_t>(ic) * h * w;
      float* gxplane = gx + static_cast<std::size_t>(ic) * h * w;
      const std::size_t kbase =
          (static_cast<std::size_t>(oc) * in_ch_ + ic) * k_ * k_;
      for (int kr = 0; kr < k_; ++kr) {
        for (int kc = 0; kc < k_; ++kc) {
          const int r0 = std::max(0, pad_ - kr);
          const int r1 = std::min(oh, h + pad_ - kr);
          const int c0 = std::max(0, pad_ - kc);
          const int c1 = std::min(ow, w + pad_ - kc);
          const float kv = wts[kbase + kr * k_ + kc];
          double wacc = 0.0;
          for (int r = r0; r < r1; ++r) {
            const float* xrow =
                xplane + static_cast<std::size_t>(r + kr - pad_) * w +
                (c0 + kc - pad_);
            float* gxrow =
                gxplane + static_cast<std::size_t>(r + kr - pad_) * w +
                (c0 + kc - pad_);
            const float* grow =
                gplane + static_cast<std::size_t>(r) * ow + c0;
            const int len = c1 - c0;
            for (int c = 0; c < len; ++c) {
              wacc += static_cast<double>(xrow[c]) * grow[c];
              gxrow[c] += kv * grow[c];
            }
          }
          dw_out[kbase + kr * k_ + kc] += static_cast<float>(wacc);
        }
      }
    }
  }
}

void Conv2D::backward_image_gemm(const float* col, const float* gy,
                                 float* gx, int h, int w, int oh, int ow,
                                 float* dw_out, float* db_out) const {
  const float* wts = weight_.value.data();
  const int patch = in_ch_ * k_ * k_;
  const std::size_t pixels = static_cast<std::size_t>(oh) * ow;

  // dW and db from the unfolded patch matrix. Each (oc, patch-row) pair is
  // a dot product over pixels in ascending order with a double accumulator
  // -- exactly the direct kernel's `wacc` sweep, with the padding zeros now
  // contributing 0.0 terms that leave the accumulator bits unchanged.
  for (int oc = 0; oc < out_ch_; ++oc) {
    const float* gplane = gy + static_cast<std::size_t>(oc) * pixels;
    double acc = 0.0;
    for (std::size_t i = 0; i < pixels; ++i) acc += gplane[i];
    db_out[oc] += static_cast<float>(acc);

    for (int kidx = 0; kidx < patch; ++kidx) {
      const float* crow = col + static_cast<std::size_t>(kidx) * pixels;
      double wacc = 0.0;
      for (std::size_t p = 0; p < pixels; ++p) {
        wacc += static_cast<double>(crow[p]) * gplane[p];
      }
      dw_out[static_cast<std::size_t>(oc) * patch + kidx] +=
          static_cast<float>(wacc);
    }
  }

  // dX stays on the direct kernel: a col2im of W^T * gY would regroup the
  // per-element sums (oc-major instead of the (oc, kr, kc) sweep) and break
  // bitwise reproducibility against the serial seed.
  for (int oc = 0; oc < out_ch_; ++oc) {
    const float* gplane = gy + static_cast<std::size_t>(oc) * pixels;
    for (int ic = 0; ic < in_ch_; ++ic) {
      float* gxplane = gx + static_cast<std::size_t>(ic) * h * w;
      const std::size_t kbase =
          (static_cast<std::size_t>(oc) * in_ch_ + ic) * k_ * k_;
      for (int kr = 0; kr < k_; ++kr) {
        for (int kc = 0; kc < k_; ++kc) {
          const int r0 = std::max(0, pad_ - kr);
          const int r1 = std::min(oh, h + pad_ - kr);
          const int c0 = std::max(0, pad_ - kc);
          const int c1 = std::min(ow, w + pad_ - kc);
          const float kv = wts[kbase + kr * k_ + kc];
          for (int r = r0; r < r1; ++r) {
            float* gxrow =
                gxplane + static_cast<std::size_t>(r + kr - pad_) * w +
                (c0 + kc - pad_);
            const float* grow =
                gplane + static_cast<std::size_t>(r) * ow + c0;
            const int len = c1 - c0;
            for (int c = 0; c < len; ++c) gxrow[c] += kv * grow[c];
          }
        }
      }
    }
  }
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2D::backward before forward(training=true)");
  }
  const Tensor& input = cached_input_;
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = grad_output.dim(2), ow = grad_output.dim(3);
  if (grad_output.dim(0) != n || grad_output.dim(1) != out_ch_) {
    throw std::invalid_argument("Conv2D::backward: grad shape mismatch");
  }

  Tensor grad_in(input.shape());
  const float* in = input.data();
  const float* g = grad_output.data();
  float* gi = grad_in.data();

  const int patch = in_ch_ * k_ * k_;
  const std::size_t pixels = static_cast<std::size_t>(oh) * ow;
  const std::size_t in_img = static_cast<std::size_t>(in_ch_) * h * w;
  const std::size_t out_img = static_cast<std::size_t>(out_ch_) * pixels;
  const std::size_t wsize = static_cast<std::size_t>(out_ch_) * patch;
  const bool gemm = use_gemm(oh, ow);
  const bool unit = k_ == 1 && pad_ == 0;  // im2col is the identity copy

  // Per-image partial gradients, reduced below in ascending image order so
  // the accumulated dW/db match the serial seed bit-for-bit regardless of
  // how the batch was sharded.
  tensor::Storage dw_part(static_cast<std::size_t>(n) * wsize);
  tensor::Storage db_part(static_cast<std::size_t>(n) * out_ch_);

  const std::int64_t flops =
      4LL * out_ch_ * patch * static_cast<std::int64_t>(pixels);
  parallel::parallel_for(
      0, n, image_grain(flops), [&](std::int64_t i0, std::int64_t i1) {
        tensor::Storage col;
        if (gemm && !unit) {
          col.resize_uninit(static_cast<std::size_t>(patch) * pixels);
        }
        for (std::int64_t img = i0; img < i1; ++img) {
          const float* x = in + static_cast<std::size_t>(img) * in_img;
          const float* gy = g + static_cast<std::size_t>(img) * out_img;
          float* gx = gi + static_cast<std::size_t>(img) * in_img;
          float* dw_out = dw_part.data() + static_cast<std::size_t>(img) * wsize;
          float* db_out =
              db_part.data() + static_cast<std::size_t>(img) * out_ch_;
          if (gemm) {
            const float* cmat = x;
            if (!unit) {
              im2col(x, h, w, oh, ow, col.data());
              cmat = col.data();
            }
            backward_image_gemm(cmat, gy, gx, h, w, oh, ow, dw_out,
                                db_out);
          } else {
            backward_image_direct(x, gy, gx, h, w, oh, ow, dw_out, db_out);
          }
        }
      });

  float* dw = weight_.grad.data();
  float* db = bias_.grad.data();
  for (int img = 0; img < n; ++img) {
    const float* wp = dw_part.data() + static_cast<std::size_t>(img) * wsize;
    for (std::size_t i = 0; i < wsize; ++i) dw[i] += wp[i];
    const float* bp = db_part.data() + static_cast<std::size_t>(img) * out_ch_;
    for (int oc = 0; oc < out_ch_; ++oc) db[oc] += bp[oc];
  }
  return grad_in;
}

}  // namespace darnet::nn
