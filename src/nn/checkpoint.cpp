#include "nn/checkpoint.hpp"

#include <fstream>

namespace darnet::nn {

namespace {
constexpr std::uint32_t kMagic = 0x44724e31;  // "DrN1"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_checkpoint(Sequential& model, const std::string& path) {
  util::BinaryWriter writer;
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  model.save_params(writer);

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_checkpoint: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(writer.bytes().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) throw std::runtime_error("save_checkpoint: write failed");
}

void load_checkpoint(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_checkpoint: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  util::BinaryReader reader(bytes);
  if (reader.read_u32() != kMagic) {
    throw std::runtime_error("load_checkpoint: not a DarNet checkpoint: " +
                             path);
  }
  if (reader.read_u32() != kVersion) {
    throw std::runtime_error("load_checkpoint: unsupported version in " +
                             path);
  }
  model.load_params(reader);
}

std::size_t transfer_matching_params(Sequential& source,
                                     Sequential& destination) {
  const auto src = source.params();
  const auto dst = destination.params();
  std::size_t copied = 0;
  for (std::size_t i = 0; i < src.size() && i < dst.size(); ++i) {
    if (!src[i]->value.same_shape(dst[i]->value)) break;
    dst[i]->value = src[i]->value;
    dst[i]->grad = Tensor(dst[i]->value.shape());
    ++copied;
  }
  return copied;
}

}  // namespace darnet::nn
