// Bidirectional LSTM layers for IMU time-series classification.
//
// The paper's IMU model is "a deep bidirectional LSTM network ... 2
// bidirectional LSTM cells", evaluated on sliding windows of 20 samples
// (4 Hz x 5 s). Layers here operate on [N, T, D] tensors and produce
// [N, T, 2H] (forward and backward hidden states concatenated per step),
// so two of them stack exactly as in the paper, followed by temporal
// pooling and a softmax classification layer.
#pragma once

#include "nn/layer.hpp"

namespace darnet::nn {

/// One direction of an LSTM (shared math for forward/backward-in-time).
/// Gate order in the fused weight matrices is [i, f, g, o].
struct LstmDirection {
  LstmDirection(int input_dim, int hidden_dim, util::Rng& rng);

  Param wx;  // [D, 4H]
  Param wh;  // [H, 4H]
  Param b;   // [4H]
  int input_dim;
  int hidden_dim;
};

/// Bidirectional LSTM over [N, T, D] -> [N, T, 2H].
class BiLstm final : public Layer {
 public:
  BiLstm(int input_dim, int hidden_dim, util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_moved(Tensor&& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "BiLstm"; }

  [[nodiscard]] int hidden_dim() const noexcept { return hidden_; }

  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  struct DirectionTrace {
    // Per-timestep activations cached for BPTT, each [N, H].
    std::vector<Tensor> i, f, g, o, c, tanh_c, h;
  };

  /// Run one direction. `reversed` walks t from T-1 down to 0.
  void run_direction(const Tensor& input, const LstmDirection& dir,
                     bool reversed, bool training, DirectionTrace& trace,
                     Tensor& output, int out_offset);

  /// BPTT for one direction; accumulates parameter grads and input grads.
  void backprop_direction(const Tensor& grad_output, int out_offset,
                          LstmDirection& dir, bool reversed,
                          const DirectionTrace& trace, Tensor& grad_input);

  int input_dim_;
  int hidden_;
  LstmDirection fwd_;
  LstmDirection bwd_;
  Tensor cached_input_;
  DirectionTrace fwd_trace_;
  DirectionTrace bwd_trace_;
};

/// Mean over the time axis: [N, T, F] -> [N, F].
class TemporalMeanPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override {
    return "TemporalMeanPool";
  }
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  std::vector<int> input_shape_;
};

}  // namespace darnet::nn
