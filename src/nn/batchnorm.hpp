// Batch normalisation (per-channel for NCHW, per-feature for [N, D]) --
// the normalisation Inception-V3 relies on; stabilises the MicroInception
// stem under aggressive learning rates.
#pragma once

#include "nn/layer.hpp"

namespace darnet::nn {

class BatchNorm final : public Layer {
 public:
  /// `features`: channel count (NCHW input) or feature count ([N, D]).
  BatchNorm(int features, double momentum = 0.9, double epsilon = 1e-5);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  [[nodiscard]] std::string name() const override { return "BatchNorm"; }

  [[nodiscard]] int features() const noexcept { return features_; }

  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  /// View any supported input as [N*spatial, C] slices: returns the per-
  /// element channel index layout parameters.
  void check_input(const Tensor& input) const;

  int features_;
  double momentum_;
  double epsilon_;
  Param gamma_;
  Param beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Forward cache for backward.
  Tensor x_hat_;
  Tensor batch_mean_;
  Tensor batch_inv_std_;
  std::vector<int> input_shape_;
};

}  // namespace darnet::nn
