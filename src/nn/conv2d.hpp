// 2-D convolution over NCHW tensors with stride 1 and symmetric zero
// padding. Kernels are [out_channels, in_channels, k, k].
//
// Two execution strategies share one numeric contract:
//   * im2col + register-tiled GEMM for production-sized shapes, and
//   * a direct sliding-window kernel for tiny ones (dispatch heuristic in
//     use_gemm()).
// Both accumulate every output element in the same ascending
// (ic, kr, kc) order as the original direct kernel, so they are
// bit-for-bit interchangeable; batches are sharded across images on the
// parallel::ThreadPool with per-image partial dW/db buffers reduced in
// fixed (ascending image) order. See DESIGN.md "Threading model".
#pragma once

#include <cstdint>

#include "nn/layer.hpp"
#include "tensor/arena.hpp"

namespace darnet::nn {

class Conv2D final : public Layer {
 public:
  /// `padding` of k/2 gives "same" output size for odd k.
  Conv2D(int in_channels, int out_channels, int kernel, int padding,
         util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_moved(Tensor&& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Conv2D"; }

  [[nodiscard]] int in_channels() const noexcept { return in_ch_; }
  [[nodiscard]] int out_channels() const noexcept { return out_ch_; }

  /// True when this layer would take the im2col+GEMM path for the given
  /// output plane size. Exposed for tests that pin the dispatch heuristic.
  [[nodiscard]] bool use_gemm(int oh, int ow) const noexcept;

  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  void validate_input(const Tensor& input) const;
  Tensor run_forward(const Tensor& input) const;

  /// Lazily (re-)pack weights into the vector-kernel panel layout
  /// (kernels::pack_rows_mr4). No-op while weight_.version matches the
  /// packed version; optimizer steps and load_params bump it. Only called
  /// on the vector-ISA path -- the scalar golden reads weight_.value.
  void ensure_packed() const;

  /// Unfold one image [in_ch, h, w] into a [in_ch*k*k, oh*ow] patch matrix
  /// (rows ordered (ic, kr, kc) -- the kernel's flattened layout). Padding
  /// positions are written as zeros.
  void im2col(const float* x, int h, int w, int oh, int ow, float* col) const;

  void forward_image_direct(const float* x, int h, int w, int oh, int ow,
                            float* y) const;
  void backward_image_direct(const float* x, const float* gy, float* gx,
                             int h, int w, int oh, int ow, float* dw_out,
                             float* db_out) const;
  void backward_image_gemm(const float* col, const float* gy, float* gx,
                           int h, int w, int oh, int ow, float* dw_out,
                           float* db_out) const;

  int in_ch_;
  int out_ch_;
  int k_;
  int pad_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
  // Packed-weight cache for the vector-ISA GEMM path (the scalar golden
  // reads weight_.value directly and never packs). packed_for_ is the
  // weight version the pack was taken at; ~0 means never packed.
  mutable tensor::Storage packed_w_;
  mutable std::uint64_t packed_for_{~0ull};
};

}  // namespace darnet::nn
