// 2-D convolution over NCHW tensors with stride 1 and symmetric zero
// padding. Kernels are [out_channels, in_channels, k, k].
#pragma once

#include "nn/layer.hpp"

namespace darnet::nn {

class Conv2D final : public Layer {
 public:
  /// `padding` of k/2 gives "same" output size for odd k.
  Conv2D(int in_channels, int out_channels, int kernel, int padding,
         util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Conv2D"; }

  [[nodiscard]] int in_channels() const noexcept { return in_ch_; }
  [[nodiscard]] int out_channels() const noexcept { return out_ch_; }

 private:
  int in_ch_;
  int out_ch_;
  int k_;
  int pad_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace darnet::nn
