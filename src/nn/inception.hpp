// Inception-style multi-branch block ("MicroInception").
//
// The paper fine-tunes Inception-V3; training a 24M-parameter network is a
// compute gate on this substrate (see DESIGN.md), so the frame model uses a
// scaled-down block that keeps the architectural idea the paper cites: four
// parallel branches at different receptive fields (1x1, 3x3, 5x5 factored
// as two 3x3s, and pooled 1x1), concatenated along channels.
#pragma once

#include "nn/layer.hpp"
#include "nn/sequential.hpp"

namespace darnet::nn {

/// Runs each branch on the same input and concatenates outputs along the
/// channel axis. All branches must preserve spatial dimensions and batch.
class ParallelConcat final : public Layer {
 public:
  ParallelConcat() = default;

  ParallelConcat& add_branch(LayerPtr branch);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "ParallelConcat"; }

  [[nodiscard]] std::size_t branch_count() const noexcept {
    return branches_.size();
  }

  /// Folds the branch contracts: kOk when every branch declares an output
  /// with matching batch/spatial dims (output channels are summed);
  /// kUnchecked as soon as any branch declines to declare.
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  std::vector<LayerPtr> branches_;
  std::vector<int> branch_channels_;  // from last forward
  tensor::Shape input_shape_;
};

/// Builds a MicroInception block for `in_channels` input feature maps:
///   branch A: 1x1 conv -> ReLU                        (ch_1x1 outputs)
///   branch B: 1x1 reduce -> ReLU -> 3x3 conv -> ReLU  (ch_3x3 outputs)
///   branch C: 1x1 reduce -> ReLU -> 3x3 -> ReLU -> 3x3 -> ReLU
///             (factored 5x5; ch_5x5 outputs)
///   branch D: 3x3 "pool-proxy" conv -> ReLU           (ch_pool outputs)
/// Output channels = ch_1x1 + ch_3x3 + ch_5x5 + ch_pool.
LayerPtr make_micro_inception(int in_channels, int ch_1x1, int ch_3x3,
                              int ch_5x5, int ch_pool, util::Rng& rng);

}  // namespace darnet::nn
