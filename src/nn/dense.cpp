#include "nn/dense.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace darnet::nn {

namespace kernels = tensor::kernels;

Dense::Dense(int in_features, int out_features, util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::he_normal({in_features, out_features}, in_features, rng)),
      bias_(Tensor({out_features})) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Dense: feature counts must be positive");
  }
}

void Dense::validate_input(const Tensor& input) const {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected [N, " +
                                std::to_string(in_) + "], got " +
                                input.shape_string());
  }
}

ShapeContract Dense::shape_contract(
    const std::vector<int>& input_shape) const {
  if (input_shape.size() != 2) {
    return ShapeContract::bad("Dense expects rank-2 [N, " +
                              std::to_string(in_) + "] input, got rank " +
                              std::to_string(input_shape.size()));
  }
  if (input_shape[1] != in_) {
    return ShapeContract::bad("Dense expects " + std::to_string(in_) +
                              " input features, got " +
                              std::to_string(input_shape[1]));
  }
  return ShapeContract::ok({input_shape[0], out_});
}

void Dense::ensure_packed() const {
  if (packed_for_ == weight_.version) return;
  packed_wt_.resize_uninit(static_cast<std::size_t>(in_) * out_);
  const float* w = weight_.value.data();
  for (int i = 0; i < in_; ++i) {
    for (int j = 0; j < out_; ++j) {
      packed_wt_[static_cast<std::size_t>(j) * in_ + i] =
          w[static_cast<std::size_t>(i) * out_ + j];
    }
  }
  packed_for_ = weight_.version;
  DARNET_COUNTER_ADD("engine/pack_total", 1);
}

Tensor Dense::affine(const Tensor& x) const {
  const kernels::Kernels* kv = kernels::active_kernels();
  if (kv != nullptr) {
    // Vector path: per-row dot products against the W^T pack with the
    // bias folded into each output element (overwrite semantics), sharded
    // over the disjoint output rows.
    ensure_packed();
    const int n = x.dim(0);
    Tensor out = Tensor::uninit({n, out_});
    const std::int64_t row_flops = 2LL * in_ * out_;
    const std::int64_t grain = std::max<std::int64_t>(
        1, (std::int64_t{1} << 18) / std::max<std::int64_t>(1, row_flops));
    const float* xp = x.data();
    const float* b = bias_.value.data();
    float* o = out.data();
    parallel::parallel_for(0, n, grain,
                           [&](std::int64_t m0, std::int64_t m1) {
                             kv->gemv_bias_wt(xp, packed_wt_.data(), b, o,
                                              m0, m1, in_, out_);
                           });
    return out;
  }
  Tensor out = tensor::matmul(x, weight_.value);
  const int n = out.dim(0);
  const float* b = bias_.value.data();
  for (int i = 0; i < n; ++i) {
    float* row = out.data() + static_cast<std::size_t>(i) * out_;
    for (int j = 0; j < out_; ++j) row[j] += b[j];
  }
  return out;
}

Tensor Dense::forward(const Tensor& input, bool training) {
  validate_input(input);
  if (training) cached_input_ = input;
  return affine(input);
}

Tensor Dense::forward_moved(Tensor&& input, bool training) {
  validate_input(input);
  if (training) {
    cached_input_ = std::move(input);
    return affine(cached_input_);
  }
  return affine(input);
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Dense::backward before forward(training=true)");
  }
  // dW = X^T G ; db = column sums of G ; dX = G W^T.
  Tensor dw = tensor::matmul_at(cached_input_, grad_output);
  tensor::add_inplace(weight_.grad, dw);

  const int n = grad_output.dim(0);
  float* db = bias_.grad.data();
  for (int i = 0; i < n; ++i) {
    const float* row = grad_output.data() + static_cast<std::size_t>(i) * out_;
    for (int j = 0; j < out_; ++j) db[j] += row[j];
  }
  return tensor::matmul_bt(grad_output, weight_.value);
}

}  // namespace darnet::nn
