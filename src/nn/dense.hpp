// Fully connected layer: y = x W + b, x is [N, in], W is [in, out].
#pragma once

#include <cstdint>

#include "nn/layer.hpp"
#include "tensor/arena.hpp"

namespace darnet::nn {

class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_moved(Tensor&& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Dense"; }

  [[nodiscard]] int in_features() const noexcept { return in_; }
  [[nodiscard]] int out_features() const noexcept { return out_; }

  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  /// y = x W + b without touching the cache.
  Tensor affine(const Tensor& x) const;
  void validate_input(const Tensor& input) const;

  /// Lazily (re-)pack W transposed to [out, in] for the vector-ISA
  /// dot-product kernel (gemv_bias_wt). No-op while weight_.version
  /// matches; the scalar golden reads weight_.value directly.
  void ensure_packed() const;

  int in_;
  int out_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
  // W^T cache for the vector path; ~0 means never packed.
  mutable tensor::Storage packed_wt_;
  mutable std::uint64_t packed_for_{~0ull};
};

}  // namespace darnet::nn
