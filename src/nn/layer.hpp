// Layer abstraction for the DarNet neural-network library.
//
// Layers are stateful (they own parameters and cache forward activations
// needed by backward), trained with explicit reverse-mode passes: no tape,
// no graph -- each layer knows its own derivative. This keeps the library
// small, auditable, and fast on a single core.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace darnet::nn {

using tensor::Tensor;

/// A learnable parameter: value plus its accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;
  /// Monotone version of `value`, bumped by every sanctioned mutation
  /// (optimizer step, Sequential::load_params). Layers with packed weight
  /// caches (Dense, Conv2D) compare it against the version they packed to
  /// decide whether to re-pack -- this is the "invalidated on optimizer
  /// step" half of the packing lifecycle. Code that writes `value`
  /// directly (tests, manual surgery) must call mark_dirty() or the
  /// vector-ISA path will keep serving the stale pack.
  std::uint64_t version{0};

  explicit Param(Tensor initial)
      : value(std::move(initial)), grad(value.shape()) {}

  void zero_grad() noexcept { grad.zero(); }
  void mark_dirty() noexcept { ++version; }
};

/// The shape contract a layer declares for checked builds: given an input
/// shape, a layer either states the exact output shape it will produce
/// (kOk), reports why the input violates its contract (kBad), or declines
/// to declare one (kUnchecked). Sequential verifies declared contracts at
/// every layer boundary per step when compiled with DARNET_CHECKED.
struct ShapeContract {
  enum class Kind { kUnchecked, kOk, kBad };

  Kind kind{Kind::kUnchecked};
  std::vector<int> output_shape;  // valid when kind == kOk
  std::string error;              // valid when kind == kBad

  static ShapeContract unchecked() { return {}; }
  static ShapeContract ok(std::vector<int> out) {
    ShapeContract c;
    c.kind = Kind::kOk;
    c.output_shape = std::move(out);
    return c;
  }
  static ShapeContract bad(std::string why) {
    ShapeContract c;
    c.kind = Kind::kBad;
    c.error = std::move(why);
    return c;
  }
};

/// Base class for all layers. forward() must be called before backward();
/// backward() consumes the gradient w.r.t. the layer output and returns the
/// gradient w.r.t. the layer input, accumulating parameter gradients.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;
  Layer(Layer&&) = default;
  Layer& operator=(Layer&&) = default;

  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Rvalue-input forward: layers that cache their input for backward may
  /// override this to steal the buffer instead of deep-copying it (the
  /// default forwards to the const-ref overload). Sequential uses it to
  /// hand each intermediate activation to the next layer without copies.
  virtual Tensor forward_moved(Tensor&& input, bool training) {
    return forward(input, training);
  }

  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers). Pointers remain
  /// valid for the lifetime of the layer.
  virtual std::vector<Param*> params() { return {}; }

  /// Declared in/out shape contract for `input_shape`, verified by
  /// Sequential at every layer boundary in checked builds. The default
  /// declines to declare one; concrete layers override.
  [[nodiscard]] virtual ShapeContract shape_contract(
      const std::vector<int>& input_shape) const {
    (void)input_shape;
    return ShapeContract::unchecked();
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace darnet::nn
