// Layer abstraction for the DarNet neural-network library.
//
// Layers are stateful (they own parameters and cache forward activations
// needed by backward), trained with explicit reverse-mode passes: no tape,
// no graph -- each layer knows its own derivative. This keeps the library
// small, auditable, and fast on a single core.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace darnet::nn {

using tensor::Tensor;

/// A learnable parameter: value plus its accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor initial)
      : value(std::move(initial)), grad(value.shape()) {}

  void zero_grad() noexcept { grad.zero(); }
};

/// Base class for all layers. forward() must be called before backward();
/// backward() consumes the gradient w.r.t. the layer output and returns the
/// gradient w.r.t. the layer input, accumulating parameter gradients.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;
  Layer(Layer&&) = default;
  Layer& operator=(Layer&&) = default;

  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Rvalue-input forward: layers that cache their input for backward may
  /// override this to steal the buffer instead of deep-copying it (the
  /// default forwards to the const-ref overload). Sequential uses it to
  /// hand each intermediate activation to the next layer without copies.
  virtual Tensor forward_moved(Tensor&& input, bool training) {
    return forward(input, training);
  }

  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers). Pointers remain
  /// valid for the lifetime of the layer.
  virtual std::vector<Param*> params() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace darnet::nn
