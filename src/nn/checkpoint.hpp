// File-based model checkpoints. Wraps Sequential's parameter
// serialisation with a magic/version header so stale or foreign files
// fail loudly instead of loading garbage weights.
#pragma once

#include <string>

#include "nn/sequential.hpp"

namespace darnet::nn {

/// Write `model`'s parameters to `path` (overwrites).
void save_checkpoint(Sequential& model, const std::string& path);

/// Load parameters from `path` into `model`, whose architecture must
/// match the one that produced the checkpoint.
void load_checkpoint(Sequential& model, const std::string& path);

/// Transfer the longest matching parameter prefix from `source` into
/// `destination` (fine-tuning initialisation: two models that share a
/// feature extractor but differ in their classification heads transfer
/// everything up to the first shape mismatch). Returns the number of
/// parameter tensors copied.
std::size_t transfer_matching_params(Sequential& source,
                                     Sequential& destination);

}  // namespace darnet::nn
