// Stateless / lightly-stateful layers: ReLU, Flatten, Dropout.
#pragma once

#include "nn/layer.hpp"

namespace darnet::nn {

/// Rectified linear unit, elementwise, any rank.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  /// In-place on the stolen buffer (identical values, zero allocations).
  Tensor forward_moved(Tensor&& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override {
    return ShapeContract::ok(input_shape);  // elementwise: shape-preserving
  }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// Collapses all trailing dims into one: [N, ...] -> [N, prod(...)].
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  /// Moves the storage through the reshape instead of copying it.
  Tensor forward_moved(Tensor&& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

 private:
  std::vector<int> cached_shape_;
};

/// Inverted dropout: active only in training mode; evaluation is identity.
class Dropout final : public Layer {
 public:
  Dropout(double drop_probability, std::uint64_t seed);

  Tensor forward(const Tensor& input, bool training) override;
  /// Identity move-through at inference; in-place mask multiply when
  /// training (same rng consumption and values as forward()).
  Tensor forward_moved(Tensor&& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override {
    return ShapeContract::ok(input_shape);  // elementwise: shape-preserving
  }

 private:
  double p_;
  util::Rng rng_;
  Tensor mask_;
  bool last_training_{false};
};

}  // namespace darnet::nn
