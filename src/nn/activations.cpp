#include "nn/activations.hpp"

#include <utility>

namespace darnet::nn {

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor out(input.shape());
  if (training) mask_ = Tensor(input.shape());
  const float* x = input.data();
  float* y = out.data();
  float* m = training ? mask_.data() : nullptr;
  const std::size_t n = input.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const bool on = x[i] > 0.0f;
    y[i] = on ? x[i] : 0.0f;
    if (m) m[i] = on ? 1.0f : 0.0f;
  }
  return out;
}

Tensor ReLU::forward_moved(Tensor&& input, bool training) {
  if (training) return forward(input, training);  // needs the mask copy
  float* x = input.data();
  const std::size_t n = input.numel();
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
  return std::move(input);
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(mask_)) {
    throw std::logic_error("ReLU::backward: shape mismatch with forward");
  }
  Tensor grad_in(grad_output.shape());
  const float* g = grad_output.data();
  const float* m = mask_.data();
  float* out = grad_in.data();
  const std::size_t n = grad_output.numel();
  for (std::size_t i = 0; i < n; ++i) out[i] = g[i] * m[i];
  return grad_in;
}

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: rank >= 2 required");
  }
  if (training) cached_shape_ = input.shape();
  int rest = 1;
  for (std::size_t i = 1; i < input.rank(); ++i) rest *= input.dim(i);
  return input.reshaped({input.dim(0), rest});
}

Tensor Flatten::forward_moved(Tensor&& input, bool training) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: rank >= 2 required");
  }
  if (training) cached_shape_ = input.shape();
  int rest = 1;
  for (std::size_t i = 1; i < input.rank(); ++i) rest *= input.dim(i);
  const int n0 = input.dim(0);
  return std::move(input).reshaped({n0, rest});
}

ShapeContract Flatten::shape_contract(
    const std::vector<int>& input_shape) const {
  if (input_shape.size() < 2) {
    return ShapeContract::bad("Flatten expects rank >= 2, got rank " +
                              std::to_string(input_shape.size()));
  }
  int rest = 1;
  for (std::size_t i = 1; i < input_shape.size(); ++i) {
    rest *= input_shape[i];
  }
  return ShapeContract::ok({input_shape[0], rest});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_shape_.empty()) {
    throw std::logic_error("Flatten::backward before forward");
  }
  return grad_output.reshaped(cached_shape_);
}

Dropout::Dropout(double drop_probability, std::uint64_t seed)
    : p_(drop_probability), rng_(seed) {
  if (p_ < 0.0 || p_ >= 1.0) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0) return input;
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  const float* x = input.data();
  float* y = out.data();
  float* m = mask_.data();
  const std::size_t n = input.numel();
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = rng_.chance(p_) ? 0.0f : keep_scale;
    y[i] = x[i] * m[i];
  }
  return out;
}

Tensor Dropout::forward_moved(Tensor&& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0) return std::move(input);
  mask_ = Tensor(input.shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  float* x = input.data();
  float* m = mask_.data();
  const std::size_t n = input.numel();
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = rng_.chance(p_) ? 0.0f : keep_scale;
    x[i] *= m[i];
  }
  return std::move(input);
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || p_ == 0.0) return grad_output;
  if (!grad_output.same_shape(mask_)) {
    throw std::logic_error("Dropout::backward: shape mismatch with forward");
  }
  Tensor grad_in(grad_output.shape());
  const float* g = grad_output.data();
  const float* m = mask_.data();
  float* out = grad_in.data();
  const std::size_t n = grad_output.numel();
  for (std::size_t i = 0; i < n; ++i) out[i] = g[i] * m[i];
  return grad_in;
}

}  // namespace darnet::nn
