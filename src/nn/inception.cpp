#include "nn/inception.hpp"

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "tensor/arena.hpp"
#include "tensor/ops.hpp"

namespace darnet::nn {

ParallelConcat& ParallelConcat::add_branch(LayerPtr branch) {
  if (!branch) {
    throw std::invalid_argument("ParallelConcat::add_branch: null branch");
  }
  branches_.push_back(std::move(branch));
  return *this;
}

ShapeContract ParallelConcat::shape_contract(
    const std::vector<int>& input_shape) const {
  if (branches_.empty()) {
    return ShapeContract::bad("ParallelConcat has no branches");
  }
  if (input_shape.size() != 4) {
    return ShapeContract::bad(
        "ParallelConcat expects rank-4 NCHW input, got rank " +
        std::to_string(input_shape.size()));
  }
  int total_ch = 0;
  int oh = -1;
  int ow = -1;
  for (std::size_t b = 0; b < branches_.size(); ++b) {
    const ShapeContract c = branches_[b]->shape_contract(input_shape);
    if (c.kind == ShapeContract::Kind::kBad) {
      return ShapeContract::bad("branch #" + std::to_string(b) + " (" +
                                branches_[b]->name() + "): " + c.error);
    }
    if (c.kind == ShapeContract::Kind::kUnchecked) {
      return ShapeContract::unchecked();
    }
    const std::vector<int>& out = c.output_shape;
    if (out.size() != 4 || out[0] != input_shape[0]) {
      return ShapeContract::bad("branch #" + std::to_string(b) +
                                " does not declare NCHW output");
    }
    if (oh < 0) {
      oh = out[2];
      ow = out[3];
    } else if (out[2] != oh || out[3] != ow) {
      return ShapeContract::bad(
          "branches declare disagreeing spatial sizes");
    }
    total_ch += out[1];
  }
  return ShapeContract::ok({input_shape[0], total_ch, oh, ow});
}

Tensor ParallelConcat::forward(const Tensor& input, bool training) {
  if (branches_.empty()) {
    throw std::logic_error("ParallelConcat: no branches");
  }
  if (input.rank() != 4) {
    throw std::invalid_argument("ParallelConcat: NCHW input required");
  }
  input_shape_ = input.shape();
  branch_channels_.clear();

  // Branch outputs live for the length of this call only; route the
  // vector's backing block through the scratch arena so the steady-state
  // inference path stays heap-free.
  std::vector<Tensor, tensor::ArenaAlloc<Tensor>> outs;
  outs.reserve(branches_.size());
  int total_ch = 0;
  const int n = input.dim(0);
  int oh = -1, ow = -1;
  for (auto& branch : branches_) {
    Tensor y = branch->forward(input, training);
    if (y.rank() != 4 || y.dim(0) != n) {
      throw std::logic_error("ParallelConcat: branch output not NCHW");
    }
    if (oh < 0) {
      oh = y.dim(2);
      ow = y.dim(3);
    } else if (y.dim(2) != oh || y.dim(3) != ow) {
      throw std::logic_error(
          "ParallelConcat: branches disagree on spatial size");
    }
    branch_channels_.push_back(y.dim(1));
    total_ch += y.dim(1);
    outs.push_back(std::move(y));
  }

  Tensor out = Tensor::uninit({n, total_ch, oh, ow});  // fully overwritten
  const std::size_t plane = static_cast<std::size_t>(oh) * ow;
  for (int img = 0; img < n; ++img) {
    std::size_t ch_offset = 0;
    for (std::size_t b = 0; b < outs.size(); ++b) {
      const int bc = branch_channels_[b];
      const float* src = outs[b].data() +
                         static_cast<std::size_t>(img) * bc * plane;
      float* dst = out.data() +
                   (static_cast<std::size_t>(img) * total_ch + ch_offset) *
                       plane;
      std::copy(src, src + static_cast<std::size_t>(bc) * plane, dst);
      ch_offset += bc;
    }
  }
  return out;
}

Tensor ParallelConcat::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("ParallelConcat::backward before forward");
  }
  const int n = grad_output.dim(0);
  const int oh = grad_output.dim(2), ow = grad_output.dim(3);
  const int total_ch = grad_output.dim(1);
  const std::size_t plane = static_cast<std::size_t>(oh) * ow;

  Tensor grad_in(input_shape_);
  std::size_t ch_offset = 0;
  for (std::size_t b = 0; b < branches_.size(); ++b) {
    const int bc = branch_channels_[b];
    Tensor gslice = Tensor::uninit({n, bc, oh, ow});  // fully overwritten
    for (int img = 0; img < n; ++img) {
      const float* src =
          grad_output.data() +
          (static_cast<std::size_t>(img) * total_ch + ch_offset) * plane;
      float* dst =
          gslice.data() + static_cast<std::size_t>(img) * bc * plane;
      std::copy(src, src + static_cast<std::size_t>(bc) * plane, dst);
    }
    Tensor gx = branches_[b]->backward(gslice);
    tensor::add_inplace(grad_in, gx);
    ch_offset += bc;
  }
  return grad_in;
}

std::vector<Param*> ParallelConcat::params() {
  std::vector<Param*> all;
  for (auto& branch : branches_) {
    for (Param* p : branch->params()) all.push_back(p);
  }
  return all;
}

LayerPtr make_micro_inception(int in_channels, int ch_1x1, int ch_3x3,
                              int ch_5x5, int ch_pool, util::Rng& rng) {
  auto block = std::make_unique<ParallelConcat>();

  auto branch_a = std::make_unique<Sequential>();
  branch_a->emplace<Conv2D>(in_channels, ch_1x1, 1, 0, rng);
  branch_a->emplace<ReLU>();
  block->add_branch(std::move(branch_a));

  auto branch_b = std::make_unique<Sequential>();
  branch_b->emplace<Conv2D>(in_channels, ch_3x3 / 2 + 1, 1, 0, rng);
  branch_b->emplace<ReLU>();
  branch_b->emplace<Conv2D>(ch_3x3 / 2 + 1, ch_3x3, 3, 1, rng);
  branch_b->emplace<ReLU>();
  block->add_branch(std::move(branch_b));

  auto branch_c = std::make_unique<Sequential>();
  branch_c->emplace<Conv2D>(in_channels, ch_5x5 / 2 + 1, 1, 0, rng);
  branch_c->emplace<ReLU>();
  branch_c->emplace<Conv2D>(ch_5x5 / 2 + 1, ch_5x5, 3, 1, rng);
  branch_c->emplace<ReLU>();
  branch_c->emplace<Conv2D>(ch_5x5, ch_5x5, 3, 1, rng);
  branch_c->emplace<ReLU>();
  block->add_branch(std::move(branch_c));

  auto branch_d = std::make_unique<Sequential>();
  branch_d->emplace<Conv2D>(in_channels, ch_pool, 3, 1, rng);
  branch_d->emplace<ReLU>();
  block->add_branch(std::move(branch_d));

  return block;
}

}  // namespace darnet::nn
