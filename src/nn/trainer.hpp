// Mini-batch training / inference driver shared by the CNN, the BiLSTM and
// the dCNN distillation pipeline.
#pragma once

#include <functional>
#include <span>

#include "nn/layer.hpp"
#include "nn/metrics.hpp"
#include "nn/optimizer.hpp"

namespace darnet::nn {

struct TrainConfig {
  int epochs = 5;
  int batch_size = 32;
  double grad_clip = 5.0;  // <= 0 disables clipping
  std::uint64_t shuffle_seed = 1;
  /// Optional per-epoch callback (epoch index, mean loss).
  std::function<void(int, double)> on_epoch;
  /// Data-parallel shards per minibatch. 1 (the default) runs the exact
  /// serial loop and is bit-for-bit reproducible against the original
  /// single-threaded trainer at any DARNET_THREADS. Values > 1 split each
  /// minibatch across `shards` model replicas whose gradients are reduced
  /// in fixed (ascending-shard) order: results then depend on the shard
  /// count but NOT on the thread count. Requires `make_replica`.
  int shards = 1;
  /// Factory producing architecture clones for the sharded path. Replica
  /// parameter values are overwritten from the master model before every
  /// step, so the factory's own initialisation does not matter -- but the
  /// layer structure must match exactly. Stateful stochastic layers
  /// (Dropout) draw from per-replica RNG streams, so sharded training is a
  /// different (equally valid) sample of the same estimator.
  std::function<LayerPtr()> make_replica;
};

/// Gather rows `indices` of `data` (along dim 0) into a new tensor.
Tensor gather_rows(const Tensor& data, std::span<const std::size_t> indices);

/// As gather_rows, but writes into `out`, reusing its allocation when the
/// shape already matches (the hot minibatch/inference loops call this every
/// batch; reuse keeps them allocation-free at steady state).
void gather_rows_into(const Tensor& data, std::span<const std::size_t> indices,
                      Tensor& out);

/// Supervised classification training: softmax cross-entropy on labels.
/// Returns the mean loss of the final epoch.
double train_classifier(Layer& model, Optimizer& optimizer, const Tensor& x,
                        std::span<const int> labels, const TrainConfig& cfg);

/// Distillation training: L2 between model output and per-row teacher
/// targets (the paper's unsupervised dCNN methodology). Returns final-epoch
/// mean loss.
double train_distillation(Layer& model, Optimizer& optimizer, const Tensor& x,
                          const Tensor& teacher_targets,
                          const TrainConfig& cfg);

/// Class-probability inference, batched: returns [N, C] softmax rows.
Tensor predict_proba(Layer& model, const Tensor& x, int batch_size = 64);

/// Raw model outputs (pre-softmax), batched: returns [N, C].
Tensor predict_logits(Layer& model, const Tensor& x, int batch_size = 64);

/// Argmax predictions, batched.
std::vector<int> predict_classes(Layer& model, const Tensor& x,
                                 int batch_size = 64);

/// Evaluate into a confusion matrix.
ConfusionMatrix evaluate(Layer& model, const Tensor& x,
                         std::span<const int> labels, int num_classes,
                         std::vector<std::string> class_names = {},
                         int batch_size = 64);

}  // namespace darnet::nn
