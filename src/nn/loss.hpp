// Loss functions. Each returns the scalar loss (averaged over the batch)
// and the gradient w.r.t. the model output, ready to feed to backward().
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace darnet::nn {

using tensor::Tensor;

struct LossResult {
  double loss;
  Tensor grad;  // d(loss)/d(model output), same shape as the output
};

/// Softmax + cross-entropy over logits [N, C] with integer labels.
/// The combined gradient (softmax(x) - onehot)/N is numerically stable.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels);

/// Mean squared L2 distance between student and teacher outputs -- the
/// paper's unsupervised dCNN distillation objective ("the loss-function
/// computes the L2 euclidean distance between these two vectors").
LossResult l2_distillation(const Tensor& student_out,
                           const Tensor& teacher_out);

}  // namespace darnet::nn
