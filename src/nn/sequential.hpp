// Sequential layer container + checkpoint serialisation.
#pragma once

#include "nn/layer.hpp"

namespace darnet::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_moved(Tensor&& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Total learnable scalar count.
  [[nodiscard]] std::size_t parameter_count();

  /// Checkpointing: parameters only, in layer order. The architecture must
  /// be reconstructed by the caller before load.
  void save_params(util::BinaryWriter& writer);
  void load_params(util::BinaryReader& reader);

 private:
  std::vector<LayerPtr> layers_;
};

/// Zero all parameter gradients of any layer tree.
void zero_grads(Layer& model);

}  // namespace darnet::nn
