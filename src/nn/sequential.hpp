// Sequential layer container + checkpoint serialisation.
#pragma once

#include "nn/layer.hpp"

namespace darnet::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_moved(Tensor&& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

  /// Folds the per-layer contracts front to back: kOk with the final
  /// output shape when every layer declares one, kBad (with layer
  /// attribution) on the first violated contract, kUnchecked as soon as a
  /// layer declines to declare.
  [[nodiscard]] ShapeContract shape_contract(
      const std::vector<int>& input_shape) const override;

  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Total learnable scalar count.
  [[nodiscard]] std::size_t parameter_count();

  /// Checkpointing: parameters only, in layer order. The architecture must
  /// be reconstructed by the caller before load.
  void save_params(util::BinaryWriter& writer);
  void load_params(util::BinaryReader& reader);

 private:
#ifdef DARNET_CHECKED
  /// Checked builds only: verify layer i's declared contract against the
  /// observed input/output shapes and finite-guard the produced activation.
  void verify_boundary(std::size_t i, const std::vector<int>& in_shape,
                       const Tensor& output) const;
#endif

  std::vector<LayerPtr> layers_;
#ifdef DARNET_CHECKED
  /// Input shape seen by each layer in the last forward pass; backward
  /// asserts each layer's input-gradient matches it.
  std::vector<std::vector<int>> checked_in_shapes_;
#endif
};

/// Zero all parameter gradients of any layer tree.
void zero_grads(Layer& model);

}  // namespace darnet::nn
