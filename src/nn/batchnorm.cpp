#include "nn/batchnorm.hpp"

#include <cmath>

namespace darnet::nn {

namespace {

/// Iterate an NCHW or [N, C] tensor as (channel, flat index) pairs.
template <typename Fn>
void for_each_channel_element(const std::vector<int>& shape, Fn&& fn) {
  if (shape.size() == 2) {
    const int n = shape[0], c = shape[1];
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < c; ++j) {
        fn(j, static_cast<std::size_t>(i) * c + j);
      }
    }
    return;
  }
  const int n = shape[0], c = shape[1], h = shape[2], w = shape[3];
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int i = 0; i < n; ++i) {
    for (int ch = 0; ch < c; ++ch) {
      const std::size_t base = (static_cast<std::size_t>(i) * c + ch) * plane;
      for (std::size_t p = 0; p < plane; ++p) fn(ch, base + p);
    }
  }
}

}  // namespace

BatchNorm::BatchNorm(int features, double momentum, double epsilon)
    : features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Tensor::full({features}, 1.0f)),
      beta_(Tensor({features})),
      running_mean_({features}),
      running_var_(Tensor::full({features}, 1.0f)) {
  if (features <= 0 || momentum < 0.0 || momentum >= 1.0 || epsilon <= 0.0) {
    throw std::invalid_argument("BatchNorm: invalid hyper-parameters");
  }
}

void BatchNorm::check_input(const Tensor& input) const {
  const bool ok =
      (input.rank() == 2 && input.dim(1) == features_) ||
      (input.rank() == 4 && input.dim(1) == features_);
  if (!ok) {
    throw std::invalid_argument("BatchNorm: expected [N, " +
                                std::to_string(features_) +
                                "] or NCHW with C=" +
                                std::to_string(features_) + ", got " +
                                input.shape_string());
  }
}

ShapeContract BatchNorm::shape_contract(
    const std::vector<int>& input_shape) const {
  const bool ok = (input_shape.size() == 2 || input_shape.size() == 4) &&
                  input_shape[1] == features_;
  if (!ok) {
    return ShapeContract::bad(
        "BatchNorm expects [N, " + std::to_string(features_) +
        "] or NCHW with C=" + std::to_string(features_));
  }
  return ShapeContract::ok(input_shape);  // normalisation preserves shape
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  check_input(input);
  const std::size_t per_channel = input.numel() / features_;

  Tensor mean({features_});
  Tensor var({features_});
  if (training) {
    for_each_channel_element(input.shape(), [&](int c, std::size_t i) {
      mean[static_cast<std::size_t>(c)] += input[i];
    });
    for (int c = 0; c < features_; ++c) {
      mean[static_cast<std::size_t>(c)] /= static_cast<float>(per_channel);
    }
    for_each_channel_element(input.shape(), [&](int c, std::size_t i) {
      const float d = input[i] - mean[static_cast<std::size_t>(c)];
      var[static_cast<std::size_t>(c)] += d * d;
    });
    for (int c = 0; c < features_; ++c) {
      var[static_cast<std::size_t>(c)] /= static_cast<float>(per_channel);
      running_mean_[static_cast<std::size_t>(c)] =
          static_cast<float>(momentum_) * running_mean_[static_cast<std::size_t>(c)] +
          static_cast<float>(1.0 - momentum_) * mean[static_cast<std::size_t>(c)];
      running_var_[static_cast<std::size_t>(c)] =
          static_cast<float>(momentum_) * running_var_[static_cast<std::size_t>(c)] +
          static_cast<float>(1.0 - momentum_) * var[static_cast<std::size_t>(c)];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  Tensor inv_std({features_});
  for (int c = 0; c < features_; ++c) {
    inv_std[static_cast<std::size_t>(c)] = static_cast<float>(
        1.0 / std::sqrt(var[static_cast<std::size_t>(c)] + epsilon_));
  }

  Tensor out(input.shape());
  Tensor x_hat(input.shape());
  for_each_channel_element(input.shape(), [&](int c, std::size_t i) {
    const auto ci = static_cast<std::size_t>(c);
    const float xh = (input[i] - mean[ci]) * inv_std[ci];
    x_hat[i] = xh;
    out[i] = gamma_.value[ci] * xh + beta_.value[ci];
  });

  if (training) {
    x_hat_ = std::move(x_hat);
    batch_mean_ = std::move(mean);
    batch_inv_std_ = std::move(inv_std);
    input_shape_ = input.shape();
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("BatchNorm::backward before forward(training)");
  }
  if (grad_output.shape() != input_shape_) {
    throw std::invalid_argument("BatchNorm::backward: grad shape mismatch");
  }
  const auto m = static_cast<double>(grad_output.numel() / features_);

  // Per-channel reductions: sum(dy), sum(dy * x_hat).
  Tensor sum_dy({features_});
  Tensor sum_dy_xhat({features_});
  for_each_channel_element(input_shape_, [&](int c, std::size_t i) {
    const auto ci = static_cast<std::size_t>(c);
    sum_dy[ci] += grad_output[i];
    sum_dy_xhat[ci] += grad_output[i] * x_hat_[i];
  });

  for (int c = 0; c < features_; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    gamma_.grad[ci] += sum_dy_xhat[ci];
    beta_.grad[ci] += sum_dy[ci];
  }

  // dx = (gamma * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy*x_hat)).
  Tensor grad_in(input_shape_);
  for_each_channel_element(input_shape_, [&](int c, std::size_t i) {
    const auto ci = static_cast<std::size_t>(c);
    const double scale =
        static_cast<double>(gamma_.value[ci]) * batch_inv_std_[ci] / m;
    grad_in[i] = static_cast<float>(
        scale * (m * grad_output[i] - sum_dy[ci] -
                 static_cast<double>(x_hat_[i]) * sum_dy_xhat[ci]));
  });
  return grad_in;
}

}  // namespace darnet::nn
