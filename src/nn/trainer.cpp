#include "nn/trainer.hpp"

#include <numeric>

#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace darnet::nn {

Tensor gather_rows(const Tensor& data, std::span<const std::size_t> indices) {
  if (data.rank() < 1) throw std::invalid_argument("gather_rows: rank >= 1");
  std::vector<int> shape = data.shape();
  const std::size_t row =
      data.numel() / static_cast<std::size_t>(shape[0]);
  shape[0] = static_cast<int>(indices.size());
  Tensor out(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= static_cast<std::size_t>(data.dim(0))) {
      throw std::out_of_range("gather_rows: index out of range");
    }
    std::copy(data.data() + indices[i] * row, data.data() + (indices[i] + 1) * row,
              out.data() + i * row);
  }
  return out;
}

namespace {

/// Shared minibatch loop; `loss_fn` maps (model output, batch indices) to a
/// LossResult.
double run_epochs(
    Layer& model, Optimizer& optimizer, const Tensor& x, std::size_t n,
    const TrainConfig& cfg,
    const std::function<LossResult(const Tensor&,
                                   std::span<const std::size_t>)>& loss_fn) {
  if (n == 0) throw std::invalid_argument("train: empty dataset");
  if (cfg.batch_size <= 0 || cfg.epochs <= 0) {
    throw std::invalid_argument("train: epochs and batch_size must be > 0");
  }
  util::Rng rng(cfg.shuffle_seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  const auto params = model.params();
  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(cfg.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(cfg.batch_size));
      std::span<const std::size_t> idx(order.data() + start, end - start);
      Tensor xb = gather_rows(x, idx);
      Tensor out = model.forward(xb, /*training=*/true);
      LossResult lr = loss_fn(out, idx);
      model.backward(lr.grad);
      if (cfg.grad_clip > 0.0) clip_grad_norm(params, cfg.grad_clip);
      optimizer.step(params);
      epoch_loss += lr.loss;
      ++batches;
    }
    epoch_loss /= static_cast<double>(batches);
    if (cfg.on_epoch) cfg.on_epoch(epoch, epoch_loss);
  }
  return epoch_loss;
}

}  // namespace

double train_classifier(Layer& model, Optimizer& optimizer, const Tensor& x,
                        std::span<const int> labels, const TrainConfig& cfg) {
  if (labels.size() != static_cast<std::size_t>(x.dim(0))) {
    throw std::invalid_argument("train_classifier: label count mismatch");
  }
  return run_epochs(
      model, optimizer, x, labels.size(), cfg,
      [&](const Tensor& out, std::span<const std::size_t> idx) {
        std::vector<int> yb(idx.size());
        for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = labels[idx[i]];
        return softmax_cross_entropy(out, yb);
      });
}

double train_distillation(Layer& model, Optimizer& optimizer, const Tensor& x,
                          const Tensor& teacher_targets,
                          const TrainConfig& cfg) {
  if (teacher_targets.dim(0) != x.dim(0)) {
    throw std::invalid_argument("train_distillation: target count mismatch");
  }
  return run_epochs(
      model, optimizer, x, static_cast<std::size_t>(x.dim(0)), cfg,
      [&](const Tensor& out, std::span<const std::size_t> idx) {
        Tensor targets = gather_rows(teacher_targets, idx);
        return l2_distillation(out, targets);
      });
}

Tensor predict_logits(Layer& model, const Tensor& x, int batch_size) {
  const std::size_t n = static_cast<std::size_t>(x.dim(0));
  Tensor all;  // allocated after the first batch reveals C
  for (std::size_t start = 0; start < n;
       start += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(n, start + static_cast<std::size_t>(batch_size));
    std::vector<std::size_t> idx(end - start);
    std::iota(idx.begin(), idx.end(), start);
    Tensor out = model.forward(gather_rows(x, idx), /*training=*/false);
    if (out.rank() != 2) {
      throw std::logic_error("predict_logits: model output must be [N, C]");
    }
    if (all.empty()) all = Tensor({static_cast<int>(n), out.dim(1)});
    std::copy(out.data(), out.data() + out.numel(),
              all.data() + start * out.dim(1));
  }
  return all;
}

Tensor predict_proba(Layer& model, const Tensor& x, int batch_size) {
  return tensor::softmax_rows(predict_logits(model, x, batch_size));
}

std::vector<int> predict_classes(Layer& model, const Tensor& x,
                                 int batch_size) {
  Tensor logits = predict_logits(model, x, batch_size);
  const int n = logits.dim(0), c = logits.dim(1);
  std::vector<int> preds(n);
  for (int i = 0; i < n; ++i) {
    preds[i] = tensor::argmax(
        std::span<const float>(logits.data() + static_cast<std::size_t>(i) * c,
                               static_cast<std::size_t>(c)));
  }
  return preds;
}

ConfusionMatrix evaluate(Layer& model, const Tensor& x,
                         std::span<const int> labels, int num_classes,
                         std::vector<std::string> class_names,
                         int batch_size) {
  const auto preds = predict_classes(model, x, batch_size);
  if (preds.size() != labels.size()) {
    throw std::invalid_argument("evaluate: label count mismatch");
  }
  ConfusionMatrix cm(num_classes, std::move(class_names));
  for (std::size_t i = 0; i < preds.size(); ++i) cm.add(labels[i], preds[i]);
  return cm;
}

}  // namespace darnet::nn
