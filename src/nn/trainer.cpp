#include "nn/trainer.hpp"

#include <numeric>

#include "check/check.hpp"
#include "nn/loss.hpp"
#include "obs/obs.hpp"
#include "nn/sequential.hpp"
#include "parallel/pool.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace darnet::nn {

void gather_rows_into(const Tensor& data, std::span<const std::size_t> indices,
                      Tensor& out) {
  if (data.rank() < 1) throw std::invalid_argument("gather_rows: rank >= 1");
  std::vector<int> shape = data.shape();
  const std::size_t row =
      data.numel() / static_cast<std::size_t>(shape[0]);
  shape[0] = static_cast<int>(indices.size());
  if (out.empty() || out.shape() != shape) out = Tensor(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= static_cast<std::size_t>(data.dim(0))) {
      throw std::out_of_range("gather_rows: index out of range");
    }
    std::copy(data.data() + indices[i] * row, data.data() + (indices[i] + 1) * row,
              out.data() + i * row);
  }
}

Tensor gather_rows(const Tensor& data, std::span<const std::size_t> indices) {
  Tensor out;
  gather_rows_into(data, indices, out);
  return out;
}

namespace {

using LossFn =
    std::function<LossResult(const Tensor&, std::span<const std::size_t>)>;

/// One optimisation step over batch indices `idx`, computed on the master
/// model alone. Bit-for-bit identical to the original serial trainer.
double step_serial(Layer& model, const std::vector<Param*>& params,
                   Optimizer& optimizer, const Tensor& x,
                   std::span<const std::size_t> idx, const TrainConfig& cfg,
                   const LossFn& loss_fn) {
  Tensor xb = gather_rows(x, idx);
  // The minibatch is a temporary: hand the buffer to the model so caching
  // layers keep it instead of deep-copying.
  Tensor out = model.forward_moved(std::move(xb), /*training=*/true);
  LossResult lr = loss_fn(out, idx);
  model.backward(lr.grad);
  if (cfg.grad_clip > 0.0) clip_grad_norm(params, cfg.grad_clip);
  optimizer.step(params);
  return lr.loss;
}

/// Replicas + per-replica parameter lists for the data-parallel path.
struct ShardSet {
  std::vector<LayerPtr> replicas;                 // shards 1..S-1
  std::vector<std::vector<Param*>> rep_params;    // parallel to replicas
};

ShardSet build_shards(const std::vector<Param*>& params,
                      const TrainConfig& cfg) {
  if (!cfg.make_replica) {
    throw std::invalid_argument("train: shards > 1 requires make_replica");
  }
  ShardSet set;
  for (int s = 1; s < cfg.shards; ++s) {
    LayerPtr replica = cfg.make_replica();
    if (!replica) {
      throw std::invalid_argument("train: make_replica returned null");
    }
    auto rp = replica->params();
    if (rp.size() != params.size()) {
      throw std::invalid_argument(
          "train: replica parameter structure mismatch");
    }
    for (std::size_t i = 0; i < rp.size(); ++i) {
      if (!rp[i]->value.same_shape(params[i]->value)) {
        throw std::invalid_argument(
            "train: replica parameter shape mismatch");
      }
    }
    set.replicas.push_back(std::move(replica));
    set.rep_params.push_back(std::move(rp));
  }
  return set;
}

/// One optimisation step with the minibatch split across `shard_count`
/// contiguous shards (master = shard 0, replicas = 1..). Each shard runs a
/// full forward/backward serially (nested kernel parallelism is inlined by
/// the pool), so per-shard gradients are independent of the thread count;
/// the weighted reduction below walks shards in ascending order, making the
/// whole step deterministic for a fixed shard count.
double step_sharded(Layer& model, const std::vector<Param*>& params,
                    Optimizer& optimizer, const Tensor& x,
                    std::span<const std::size_t> idx, const TrainConfig& cfg,
                    const LossFn& loss_fn, ShardSet& shards) {
  const std::size_t nb = idx.size();
  const int s_eff =
      static_cast<int>(std::min<std::size_t>(cfg.shards, nb));
  const std::size_t per = nb / static_cast<std::size_t>(s_eff);
  const std::size_t rem = nb % static_cast<std::size_t>(s_eff);
  const auto shard_begin = [&](int s) {
    const auto su = static_cast<std::size_t>(s);
    return su * per + std::min(su, rem);
  };

  // Replicas re-read the master's parameters before every step (copy into
  // the existing buffers; no allocation at steady state).
  for (auto& rp : shards.rep_params) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      const Tensor& src = params[i]->value;
      std::copy(src.data(), src.data() + src.numel(), rp[i]->value.data());
    }
  }

  std::vector<double> shard_loss(static_cast<std::size_t>(s_eff), 0.0);
#ifdef DARNET_CHECKED
  // Checked builds: every shard (model replica + loss slot) must be
  // claimed by exactly one chunk, and together they cover [0, s_eff).
  check::ShardWriteTracker tracker("step_sharded replica shards");
#endif
  parallel::parallel_for(
      0, s_eff, /*grain=*/1, [&](std::int64_t s0, std::int64_t s1) {
#ifdef DARNET_CHECKED
        tracker.record(s0, s1);
#endif
        for (std::int64_t s = s0; s < s1; ++s) {
          const std::size_t b = shard_begin(static_cast<int>(s));
          const std::size_t e = shard_begin(static_cast<int>(s) + 1);
          std::span<const std::size_t> sidx(idx.data() + b, e - b);
          Layer& m = (s == 0) ? model : *shards.replicas[s - 1];
          Tensor xb = gather_rows(x, sidx);
          Tensor out = m.forward_moved(std::move(xb), /*training=*/true);
          LossResult lr = loss_fn(out, sidx);
          m.backward(lr.grad);
          shard_loss[static_cast<std::size_t>(s)] = lr.loss;
        }
      });
#ifdef DARNET_CHECKED
  tracker.expect_exact_cover(0, s_eff);
#endif

  // Fixed-order weighted reduction: grad = sum_s (n_s / n_b) * grad_s.
  // Shard losses/grads are means over the shard, so the weights recover the
  // batch mean the serial path would produce.
  const auto weight = [&](int s) {
    return static_cast<double>(shard_begin(s + 1) - shard_begin(s)) /
           static_cast<double>(nb);
  };
  for (Param* p : params) {
    tensor::scale_inplace(p->grad, static_cast<float>(weight(0)));
  }
  double batch_loss = weight(0) * shard_loss[0];
  for (int s = 1; s < s_eff; ++s) {
    const float ws = static_cast<float>(weight(s));
    auto& rp = shards.rep_params[static_cast<std::size_t>(s) - 1];
    for (std::size_t i = 0; i < params.size(); ++i) {
      tensor::axpy(ws, rp[i]->grad, params[i]->grad);
      rp[i]->zero_grad();
    }
    batch_loss += weight(s) * shard_loss[static_cast<std::size_t>(s)];
  }

  if (cfg.grad_clip > 0.0) clip_grad_norm(params, cfg.grad_clip);
  optimizer.step(params);
  return batch_loss;
}

/// Shared minibatch loop; `loss_fn` maps (model output, batch indices) to a
/// LossResult.
double run_epochs(Layer& model, Optimizer& optimizer, const Tensor& x,
                  std::size_t n, const TrainConfig& cfg,
                  const LossFn& loss_fn) {
  if (n == 0) throw std::invalid_argument("train: empty dataset");
  if (cfg.batch_size <= 0 || cfg.epochs <= 0) {
    throw std::invalid_argument("train: epochs and batch_size must be > 0");
  }
  if (cfg.shards < 1) {
    throw std::invalid_argument("train: shards must be >= 1");
  }
  util::Rng rng(cfg.shuffle_seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  const auto params = model.params();
  ShardSet shards;
  if (cfg.shards > 1) shards = build_shards(params, cfg);

  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    DARNET_SPAN_DETAIL("nn/train_epoch", std::to_string(epoch));
    DARNET_COUNTER_ADD("nn/train_epochs_total", 1);
    rng.shuffle(order);
    epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(cfg.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(cfg.batch_size));
      std::span<const std::size_t> idx(order.data() + start, end - start);
      DARNET_COUNTER_ADD("nn/train_batches_total", 1);
      DARNET_COUNTER_ADD("nn/train_samples_total", idx.size());
      epoch_loss +=
          cfg.shards > 1
              ? step_sharded(model, params, optimizer, x, idx, cfg, loss_fn,
                             shards)
              : step_serial(model, params, optimizer, x, idx, cfg, loss_fn);
      ++batches;
    }
    epoch_loss /= static_cast<double>(batches);
    if (cfg.on_epoch) cfg.on_epoch(epoch, epoch_loss);
  }
  return epoch_loss;
}

}  // namespace

double train_classifier(Layer& model, Optimizer& optimizer, const Tensor& x,
                        std::span<const int> labels, const TrainConfig& cfg) {
  if (labels.size() != static_cast<std::size_t>(x.dim(0))) {
    throw std::invalid_argument("train_classifier: label count mismatch");
  }
  return run_epochs(
      model, optimizer, x, labels.size(), cfg,
      [&](const Tensor& out, std::span<const std::size_t> idx) {
        std::vector<int> yb(idx.size());
        for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = labels[idx[i]];
        return softmax_cross_entropy(out, yb);
      });
}

double train_distillation(Layer& model, Optimizer& optimizer, const Tensor& x,
                          const Tensor& teacher_targets,
                          const TrainConfig& cfg) {
  if (teacher_targets.dim(0) != x.dim(0)) {
    throw std::invalid_argument("train_distillation: target count mismatch");
  }
  return run_epochs(
      model, optimizer, x, static_cast<std::size_t>(x.dim(0)), cfg,
      [&](const Tensor& out, std::span<const std::size_t> idx) {
        Tensor targets = gather_rows(teacher_targets, idx);
        return l2_distillation(out, targets);
      });
}

Tensor predict_logits(Layer& model, const Tensor& x, int batch_size) {
  const std::size_t n = static_cast<std::size_t>(x.dim(0));
  Tensor all;  // allocated after the first batch reveals C
  Tensor xb;   // minibatch scratch, reused across full-size batches
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < n;
       start += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(n, start + static_cast<std::size_t>(batch_size));
    // Whole-input batch (the streaming/serve hot path): skip the gather
    // copy and feed the caller's tensor directly -- bit-identical, since
    // gathering [0, n) is a verbatim row copy.
    const bool whole = start == 0 && end == n;
    if (!whole) {
      idx.resize(end - start);
      std::iota(idx.begin(), idx.end(), start);
      gather_rows_into(x, idx, xb);
    }
    Tensor out = model.forward(whole ? x : xb, /*training=*/false);
    if (out.rank() != 2) {
      throw std::logic_error("predict_logits: model output must be [N, C]");
    }
    if (all.empty()) all = Tensor({static_cast<int>(n), out.dim(1)});
    std::copy(out.data(), out.data() + out.numel(),
              all.data() + start * out.dim(1));
  }
  return all;
}

Tensor predict_proba(Layer& model, const Tensor& x, int batch_size) {
  return tensor::softmax_rows(predict_logits(model, x, batch_size));
}

std::vector<int> predict_classes(Layer& model, const Tensor& x,
                                 int batch_size) {
  Tensor logits = predict_logits(model, x, batch_size);
  const int n = logits.dim(0), c = logits.dim(1);
  std::vector<int> preds(n);
  for (int i = 0; i < n; ++i) {
    preds[i] = tensor::argmax(
        std::span<const float>(logits.data() + static_cast<std::size_t>(i) * c,
                               static_cast<std::size_t>(c)));
  }
  return preds;
}

ConfusionMatrix evaluate(Layer& model, const Tensor& x,
                         std::span<const int> labels, int num_classes,
                         std::vector<std::string> class_names,
                         int batch_size) {
  const auto preds = predict_classes(model, x, batch_size);
  if (preds.size() != labels.size()) {
    throw std::invalid_argument("evaluate: label count mismatch");
  }
  ConfusionMatrix cm(num_classes, std::move(class_names));
  for (std::size_t i = 0; i < preds.size(); ++i) cm.add(labels[i], preds[i]);
  return cm;
}

}  // namespace darnet::nn
