#include "nn/lstm.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace darnet::nn {

namespace {

float sigmoidf(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }

/// Extract timestep t of [N, T, D] into a [N, D] matrix.
Tensor slice_step(const Tensor& input, int t) {
  const int n = input.dim(0), steps = input.dim(1), d = input.dim(2);
  Tensor out({n, d});
  for (int i = 0; i < n; ++i) {
    const float* src = input.data() +
                       (static_cast<std::size_t>(i) * steps + t) * d;
    float* dst = out.data() + static_cast<std::size_t>(i) * d;
    std::copy(src, src + d, dst);
  }
  return out;
}

/// Accumulate a [N, D] matrix into timestep t of [N, T, D].
void add_step(Tensor& dst, int t, const Tensor& src) {
  const int n = dst.dim(0), steps = dst.dim(1), d = dst.dim(2);
  for (int i = 0; i < n; ++i) {
    float* out = dst.data() + (static_cast<std::size_t>(i) * steps + t) * d;
    const float* in = src.data() + static_cast<std::size_t>(i) * d;
    for (int j = 0; j < d; ++j) out[j] += in[j];
  }
}

}  // namespace

LstmDirection::LstmDirection(int input_dim_, int hidden_dim_, util::Rng& rng)
    : wx(Tensor::he_normal({input_dim_, 4 * hidden_dim_}, input_dim_, rng)),
      wh(Tensor::he_normal({hidden_dim_, 4 * hidden_dim_}, hidden_dim_, rng)),
      b(Tensor({4 * hidden_dim_})),
      input_dim(input_dim_),
      hidden_dim(hidden_dim_) {
  // Initialise the forget-gate bias to 1 so gradients flow at the start of
  // training (standard LSTM practice).
  for (int j = hidden_dim_; j < 2 * hidden_dim_; ++j) b.value.at(j) = 1.0f;
}

BiLstm::BiLstm(int input_dim, int hidden_dim, util::Rng& rng)
    : input_dim_(input_dim),
      hidden_(hidden_dim),
      fwd_(input_dim, hidden_dim, rng),
      bwd_(input_dim, hidden_dim, rng) {
  if (input_dim <= 0 || hidden_dim <= 0) {
    throw std::invalid_argument("BiLstm: dims must be positive");
  }
}

void BiLstm::run_direction(const Tensor& input, const LstmDirection& dir,
                           bool reversed, bool training,
                           DirectionTrace& trace, Tensor& output,
                           int out_offset) {
  const int n = input.dim(0), steps = input.dim(1);
  const int h = dir.hidden_dim;

  trace = DirectionTrace{};
  if (training) {
    trace.i.reserve(steps);
    trace.f.reserve(steps);
    trace.g.reserve(steps);
    trace.o.reserve(steps);
    trace.c.reserve(steps);
    trace.tanh_c.reserve(steps);
    trace.h.reserve(steps);
  }

  Tensor h_prev({n, h});
  Tensor c_prev({n, h});

  for (int step = 0; step < steps; ++step) {
    const int t = reversed ? steps - 1 - step : step;
    Tensor xt = slice_step(input, t);

    // Fused gate pre-activations: Z = Xt Wx + Hprev Wh + b.
    Tensor z = tensor::matmul(xt, dir.wx.value);
    tensor::matmul_accumulate(h_prev, dir.wh.value, z);
    for (int i = 0; i < n; ++i) {
      float* row = z.data() + static_cast<std::size_t>(i) * 4 * h;
      const float* bias = dir.b.value.data();
      for (int j = 0; j < 4 * h; ++j) row[j] += bias[j];
    }

    Tensor gi({n, h}), gf({n, h}), gg({n, h}), go({n, h}), c({n, h}),
        tc({n, h}), hh({n, h});
    for (int i = 0; i < n; ++i) {
      const float* row = z.data() + static_cast<std::size_t>(i) * 4 * h;
      const float* cp = c_prev.data() + static_cast<std::size_t>(i) * h;
      float* pi = gi.data() + static_cast<std::size_t>(i) * h;
      float* pf = gf.data() + static_cast<std::size_t>(i) * h;
      float* pg = gg.data() + static_cast<std::size_t>(i) * h;
      float* po = go.data() + static_cast<std::size_t>(i) * h;
      float* pc = c.data() + static_cast<std::size_t>(i) * h;
      float* ptc = tc.data() + static_cast<std::size_t>(i) * h;
      float* ph = hh.data() + static_cast<std::size_t>(i) * h;
      for (int j = 0; j < h; ++j) {
        pi[j] = sigmoidf(row[j]);
        pf[j] = sigmoidf(row[h + j]);
        pg[j] = std::tanh(row[2 * h + j]);
        po[j] = sigmoidf(row[3 * h + j]);
        pc[j] = pf[j] * cp[j] + pi[j] * pg[j];
        ptc[j] = std::tanh(pc[j]);
        ph[j] = po[j] * ptc[j];
      }
    }

    // Write h into the output slab at [*, t, out_offset : out_offset+h].
    const int out_f = output.dim(2);
    for (int i = 0; i < n; ++i) {
      float* dst = output.data() +
                   (static_cast<std::size_t>(i) * steps + t) * out_f +
                   out_offset;
      const float* src = hh.data() + static_cast<std::size_t>(i) * h;
      std::copy(src, src + h, dst);
    }

    h_prev = hh;
    c_prev = c;
    if (training) {
      trace.i.push_back(std::move(gi));
      trace.f.push_back(std::move(gf));
      trace.g.push_back(std::move(gg));
      trace.o.push_back(std::move(go));
      trace.c.push_back(std::move(c));
      trace.tanh_c.push_back(std::move(tc));
      trace.h.push_back(std::move(hh));
    }
  }
}

ShapeContract BiLstm::shape_contract(
    const std::vector<int>& input_shape) const {
  if (input_shape.size() != 3 || input_shape[2] != input_dim_) {
    return ShapeContract::bad("BiLstm expects [N, T, " +
                              std::to_string(input_dim_) + "] input");
  }
  return ShapeContract::ok({input_shape[0], input_shape[1], 2 * hidden_});
}

Tensor BiLstm::forward(const Tensor& input, bool training) {
  if (input.rank() != 3 || input.dim(2) != input_dim_) {
    throw std::invalid_argument("BiLstm::forward: expected [N, T, " +
                                std::to_string(input_dim_) + "], got " +
                                input.shape_string());
  }
  const int n = input.dim(0), steps = input.dim(1);
  Tensor output({n, steps, 2 * hidden_});
  if (training) cached_input_ = input;
  run_direction(input, fwd_, /*reversed=*/false, training, fwd_trace_, output,
                0);
  run_direction(input, bwd_, /*reversed=*/true, training, bwd_trace_, output,
                hidden_);
  return output;
}

Tensor BiLstm::forward_moved(Tensor&& input, bool training) {
  if (!training) return forward(input, false);
  if (input.rank() != 3 || input.dim(2) != input_dim_) {
    throw std::invalid_argument("BiLstm::forward: expected [N, T, " +
                                std::to_string(input_dim_) + "], got " +
                                input.shape_string());
  }
  // Steal the buffer for the BPTT cache instead of deep-copying it.
  cached_input_ = std::move(input);
  const int n = cached_input_.dim(0), steps = cached_input_.dim(1);
  Tensor output({n, steps, 2 * hidden_});
  run_direction(cached_input_, fwd_, /*reversed=*/false, training, fwd_trace_,
                output, 0);
  run_direction(cached_input_, bwd_, /*reversed=*/true, training, bwd_trace_,
                output, hidden_);
  return output;
}

void BiLstm::backprop_direction(const Tensor& grad_output, int out_offset,
                                LstmDirection& dir, bool reversed,
                                const DirectionTrace& trace,
                                Tensor& grad_input) {
  const int n = cached_input_.dim(0), steps = cached_input_.dim(1);
  const int h = dir.hidden_dim;
  const int out_f = grad_output.dim(2);

  Tensor dh_next({n, h});
  Tensor dc_next({n, h});

  // Walk timesteps in reverse of the forward iteration order. `step` indexes
  // the trace; `t` is the actual time index in the input tensor.
  for (int step = steps - 1; step >= 0; --step) {
    const int t = reversed ? steps - 1 - step : step;

    // dh for this step = slice of grad_output + carry from the next step.
    Tensor dh = dh_next;
    for (int i = 0; i < n; ++i) {
      const float* src = grad_output.data() +
                         (static_cast<std::size_t>(i) * steps + t) * out_f +
                         out_offset;
      float* dst = dh.data() + static_cast<std::size_t>(i) * h;
      for (int j = 0; j < h; ++j) dst[j] += src[j];
    }

    const Tensor& gi = trace.i[step];
    const Tensor& gf = trace.f[step];
    const Tensor& gg = trace.g[step];
    const Tensor& go = trace.o[step];
    const Tensor& tc = trace.tanh_c[step];
    // c_{t-1} in iteration order (zeros at the first step).
    const Tensor* c_prev = (step > 0) ? &trace.c[step - 1] : nullptr;

    Tensor dz({n, 4 * h});
    Tensor dc({n, h});
    for (int i = 0; i < n; ++i) {
      const std::size_t off = static_cast<std::size_t>(i) * h;
      const float* pdh = dh.data() + off;
      const float* pi = gi.data() + off;
      const float* pf = gf.data() + off;
      const float* pg = gg.data() + off;
      const float* po = go.data() + off;
      const float* ptc = tc.data() + off;
      const float* pcn = dc_next.data() + off;
      float* pdc = dc.data() + off;
      float* pdz = dz.data() + static_cast<std::size_t>(i) * 4 * h;
      for (int j = 0; j < h; ++j) {
        const float d_o = pdh[j] * ptc[j];
        const float dct = pcn[j] + pdh[j] * po[j] * (1.0f - ptc[j] * ptc[j]);
        const float d_i = dct * pg[j];
        const float cprev = c_prev
                                ? (*c_prev)[off + static_cast<std::size_t>(j)]
                                : 0.0f;
        const float d_f = dct * cprev;
        const float d_g = dct * pi[j];
        pdc[j] = dct * pf[j];  // carries to c_{t-1}
        pdz[j] = d_i * pi[j] * (1.0f - pi[j]);
        pdz[h + j] = d_f * pf[j] * (1.0f - pf[j]);
        pdz[2 * h + j] = d_g * (1.0f - pg[j] * pg[j]);
        pdz[3 * h + j] = d_o * po[j] * (1.0f - po[j]);
      }
    }
    dc_next = std::move(dc);

    // Parameter gradients.
    Tensor xt = slice_step(cached_input_, t);
    Tensor dwx = tensor::matmul_at(xt, dz);
    tensor::add_inplace(dir.wx.grad, dwx);

    const Tensor h_prev_mat = (step > 0) ? trace.h[step - 1] : Tensor({n, h});
    Tensor dwh = tensor::matmul_at(h_prev_mat, dz);
    tensor::add_inplace(dir.wh.grad, dwh);

    float* db = dir.b.grad.data();
    for (int i = 0; i < n; ++i) {
      const float* row = dz.data() + static_cast<std::size_t>(i) * 4 * h;
      for (int j = 0; j < 4 * h; ++j) db[j] += row[j];
    }

    // Input gradient and hidden carry.
    Tensor dx = tensor::matmul_bt(dz, dir.wx.value);
    add_step(grad_input, t, dx);
    dh_next = tensor::matmul_bt(dz, dir.wh.value);
  }
}

Tensor BiLstm::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("BiLstm::backward before forward(training=true)");
  }
  if (grad_output.rank() != 3 || grad_output.dim(2) != 2 * hidden_) {
    throw std::invalid_argument("BiLstm::backward: grad shape mismatch");
  }
  Tensor grad_input(cached_input_.shape());
  backprop_direction(grad_output, 0, fwd_, /*reversed=*/false, fwd_trace_,
                     grad_input);
  backprop_direction(grad_output, hidden_, bwd_, /*reversed=*/true,
                     bwd_trace_, grad_input);
  return grad_input;
}

std::vector<Param*> BiLstm::params() {
  return {&fwd_.wx, &fwd_.wh, &fwd_.b, &bwd_.wx, &bwd_.wh, &bwd_.b};
}

ShapeContract TemporalMeanPool::shape_contract(
    const std::vector<int>& input_shape) const {
  if (input_shape.size() != 3) {
    return ShapeContract::bad(
        "TemporalMeanPool expects [N, T, F] input, got rank " +
        std::to_string(input_shape.size()));
  }
  return ShapeContract::ok({input_shape[0], input_shape[2]});
}

Tensor TemporalMeanPool::forward(const Tensor& input, bool training) {
  if (input.rank() != 3) {
    throw std::invalid_argument("TemporalMeanPool: [N, T, F] required");
  }
  if (training) input_shape_ = input.shape();
  const int n = input.dim(0), steps = input.dim(1), f = input.dim(2);
  const float inv = 1.0f / static_cast<float>(steps);
  Tensor out({n, f});
  for (int i = 0; i < n; ++i) {
    float* dst = out.data() + static_cast<std::size_t>(i) * f;
    for (int t = 0; t < steps; ++t) {
      const float* src =
          input.data() + (static_cast<std::size_t>(i) * steps + t) * f;
      for (int j = 0; j < f; ++j) dst[j] += src[j];
    }
    for (int j = 0; j < f; ++j) dst[j] *= inv;
  }
  return out;
}

Tensor TemporalMeanPool::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("TemporalMeanPool::backward before forward");
  }
  const int n = input_shape_[0], steps = input_shape_[1], f = input_shape_[2];
  const float inv = 1.0f / static_cast<float>(steps);
  Tensor grad_in(input_shape_);
  for (int i = 0; i < n; ++i) {
    const float* src = grad_output.data() + static_cast<std::size_t>(i) * f;
    for (int t = 0; t < steps; ++t) {
      float* dst =
          grad_in.data() + (static_cast<std::size_t>(i) * steps + t) * f;
      for (int j = 0; j < f; ++j) dst[j] = src[j] * inv;
    }
  }
  return grad_in;
}

}  // namespace darnet::nn
