#include "nn/metrics.hpp"

#include <stdexcept>

#include "util/table.hpp"

namespace darnet::nn {

ConfusionMatrix::ConfusionMatrix(int num_classes,
                                 std::vector<std::string> class_names)
    : classes_(num_classes),
      names_(std::move(class_names)),
      counts_(static_cast<std::size_t>(num_classes) * num_classes, 0) {
  if (num_classes <= 0) {
    throw std::invalid_argument("ConfusionMatrix: num_classes must be > 0");
  }
  if (names_.empty()) {
    for (int i = 0; i < classes_; ++i) names_.push_back(std::to_string(i + 1));
  }
  if (names_.size() != static_cast<std::size_t>(classes_)) {
    throw std::invalid_argument("ConfusionMatrix: name count mismatch");
  }
}

void ConfusionMatrix::add(int true_class, int predicted_class) {
  if (true_class < 0 || true_class >= classes_ || predicted_class < 0 ||
      predicted_class >= classes_) {
    throw std::out_of_range("ConfusionMatrix::add: class out of range");
  }
  ++counts_[static_cast<std::size_t>(true_class) * classes_ + predicted_class];
  ++total_;
}

long ConfusionMatrix::count(int true_class, int predicted_class) const {
  if (true_class < 0 || true_class >= classes_ || predicted_class < 0 ||
      predicted_class >= classes_) {
    throw std::out_of_range("ConfusionMatrix::count: class out of range");
  }
  return counts_[static_cast<std::size_t>(true_class) * classes_ +
                 predicted_class];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  long correct = 0;
  for (int i = 0; i < classes_; ++i) correct += count(i, i);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::class_recall(int true_class) const {
  long row = 0;
  for (int j = 0; j < classes_; ++j) row += count(true_class, j);
  if (row == 0) return 0.0;
  return static_cast<double>(count(true_class, true_class)) /
         static_cast<double>(row);
}

double ConfusionMatrix::class_precision(int predicted_class) const {
  long col = 0;
  for (int i = 0; i < classes_; ++i) col += count(i, predicted_class);
  if (col == 0) return 0.0;
  return static_cast<double>(count(predicted_class, predicted_class)) /
         static_cast<double>(col);
}

double ConfusionMatrix::class_f1(int cls) const {
  const double p = class_precision(cls);
  const double r = class_recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double acc = 0.0;
  for (int c = 0; c < classes_; ++c) acc += class_f1(c);
  return acc / classes_;
}

double ConfusionMatrix::confusion_rate(int true_class,
                                       int predicted_class) const {
  long row = 0;
  for (int j = 0; j < classes_; ++j) row += count(true_class, j);
  if (row == 0) return 0.0;
  return static_cast<double>(count(true_class, predicted_class)) /
         static_cast<double>(row);
}

std::string ConfusionMatrix::render() const {
  std::vector<std::string> header{"true \\ pred"};
  for (const auto& n : names_) header.push_back(n);
  util::Table table(std::move(header));
  for (int i = 0; i < classes_; ++i) {
    std::vector<std::string> row{names_[i]};
    for (int j = 0; j < classes_; ++j) {
      row.push_back(util::fmt(confusion_rate(i, j), 2));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

double topk_accuracy(const std::vector<float>& scores, int num_classes,
                     const std::vector<int>& labels, int k) {
  if (num_classes <= 0 || k < 1 || k > num_classes || labels.empty() ||
      scores.size() != labels.size() * static_cast<std::size_t>(num_classes)) {
    throw std::invalid_argument("topk_accuracy: inconsistent arguments");
  }
  long hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const float* row = scores.data() + i * num_classes;
    const float true_score = row[labels[i]];
    // Rank of the true class = classes scoring strictly higher.
    int higher = 0;
    for (int c = 0; c < num_classes; ++c) {
      if (row[c] > true_score) ++higher;
    }
    if (higher < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double top1_accuracy(const std::vector<int>& predictions,
                     const std::vector<int>& labels) {
  if (predictions.size() != labels.size() || predictions.empty()) {
    throw std::invalid_argument("top1_accuracy: size mismatch or empty");
  }
  long correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

}  // namespace darnet::nn
