// First-order optimizers operating on a parameter list.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace darnet::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then zero them.
  virtual void step(const std::vector<Param*>& params) = 0;

  void set_learning_rate(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double learning_rate() const noexcept { return lr_; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// SGD with classical momentum and decoupled weight decay. The paper trains
/// the dCNNs with plain SGD; momentum 0 recovers that.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9, double weight_decay = 0.0);
  void step(const std::vector<Param*>& params) override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba) -- used for the BiLSTM, which is brittle under raw SGD.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);
  void step(const std::vector<Param*>& params) override;

 private:
  double beta1_, beta2_, epsilon_;
  long t_{0};
  std::vector<tensor::Tensor> m_, v_;
};

/// Clip the global gradient norm across all params to `max_norm` (no-op if
/// already below). Returns the pre-clip norm. Essential for BPTT stability.
double clip_grad_norm(const std::vector<Param*>& params, double max_norm);

}  // namespace darnet::nn
