#include "sim/queue.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace darnet::sim {

void Simulation::schedule(SimTime at, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("Simulation::schedule: null callback");
  if (at < now_) {
    throw std::invalid_argument("Simulation::schedule: time in the past");
  }
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulation::schedule_in(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("Simulation::schedule_in: negative delay");
  }
  schedule(now_ + delay, std::move(fn));
}

void Simulation::run_until(SimTime horizon) {
  while (!queue_.empty() && queue_.top().at <= horizon) {
    // Copy out before pop so the handler may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    DARNET_COUNTER_ADD("sim/events_executed_total", 1);
    ev.fn();
  }
  if (now_ < horizon) now_ = horizon;
}

}  // namespace darnet::sim
