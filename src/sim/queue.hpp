// Discrete-event queue: the heart of the deterministic fleet simulator.
//
// Single-threaded, with stable (time, sequence) tie-breaking: events at
// the same instant run in scheduling order, so an entire run is a pure
// function of the seed and the scenario -- the bit-reproducibility
// contract documented in docs/SIMULATION.md. Originally built for the
// two-device collection middleware (DESIGN.md); promoted to src/sim so
// fleet-scale scenarios, vehicles, and links all share one timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

#include "sim/clock.hpp"

namespace darnet::sim {

class Simulation {
 public:
  /// Schedule `fn` at absolute time `at` (must not be in the past).
  void schedule(SimTime at, std::function<void()> fn);

  /// Schedule relative to the current time.
  void schedule_in(SimTime delay, std::function<void()> fn);

  /// Run events until the queue is empty or the horizon is reached.
  /// Advances now() to min(horizon, last event time).
  void run_until(SimTime horizon);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  /// Events executed so far (deterministic for a given seed + scenario).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_{0.0};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace darnet::sim
