// darnet::sim -- virtual time for the deterministic fleet simulator.
//
// SimTime is the global ("true") simulation timeline in seconds; only the
// event queue sees it. Every simulated device carries a SimClock -- a
// local clock with rate error (drift) and offset -- because the paper's
// middleware exists precisely to survive such clocks: "the system clock
// is highly susceptible to drift, [so] this synchronization process is
// repeated every 5 seconds" (§4.1).
//
// The serve tier measures deadlines and latency on
// std::chrono::steady_clock; to_time_point()/to_sim_time() map the
// simulated timeline onto steady_clock's representation so a
// serve::TimeSource can be driven by the event queue (see
// docs/SIMULATION.md "Determinism contract").
#pragma once

#include <chrono>
#include <cstdint>

namespace darnet::sim {

/// Global ("true") simulation time in seconds. Only the simulation driver
/// sees it; devices see their own drifting clocks.
using SimTime = double;

/// Simulated seconds -> steady_clock time_point (epoch-anchored: SimTime 0
/// maps to time_since_epoch() == 0). Sub-nanosecond detail truncates.
[[nodiscard]] inline std::chrono::steady_clock::time_point to_time_point(
    SimTime t) noexcept {
  return std::chrono::steady_clock::time_point{
      std::chrono::nanoseconds{static_cast<std::int64_t>(t * 1e9)}};
}

/// Inverse of to_time_point().
[[nodiscard]] inline SimTime to_sim_time(
    std::chrono::steady_clock::time_point tp) noexcept {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             tp.time_since_epoch())
      .count();
}

/// A device-local clock with rate error (drift) and offset, as carried by
/// each collection agent.
class SimClock {
 public:
  /// drift_ppm: rate error in parts-per-million (e.g. +200 means the local
  /// clock gains 200 us per true second). initial_offset: starting error.
  explicit SimClock(double drift_ppm = 0.0, double initial_offset = 0.0)
      : rate_(1.0 + drift_ppm * 1e-6), offset_(initial_offset) {}

  /// The device's reading of its own clock at true time `true_now`.
  [[nodiscard]] double read(SimTime true_now) const noexcept {
    return true_now * rate_ + offset_;
  }

  /// Slam the clock so that read(true_now) == new_local (what an agent does
  /// when it receives the master's UTC plus the latency constant).
  void set(SimTime true_now, double new_local) noexcept {
    offset_ = new_local - true_now * rate_;
  }

  /// Signed error vs true time at `true_now`.
  [[nodiscard]] double error(SimTime true_now) const noexcept {
    return read(true_now) - true_now;
  }

 private:
  double rate_;
  double offset_;
};

}  // namespace darnet::sim
