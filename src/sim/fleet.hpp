// FleetSimulator: thousands of vehicles -> one controller -> one server,
// on one deterministic timeline.
//
// The simulator instantiates a VehicleAgent per session, wires every
// uplink through a tap (latency / out-of-sequence accounting) into the
// collection controller, and drives periodic inference: each vehicle's
// freshest frame + IMU window is submitted through serve::Router (one
// shard by default; the overload scenarios shard and meter tenants) and
// the response is awaited *within the same simulation event* (lockstep), so
// the server -- despite running real worker threads -- sees a
// deterministic request sequence and the whole run is bit-reproducible
// from the seed. The server reads time through a VirtualTimeSource, so
// deadline triage and latency accounting happen in simulated time too.
// See docs/SIMULATION.md for the determinism contract and the scenario
// catalogue.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collection/controller.hpp"
#include "serve/router.hpp"
#include "sim/scenario.hpp"
#include "sim/vehicle.hpp"

namespace darnet::sim {

/// serve::TimeSource driven by the event queue: the server's deadline and
/// latency math reads simulated time. The Simulation must outlive the
/// Server holding this source.
class VirtualTimeSource final : public serve::TimeSource {
 public:
  explicit VirtualTimeSource(const Simulation& sim) noexcept : sim_(&sim) {}
  [[nodiscard]] std::chrono::steady_clock::time_point now()
      const noexcept override {
    return to_time_point(sim_->now());
  }

 private:
  const Simulation* sim_;
};

/// Aggregate outcome of one run. Every field is derived from simulated
/// time and deterministic counters -- no wall-clock quantity appears, so
/// the report (and its JSON form) is bit-identical across runs with the
/// same seed.
struct FleetReport {
  std::uint64_t events_executed{0};

  // Request outcomes (fleet-wide sums of per-vehicle counts).
  std::uint64_t requests{0};
  std::uint64_t served{0};
  std::uint64_t timeouts{0};
  std::uint64_t shed{0};
  std::uint64_t rejected{0};
  /// Of `rejected`, those clipped by a tenant quota at the router door
  /// (never reached a shard queue).
  std::uint64_t quota_rejected{0};
  std::uint64_t skipped{0};   // no frame delivered yet at infer time
  std::uint64_t degraded{0};  // responses served by the degraded path
  std::uint64_t alerts{0};    // debounced alert onsets across sessions

  // Capture-to-verdict latency (ms, simulated time) over served requests.
  double latency_p50_ms{0.0};
  double latency_p90_ms{0.0};
  double latency_p99_ms{0.0};
  double latency_max_ms{0.0};
  /// Mean over per-device p50s / the worst per-device p99 (devices with
  /// at least one served request).
  double device_mean_p50_ms{0.0};
  double device_worst_p99_ms{0.0};

  // Link totals over all vehicle up/downlinks.
  std::uint64_t messages_sent{0};
  std::uint64_t messages_dropped{0};
  std::uint64_t messages_reordered{0};
  std::uint64_t messages_out_of_order{0};
  std::uint64_t bytes_sent{0};

  /// Readings whose device timestamp regressed within their stream at the
  /// tap (reordered delivery observed at the controller side).
  std::uint64_t out_of_sequence{0};

  // Device-clock error sampled every clock_probe_period_s (ms, |error|).
  std::uint64_t clock_probes{0};
  double clock_mean_abs_error_ms{0.0};
  double clock_max_abs_error_ms{0.0};

  /// Served verdict histogram over the six image classes.
  std::array<std::uint64_t, 6> verdicts{};

  // Server-side batch accounting (deterministic under lockstep).
  std::uint64_t batches{0};
  std::uint64_t degraded_batches{0};
};

class FleetSimulator {
 public:
  explicit FleetSimulator(ScenarioConfig config);
  ~FleetSimulator();

  FleetSimulator(const FleetSimulator&) = delete;
  FleetSimulator& operator=(const FleetSimulator&) = delete;

  /// Execute the scenario to its horizon. Call once.
  void run();

  /// Valid after run().
  [[nodiscard]] const FleetReport& report() const noexcept { return report_; }

  /// Deterministic JSON export of the report (sorted-stable key order,
  /// fixed float formatting) -- the bit-parity artefact of the
  /// determinism contract.
  [[nodiscard]] std::string metrics_json() const;

  [[nodiscard]] const ScenarioConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] serve::Router& router() noexcept { return *router_; }
  /// Shard 0 -- the whole serving tier when `shards == 1` (the default).
  [[nodiscard]] serve::Server& server() noexcept { return router_->shard(0); }
  [[nodiscard]] collection::Controller& controller() noexcept {
    return *controller_;
  }
  [[nodiscard]] Simulation& simulation() noexcept { return sim_; }

  /// Model-input sizes of the built-in synthetic ensemble.
  static constexpr int kFrameFeatures = 16;
  static constexpr int kImuWindow = 8;
  static constexpr int kImuChannels = 3;
  static constexpr int kClasses = 6;

 private:
  struct Track;

  void wire_vehicle(std::size_t index);
  void on_uplink(std::size_t index, std::vector<std::uint8_t> payload);
  void infer_step(std::size_t index);
  void clock_probe();
  void finalize_report();

  ScenarioConfig config_;
  Simulation sim_;
  std::shared_ptr<engine::EnsembleClassifier> ensemble_;
  std::unique_ptr<serve::Router> router_;
  std::unique_ptr<collection::Controller> controller_;
  std::vector<std::unique_ptr<Track>> tracks_;
  FleetReport report_;
  // Clock-probe accumulators.
  std::uint64_t clock_probes_{0};
  double clock_abs_error_sum_ms_{0.0};
  double clock_abs_error_max_ms_{0.0};
  bool ran_{false};
};

}  // namespace darnet::sim
