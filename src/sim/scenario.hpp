// Named fleet scenarios: the workload catalogue for the simulator.
//
// A scenario is a parameterisation of the whole fleet -- load curve, link
// quality, clock behaviour, lifecycle churn, serving drills -- looked up
// by name from the fleet_simulator tool, bench_fleet, and the tests.
// Every scenario registered here MUST have a row in docs/SIMULATION.md's
// catalogue table; darnet_lint enforces the two-way contract
// (sim-doc-missing / sim-doc-stale), exactly like the obs metric rules.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/link.hpp"
#include "sim/vehicle.hpp"

namespace darnet::sim {

/// Everything a FleetSimulator run needs. make() on a Scenario fills one
/// in from (sessions, seed); knobs are per-vehicle templates -- vehicle
/// seeds, drifts, and offsets are derived per vehicle from `seed`.
struct ScenarioConfig {
  std::string name = "steady";
  int sessions = 100;
  std::uint64_t seed = 42;
  double duration_s = 10.0;

  // Vehicle template.
  double frame_period_s = 0.25;
  double imu_period_s = 0.05;
  double transmit_period_s = 0.25;
  int frame_payload_floats = 64;
  /// Per-vehicle drift drawn uniform from [-drift_ppm_max, drift_ppm_max].
  double drift_ppm_max = 100.0;
  /// Per-vehicle initial clock offset drawn uniform from [-max, max].
  double initial_offset_max_s = 0.005;
  double latency_compensation_s = 0.015;
  LinkConfig link;  // uplink and downlink template

  // Fleet-level behaviour.
  LoadCurve load;
  double infer_period_s = 0.25;
  /// Per-request deadline: frame capture (device) time + this budget.
  double deadline_budget_s = 0.75;
  double clock_sync_period_s = 5.0;
  double clock_probe_period_s = 1.0;

  // Churn: vehicles join staggered over [0, join_spread_s] and a
  // leave_fraction of them stop partway through the run.
  double join_spread_s = 0.0;
  double leave_fraction = 0.0;

  // Degraded-mode drill: toggle serve::Server::force_degraded every half
  // period (0 disables). Implies the two-modality ensemble.
  double degraded_flap_period_s = 0.0;
  /// Build (and fit) the IMU side of the ensemble.
  bool imu_ensemble = false;

  // Sharded serving tier (serve::Router). The bridge always routes
  // through a Router; 1 shard routes every session to shard 0, which
  // preserves the historical single-Server request sequence bit-for-bit.
  int shards = 1;
  /// Tenants cycle over vehicles: tenant id = vehicle id % tenants.
  int tenants = 1;
  /// Per-tenant admission quota: continuous token refill in requests/s
  /// (0 leaves every tenant unmetered) and the bucket capacity in
  /// requests (clamped to >= 1 when quotas are on).
  double tenant_refill_per_s = 0.0;
  double tenant_burst = 0.0;
};

/// A catalogue entry: the name is the CLI handle and the documentation
/// key; `stresses` is the one-line purpose shown by --list.
struct Scenario {
  std::string name;
  std::string stresses;
  std::function<ScenarioConfig(int sessions, std::uint64_t seed)> make;
};

/// All registered scenarios, in registration (documentation) order.
[[nodiscard]] const std::vector<Scenario>& scenarios();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

/// Re-time a scenario to a different run length: duration-relative knobs
/// (burst window, diurnal period, join spread) scale proportionally so a
/// 2-second smoke run exercises the same phases as the 10-second default.
void set_duration(ScenarioConfig& config, double duration_s);

}  // namespace darnet::sim
