#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "bayes/combiner.hpp"
#include "collection/messages.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace darnet::sim {

using tensor::Tensor;

/// Per-vehicle bookkeeping: the serving bridge's caches and counters.
struct FleetSimulator::Track {
  std::unique_ptr<VehicleAgent> vehicle;

  // Freshest delivered frame (model input prefix + device capture time).
  std::vector<float> last_frame;
  double last_frame_ts{0.0};
  bool has_frame{false};

  // Rolling IMU window (chronological ring of kImuWindow x kImuChannels).
  std::array<float, static_cast<std::size_t>(kImuWindow* kImuChannels)>
      imu_ring{};
  std::size_t imu_pos{0};

  // Out-of-sequence detection: high-water device timestamp per stream.
  double max_frame_ts{-1.0};
  double max_imu_ts{-1.0};
  std::uint64_t out_of_sequence{0};

  // Request outcomes.
  std::uint64_t requests{0};
  std::uint64_t served{0};
  std::uint64_t timeouts{0};
  std::uint64_t shed{0};
  std::uint64_t rejected{0};
  std::uint64_t skipped{0};
  std::uint64_t degraded{0};
  std::uint64_t alerts{0};

  /// Capture-to-verdict latency samples, ms of simulated time.
  std::vector<double> latencies_ms;
};

namespace {

[[nodiscard]] std::shared_ptr<engine::EnsembleClassifier> build_ensemble(
    std::uint64_t seed, bool with_imu) {
  constexpr int kF = FleetSimulator::kFrameFeatures;
  constexpr int kT = FleetSimulator::kImuWindow;
  constexpr int kC = FleetSimulator::kImuChannels;
  constexpr int kClasses = FleetSimulator::kClasses;
  constexpr int kImuClasses = 3;

  util::Rng rng(seed ^ 0xfeedfacecafebeefULL);
  auto frame_net = std::make_shared<nn::Sequential>();
  frame_net->emplace<nn::Dense>(kF, kClasses, rng);
  auto frame_model = std::make_shared<engine::NeuralClassifier>(
      frame_net, kClasses, "sim-frame");

  std::shared_ptr<engine::NeuralClassifier> imu_model;
  if (with_imu) {
    auto imu_net = std::make_shared<nn::Sequential>();
    imu_net->emplace<nn::Flatten>();
    imu_net->emplace<nn::Dense>(kT * kC, kImuClasses, rng);
    imu_model = std::make_shared<engine::NeuralClassifier>(
        imu_net, kImuClasses, "sim-imu");
  }

  auto ensemble = std::make_shared<engine::EnsembleClassifier>(
      frame_model, imu_model, bayes::ClassMap::darnet_default());

  if (with_imu) {
    // Fit the combiner CPTs on a small synthetic set so the degraded
    // (IMU-only) path is available; content does not matter, coverage of
    // all classes does.
    constexpr int kSamples = 96;
    Tensor frames = Tensor::uniform({kSamples, kF}, 1.0f, rng);
    Tensor imu = Tensor::uniform({kSamples, kT, kC}, 1.0f, rng);
    std::vector<int> labels(kSamples);
    for (int i = 0; i < kSamples; ++i) labels[i] = i % kClasses;
    ensemble->fit(frames, imu, labels);
  }
  return ensemble;
}

[[nodiscard]] double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto n = sorted.size();
  auto idx = static_cast<std::size_t>(p * static_cast<double>(n - 1) + 0.5);
  idx = std::min(idx, n - 1);
  return sorted[idx];
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), comma ? ", " : "");
  out += buf;
}

void append_kv(std::string& out, const char* key, double value,
               bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f%s", key, value,
                comma ? ", " : "");
  out += buf;
}

}  // namespace

FleetSimulator::FleetSimulator(ScenarioConfig config)
    : config_(std::move(config)) {
  if (config_.sessions < 1) {
    throw std::invalid_argument("FleetSimulator: sessions must be >= 1");
  }
  if (config_.duration_s <= 0.0 || config_.infer_period_s <= 0.0 ||
      config_.deadline_budget_s <= 0.0 || config_.clock_probe_period_s <= 0.0) {
    throw std::invalid_argument("FleetSimulator: invalid timing config");
  }
  if (config_.leave_fraction < 0.0 || config_.leave_fraction > 1.0 ||
      config_.join_spread_s < 0.0) {
    throw std::invalid_argument("FleetSimulator: invalid churn config");
  }
  if (config_.shards < 1 || config_.tenants < 1 ||
      config_.tenant_refill_per_s < 0.0) {
    throw std::invalid_argument("FleetSimulator: invalid sharding config");
  }

  const bool with_imu =
      config_.imu_ensemble || config_.degraded_flap_period_s > 0.0;
  ensemble_ = build_ensemble(config_.seed, with_imu);

  serve::RouterConfig router_config;
  router_config.shards = config_.shards;
  router_config.shard.max_batch = 8;
  router_config.shard.max_delay_us = 0;
  router_config.shard.queue_capacity = 64;
  router_config.shard.workers = 1;
  // The router lives and dies inside this object: sim_ (declared before
  // router_) outlives it, so the raw back-pointer in VirtualTimeSource is
  // safe. Quota buckets refill from the same simulated clock.
  router_config.shard.time_source = std::make_shared<VirtualTimeSource>(sim_);
  if (config_.tenant_refill_per_s > 0.0) {
    for (int t = 0; t < config_.tenants; ++t) {
      router_config.quotas[static_cast<std::uint64_t>(t)] =
          serve::TenantQuota{std::max(1.0, config_.tenant_burst),
                            config_.tenant_refill_per_s};
    }
  }
  // One replica per shard, every one rebuilt from the same seed:
  // identical weights (any shard serves identical math) but distinct
  // objects, as the router's snapshot contract requires.
  serve::Router::Snapshot snapshot;
  snapshot.version = 1;
  snapshot.replicas.push_back(ensemble_);
  for (int s = 1; s < config_.shards; ++s) {
    snapshot.replicas.push_back(build_ensemble(config_.seed, with_imu));
  }
  router_ = std::make_unique<serve::Router>(std::move(snapshot),
                                            std::move(router_config));

  collection::ControllerConfig controller_config;
  controller_config.clock_sync_period_s = config_.clock_sync_period_s;
  controller_ =
      std::make_unique<collection::Controller>(sim_, controller_config);

  // Per-vehicle parameters derive from one fleet RNG in index order, so
  // vehicle i's seed/drift/lifecycle is a pure function of (seed, i).
  util::Rng fleet_rng(config_.seed);
  tracks_.reserve(static_cast<std::size_t>(config_.sessions));
  for (int i = 0; i < config_.sessions; ++i) {
    VehicleConfig vc;
    vc.id = static_cast<std::uint32_t>(i);
    vc.seed = fleet_rng.next_u64();
    vc.frame_period_s = config_.frame_period_s;
    vc.imu_period_s = config_.imu_period_s;
    vc.frame_payload_floats = config_.frame_payload_floats;
    vc.imu_channels = kImuChannels;
    vc.transmit_period_s = config_.transmit_period_s;
    vc.latency_compensation_s = config_.latency_compensation_s;
    vc.clock_drift_ppm =
        fleet_rng.uniform(-config_.drift_ppm_max, config_.drift_ppm_max);
    vc.clock_initial_offset_s = fleet_rng.uniform(
        -config_.initial_offset_max_s, config_.initial_offset_max_s);
    vc.uplink = config_.link;
    vc.downlink = config_.link;
    vc.downlink.loss_rate = 0.0;  // sync must reach agents in every scenario
    if (config_.join_spread_s > 0.0) {
      vc.start_s = fleet_rng.uniform(0.0, config_.join_spread_s);
    }
    if (config_.leave_fraction > 0.0 &&
        fleet_rng.chance(config_.leave_fraction)) {
      const double leave =
          fleet_rng.uniform(0.5, 0.95) * config_.duration_s;
      vc.stop_s = std::max(leave, vc.start_s + 0.05 * config_.duration_s);
    }

    auto track = std::make_unique<Track>();
    track->vehicle =
        std::make_unique<VehicleAgent>(sim_, vc, config_.load);
    tracks_.push_back(std::move(track));
    wire_vehicle(static_cast<std::size_t>(i));

    // Stagger first inference across the period so fleet load is smooth.
    const double phase = fleet_rng.uniform(0.25, 1.0);
    const double first_at =
        tracks_.back()->vehicle->config().start_s +
        config_.infer_period_s * (1.0 + phase);
    sim_.schedule(first_at, [this, index = static_cast<std::size_t>(i)] {
      infer_step(index);
    });
  }
}

FleetSimulator::~FleetSimulator() {
  // Workers read the VirtualTimeSource; stop them while sim_ is alive.
  router_->drain();
}

void FleetSimulator::wire_vehicle(std::size_t index) {
  Track& track = *tracks_[index];
  VehicleAgent& vehicle = *track.vehicle;
  vehicle.uplink().set_receiver(
      [this, index](std::vector<std::uint8_t> payload) {
        on_uplink(index, std::move(payload));
      });
  vehicle.downlink().set_receiver(
      [this, index](std::vector<std::uint8_t> payload) {
        tracks_[index]->vehicle->agent().on_message(payload);
      });
  controller_->attach_agent(vehicle.id(), vehicle.downlink());
  vehicle.schedule_lifecycle();
}

void FleetSimulator::on_uplink(std::size_t index,
                               std::vector<std::uint8_t> payload) {
  Track& track = *tracks_[index];
  if (collection::peek_kind(payload) == collection::MessageKind::kBatch) {
    collection::DataBatch batch = collection::decode_batch(payload);
    for (auto& reading : batch.readings) {
      const bool is_frame = reading.stream == track.vehicle->frame_stream();
      double& high_water =
          is_frame ? track.max_frame_ts : track.max_imu_ts;
      if (reading.local_timestamp < high_water) {
        ++track.out_of_sequence;
        DARNET_COUNTER_ADD("sim/fleet_out_of_sequence_total", 1);
      } else {
        high_water = reading.local_timestamp;
      }
      if (is_frame) {
        track.last_frame = std::move(reading.values);
        track.last_frame_ts = reading.local_timestamp;
        track.has_frame = true;
      } else {
        const auto base = track.imu_pos * kImuChannels;
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(kImuChannels) &&
             c < reading.values.size();
             ++c) {
          track.imu_ring[base + c] = reading.values[c];
        }
        track.imu_pos = (track.imu_pos + 1) % kImuWindow;
      }
    }
  }
  controller_->on_message(payload);
}

void FleetSimulator::infer_step(std::size_t index) {
  const SimTime t = sim_.now();
  if (t >= config_.duration_s) return;
  Track& track = *tracks_[index];
  if (!track.vehicle->active(t)) return;  // departed: stop rescheduling

  const double factor =
      std::clamp(config_.load.factor(t), 0.05, 100.0);
  sim_.schedule_in(config_.infer_period_s / factor,
                   [this, index] { infer_step(index); });

  ++track.requests;
  DARNET_COUNTER_ADD("sim/fleet_requests_total", 1);
  if (!track.has_frame) {
    ++track.skipped;
    DARNET_COUNTER_ADD("sim/fleet_requests_skipped_total", 1);
    return;
  }

  engine::ClassifyRequest request;
  request.session_id = static_cast<std::uint64_t>(index);
  request.tenant_id = static_cast<std::uint64_t>(
      index % static_cast<std::size_t>(config_.tenants));
  request.deadline =
      to_time_point(track.last_frame_ts + config_.deadline_budget_s);
  request.frame = Tensor::zeros({1, kFrameFeatures});
  {
    float* d = request.frame.data();
    const auto n = std::min(track.last_frame.size(),
                            static_cast<std::size_t>(kFrameFeatures));
    std::copy_n(track.last_frame.begin(), n, d);
  }
  if (ensemble_->has_imu_model()) {
    request.imu_window = Tensor::zeros({1, kImuWindow, kImuChannels});
    float* d = request.imu_window.data();
    for (std::size_t k = 0; k < static_cast<std::size_t>(kImuWindow); ++k) {
      const auto src = ((track.imu_pos + k) % kImuWindow) * kImuChannels;
      for (std::size_t c = 0; c < static_cast<std::size_t>(kImuChannels);
           ++c) {
        d[k * kImuChannels + c] = track.imu_ring[src + c];
      }
    }
  }

  // Lockstep bridge: await the verdict inside this event, so at most one
  // request is ever in flight and the multi-threaded server resolves to a
  // deterministic sequence (docs/SIMULATION.md "Determinism contract").
  auto submission = router_->submit(std::move(request));
  serve::Response response = submission.response.get();
  switch (response.status) {
    case serve::Status::kOk: {
      ++track.served;
      if (response.result.degraded) ++track.degraded;
      if (response.result.verdict.alert_onset) ++track.alerts;
      const int predicted = response.result.verdict.predicted;
      if (predicted >= 0 && predicted < kClasses) {
        ++report_.verdicts[static_cast<std::size_t>(predicted)];
      }
      // Observed capture-to-verdict age: simulated now minus the frame's
      // device timestamp. Residual clock error is part of the signal
      // (clock_storm shifts it on purpose).
      const double latency_ms = (t - track.last_frame_ts) * 1e3;
      track.latencies_ms.push_back(latency_ms);
      DARNET_HISTOGRAM_NS("sim/fleet_request_latency_ns",
                          std::max(0.0, latency_ms) * 1e6);
      break;
    }
    case serve::Status::kTimeout:
      ++track.timeouts;
      break;
    case serve::Status::kShed:
      ++track.shed;
      break;
    case serve::Status::kRejected:
      ++track.rejected;
      break;
  }
}

void FleetSimulator::clock_probe() {
  const SimTime t = sim_.now();
  std::uint64_t active = 0;
  for (const auto& track : tracks_) {
    if (!track->vehicle->active(t)) continue;
    ++active;
    const double err_ms =
        std::abs(track->vehicle->agent().clock_error_now()) * 1e3;
    ++clock_probes_;
    clock_abs_error_sum_ms_ += err_ms;
    clock_abs_error_max_ms_ = std::max(clock_abs_error_max_ms_, err_ms);
  }
  DARNET_GAUGE_SET("sim/fleet_vehicles_active",
                   static_cast<std::int64_t>(active));
  if (t + config_.clock_probe_period_s <= config_.duration_s) {
    sim_.schedule_in(config_.clock_probe_period_s, [this] { clock_probe(); });
  }
}

void FleetSimulator::run() {
  if (ran_) throw std::logic_error("FleetSimulator::run: called twice");
  ran_ = true;

  controller_->start();
  sim_.schedule_in(config_.clock_probe_period_s, [this] { clock_probe(); });

  if (config_.degraded_flap_period_s > 0.0) {
    const double half = 0.5 * config_.degraded_flap_period_s;
    bool force = true;
    for (double at = half; at < config_.duration_s; at += half) {
      sim_.schedule(at, [this, force] {
        for (int s = 0; s < router_->shards(); ++s) {
          router_->shard(s).force_degraded(force);
        }
      });
      force = !force;
    }
  }

  sim_.run_until(config_.duration_s);
  router_->drain();
  finalize_report();
}

void FleetSimulator::finalize_report() {
  report_.events_executed = sim_.executed();

  std::vector<double> all;
  std::vector<double> device_p50;
  std::vector<double> device_p99;
  for (auto& track : tracks_) {
    report_.requests += track->requests;
    report_.served += track->served;
    report_.timeouts += track->timeouts;
    report_.shed += track->shed;
    report_.rejected += track->rejected;
    report_.skipped += track->skipped;
    report_.degraded += track->degraded;
    report_.alerts += track->alerts;
    report_.out_of_sequence += track->out_of_sequence;

    for (VirtualLink* link :
         {&track->vehicle->uplink(), &track->vehicle->downlink()}) {
      const LinkStats& stats = link->stats();
      report_.messages_sent += stats.messages_sent;
      report_.messages_dropped += stats.messages_dropped;
      report_.messages_reordered += stats.messages_reordered;
      report_.messages_out_of_order += stats.messages_out_of_order;
      report_.bytes_sent += stats.bytes_sent;
    }

    if (!track->latencies_ms.empty()) {
      std::sort(track->latencies_ms.begin(), track->latencies_ms.end());
      device_p50.push_back(percentile(track->latencies_ms, 0.50));
      device_p99.push_back(percentile(track->latencies_ms, 0.99));
      all.insert(all.end(), track->latencies_ms.begin(),
                 track->latencies_ms.end());
    }
  }
  std::sort(all.begin(), all.end());
  report_.latency_p50_ms = percentile(all, 0.50);
  report_.latency_p90_ms = percentile(all, 0.90);
  report_.latency_p99_ms = percentile(all, 0.99);
  report_.latency_max_ms = all.empty() ? 0.0 : all.back();
  if (!device_p50.empty()) {
    double sum = 0.0;
    for (const double v : device_p50) sum += v;
    report_.device_mean_p50_ms = sum / static_cast<double>(device_p50.size());
    report_.device_worst_p99_ms =
        *std::max_element(device_p99.begin(), device_p99.end());
  }

  report_.clock_probes = clock_probes_;
  report_.clock_mean_abs_error_ms =
      clock_probes_ ? clock_abs_error_sum_ms_ /
                          static_cast<double>(clock_probes_)
                    : 0.0;
  report_.clock_max_abs_error_ms = clock_abs_error_max_ms_;

  const serve::Router::Stats stats = router_->stats();
  report_.quota_rejected = stats.quota_rejected;
  for (const serve::Server::Stats& shard : stats.per_shard) {
    report_.batches += shard.batches;
    report_.degraded_batches += shard.degraded_batches;
  }
}

std::string FleetSimulator::metrics_json() const {
  if (!ran_) {
    throw std::logic_error("FleetSimulator::metrics_json: run() first");
  }
  const FleetReport& r = report_;
  std::string out;
  out.reserve(1536);
  out += "{\n  \"scenario\": \"" + config_.name + "\", ";
  append_kv(out, "sessions", static_cast<std::uint64_t>(config_.sessions));
  append_kv(out, "seed", config_.seed);
  append_kv(out, "duration_s", config_.duration_s);
  append_kv(out, "events_executed", r.events_executed, false);
  out += ",\n  \"requests\": {";
  append_kv(out, "submitted", r.requests);
  append_kv(out, "served", r.served);
  append_kv(out, "timeouts", r.timeouts);
  append_kv(out, "shed", r.shed);
  append_kv(out, "rejected", r.rejected);
  append_kv(out, "quota_rejected", r.quota_rejected);
  append_kv(out, "skipped", r.skipped);
  append_kv(out, "degraded", r.degraded);
  append_kv(out, "alerts", r.alerts, false);
  out += "},\n  \"latency_ms\": {";
  append_kv(out, "p50", r.latency_p50_ms);
  append_kv(out, "p90", r.latency_p90_ms);
  append_kv(out, "p99", r.latency_p99_ms);
  append_kv(out, "max", r.latency_max_ms);
  append_kv(out, "device_mean_p50", r.device_mean_p50_ms);
  append_kv(out, "device_worst_p99", r.device_worst_p99_ms, false);
  out += "},\n  \"link\": {";
  append_kv(out, "messages_sent", r.messages_sent);
  append_kv(out, "messages_dropped", r.messages_dropped);
  append_kv(out, "messages_reordered", r.messages_reordered);
  append_kv(out, "messages_out_of_order", r.messages_out_of_order);
  append_kv(out, "bytes_sent", r.bytes_sent, false);
  out += "},\n  ";
  append_kv(out, "out_of_sequence", r.out_of_sequence, false);
  out += ",\n  \"clock\": {";
  append_kv(out, "probes", r.clock_probes);
  append_kv(out, "mean_abs_error_ms", r.clock_mean_abs_error_ms);
  append_kv(out, "max_abs_error_ms", r.clock_max_abs_error_ms, false);
  out += "},\n  \"serve\": {";
  append_kv(out, "shards", static_cast<std::uint64_t>(config_.shards));
  append_kv(out, "batches", r.batches);
  append_kv(out, "degraded_batches", r.degraded_batches, false);
  out += "},\n  \"verdicts\": [";
  for (std::size_t c = 0; c < r.verdicts.size(); ++c) {
    if (c) out += ", ";
    out += std::to_string(r.verdicts[c]);
  }
  out += "]\n}\n";
  return out;
}

}  // namespace darnet::sim
