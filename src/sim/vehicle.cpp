#include "sim/vehicle.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "collection/sensor.hpp"
#include "util/rng.hpp"

namespace darnet::sim {

double LoadCurve::factor(SimTime t) const noexcept {
  switch (kind) {
    case Kind::kConstant:
      return 1.0;
    case Kind::kBurst:
      return (t >= burst_start_s && t < burst_end_s) ? burst_factor : 1.0;
    case Kind::kDiurnal: {
      const double mid = 0.5 * (diurnal_min + diurnal_max);
      const double amp = 0.5 * (diurnal_max - diurnal_min);
      const double phase = 2.0 * std::numbers::pi * t / diurnal_period_s;
      // Trough at t = 0 (night), peak half a period in (rush hour).
      return mid - amp * std::cos(phase);
    }
  }
  return 1.0;
}

namespace {

/// A sensor whose effective polling period follows the scenario's load
/// curve: the agent re-reads poll_period_s() when rescheduling each poll,
/// so rate modulation takes effect one sample later -- no extra plumbing.
class ModulatedSensor final : public collection::Sensor {
 public:
  using Sampler = std::function<std::vector<float>(SimTime)>;

  ModulatedSensor(const Simulation& sim, std::string stream,
                  double base_period_s, LoadCurve load, Sampler sampler)
      : sim_(sim),
        stream_(std::move(stream)),
        base_period_s_(base_period_s),
        load_(load),
        sampler_(std::move(sampler)) {}

  [[nodiscard]] const std::string& stream() const override { return stream_; }
  std::vector<float> sample(SimTime now) override { return sampler_(now); }
  [[nodiscard]] double poll_period_s() const override {
    // Clamp the factor so a misconfigured curve can neither stall the
    // sensor nor melt the event queue.
    const double f = std::clamp(load_.factor(sim_.now()), 0.05, 100.0);
    return base_period_s_ / f;
  }

 private:
  const Simulation& sim_;
  std::string stream_;
  double base_period_s_;
  LoadCurve load_;
  Sampler sampler_;
};

}  // namespace

VehicleAgent::VehicleAgent(Simulation& sim, VehicleConfig config,
                           LoadCurve load)
    : sim_(sim),
      config_(config),
      // Built via append (not `"v" + std::to_string(...)`: gcc 12's
      // -Wrestrict misfires on front-insertion into the rvalue string).
      frame_stream_(std::string("v").append(std::to_string(config.id))
                        .append("/camera")),
      imu_stream_(std::string("v").append(std::to_string(config.id))
                      .append("/imu")),
      uplink_(sim, config.uplink, config.seed ^ 0x9e3779b97f4a7c15ULL),
      downlink_(sim, config.downlink, config.seed ^ 0xd1b54a32d192ed03ULL) {
  if (config_.frame_period_s <= 0.0 || config_.imu_period_s <= 0.0 ||
      config_.frame_payload_floats < 1 || config_.imu_channels < 1 ||
      config_.start_s < 0.0) {
    throw std::invalid_argument("VehicleAgent: invalid configuration");
  }

  collection::AgentConfig agent_config;
  agent_config.agent_id = config_.id;
  agent_config.transmit_period_s = config_.transmit_period_s;
  agent_config.latency_compensation_s = config_.latency_compensation_s;
  agent_config.clock_drift_ppm = config_.clock_drift_ppm;
  agent_config.clock_initial_offset_s = config_.clock_initial_offset_s;
  agent_ = std::make_unique<collection::CollectionAgent>(sim_, agent_config,
                                                         uplink_);

  // Scripted traffic: the camera emits a frame-payload vector, the IMU a
  // per-channel gaussian tuple. Content is deterministic per vehicle seed;
  // the serving bridge reads a fixed prefix as the model input.
  util::Rng seeder(config_.seed);
  auto frame_rng = std::make_shared<util::Rng>(seeder.fork());
  const int frame_floats = config_.frame_payload_floats;
  agent_->add_sensor(std::make_unique<ModulatedSensor>(
      sim_, frame_stream_, config_.frame_period_s, load,
      [frame_rng, frame_floats](SimTime) {
        std::vector<float> values(static_cast<std::size_t>(frame_floats));
        for (auto& v : values) {
          v = static_cast<float>(frame_rng->uniform());
        }
        return values;
      }));
  auto imu_rng = std::make_shared<util::Rng>(seeder.fork());
  const int channels = config_.imu_channels;
  agent_->add_sensor(std::make_unique<ModulatedSensor>(
      sim_, imu_stream_, config_.imu_period_s, load,
      [imu_rng, channels](SimTime) {
        std::vector<float> values(static_cast<std::size_t>(channels));
        for (auto& v : values) {
          v = static_cast<float>(imu_rng->gaussian(0.0, 1.0));
        }
        return values;
      }));
}

void VehicleAgent::schedule_lifecycle() {
  if (scheduled_) {
    throw std::logic_error("VehicleAgent::schedule_lifecycle: called twice");
  }
  scheduled_ = true;
  sim_.schedule(config_.start_s, [this] { agent_->start(); });
  if (config_.stop_s >= 0.0) {
    sim_.schedule(config_.stop_s, [this] { agent_->stop(); });
  }
}

}  // namespace darnet::sim
