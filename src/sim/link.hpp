// Virtual point-to-point link (Bluetooth / 802.11 stand-in).
//
// Delivers byte payloads through the simulation with configurable base
// latency, jitter, loss, reorder, and bandwidth, and keeps transfer
// statistics for the privacy pipeline's bandwidth accounting. Jitter and
// explicit reordering can invert delivery order -- which is precisely why
// the controller orders tuples by their embedded timestamps rather than
// by arrival (Section 3.2, "Data Normalization"). Each delivery carries a
// send-sequence number so the link can count out-of-order arrivals, the
// fleet simulator's out-of-sequence evidence (docs/SIMULATION.md).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/queue.hpp"
#include "util/rng.hpp"

namespace darnet::sim {

struct LinkConfig {
  double base_latency_s = 0.015;   // one-way propagation + stack latency
  double jitter_s = 0.005;         // uniform [0, jitter) extra delay
  double loss_rate = 0.0;          // i.i.d. drop probability
  double bandwidth_bps = 2.5e6;    // ~Bluetooth 2.1 EDR effective payload
  double reorder_rate = 0.0;       // i.i.d. chance of an extra hold-back
  double reorder_delay_s = 0.03;   // hold-back applied to reordered sends
};

struct LinkStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_dropped{0};
  std::uint64_t messages_reordered{0};    // sends given the extra hold-back
  std::uint64_t messages_out_of_order{0};  // deliveries behind the high-water seq
  std::uint64_t bytes_sent{0};
  double total_latency_s{0.0};  // summed over delivered messages

  [[nodiscard]] double mean_latency_s() const noexcept {
    const auto delivered = messages_sent - messages_dropped;
    return delivered ? total_latency_s / static_cast<double>(delivered) : 0.0;
  }
};

class VirtualLink {
 public:
  using Handler = std::function<void(std::vector<std::uint8_t>)>;

  VirtualLink(Simulation& sim, LinkConfig config, std::uint64_t seed);

  /// Receiver callback invoked (in simulation time) on delivery.
  void set_receiver(Handler handler);

  /// Queue a payload for transmission at the current simulation time.
  void send(std::vector<std::uint8_t> payload);

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = LinkStats{}; }
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

 private:
  Simulation& sim_;
  LinkConfig config_;
  util::Rng rng_;
  Handler receiver_;
  LinkStats stats_;
  SimTime channel_free_at_{0.0};  // serialisation delay queueing point
  std::uint64_t next_send_seq_{0};
  std::uint64_t delivered_high_seq_{0};  // highest send seq delivered so far
};

}  // namespace darnet::sim
