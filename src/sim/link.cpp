#include "sim/link.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace darnet::sim {

VirtualLink::VirtualLink(Simulation& sim, LinkConfig config,
                         std::uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {
  if (config.base_latency_s < 0.0 || config.jitter_s < 0.0 ||
      config.loss_rate < 0.0 || config.loss_rate > 1.0 ||
      config.bandwidth_bps <= 0.0 || config.reorder_rate < 0.0 ||
      config.reorder_rate > 1.0 || config.reorder_delay_s < 0.0) {
    throw std::invalid_argument("VirtualLink: invalid configuration");
  }
}

void VirtualLink::set_receiver(Handler handler) {
  receiver_ = std::move(handler);
}

void VirtualLink::send(std::vector<std::uint8_t> payload) {
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  DARNET_COUNTER_ADD("sim/link_messages_sent_total", 1);
  DARNET_COUNTER_ADD("sim/link_bytes_sent_total", payload.size());
  if (rng_.chance(config_.loss_rate)) {
    ++stats_.messages_dropped;
    DARNET_COUNTER_ADD("sim/link_messages_dropped_total", 1);
    return;
  }
  if (!receiver_) {
    throw std::logic_error("VirtualLink::send: no receiver attached");
  }

  // Serialisation delay: the channel transmits one message at a time.
  const double tx_time =
      static_cast<double>(payload.size()) * 8.0 / config_.bandwidth_bps;
  const SimTime start = std::max(sim_.now(), channel_free_at_);
  channel_free_at_ = start + tx_time;
  double delay = (channel_free_at_ - sim_.now()) + config_.base_latency_s +
                 rng_.uniform(0.0, config_.jitter_s);
  if (rng_.chance(config_.reorder_rate)) {
    // Hold this message back past its successors (a retransmission /
    // alternate-route stand-in); successors overtake it in delivery order.
    delay += config_.reorder_delay_s;
    ++stats_.messages_reordered;
    DARNET_COUNTER_ADD("sim/link_messages_reordered_total", 1);
  }
  stats_.total_latency_s += delay;

  const std::uint64_t seq = next_send_seq_++;
  sim_.schedule_in(delay, [this, seq, p = std::move(payload)]() mutable {
    if (seq < delivered_high_seq_) {
      ++stats_.messages_out_of_order;
      DARNET_COUNTER_ADD("sim/link_messages_out_of_order_total", 1);
    } else {
      delivered_high_seq_ = seq;
    }
    receiver_(std::move(p));
  });
}

}  // namespace darnet::sim
