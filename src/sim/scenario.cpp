#include "sim/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace darnet::sim {

namespace {

[[nodiscard]] ScenarioConfig base_config(const char* name, int sessions,
                                         std::uint64_t seed) {
  ScenarioConfig config;
  config.name = name;
  config.sessions = sessions;
  config.seed = seed;
  return config;
}

[[nodiscard]] std::vector<Scenario> build_catalogue() {
  std::vector<Scenario> out;
  const auto register_scenario = [&out](const char* name,
                                        const char* stresses, auto make) {
    out.push_back(Scenario{name, stresses, std::move(make)});
  };

  register_scenario(
      "steady", "baseline: nominal rates, clean links, mild clock error",
      [](int sessions, std::uint64_t seed) {
        return base_config("steady", sessions, seed);
      });

  register_scenario(
      "burst", "10x traffic inside a window on a thin, lossy link",
      [](int sessions, std::uint64_t seed) {
        ScenarioConfig config = base_config("burst", sessions, seed);
        config.load.kind = LoadCurve::Kind::kBurst;
        config.load.burst_factor = 10.0;
        config.load.burst_start_s = 0.4 * config.duration_s;
        config.load.burst_end_s = 0.7 * config.duration_s;
        // A thin pipe: nominal load fits easily, the burst saturates the
        // serialisation queue and drives delivery latency + timeouts.
        config.link.bandwidth_bps = 1.2e5;
        config.link.loss_rate = 0.01;
        return config;
      });

  register_scenario(
      "diurnal", "slow sinusoidal load swing (one compressed day)",
      [](int sessions, std::uint64_t seed) {
        ScenarioConfig config = base_config("diurnal", sessions, seed);
        config.load.kind = LoadCurve::Kind::kDiurnal;
        config.load.diurnal_min = 0.25;
        config.load.diurnal_max = 2.5;
        config.load.diurnal_period_s = config.duration_s;
        return config;
      });

  register_scenario(
      "churn", "staggered joins + mid-run departures on flaky links",
      [](int sessions, std::uint64_t seed) {
        ScenarioConfig config = base_config("churn", sessions, seed);
        config.join_spread_s = 0.5 * config.duration_s;
        config.leave_fraction = 0.3;
        config.link.loss_rate = 0.02;
        config.link.jitter_s = 0.01;
        return config;
      });

  register_scenario(
      "clock_storm", "heavy drift + sparse sync: timestamp error stress",
      [](int sessions, std::uint64_t seed) {
        ScenarioConfig config = base_config("clock_storm", sessions, seed);
        config.drift_ppm_max = 2000.0;
        config.initial_offset_max_s = 0.05;
        config.clock_sync_period_s = 10.0;  // sparser than the paper's 5 s
        config.latency_compensation_s = 0.0;  // uncompensated one-way delay
        config.link.jitter_s = 0.02;
        // Hold-back must exceed the 0.25 s transmit spacing to actually
        // invert delivery order (and regress controller-side timestamps).
        config.link.reorder_rate = 0.05;
        config.link.reorder_delay_s = 0.4;
        return config;
      });

  register_scenario(
      "degraded_flap", "forced degraded-mode flapping on the serving tier",
      [](int sessions, std::uint64_t seed) {
        ScenarioConfig config =
            base_config("degraded_flap", sessions, seed);
        config.imu_ensemble = true;
        config.degraded_flap_period_s = 1.0;
        return config;
      });

  register_scenario(
      "overload_brownout",
      "10x overload vs tenant quotas: brown-out, the admitted floor flows",
      [](int sessions, std::uint64_t seed) {
        ScenarioConfig config =
            base_config("overload_brownout", sessions, seed);
        // Vehicles infer at 10x the nominal 4 Hz while per-tenant quotas
        // admit roughly the nominal aggregate: the router clips the
        // excess at the door (kRejected) so the shards never see the
        // overload, and the admitted floor is served untouched.
        config.infer_period_s = 0.025;
        config.shards = 2;
        config.tenants = 4;
        const double nominal_rate = static_cast<double>(sessions) / 0.25;
        const double per_tenant =
            nominal_rate / static_cast<double>(config.tenants);
        config.tenant_refill_per_s = per_tenant;
        config.tenant_burst = std::max(1.0, 0.5 * per_tenant);
        return config;
      });

  return out;
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> catalogue = build_catalogue();
  return catalogue;
}

void set_duration(ScenarioConfig& config, double duration_s) {
  if (duration_s <= 0.0) {
    throw std::invalid_argument("set_duration: duration must be > 0");
  }
  const double ratio = duration_s / config.duration_s;
  config.duration_s = duration_s;
  config.load.burst_start_s *= ratio;
  config.load.burst_end_s *= ratio;
  config.load.diurnal_period_s *= ratio;
  config.join_spread_s *= ratio;
}

const Scenario* find_scenario(std::string_view name) {
  for (const auto& scenario : scenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

}  // namespace darnet::sim
