// A simulated vehicle: one scripted collection deployment.
//
// Each VehicleAgent owns a drifting-clock CollectionAgent (the paper's
// per-device module), a camera sensor and an IMU sensor whose polling
// rates are modulated by the scenario's load curve, and the pair of
// virtual links that carry its traffic to and from the centralized
// controller. The fleet simulator (sim/fleet.hpp) wires thousands of
// these onto one controller + serve::Server and drives them from a single
// deterministic event queue.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "collection/agent.hpp"
#include "sim/link.hpp"
#include "sim/queue.hpp"

namespace darnet::sim {

/// Time-varying traffic multiplier: scales sensor polling and inference
/// rates over the run. Drives the burst and diurnal scenarios.
struct LoadCurve {
  enum class Kind { kConstant, kBurst, kDiurnal };
  Kind kind = Kind::kConstant;
  /// kBurst: rate multiplier inside [burst_start_s, burst_end_s).
  double burst_factor = 10.0;
  double burst_start_s = 0.0;
  double burst_end_s = 0.0;
  /// kDiurnal: sinusoid between diurnal_min and diurnal_max with the
  /// given period (a compressed day).
  double diurnal_min = 0.25;
  double diurnal_max = 2.0;
  double diurnal_period_s = 60.0;

  /// Multiplier at time `t` (always > 0 for valid configs).
  [[nodiscard]] double factor(SimTime t) const noexcept;
};

struct VehicleConfig {
  std::uint32_t id{0};
  std::uint64_t seed{1};
  /// Lifecycle: the agent starts at start_s and (churn scenarios) stops
  /// at stop_s; stop_s < 0 means it runs to the end of the scenario.
  double start_s = 0.0;
  double stop_s = -1.0;
  /// Native sensor periods at load factor 1.0.
  double frame_period_s = 0.25;
  double imu_period_s = 0.05;
  /// Frame payload size in floats (the wire bytes that stress bandwidth;
  /// the analytics model reads a fixed-size prefix).
  int frame_payload_floats = 64;
  int imu_channels = 3;
  /// Collection-agent knobs (see collection::AgentConfig).
  double transmit_period_s = 0.25;
  double latency_compensation_s = 0.015;
  double clock_drift_ppm = 0.0;
  double clock_initial_offset_s = 0.0;
  LinkConfig uplink;
  LinkConfig downlink;
};

class VehicleAgent {
 public:
  VehicleAgent(Simulation& sim, VehicleConfig config, LoadCurve load);

  /// Schedule the agent's start (and, for churn, stop) on the event
  /// queue. Call once, after both links have receivers attached.
  void schedule_lifecycle();

  [[nodiscard]] std::uint32_t id() const noexcept { return config_.id; }
  [[nodiscard]] bool active(SimTime t) const noexcept {
    return t >= config_.start_s &&
           (config_.stop_s < 0.0 || t < config_.stop_s);
  }

  [[nodiscard]] VirtualLink& uplink() noexcept { return uplink_; }
  [[nodiscard]] VirtualLink& downlink() noexcept { return downlink_; }
  [[nodiscard]] collection::CollectionAgent& agent() noexcept {
    return *agent_;
  }
  [[nodiscard]] const collection::CollectionAgent& agent() const noexcept {
    return *agent_;
  }
  [[nodiscard]] const VehicleConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::string& frame_stream() const noexcept {
    return frame_stream_;
  }
  [[nodiscard]] const std::string& imu_stream() const noexcept {
    return imu_stream_;
  }

 private:
  Simulation& sim_;
  VehicleConfig config_;
  std::string frame_stream_;
  std::string imu_stream_;
  VirtualLink uplink_;
  VirtualLink downlink_;
  std::unique_ptr<collection::CollectionAgent> agent_;
  bool scheduled_{false};
};

}  // namespace darnet::sim
