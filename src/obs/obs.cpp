#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sync/sync.hpp"

namespace darnet::obs {

// -- Time & thread identity --------------------------------------------------

std::uint64_t now_ns() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace {

std::size_t next_thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::size_t thread_shard() noexcept {
  thread_local const std::size_t slot = next_thread_slot();
  return slot & (kMaxShards - 1);
}

// -- Counter / Histogram folds -----------------------------------------------

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t ns) noexcept {
  Shard& s = shards_[thread_shard()];
  s.counts[static_cast<std::size_t>(bucket_of(ns))].fetch_add(
      1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
}

int Histogram::bucket_of(std::uint64_t ns) noexcept {
  const int b = static_cast<int>(std::bit_width(ns >> 8));
  return std::min(b, kBuckets - 1);
}

std::uint64_t Histogram::bucket_lower_ns(int i) noexcept {
  if (i <= 0) return 0;
  return std::uint64_t{256} << (i - 1);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot snap;
  for (const Shard& s : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      snap.counts[static_cast<std::size_t>(b)] +=
          s.counts[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum_ns += s.sum_ns.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum_ns.store(0, std::memory_order_relaxed);
  }
}

// -- Registry ----------------------------------------------------------------

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty() || name.front() == '/' || name.back() == '/') return false;
  int segments = 1;
  for (const char c : name) {
    if (c == '/') {
      ++segments;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  if (name.find("//") != std::string_view::npos) return false;
  return segments >= 2;
}

struct MetricsRegistry::Impl {
  mutable sync::Mutex mu{"obs/registry"};
  // std::map: stable addresses are irrelevant (values are unique_ptrs) but
  // sorted iteration gives deterministic JSON for free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      DARNET_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
      DARNET_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      DARNET_GUARDED_BY(mu);

  // REQUIRES: mu held (reads all three kind maps).
  void check_name(std::string_view name, std::string_view kind) const {
    DARNET_ASSERT_HELD(mu);
    if (!valid_metric_name(name)) {
      throw std::invalid_argument(
          "obs::MetricsRegistry: invalid metric name '" + std::string(name) +
          "' (want subsystem/verb_noun, lowercase [a-z0-9_])");
    }
    const bool clash =
        (kind != "counter" && counters.contains(name)) ||
        (kind != "gauge" && gauges.contains(name)) ||
        (kind != "histogram" && histograms.contains(name));
    if (clash) {
      throw std::invalid_argument("obs::MetricsRegistry: '" +
                                  std::string(name) +
                                  "' already registered under another kind");
    }
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view name) {
  sync::Lock lock(impl_->mu);
  impl_->check_name(name, "counter");
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  sync::Lock lock(impl_->mu);
  impl_->check_name(name, "gauge");
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  sync::Lock lock(impl_->mu);
  impl_->check_name(name, "histogram");
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::size_t MetricsRegistry::size() const {
  sync::Lock lock(impl_->mu);
  return impl_->counters.size() + impl_->gauges.size() +
         impl_->histograms.size();
}

namespace {

void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';  // control chars never appear in metric names/details
    } else {
      out << c;
    }
  }
  out << '"';
}

void append_double(std::ostringstream& out, double v) {
  out << std::setprecision(17) << v << std::setprecision(6);
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  sync::Lock lock(impl_->mu);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    out << ':' << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    out << ':';
    append_double(out, g->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    const Histogram::Snapshot snap = h->snapshot();
    out << ":{\"count\":" << snap.count << ",\"sum_ns\":" << snap.sum_ns
        << ",\"mean_ns\":";
    append_double(out, snap.mean_ns());
    out << ",\"buckets\":[";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = snap.counts[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (!first_bucket) out << ',';
      first_bucket = false;
      out << '[' << Histogram::bucket_lower_ns(b) << ',' << n << ']';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs::write_json: cannot open " + path);
  }
  out << to_json() << '\n';
  if (!out) throw std::runtime_error("obs::write_json: write failed");
}

void MetricsRegistry::reset() {
  sync::Lock lock(impl_->mu);
  for (auto& [_, c] : impl_->counters) c->reset();
  for (auto& [_, g] : impl_->gauges) g->reset();
  for (auto& [_, h] : impl_->histograms) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

// -- Trace ring --------------------------------------------------------------

namespace {

struct TraceEvent {
  std::uint64_t start_ns{0};
  std::uint64_t dur_ns{0};
  const char* name{nullptr};
  std::uint32_t tid{0};
  char detail[kSpanDetailCap]{};
};

/// One ring per thread: the owner thread writes, exporters read at
/// quiescent points (no spans in flight), so event slots need no atomics;
/// `recorded` is atomic only so concurrent *count* reads are well-defined.
struct Ring {
  explicit Ring(std::uint32_t thread_id) : tid(thread_id) {
    events.resize(kTraceRingCapacity);
  }
  std::vector<TraceEvent> events;
  std::atomic<std::uint64_t> recorded{0};
  std::uint32_t tid;
};

sync::Mutex& trace_mu() {
  static sync::Mutex mu{"obs/trace"};
  return mu;
}

std::vector<std::unique_ptr<Ring>>& trace_rings() {
  static std::vector<std::unique_ptr<Ring>> rings;
  return rings;
}

Ring& local_ring() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    sync::Lock lock(trace_mu());
    auto& rings = trace_rings();
    rings.push_back(
        std::make_unique<Ring>(static_cast<std::uint32_t>(rings.size())));
    ring = rings.back().get();
  }
  return *ring;
}

void push_span(const char* name, const char* detail, std::uint64_t start_ns,
               std::uint64_t dur_ns) noexcept {
  Ring& ring = local_ring();
  const std::uint64_t idx = ring.recorded.load(std::memory_order_relaxed);
  TraceEvent& e = ring.events[static_cast<std::size_t>(
      idx % kTraceRingCapacity)];
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.name = name;
  e.tid = ring.tid;
  std::strncpy(e.detail, detail, kSpanDetailCap - 1);
  e.detail[kSpanDetailCap - 1] = '\0';
  ring.recorded.store(idx + 1, std::memory_order_relaxed);
}

}  // namespace

SpanScope::SpanScope(const char* name) noexcept
    : name_(name), start_ns_(now_ns()) {
  detail_[0] = '\0';
}

SpanScope::SpanScope(const char* name, std::string_view detail) noexcept
    : name_(name), start_ns_(now_ns()) {
  const std::size_t n = std::min(detail.size(), kSpanDetailCap - 1);
  std::memcpy(detail_, detail.data(), n);
  detail_[n] = '\0';
}

SpanScope::~SpanScope() {
  push_span(name_, detail_, start_ns_, now_ns() - start_ns_);
}

std::size_t trace_event_count() {
  sync::Lock lock(trace_mu());
  std::size_t total = 0;
  for (const auto& ring : trace_rings()) {
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(ring->recorded.load(std::memory_order_relaxed),
                                kTraceRingCapacity));
  }
  return total;
}

std::uint64_t trace_recorded_total() {
  sync::Lock lock(trace_mu());
  std::uint64_t total = 0;
  for (const auto& ring : trace_rings()) {
    total += ring->recorded.load(std::memory_order_relaxed);
  }
  return total;
}

void clear_trace() {
  sync::Lock lock(trace_mu());
  for (const auto& ring : trace_rings()) {
    ring->recorded.store(0, std::memory_order_relaxed);
  }
}

std::string trace_json() {
  std::vector<TraceEvent> events;
  {
    sync::Lock lock(trace_mu());
    for (const auto& ring : trace_rings()) {
      const std::uint64_t recorded =
          ring->recorded.load(std::memory_order_relaxed);
      const std::size_t held = static_cast<std::size_t>(
          std::min<std::uint64_t>(recorded, kTraceRingCapacity));
      for (std::size_t i = 0; i < held; ++i) events.push_back(ring->events[i]);
    }
  }
  // Deterministic order; duration-descending ties put enclosing spans
  // before the spans they contain, which chrome://tracing requires for
  // correct nesting.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              const int byname = std::strcmp(a.name, b.name);
              if (byname != 0) return byname < 0;
              return a.tid < b.tid;
            });

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    append_json_string(out, e.name);
    out << ",\"cat\":\"darnet\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid
        << ",\"ts\":";
    append_double(out, static_cast<double>(e.start_ns) / 1e3);
    out << ",\"dur\":";
    append_double(out, static_cast<double>(e.dur_ns) / 1e3);
    if (e.detail[0] != '\0') {
      out << ",\"args\":{\"detail\":";
      append_json_string(out, e.detail);
      out << '}';
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

void write_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs::write_trace: cannot open " + path);
  }
  out << trace_json() << '\n';
  if (!out) throw std::runtime_error("obs::write_trace: write failed");
}

}  // namespace darnet::obs
