// darnet::obs -- the observability layer: metrics registry + trace spans.
//
// DarNet is a middleware system; its headline numbers are end-to-end
// pipeline behaviour, which means knowing *where* time goes matters as
// much as the numbers themselves. This module provides the two primitives
// the whole tree instruments itself with:
//
//   * MetricsRegistry -- process-wide named counters, gauges, and
//     fixed-bucket latency histograms. Counters and histograms take a
//     lock-free fast path through per-thread shards (relaxed atomics on
//     cache-line-padded slots) that are folded on read, consistent with
//     the PR 1 ThreadPool model: writers never contend, readers pay the
//     fold. Snapshots export to deterministic JSON.
//   * Trace spans -- DARNET_SPAN("engine/classify") records a scoped
//     {name, detail, thread, start, duration} event onto a bounded
//     per-thread ring buffer; obs::write_trace(path) exports the merged
//     rings as chrome://tracing JSON (load via chrome://tracing or
//     https://ui.perfetto.dev).
//
// Instrumented call sites go through the DARNET_* macros below. When the
// build is configured with -DDARNET_OBS=OFF the macros compile to
// *unevaluated* expressions (the same sizeof technique as darnet::check):
// operand types are checked so instrumentation cannot rot, but no code is
// generated and no side effects run -- hot paths pay zero cost, and
// pipeline/trainer outputs are bit-identical either way (the layer never
// touches RNG state or numeric buffers).
//
// Naming contract: every metric/span name is a compile-time literal of the
// form `subsystem/verb_noun` (lowercase [a-z0-9_], >= 2 '/'-separated
// segments). Every name registered under src/ MUST have a matching row in
// docs/OBSERVABILITY.md -- `darnet_lint` extracts the literals and fails
// CTest on drift in either direction. The registry enforces the grammar at
// registration time.
//
// darnet::obs depends on nothing but the standard library and sits next to
// darnet::check at the bottom of the link order; see DESIGN.md
// "Observability model".
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace darnet::obs {

/// True when the library was compiled with observability instrumentation
/// (-DDARNET_OBS=ON, the default).
[[nodiscard]] constexpr bool enabled() noexcept {
#ifdef DARNET_OBS
  return true;
#else
  return false;
#endif
}

/// Monotonic nanoseconds since the first obs call in this process
/// (steady_clock; immune to wall-clock adjustment).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Shard count for the per-thread fast paths. Power of two; threads hash
/// onto shards by a process-unique thread slot, so with fewer than
/// kMaxShards live threads every thread owns a private shard.
inline constexpr std::size_t kMaxShards = 64;

/// Small dense id for the calling thread, assigned on first use and
/// folded into [0, kMaxShards) for shard indexing.
[[nodiscard]] std::size_t thread_shard() noexcept;

// -- Metric kinds ------------------------------------------------------------

/// Monotonic event counter. `add` is wait-free: one relaxed fetch_add on
/// the caller's shard. `value` folds all shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) noexcept {
    shards_[thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMaxShards> shards_{};
};

/// Last-write-wins instantaneous value (queue depths, configured sizes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram over nanosecond durations. Bucket 0
/// covers [0, 256 ns); bucket i >= 1 covers [256 * 2^(i-1), 256 * 2^i) ns;
/// the last bucket is open-ended (lower bound ~= 1.07 s). Recording is
/// wait-free (three relaxed adds on the caller's shard); snapshots fold.
class Histogram {
 public:
  static constexpr int kBuckets = 24;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t ns) noexcept;

  /// Bucket index for a duration (exposed for tests and export).
  [[nodiscard]] static int bucket_of(std::uint64_t ns) noexcept;
  /// Inclusive lower bound of bucket i in nanoseconds.
  [[nodiscard]] static std::uint64_t bucket_lower_ns(int i) noexcept;

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t count{0};
    std::uint64_t sum_ns{0};

    [[nodiscard]] double mean_ns() const noexcept {
      return count ? static_cast<double>(sum_ns) / static_cast<double>(count)
                   : 0.0;
    }
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  std::array<Shard, kMaxShards> shards_{};
};

// -- Registry ----------------------------------------------------------------

/// True iff `name` satisfies the `subsystem/verb_noun` grammar: at least
/// two non-empty '/'-separated segments of [a-z0-9_].
[[nodiscard]] bool valid_metric_name(std::string_view name) noexcept;

/// Process-wide metric registry. `counter`/`gauge`/`histogram` register on
/// first use (mutex-guarded, intended to be cached in a static handle by
/// the DARNET_* macros) and return a stable reference; re-registering the
/// same name returns the same object, and registering a name under a
/// different kind or with an invalid grammar throws. Snapshot export is
/// deterministic: names are emitted in sorted order.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// All registered names, sorted, prefixed by kind order in the JSON.
  [[nodiscard]] std::size_t size() const;

  /// Deterministic JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{...}} with names in
  /// sorted order and histogram buckets as [lower_ns, count] pairs
  /// (zero buckets elided).
  [[nodiscard]] std::string to_json() const;
  void write_json(const std::string& path) const;

  /// Zero every value; registrations (and cached handles) stay valid.
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  // pimpl keeps <map>/<mutex> out of here
};

/// The process-wide registry (created on first use, never destroyed
/// before handles go away).
[[nodiscard]] MetricsRegistry& registry();

// -- Trace spans -------------------------------------------------------------

/// Capacity of each per-thread span ring. Wraparound overwrites the
/// oldest events from that thread; `trace_recorded_total()` keeps the
/// true count so exports can report drops.
inline constexpr std::size_t kTraceRingCapacity = 4096;
/// Bytes reserved for a span's detail annotation (NUL included).
inline constexpr std::size_t kSpanDetailCap = 32;

/// RAII scope: records {name, detail, thread, start, duration} onto the
/// calling thread's ring at destruction. `name` must outlive the process
/// (string literals via DARNET_SPAN); `detail` is copied (truncated to
/// kSpanDetailCap - 1 chars).
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept;
  SpanScope(const char* name, std::string_view detail) noexcept;
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_;
  char detail_[kSpanDetailCap];
};

/// RAII scope: records its lifetime into a Histogram (used by
/// DARNET_TIMER with a static registry handle).
class TimerScope {
 public:
  explicit TimerScope(Histogram& hist) noexcept
      : hist_(hist), start_ns_(now_ns()) {}
  ~TimerScope() { hist_.record(now_ns() - start_ns_); }
  TimerScope(const TimerScope&) = delete;
  TimerScope& operator=(const TimerScope&) = delete;

 private:
  Histogram& hist_;
  std::uint64_t start_ns_;
};

/// Events currently held across all thread rings.
[[nodiscard]] std::size_t trace_event_count();
/// Total spans ever recorded (>= trace_event_count() once rings wrap).
[[nodiscard]] std::uint64_t trace_recorded_total();
/// Drop all recorded events (counters keep running from zero). Callers
/// must be quiescent: no spans may be in flight on other threads.
void clear_trace();

/// chrome://tracing JSON ("traceEvents" array of complete "X" events,
/// microsecond timestamps). Deterministically ordered: start ascending,
/// duration descending (parents before children), then name. Export is a
/// quiescent-point operation like clear_trace().
[[nodiscard]] std::string trace_json();
void write_trace(const std::string& path);

namespace detail {
/// Declared, never defined: the DARNET_* macros wrap their operands in
/// sizeof(unevaluated(...)) when DARNET_OBS is off, so arguments are
/// type-checked but never evaluated (zero cost, zero side effects).
template <typename... Args>
int unevaluated(const Args&...) noexcept;
}  // namespace detail

}  // namespace darnet::obs

// -- Instrumentation macros --------------------------------------------------
//
// DARNET_COUNTER_ADD(name, n)    -- bump counter `name` by n.
// DARNET_GAUGE_SET(name, v)      -- set gauge `name` to v.
// DARNET_HISTOGRAM_NS(name, ns)  -- record a duration into histogram `name`.
// DARNET_TIMER(name)             -- RAII: time the enclosing scope into
//                                   histogram `name`.
// DARNET_SPAN(name)              -- RAII: trace span for the enclosing scope.
// DARNET_SPAN_DETAIL(name, d)    -- span with a detail annotation (copied).
//
// `name` must be a string literal (the no-capture lambda/static-handle
// expansion will not compile otherwise), matching the lint-enforced
// documentation contract. Registry lookups happen once per call site via a
// function-local static handle; steady-state cost is one relaxed atomic op
// (counters/gauges) or two clock reads (timers/spans).

#define DARNET_OBS_CONCAT_IMPL(a, b) a##b
#define DARNET_OBS_CONCAT(a, b) DARNET_OBS_CONCAT_IMPL(a, b)

#ifdef DARNET_OBS

#define DARNET_COUNTER_ADD(name, n)                            \
  do {                                                         \
    static ::darnet::obs::Counter& darnet_obs_handle =         \
        ::darnet::obs::registry().counter(name);               \
    darnet_obs_handle.add(static_cast<std::uint64_t>(n));      \
  } while (false)

#define DARNET_GAUGE_SET(name, v)                              \
  do {                                                         \
    static ::darnet::obs::Gauge& darnet_obs_handle =           \
        ::darnet::obs::registry().gauge(name);                 \
    darnet_obs_handle.set(static_cast<double>(v));             \
  } while (false)

#define DARNET_HISTOGRAM_NS(name, ns)                          \
  do {                                                         \
    static ::darnet::obs::Histogram& darnet_obs_handle =       \
        ::darnet::obs::registry().histogram(name);             \
    darnet_obs_handle.record(static_cast<std::uint64_t>(ns));  \
  } while (false)

#define DARNET_TIMER(name)                                              \
  ::darnet::obs::TimerScope DARNET_OBS_CONCAT(darnet_obs_timer_,        \
                                              __LINE__) {               \
    []() -> ::darnet::obs::Histogram& {                                 \
      static ::darnet::obs::Histogram& darnet_obs_handle =              \
          ::darnet::obs::registry().histogram(name);                    \
      return darnet_obs_handle;                                         \
    }()                                                                 \
  }

#define DARNET_SPAN(name)                                     \
  ::darnet::obs::SpanScope DARNET_OBS_CONCAT(darnet_obs_span_, \
                                             __LINE__) { name }

#define DARNET_SPAN_DETAIL(name, d)                            \
  ::darnet::obs::SpanScope DARNET_OBS_CONCAT(darnet_obs_span_, \
                                             __LINE__) { name, (d) }

#else  // !DARNET_OBS

#define DARNET_COUNTER_ADD(name, n) \
  static_cast<void>(sizeof(::darnet::obs::detail::unevaluated(name, (n))))

#define DARNET_GAUGE_SET(name, v) \
  static_cast<void>(sizeof(::darnet::obs::detail::unevaluated(name, (v))))

#define DARNET_HISTOGRAM_NS(name, ns) \
  static_cast<void>(sizeof(::darnet::obs::detail::unevaluated(name, (ns))))

#define DARNET_TIMER(name) \
  static_cast<void>(sizeof(::darnet::obs::detail::unevaluated(name)))

#define DARNET_SPAN(name) \
  static_cast<void>(sizeof(::darnet::obs::detail::unevaluated(name)))

#define DARNET_SPAN_DETAIL(name, d) \
  static_cast<void>(sizeof(::darnet::obs::detail::unevaluated(name, (d))))

#endif  // DARNET_OBS
