#include "core/dataset.hpp"

#include "nn/trainer.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace darnet::core {

std::array<int, 6> scaled_counts(double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("scaled_counts: scale must be in (0, 1]");
  }
  std::array<int, 6> counts{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = std::max(
        2, static_cast<int>(std::lround(kPaperFrameCounts[i] * scale)));
  }
  return counts;
}

imu::PhoneOrientation orientation_for(vision::DriverClass cls,
                                      util::Rng& rng) {
  using vision::DriverClass;
  switch (cls) {
    case DriverClass::kTalking:
      return rng.chance(0.5) ? imu::PhoneOrientation::kTalkingLeft
                             : imu::PhoneOrientation::kTalkingRight;
    case DriverClass::kTexting:
      return rng.chance(0.5) ? imu::PhoneOrientation::kTextingLeft
                             : imu::PhoneOrientation::kTextingRight;
    case DriverClass::kNormal:
    case DriverClass::kEating:
    case DriverClass::kHairMakeup:
    case DriverClass::kReaching:
      return imu::PhoneOrientation::kPocket;
  }
  return imu::PhoneOrientation::kPocket;
}

Dataset generate_dataset(const DatasetConfig& config) {
  DARNET_SPAN("core/datagen");
  const auto counts = scaled_counts(config.scale);
  const int total = std::accumulate(counts.begin(), counts.end(), 0);
  const int s = config.render.size;

  Dataset data;
  data.frames = Tensor({total, 1, s, s});
  data.imu_windows = Tensor({total, imu::kWindowSteps, imu::kImuChannels});
  data.labels.reserve(total);
  data.imu_labels.reserve(total);
  data.driver_ids.reserve(total);

  if (config.num_drivers < 1) {
    throw std::invalid_argument("generate_dataset: need >= 1 driver");
  }
  util::Rng rng(config.seed);

  // Each driver's habits bias both modalities consistently.
  std::vector<vision::RenderConfig> render_cfgs;
  std::vector<imu::ImuGenConfig> imu_cfgs;
  for (int d = 0; d < config.num_drivers; ++d) {
    const DriverStyle style = (config.num_drivers == 1)
                                  ? DriverStyle::neutral()
                                  : DriverStyle::sample(rng);
    render_cfgs.push_back(style.applied_to(config.render));
    imu_cfgs.push_back(style.applied_to(config.imu));
  }

  const std::size_t frame_stride = static_cast<std::size_t>(s) * s;
  const std::size_t window_stride =
      static_cast<std::size_t>(imu::kWindowSteps) * imu::kImuChannels;

  if (!config.parallel) {
    // Single-stream generator: one RNG drives every row in order. This is
    // the original (seed) behaviour and stays bit-for-bit reproducible.
    std::size_t row = 0;
    for (int cls = 0; cls < vision::kDriverClassCount; ++cls) {
      const auto driver_class = static_cast<vision::DriverClass>(cls);
      for (int i = 0; i < counts[static_cast<std::size_t>(cls)]; ++i, ++row) {
        const int driver = i % config.num_drivers;
        const vision::Image frame = vision::render_driver_scene(
            driver_class, render_cfgs[static_cast<std::size_t>(driver)], rng);
        std::copy(frame.pixels().begin(), frame.pixels().end(),
                  data.frames.data() + row * frame_stride);

        const imu::PhoneOrientation orientation =
            orientation_for(driver_class, rng);
        const auto trace = imu::generate_trace(
            orientation, imu_cfgs[static_cast<std::size_t>(driver)], rng);
        const Tensor window = imu::to_window(trace);
        std::copy(window.data(), window.data() + window_stride,
                  data.imu_windows.data() + row * window_stride);

        data.labels.push_back(cls);
        data.imu_labels.push_back(
            static_cast<int>(imu::imu_class_of(orientation)));
        data.driver_ids.push_back(driver);
      }
    }
    return data;
  }

  // Sharded generator: the serial prelude above already consumed the same
  // driver-style draws as the serial path; now every row gets its own RNG
  // stream forked in row order, making each row's sample independent of
  // which thread renders it.
  struct RowSpec {
    vision::DriverClass cls;
    int driver;
    util::Rng rng;
  };
  std::vector<RowSpec> specs;
  specs.reserve(static_cast<std::size_t>(total));
  for (int cls = 0; cls < vision::kDriverClassCount; ++cls) {
    for (int i = 0; i < counts[static_cast<std::size_t>(cls)]; ++i) {
      specs.push_back({static_cast<vision::DriverClass>(cls),
                       i % config.num_drivers, rng.fork()});
    }
  }

  data.labels.resize(static_cast<std::size_t>(total));
  data.imu_labels.resize(static_cast<std::size_t>(total));
  data.driver_ids.resize(static_cast<std::size_t>(total));
  parallel::parallel_for(
      0, total, /*grain=*/8, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const auto row = static_cast<std::size_t>(r);
          RowSpec& spec = specs[row];
          const vision::Image frame = vision::render_driver_scene(
              spec.cls, render_cfgs[static_cast<std::size_t>(spec.driver)],
              spec.rng);
          std::copy(frame.pixels().begin(), frame.pixels().end(),
                    data.frames.data() + row * frame_stride);

          const imu::PhoneOrientation orientation =
              orientation_for(spec.cls, spec.rng);
          const auto trace = imu::generate_trace(
              orientation, imu_cfgs[static_cast<std::size_t>(spec.driver)],
              spec.rng);
          const Tensor window = imu::to_window(trace);
          std::copy(window.data(), window.data() + window_stride,
                    data.imu_windows.data() + row * window_stride);

          data.labels[row] = static_cast<int>(spec.cls);
          data.imu_labels[row] =
              static_cast<int>(imu::imu_class_of(orientation));
          data.driver_ids[row] = spec.driver;
        }
      });
  return data;
}

namespace {

Dataset take_rows(const Dataset& data, std::span<const std::size_t> rows) {
  Dataset out;
  out.frames = nn::gather_rows(data.frames, rows);
  out.imu_windows = nn::gather_rows(data.imu_windows, rows);
  out.labels.reserve(rows.size());
  out.imu_labels.reserve(rows.size());
  out.driver_ids.reserve(rows.size());
  for (std::size_t r : rows) {
    out.labels.push_back(data.labels[r]);
    out.imu_labels.push_back(data.imu_labels[r]);
    out.driver_ids.push_back(data.driver_ids[r]);
  }
  return out;
}

}  // namespace

TrainEvalSplit split_dataset(const Dataset& data, double train_fraction,
                             std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("split_dataset: fraction must be in (0, 1)");
  }
  const auto n = static_cast<std::size_t>(data.size());
  if (n < 2) throw std::invalid_argument("split_dataset: dataset too small");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  util::Rng rng(seed);
  rng.shuffle(order);

  const auto cut = std::max<std::size_t>(
      1, std::min(n - 1,
                  static_cast<std::size_t>(std::lround(
                      train_fraction * static_cast<double>(n)))));
  TrainEvalSplit result;
  result.train = take_rows(
      data, std::span<const std::size_t>(order.data(), cut));
  result.eval = take_rows(
      data, std::span<const std::size_t>(order.data() + cut, n - cut));
  return result;
}

TrainEvalSplit split_leave_one_driver_out(const Dataset& data,
                                          int held_out_driver) {
  if (data.driver_ids.size() != static_cast<std::size_t>(data.size())) {
    throw std::invalid_argument(
        "split_leave_one_driver_out: dataset carries no driver ids");
  }
  std::vector<std::size_t> train_rows, eval_rows;
  for (std::size_t i = 0; i < data.driver_ids.size(); ++i) {
    (data.driver_ids[i] == held_out_driver ? eval_rows : train_rows)
        .push_back(i);
  }
  if (train_rows.empty() || eval_rows.empty()) {
    throw std::invalid_argument(
        "split_leave_one_driver_out: held-out driver absent or universal");
  }
  TrainEvalSplit result;
  result.train = take_rows(data, train_rows);
  result.eval = take_rows(data, eval_rows);
  return result;
}

FineDataset generate_fine_dataset(int samples_per_class,
                                  const vision::RenderConfig& render,
                                  std::uint64_t seed) {
  if (samples_per_class <= 0) {
    throw std::invalid_argument("generate_fine_dataset: need > 0 samples");
  }
  const int total = samples_per_class * vision::kFineClassCount;
  const int s = render.size;
  FineDataset data;
  data.frames = Tensor({total, 1, s, s});
  data.labels.reserve(total);

  util::Rng rng(seed);
  const std::size_t stride = static_cast<std::size_t>(s) * s;
  std::size_t row = 0;
  for (int cls = 0; cls < vision::kFineClassCount; ++cls) {
    for (int i = 0; i < samples_per_class; ++i, ++row) {
      const vision::Image frame = vision::render_fine_scene(cls, render, rng);
      std::copy(frame.pixels().begin(), frame.pixels().end(),
                data.frames.data() + row * stride);
      data.labels.push_back(cls);
    }
  }
  return data;
}

std::vector<std::string> driver_class_names() {
  std::vector<std::string> names;
  names.reserve(vision::kDriverClassCount);
  for (int c = 0; c < vision::kDriverClassCount; ++c) {
    names.emplace_back(
        vision::driver_class_name(static_cast<vision::DriverClass>(c)));
  }
  return names;
}

}  // namespace darnet::core
