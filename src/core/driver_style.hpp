// Per-driver style: the systematic, driver-specific component of the data
// (the paper collects from 5 drivers; each sits, holds a phone, and
// fidgets differently). Styles bias both modalities consistently, which
// makes leave-one-driver-out evaluation meaningfully harder than a random
// split -- the "larger participant study" concern of Section 5.2.
#pragma once

#include "imu/imu.hpp"
#include "util/rng.hpp"
#include "vision/renderer.hpp"

namespace darnet::core {

struct DriverStyle {
  // Vision: seating position, body size, cabin lighting preference.
  double head_dx{0.0};
  double head_dy{0.0};
  double body_scale{1.0};
  double lighting_bias{0.0};
  // IMU: how the device is habitually held/carried.
  double tremor_scale{1.0};
  double attitude_roll_bias{0.0};   // radians
  double attitude_pitch_bias{0.0};  // radians

  /// Draw one driver's style. Magnitudes are modest: the style shifts
  /// distributions without making drivers separate classes.
  static DriverStyle sample(util::Rng& rng);

  /// Identity style (single-driver datasets).
  static DriverStyle neutral() { return DriverStyle{}; }

  /// Apply the vision components onto a render config copy.
  [[nodiscard]] vision::RenderConfig applied_to(
      const vision::RenderConfig& base) const;

  /// Apply the IMU components onto a generator config copy.
  [[nodiscard]] imu::ImuGenConfig applied_to(
      const imu::ImuGenConfig& base) const;
};

}  // namespace darnet::core
