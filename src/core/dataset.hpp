// Dataset assembly mirroring the paper's two collections (Section 5.1).
//
// The 6-class dataset reproduces Table 1: per-class frame counts in the
// paper's exact proportions (optionally scaled down -- training a CNN on
// all 57,080 frames is a compute gate on a 1-core substrate), each frame
// paired with a 20-step IMU window whose phone orientation matches the
// behaviour (classes without phone use place the device in the pocket and
// count as IMU "normal driving"). The 18-class dataset drives the privacy
// evaluation of Section 5.3.
#pragma once

#include <array>

#include "core/driver_style.hpp"
#include "imu/imu.hpp"
#include "vision/renderer.hpp"

namespace darnet::core {

using tensor::Tensor;

/// Table 1 frame counts, paper order (normal, talking, texting,
/// eating/drinking, hair/makeup, reaching).
inline constexpr std::array<int, 6> kPaperFrameCounts = {
    5286, 10352, 9422, 9463, 4848, 17709};
inline constexpr int kPaperTotalFrames = 57080;

struct DatasetConfig {
  /// Fraction of the paper's per-class counts to generate (1.0 = all
  /// 57,080 frames; benches default far lower -- see DESIGN.md).
  double scale = 0.04;
  vision::RenderConfig render;
  imu::ImuGenConfig imu;
  /// The study collected from 5 drivers; each gets a sampled DriverStyle
  /// that biases both modalities consistently. 1 disables heterogeneity.
  int num_drivers = 5;
  std::uint64_t seed = 42;
  /// Shard frame/IMU synthesis across the thread pool. Every row draws
  /// from its own RNG stream forked from `seed` in a serial prelude, so
  /// the result is deterministic for a given seed and independent of
  /// DARNET_THREADS -- but it is a *different* (equally distributed)
  /// sample than the serial single-stream generator, so the default stays
  /// false to preserve the seed pipeline bit-for-bit.
  bool parallel = false;
};

/// A paired multimodal dataset. Row i of every member describes sample i.
struct Dataset {
  Tensor frames;        // [N, 1, S, S]
  Tensor imu_windows;   // [N, 20, 13]
  std::vector<int> labels;      // image class, 0..5
  std::vector<int> imu_labels;  // IMU class, 0..2
  std::vector<int> driver_ids;  // which driver acted the sample

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(labels.size());
  }
};

/// Per-class sample counts implied by a config (round(scale * paper)).
[[nodiscard]] std::array<int, 6> scaled_counts(double scale);

/// Generate the 6-class multimodal dataset.
[[nodiscard]] Dataset generate_dataset(const DatasetConfig& config);

/// Shuffled train/eval split ("we divide the collected dataset into an
/// 80/20 partition").
struct TrainEvalSplit {
  Dataset train;
  Dataset eval;
};
[[nodiscard]] TrainEvalSplit split_dataset(const Dataset& data,
                                           double train_fraction,
                                           std::uint64_t seed);

/// Leave-one-driver-out split: train on every driver except `held_out`,
/// evaluate only on `held_out` -- measures generalisation to unseen
/// drivers (the "larger participant study" concern of Section 5.2).
[[nodiscard]] TrainEvalSplit split_leave_one_driver_out(const Dataset& data,
                                                        int held_out_driver);

/// The phone orientation used when acting out an image class (texting /
/// talking pick a hand at random; everything else rides in the pocket).
[[nodiscard]] imu::PhoneOrientation orientation_for(vision::DriverClass cls,
                                                    util::Rng& rng);

/// The 18-class frames-only dataset of Section 5.3 (IMU not collected for
/// that study -- it was recorded with a GoPro alone).
struct FineDataset {
  Tensor frames;  // [N, 1, S, S]
  std::vector<int> labels;  // 0..17
};
[[nodiscard]] FineDataset generate_fine_dataset(
    int samples_per_class, const vision::RenderConfig& render,
    std::uint64_t seed);

/// Human-readable class names, Table 1 order.
[[nodiscard]] std::vector<std::string> driver_class_names();

}  // namespace darnet::core
