#include "core/darnet.hpp"

#include <fstream>

#include "imu/imu.hpp"
#include "util/stopwatch.hpp"

namespace darnet::core {

DarNet::DarNet(DarNetConfig config)
    : config_(config),
      cnn_(std::make_shared<nn::Sequential>(
          engine::build_frame_cnn(config.cnn))),
      rnn_(std::make_shared<nn::Sequential>(engine::build_imu_rnn(config.rnn))),
      svm_(std::make_shared<svm::LinearSvm>(
          imu::kWindowSteps * imu::kImuChannels, config.rnn.num_classes)),
      cnn_classifier_(std::make_shared<engine::NeuralClassifier>(
          cnn_, config.cnn.num_classes, "MicroInception CNN")),
      rnn_classifier_(std::make_shared<engine::NeuralClassifier>(
          rnn_, config.rnn.num_classes, "BiLSTM RNN")),
      svm_classifier_(std::make_shared<engine::SvmClassifier>(svm_)),
      cnn_only_(std::make_shared<engine::EnsembleClassifier>(
          cnn_classifier_, nullptr, bayes::ClassMap::darnet_default())),
      cnn_svm_(std::make_shared<engine::EnsembleClassifier>(
          cnn_classifier_, svm_classifier_,
          bayes::ClassMap::darnet_default())),
      cnn_rnn_(std::make_shared<engine::EnsembleClassifier>(
          cnn_classifier_, rnn_classifier_,
          bayes::ClassMap::darnet_default())) {}

TrainReport DarNet::train(const Dataset& train_data) {
  if (train_data.size() == 0) {
    throw std::invalid_argument("DarNet::train: empty dataset");
  }
  util::Stopwatch watch;
  TrainReport report;

  // Frame CNN: supervised on the 6 driver classes.
  {
    nn::Sgd optimizer(config_.cnn_lr, 0.9, 1e-4);
    nn::TrainConfig tc;
    tc.epochs = config_.cnn_epochs;
    tc.batch_size = config_.batch_size;
    tc.shuffle_seed = config_.seed;
    if (config_.data_parallel_shards > 1) {
      tc.shards = config_.data_parallel_shards;
      tc.make_replica = [cfg = config_.cnn]() -> nn::LayerPtr {
        return std::make_unique<nn::Sequential>(engine::build_frame_cnn(cfg));
      };
    }
    report.cnn_final_loss = nn::train_classifier(
        *cnn_, optimizer, train_data.frames, train_data.labels, tc);
  }

  // IMU BiLSTM: supervised on the 3 IMU classes.
  {
    nn::Adam optimizer(config_.rnn_lr);
    nn::TrainConfig tc;
    tc.epochs = config_.rnn_epochs;
    tc.batch_size = config_.batch_size;
    tc.shuffle_seed = config_.seed ^ 0xabcdULL;
    if (config_.data_parallel_shards > 1) {
      tc.shards = config_.data_parallel_shards;
      tc.make_replica = [cfg = config_.rnn]() -> nn::LayerPtr {
        return std::make_unique<nn::Sequential>(engine::build_imu_rnn(cfg));
      };
    }
    report.rnn_final_loss = nn::train_classifier(
        *rnn_, optimizer, train_data.imu_windows, train_data.imu_labels, tc);
  }

  // SVM baseline on the flattened windows.
  svm_->fit(imu::flatten_windows(train_data.imu_windows),
            train_data.imu_labels, config_.svm);

  // Ensemble CPTs are estimated from the models' outputs on training data
  // ("based on the number of true-positive observations from the training
  // data presented to the system").
  cnn_svm_->fit(train_data.frames, train_data.imu_windows, train_data.labels);
  cnn_rnn_->fit(train_data.frames, train_data.imu_windows, train_data.labels);

  trained_ = true;
  report.train_seconds = watch.seconds();
  return report;
}

engine::EnsembleClassifier& DarNet::ensemble(engine::ArchitectureKind kind) {
  return *ensemble_ptr(kind);
}

std::shared_ptr<engine::EnsembleClassifier> DarNet::ensemble_ptr(
    engine::ArchitectureKind kind) {
  switch (kind) {
    case engine::ArchitectureKind::kCnnOnly:
      return cnn_only_;
    case engine::ArchitectureKind::kCnnSvm:
      return cnn_svm_;
    case engine::ArchitectureKind::kCnnRnn:
      return cnn_rnn_;
  }
  throw std::invalid_argument("DarNet::ensemble: unknown architecture");
}

Tensor DarNet::classify(const Tensor& frames, const Tensor& imu_windows,
                        engine::ArchitectureKind kind) {
  if (!trained_) throw std::logic_error("DarNet::classify before train()");
  return ensemble(kind).classify_batch(frames, imu_windows);
}

namespace {
constexpr std::uint32_t kBundleMagic = 0x44724e42;  // "DrNB"
}  // namespace

void DarNet::save(const std::string& path) {
  if (!trained_) throw std::logic_error("DarNet::save before train()");
  util::BinaryWriter writer;
  writer.write_u32(kBundleMagic);
  cnn_->save_params(writer);
  rnn_->save_params(writer);
  svm_->serialize(writer);
  cnn_svm_->combiner().serialize(writer);
  cnn_rnn_->combiner().serialize(writer);

  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("DarNet::save: cannot open " + path);
  out.write(reinterpret_cast<const char*>(writer.bytes().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) throw std::runtime_error("DarNet::save: write failed");
}

void DarNet::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("DarNet::load: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  util::BinaryReader reader(bytes);
  if (reader.read_u32() != kBundleMagic) {
    throw std::runtime_error("DarNet::load: not a DarNet bundle: " + path);
  }
  cnn_->load_params(reader);
  rnn_->load_params(reader);
  *svm_ = svm::LinearSvm::deserialize(reader);
  // Restore the fitted combiners in place: the ensembles (and any
  // shared handles to them held by serving tiers) keep their identity.
  auto svm_combiner = bayes::BayesianCombiner::deserialize(reader);
  auto rnn_combiner = bayes::BayesianCombiner::deserialize(reader);
  cnn_svm_->restore_combiner(std::move(svm_combiner));
  cnn_rnn_->restore_combiner(std::move(rnn_combiner));
  trained_ = true;
}

nn::ConfusionMatrix DarNet::evaluate(const Dataset& eval_data,
                                     engine::ArchitectureKind kind) {
  if (!trained_) throw std::logic_error("DarNet::evaluate before train()");
  return ensemble(kind).evaluate(eval_data.frames, eval_data.imu_windows,
                                 eval_data.labels, driver_class_names());
}

}  // namespace darnet::core
