#include "core/pipeline.hpp"

#include "obs/obs.hpp"
#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace darnet::core {

double SessionScript::total_duration() const noexcept {
  double total = 0.0;
  for (const auto& seg : segments) total += seg.duration_s;
  return total;
}

vision::DriverClass SessionScript::behaviour_at(double t) const {
  if (segments.empty()) {
    throw std::logic_error("SessionScript: empty script");
  }
  double acc = 0.0;
  for (const auto& seg : segments) {
    acc += seg.duration_s;
    if (t < acc) return seg.behaviour;
  }
  return segments.back().behaviour;
}

SessionScript SessionScript::paper_script(int repeats, double segment_s) {
  SessionScript script;
  for (int r = 0; r < repeats; ++r) {
    for (int c = 0; c < vision::kDriverClassCount; ++c) {
      script.segments.push_back(
          {static_cast<vision::DriverClass>(c), segment_s});
    }
  }
  return script;
}

StreamingPipeline::StreamingPipeline(SessionScript script,
                                     PipelineConfig config)
    : script_(std::move(script)), config_(config), rng_(config.seed) {
  if (script_.segments.empty()) {
    throw std::invalid_argument("StreamingPipeline: empty script");
  }
  build();
}

std::vector<std::string> StreamingPipeline::imu_streams() {
  return {"imu.accel", "imu.gyro", "imu.gravity", "imu.rotation"};
}

const imu::ImuSample& StreamingPipeline::sample_at(double t) const {
  // Locate the segment containing t, then the nearest trace sample.
  std::size_t seg = 0;
  while (seg + 1 < segment_starts_.size() && segment_starts_[seg + 1] <= t) {
    ++seg;
  }
  const auto& trace = segment_traces_[seg];
  const double rel = t - segment_starts_[seg];
  const auto idx = std::min(
      trace.size() - 1,
      static_cast<std::size_t>(std::max(0.0, rel * config_.imu.sample_hz)));
  return trace[idx];
}

void StreamingPipeline::build() {
  // Pre-generate one IMU trace per script segment, matching the behaviour's
  // phone orientation.
  double start = 0.0;
  for (const auto& seg : script_.segments) {
    segment_starts_.push_back(start);
    imu::ImuGenConfig gen = config_.imu;
    gen.duration_s = seg.duration_s;
    segment_traces_.push_back(
        imu::generate_trace(orientation_for(seg.behaviour, rng_), gen, rng_));
    start += seg.duration_s;
  }

  controller_ = std::make_unique<collection::Controller>(sim_,
                                                         config_.controller);

  camera_up_ = std::make_unique<collection::VirtualLink>(
      sim_, config_.camera_link, config_.seed ^ 0x100);
  camera_down_ = std::make_unique<collection::VirtualLink>(
      sim_, config_.camera_link, config_.seed ^ 0x101);
  phone_up_ = std::make_unique<collection::VirtualLink>(
      sim_, config_.phone_link, config_.seed ^ 0x200);
  phone_down_ = std::make_unique<collection::VirtualLink>(
      sim_, config_.phone_link, config_.seed ^ 0x201);

  collection::AgentConfig camera_cfg;
  camera_cfg.agent_id = 1;
  camera_cfg.clock_drift_ppm = config_.camera_drift_ppm;
  camera_cfg.latency_compensation_s = config_.camera_link.base_latency_s;
  camera_agent_ = std::make_unique<collection::CollectionAgent>(
      sim_, camera_cfg, *camera_up_);

  collection::AgentConfig phone_cfg;
  phone_cfg.agent_id = 2;
  phone_cfg.clock_drift_ppm = config_.phone_drift_ppm;
  phone_cfg.clock_initial_offset_s = 0.02;
  phone_cfg.latency_compensation_s = config_.phone_link.base_latency_s;
  phone_agent_ = std::make_unique<collection::CollectionAgent>(
      sim_, phone_cfg, *phone_up_);

  camera_up_->set_receiver([this](std::vector<std::uint8_t> bytes) {
    controller_->on_message(bytes);
  });
  phone_up_->set_receiver([this](std::vector<std::uint8_t> bytes) {
    controller_->on_message(bytes);
  });
  camera_down_->set_receiver([this](std::vector<std::uint8_t> bytes) {
    camera_agent_->on_message(bytes);
  });
  phone_down_->set_receiver([this](std::vector<std::uint8_t> bytes) {
    phone_agent_->on_message(bytes);
  });
  controller_->attach_agent(1, *camera_down_);
  controller_->attach_agent(2, *phone_down_);

  // Camera sensor: renders the scripted behaviour at poll time.
  camera_agent_->add_sensor(std::make_unique<collection::CallbackSensor>(
      "camera", config_.camera_period_s,
      [this](collection::SimTime now) {
        const vision::Image frame = vision::render_driver_scene(
            script_.behaviour_at(now), config_.render, rng_);
        return std::vector<float>(frame.pixels().begin(),
                                  frame.pixels().end());
      }));

  // Phone sensors: one stream per physical sensor, all reading the shared
  // trace (as the Android sensor manager fans one IMU out to listeners).
  phone_agent_->add_sensor(std::make_unique<collection::CallbackSensor>(
      "imu.accel", config_.imu_period_s, [this](collection::SimTime now) {
        const auto& s = sample_at(now);
        return std::vector<float>(s.accel.begin(), s.accel.end());
      }));
  phone_agent_->add_sensor(std::make_unique<collection::CallbackSensor>(
      "imu.gyro", config_.imu_period_s, [this](collection::SimTime now) {
        const auto& s = sample_at(now);
        return std::vector<float>(s.gyro.begin(), s.gyro.end());
      }));
  phone_agent_->add_sensor(std::make_unique<collection::CallbackSensor>(
      "imu.gravity", config_.imu_period_s, [this](collection::SimTime now) {
        const auto& s = sample_at(now);
        return std::vector<float>(s.gravity.begin(), s.gravity.end());
      }));
  phone_agent_->add_sensor(std::make_unique<collection::CallbackSensor>(
      "imu.rotation", config_.imu_period_s, [this](collection::SimTime now) {
        const auto& s = sample_at(now);
        return std::vector<float>(s.rotation.begin(), s.rotation.end());
      }));
}

std::vector<StreamedClassification> StreamingPipeline::run(
    DarNet* model, engine::ArchitectureKind kind) {
  DARNET_SPAN("core/pipeline_run");
  controller_->start();
  camera_agent_->start();
  phone_agent_->start();

  const double horizon = script_.total_duration();
  sim_.run_until(horizon + 0.5);

  std::vector<StreamedClassification> results;
  if (!model) return results;
  if (!model->trained()) {
    throw std::logic_error("StreamingPipeline::run: model not trained");
  }

  // Per-timestep classification: at each step after the first full window,
  // take the aligned IMU history [t-5s, t) and the frame nearest t.
  const auto streams = imu_streams();
  const double step = config_.controller.alignment_dt_s;
  const int edge = config_.render.size;

  for (double t = imu::kWindowSeconds; t < horizon; t += 1.0) {
    DARNET_TIMER("core/pipeline_step_ns");
    const auto rows = controller_->aligned_window(
        streams, t - imu::kWindowSeconds, t);
    if (rows.size() < imu::kWindowSteps) continue;  // warm-up or gaps
    (void)step;

    Tensor window({1, imu::kWindowSteps, imu::kImuChannels});
    const std::size_t take = rows.size() - imu::kWindowSteps;
    for (int r = 0; r < imu::kWindowSteps; ++r) {
      const auto& row = rows[take + static_cast<std::size_t>(r)];
      if (row.size() != imu::kImuChannels) {
        throw std::logic_error("StreamingPipeline: bad aligned row width");
      }
      std::copy(row.begin(), row.end(),
                window.data() +
                    static_cast<std::size_t>(r) * imu::kImuChannels);
    }

    // Frames are discrete captures: take the nearest one, never a linear
    // blend of two (a camera does not interpolate).
    const auto frame_values = controller_->store().nearest("camera", t);
    if (!frame_values ||
        frame_values->size() != static_cast<std::size_t>(edge) * edge) {
      continue;
    }
    Tensor frame({1, 1, edge, edge});
    std::copy(frame_values->begin(), frame_values->end(), frame.data());

    StreamedClassification out;
    out.time = t;
    out.actual = static_cast<int>(script_.behaviour_at(t));
    {
      DARNET_SPAN("core/infer");
      out.distribution = model->classify(frame, window, kind);
    }
    out.predicted = tensor::argmax(std::span<const float>(
        out.distribution.data(),
        static_cast<std::size_t>(out.distribution.dim(1))));
    results.push_back(std::move(out));
  }
  return results;
}

const collection::LinkStats& StreamingPipeline::camera_link_stats() const {
  return camera_up_->stats();
}
const collection::LinkStats& StreamingPipeline::phone_link_stats() const {
  return phone_up_->stats();
}

}  // namespace darnet::core
