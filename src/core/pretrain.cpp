#include "core/pretrain.hpp"

#include "core/dataset.hpp"
#include "engine/architectures.hpp"
#include "nn/checkpoint.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "util/stopwatch.hpp"

namespace darnet::core {

PretrainReport pretrain_frame_cnn(nn::Sequential& frame_cnn, int input_size,
                                  const PretrainConfig& config) {
  util::Stopwatch watch;

  vision::RenderConfig render = config.render;
  render.size = input_size;
  const FineDataset aux = generate_fine_dataset(config.samples_per_class,
                                                render, config.seed);

  engine::FrameCnnConfig aux_cfg;
  aux_cfg.input_size = input_size;
  aux_cfg.num_classes = vision::kFineClassCount;
  aux_cfg.seed = config.seed ^ 0x5555;
  nn::Sequential aux_model = engine::build_frame_cnn(aux_cfg);

  nn::Sgd optimizer(config.learning_rate, 0.9, 1e-4);
  nn::TrainConfig tc;
  tc.epochs = config.epochs;
  tc.batch_size = 32;
  tc.shuffle_seed = config.seed;
  PretrainReport report;
  report.final_loss =
      nn::train_classifier(aux_model, optimizer, aux.frames, aux.labels, tc);
  report.params_transferred =
      nn::transfer_matching_params(aux_model, frame_cnn);
  if (report.params_transferred == 0) {
    throw std::invalid_argument(
        "pretrain_frame_cnn: no transferable parameters -- input size "
        "mismatch?");
  }
  report.seconds = watch.seconds();
  return report;
}

}  // namespace darnet::core
