// DarNet facade: the library's top-level entry point.
//
// Owns the frame CNN, the IMU BiLSTM, the SVM baseline, and the Bayesian
// combiner; trains them on a multimodal dataset; and evaluates any of the
// three Table-2 architectures (CNN, CNN+SVM, CNN+RNN).
#pragma once

#include <memory>
#include <optional>

#include "core/dataset.hpp"
#include "engine/architectures.hpp"
#include "engine/engine.hpp"

namespace darnet::core {

struct DarNetConfig {
  engine::FrameCnnConfig cnn;
  engine::ImuRnnConfig rnn;
  svm::SvmConfig svm;

  int cnn_epochs = 12;
  int rnn_epochs = 6;
  int batch_size = 32;
  double cnn_lr = 0.03;
  double rnn_lr = 0.004;
  std::uint64_t seed = 1;

  /// Data-parallel shards per training minibatch (see TrainConfig::shards).
  /// 1 keeps the bit-reproducible serial trainer; > 1 trades exact seed
  /// reproducibility for parallel speed-up (still deterministic for a
  /// fixed shard count, independent of DARNET_THREADS).
  int data_parallel_shards = 1;
};

struct TrainReport {
  double cnn_final_loss{0.0};
  double rnn_final_loss{0.0};
  double train_seconds{0.0};
};

class DarNet {
 public:
  explicit DarNet(DarNetConfig config);

  /// Train all three models and fit the ensemble CPTs.
  TrainReport train(const Dataset& train_data);

  /// Fused class distribution [N, 6] under the chosen architecture.
  [[nodiscard]] Tensor classify(const Tensor& frames,
                                const Tensor& imu_windows,
                                engine::ArchitectureKind kind);

  /// Confusion matrix over an evaluation set (Figure 5 / Table 2).
  [[nodiscard]] nn::ConfusionMatrix evaluate(const Dataset& eval_data,
                                             engine::ArchitectureKind kind);

  /// Direct access to the trained components (benches, ablations).
  [[nodiscard]] nn::Sequential& frame_cnn() noexcept { return *cnn_; }
  [[nodiscard]] nn::Sequential& imu_rnn() noexcept { return *rnn_; }
  [[nodiscard]] svm::LinearSvm& imu_svm() noexcept { return *svm_; }
  [[nodiscard]] engine::EnsembleClassifier& ensemble(
      engine::ArchitectureKind kind);
  /// Shared (owning) handle to an architecture's ensemble -- the form the
  /// serving tier consumes; the ensemble stays valid for the handle's
  /// lifetime even if this facade is destroyed.
  [[nodiscard]] std::shared_ptr<engine::EnsembleClassifier> ensemble_ptr(
      engine::ArchitectureKind kind);

  [[nodiscard]] bool trained() const noexcept { return trained_; }
  [[nodiscard]] const DarNetConfig& config() const noexcept {
    return config_;
  }

  /// Persist every trained component (CNN, RNN, SVM, both fitted
  /// combiners) to one file; load() restores them into a facade built
  /// with the same configuration and marks it trained.
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  DarNetConfig config_;
  // Shared ownership throughout: the classifier adapters co-own the
  // models and the ensembles co-own the adapters, so handles returned by
  // ensemble_ptr never dangle (see the engine API redesign notes).
  std::shared_ptr<nn::Sequential> cnn_;
  std::shared_ptr<nn::Sequential> rnn_;
  std::shared_ptr<svm::LinearSvm> svm_;

  std::shared_ptr<engine::NeuralClassifier> cnn_classifier_;
  std::shared_ptr<engine::NeuralClassifier> rnn_classifier_;
  std::shared_ptr<engine::SvmClassifier> svm_classifier_;

  std::shared_ptr<engine::EnsembleClassifier> cnn_only_;
  std::shared_ptr<engine::EnsembleClassifier> cnn_svm_;
  std::shared_ptr<engine::EnsembleClassifier> cnn_rnn_;
  bool trained_{false};
};

}  // namespace darnet::core
