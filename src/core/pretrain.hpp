// Fine-tuning initialisation for the frame CNN (Section 4.2: "we take a
// fine-tuning approach by initializing our model using the weights of a
// pre-trained model").
//
// Compute-gate substitution (DESIGN.md): the paper starts from an
// ImageNet-trained Inception-V3 checkpoint; here the feature extractor is
// pre-trained on the auxiliary 18-class pose dataset -- a different label
// space over the same visual domain -- and the convolutional weights are
// transferred into the 6-class model before supervised training.
#pragma once

#include "nn/sequential.hpp"
#include "vision/renderer.hpp"

namespace darnet::core {

struct PretrainConfig {
  int samples_per_class = 20;
  int epochs = 6;
  double learning_rate = 0.03;
  vision::RenderConfig render;  // the auxiliary dataset's capture setup
  std::uint64_t seed = 404;
};

struct PretrainReport {
  double final_loss{0.0};
  std::size_t params_transferred{0};
  double seconds{0.0};
};

/// Pre-train a feature extractor on the 18-class pose task and transfer
/// its weights into `frame_cnn` (everything up to the classification
/// head). The CNN must have been built by engine::build_frame_cnn with
/// the same input size.
PretrainReport pretrain_frame_cnn(nn::Sequential& frame_cnn,
                                  int input_size,
                                  const PretrainConfig& config = {});

}  // namespace darnet::core
