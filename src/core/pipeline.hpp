// End-to-end streaming deployment (Figures 1-2): two simulated devices --
// a dashcam tablet (camera agent + controller, the paper's Nexus 7) and
// the driver's phone (IMU agent, the Nexus S) -- joined by virtual links,
// feeding the analytics engine for per-timestep classification.
//
// A driving session follows the paper's collection protocol: the driver
// performs scripted distractions, each held for a fixed duration
// (15 seconds in the study), in sequence.
#pragma once

#include <memory>

#include "collection/agent.hpp"
#include "collection/controller.hpp"
#include "core/darnet.hpp"

namespace darnet::core {

/// One scripted behaviour segment.
struct SessionSegment {
  vision::DriverClass behaviour{vision::DriverClass::kNormal};
  double duration_s{15.0};
};

/// A full scripted session ("each driver was instructed to perform a
/// scripted set of distractions for a duration of 15 seconds").
struct SessionScript {
  std::vector<SessionSegment> segments;

  [[nodiscard]] double total_duration() const noexcept;
  /// Behaviour active at time t (clamped to the last segment).
  [[nodiscard]] vision::DriverClass behaviour_at(double t) const;

  /// The paper's script: all six behaviours in order, `repeats` times.
  static SessionScript paper_script(int repeats = 1,
                                    double segment_s = 15.0);
};

struct PipelineConfig {
  vision::RenderConfig render;
  imu::ImuGenConfig imu;
  collection::ControllerConfig controller;
  collection::LinkConfig camera_link;  // tablet-internal: effectively ideal
  collection::LinkConfig phone_link;   // Bluetooth-like
  double camera_period_s = 0.25;       // frame poll period
  double imu_period_s = 0.025;         // Android sensor listeners: 25 ms
  double phone_drift_ppm = 180.0;      // the Nexus S clock drifts
  double camera_drift_ppm = 0.0;       // controller host == camera host
  std::uint64_t seed = 99;
};

/// One per-timestep classification emitted while streaming.
struct StreamedClassification {
  double time{0.0};
  int predicted{0};
  int actual{0};
  Tensor distribution;  // [1, 6]
};

/// Builds and runs the simulated deployment.
class StreamingPipeline {
 public:
  StreamingPipeline(SessionScript script, PipelineConfig config);

  /// Run the whole session through the collection framework. Classification
  /// requires a trained DarNet; pass nullptr to only exercise collection.
  std::vector<StreamedClassification> run(
      DarNet* model,
      engine::ArchitectureKind kind = engine::ArchitectureKind::kCnnRnn);

  [[nodiscard]] const collection::Controller& controller() const noexcept {
    return *controller_;
  }
  [[nodiscard]] const collection::LinkStats& camera_link_stats() const;
  [[nodiscard]] const collection::LinkStats& phone_link_stats() const;
  [[nodiscard]] double phone_clock_error() const noexcept {
    return phone_agent_->clock_error_now();
  }

  /// The IMU stream names in the order they are concatenated (13 channels).
  [[nodiscard]] static std::vector<std::string> imu_streams();

 private:
  void build();

  SessionScript script_;
  PipelineConfig config_;
  util::Rng rng_;

  collection::Simulation sim_;
  std::unique_ptr<collection::VirtualLink> camera_up_, camera_down_;
  std::unique_ptr<collection::VirtualLink> phone_up_, phone_down_;
  std::unique_ptr<collection::Controller> controller_;
  std::unique_ptr<collection::CollectionAgent> camera_agent_, phone_agent_;

  // Pre-generated per-segment IMU traces sampled by the phone sensors.
  std::vector<std::vector<imu::ImuSample>> segment_traces_;
  std::vector<double> segment_starts_;

  [[nodiscard]] const imu::ImuSample& sample_at(double t) const;
};

}  // namespace darnet::core
