#include "core/driver_style.hpp"

namespace darnet::core {

DriverStyle DriverStyle::sample(util::Rng& rng) {
  DriverStyle style;
  style.head_dx = rng.gaussian(0.0, 0.03);
  style.head_dy = rng.gaussian(0.0, 0.02);
  style.body_scale = rng.uniform(0.9, 1.12);
  style.lighting_bias = rng.gaussian(0.0, 0.08);
  style.tremor_scale = rng.uniform(0.7, 1.5);
  style.attitude_roll_bias = rng.gaussian(0.0, 0.10);
  style.attitude_pitch_bias = rng.gaussian(0.0, 0.08);
  return style;
}

vision::RenderConfig DriverStyle::applied_to(
    const vision::RenderConfig& base) const {
  vision::RenderConfig cfg = base;
  cfg.head_dx = head_dx;
  cfg.head_dy = head_dy;
  cfg.body_scale = body_scale;
  cfg.lighting_bias = lighting_bias;
  return cfg;
}

imu::ImuGenConfig DriverStyle::applied_to(
    const imu::ImuGenConfig& base) const {
  imu::ImuGenConfig cfg = base;
  cfg.tremor_scale = tremor_scale;
  cfg.attitude_roll_bias = attitude_roll_bias;
  cfg.attitude_pitch_bias = attitude_pitch_bias;
  return cfg;
}

}  // namespace darnet::core
