#include "svm/svm.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace darnet::svm {

LinearSvm::LinearSvm(int feature_dim, int num_classes)
    : dim_(feature_dim),
      classes_(num_classes),
      weights_({num_classes, feature_dim}),
      biases_({num_classes}) {
  if (feature_dim <= 0 || num_classes < 2) {
    throw std::invalid_argument("LinearSvm: need dim > 0 and >= 2 classes");
  }
}

Tensor LinearSvm::standardize(const Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != dim_) {
    throw std::invalid_argument("LinearSvm: expected [N, " +
                                std::to_string(dim_) + "], got " +
                                x.shape_string());
  }
  Tensor out(x.shape());
  const int n = x.dim(0);
  for (int i = 0; i < n; ++i) {
    const float* src = x.data() + static_cast<std::size_t>(i) * dim_;
    float* dst = out.data() + static_cast<std::size_t>(i) * dim_;
    for (int j = 0; j < dim_; ++j) dst[j] = (src[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

void LinearSvm::fit(const Tensor& x, std::span<const int> labels,
                    const SvmConfig& config) {
  const int n = x.dim(0);
  if (labels.size() != static_cast<std::size_t>(n) || n == 0) {
    throw std::invalid_argument("LinearSvm::fit: label count mismatch");
  }
  for (int y : labels) {
    if (y < 0 || y >= classes_) {
      throw std::invalid_argument("LinearSvm::fit: label out of range");
    }
  }

  // Fit the standardiser on the training data.
  mean_.assign(dim_, 0.0f);
  inv_std_.assign(dim_, 1.0f);
  for (int i = 0; i < n; ++i) {
    const float* row = x.data() + static_cast<std::size_t>(i) * dim_;
    for (int j = 0; j < dim_; ++j) mean_[j] += row[j];
  }
  for (auto& m : mean_) m /= static_cast<float>(n);
  std::vector<double> var(dim_, 0.0);
  for (int i = 0; i < n; ++i) {
    const float* row = x.data() + static_cast<std::size_t>(i) * dim_;
    for (int j = 0; j < dim_; ++j) {
      const double d = row[j] - mean_[j];
      var[j] += d * d;
    }
  }
  for (int j = 0; j < dim_; ++j) {
    const double sd = std::sqrt(var[j] / n);
    inv_std_[j] = sd > 1e-8 ? static_cast<float>(1.0 / sd) : 1.0f;
  }

  const Tensor xs = standardize(x);
  weights_.zero();
  biases_.zero();

  // Averaged Pegasos: eta_t = 1 / (lambda * t), one-vs-rest updates per
  // sample; the returned model averages the iterates of the second half of
  // training, which removes the oscillation of the raw final iterate.
  util::Rng rng(config.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Tensor avg_w({classes_, dim_});
  Tensor avg_b({classes_});
  long averaged = 0;
  long t = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      ++t;
      const std::size_t i = order[oi];
      const float* xi = xs.data() + i * dim_;
      // t-offset tames the first iterations (eta_1 would otherwise be
      // 1/lambda, slamming the weights); asymptotically identical schedule.
      const double t0 = 1.0 / config.lambda;
      const double eta =
          1.0 / (config.lambda * (static_cast<double>(t) + t0));
      const double radius = 1.0 / std::sqrt(config.lambda);
      for (int c = 0; c < classes_; ++c) {
        float* w = weights_.data() + static_cast<std::size_t>(c) * dim_;
        const float yc = (labels[i] == c) ? 1.0f : -1.0f;
        double margin = biases_[static_cast<std::size_t>(c)];
        for (int j = 0; j < dim_; ++j) margin += w[j] * xi[j];
        margin *= yc;
        // L2 shrinkage.
        const float shrink = static_cast<float>(1.0 - eta * config.lambda);
        for (int j = 0; j < dim_; ++j) w[j] *= shrink;
        if (margin < 1.0) {
          const float step = static_cast<float>(eta) * yc;
          for (int j = 0; j < dim_; ++j) w[j] += step * xi[j];
          biases_[static_cast<std::size_t>(c)] += step;
        }
        // Pegasos projection onto the ball of radius 1/sqrt(lambda).
        double norm_sq = 0.0;
        for (int j = 0; j < dim_; ++j) {
          norm_sq += static_cast<double>(w[j]) * w[j];
        }
        if (norm_sq > radius * radius) {
          const float scale =
              static_cast<float>(radius / std::sqrt(norm_sq));
          for (int j = 0; j < dim_; ++j) w[j] *= scale;
        }
      }
    }
    if (epoch >= config.epochs / 2) {
      tensor::add_inplace(avg_w, weights_);
      tensor::add_inplace(avg_b, biases_);
      ++averaged;
    }
  }
  if (averaged > 0) {
    tensor::scale_inplace(avg_w, 1.0f / static_cast<float>(averaged));
    tensor::scale_inplace(avg_b, 1.0f / static_cast<float>(averaged));
    weights_ = std::move(avg_w);
    biases_ = std::move(avg_b);
  }
  trained_ = true;
}

Tensor LinearSvm::decision_values(const Tensor& x) const {
  if (!trained_) throw std::logic_error("LinearSvm: predict before fit");
  const Tensor xs = standardize(x);
  const int n = xs.dim(0);
  Tensor out({n, classes_});
  for (int i = 0; i < n; ++i) {
    const float* xi = xs.data() + static_cast<std::size_t>(i) * dim_;
    float* orow = out.data() + static_cast<std::size_t>(i) * classes_;
    for (int c = 0; c < classes_; ++c) {
      const float* w = weights_.data() + static_cast<std::size_t>(c) * dim_;
      double acc = biases_[static_cast<std::size_t>(c)];
      for (int j = 0; j < dim_; ++j) acc += w[j] * xi[j];
      orow[c] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor LinearSvm::probabilities(const Tensor& x) const {
  return tensor::softmax_rows(decision_values(x));
}

std::vector<int> LinearSvm::predict(const Tensor& x) const {
  Tensor margins = decision_values(x);
  const int n = margins.dim(0);
  std::vector<int> preds(n);
  for (int i = 0; i < n; ++i) {
    preds[i] = tensor::argmax(std::span<const float>(
        margins.data() + static_cast<std::size_t>(i) * classes_,
        static_cast<std::size_t>(classes_)));
  }
  return preds;
}

void LinearSvm::serialize(util::BinaryWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(dim_));
  writer.write_u32(static_cast<std::uint32_t>(classes_));
  writer.write_u8(trained_ ? 1 : 0);
  weights_.serialize(writer);
  biases_.serialize(writer);
  writer.write_f32_span(mean_);
  writer.write_f32_span(inv_std_);
}

LinearSvm LinearSvm::deserialize(util::BinaryReader& reader) {
  const int dim = static_cast<int>(reader.read_u32());
  const int classes = static_cast<int>(reader.read_u32());
  LinearSvm svm(dim, classes);
  svm.trained_ = reader.read_u8() != 0;
  svm.weights_ = Tensor::deserialize(reader);
  svm.biases_ = Tensor::deserialize(reader);
  svm.mean_ = reader.read_f32_vector();
  svm.inv_std_ = reader.read_f32_vector();
  if (svm.weights_.dim(0) != classes || svm.weights_.dim(1) != dim ||
      svm.mean_.size() != static_cast<std::size_t>(dim)) {
    throw std::invalid_argument("LinearSvm::deserialize: corrupt payload");
  }
  return svm;
}

}  // namespace darnet::svm
