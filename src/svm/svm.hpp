// Multi-class linear SVM -- the paper's baseline model for IMU sequence
// classification (the CNN+SVM architecture of Table 2).
//
// One-vs-rest linear classifiers trained with stochastic sub-gradient
// descent on the hinge loss plus L2 regularisation (Pegasos-style). Inputs
// are flattened, standardised feature vectors.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace darnet::svm {

using tensor::Tensor;

struct SvmConfig {
  int epochs = 30;
  double lambda = 1e-4;  // L2 regularisation strength
  std::uint64_t seed = 7;
};

/// Standardises features to zero mean / unit variance (fit on training
/// data, applied everywhere), then trains one hinge-loss classifier per
/// class; prediction is the max-margin class. decision_values() exposes
/// margins, and probabilities() a softmax over margins so the SVM can slot
/// into the same ensemble interface as the RNN.
class LinearSvm {
 public:
  LinearSvm(int feature_dim, int num_classes);

  /// x: [N, D] feature matrix; labels in [0, num_classes).
  void fit(const Tensor& x, std::span<const int> labels,
           const SvmConfig& config = {});

  [[nodiscard]] std::vector<int> predict(const Tensor& x) const;

  /// Per-class margins, [N, C].
  [[nodiscard]] Tensor decision_values(const Tensor& x) const;

  /// Softmax over margins, [N, C] -- pseudo-probabilities for ensembling.
  [[nodiscard]] Tensor probabilities(const Tensor& x) const;

  [[nodiscard]] int feature_dim() const noexcept { return dim_; }
  [[nodiscard]] int num_classes() const noexcept { return classes_; }
  [[nodiscard]] bool trained() const noexcept { return trained_; }

  void serialize(util::BinaryWriter& writer) const;
  static LinearSvm deserialize(util::BinaryReader& reader);

 private:
  [[nodiscard]] Tensor standardize(const Tensor& x) const;

  int dim_;
  int classes_;
  bool trained_{false};
  Tensor weights_;  // [C, D]
  Tensor biases_;   // [C]
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

}  // namespace darnet::svm
