// Privacy-preserving analytics (Sections 4.3 / 5.3).
//
// The distortion module nearest-neighbour down-samples frames before they
// leave the vehicle and tags them with the level; the remote engine routes
// each tagged frame to the matching dCNN. dCNN models share the teacher's
// architecture, are initialised from its weights, and are trained
// *unsupervised*: the loss is the L2 distance between the student's output
// on the distorted frame and the teacher's recorded output on the original
// frame (a de-noising-autoencoder-style objective).
//
// Geometry (DESIGN.md): frames render at 48x48 (standing in for 300x300);
// Low/Medium/High distortion are 16x16 / 8x8 / 4x4 -- the paper's 3x / 6x
// / 12x linear reduction, i.e. ~9x / 36x / 144x less data per frame.
#pragma once

#include <map>

#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "vision/image.hpp"

namespace darnet::privacy {

using nn::Tensor;

enum class DistortionLevel : std::uint32_t {
  kNone = 0,
  kLow = 1,     // dCNN-L  (paper: 300 -> 100)
  kMedium = 2,  // dCNN-M  (paper: 300 -> 50)
  kHigh = 3,    // dCNN-H  (paper: 300 -> 25)
};

[[nodiscard]] const char* distortion_name(DistortionLevel level) noexcept;

/// Linear down-sampling factor of a level (1, 3, 6, 12).
[[nodiscard]] int distortion_factor(DistortionLevel level) noexcept;

/// Edge length after distorting an `original`-sized frame.
[[nodiscard]] int distorted_size(DistortionLevel level, int original);

/// A frame as transmitted: down-sampled pixels plus the level tag.
struct TaggedFrame {
  DistortionLevel level{DistortionLevel::kNone};
  vision::Image image;
};

/// The distortion module that runs on the vehicle side.
class DistortionModule {
 public:
  explicit DistortionModule(DistortionLevel level) : level_(level) {}

  [[nodiscard]] TaggedFrame process(const vision::Image& frame) const;
  [[nodiscard]] DistortionLevel level() const noexcept { return level_; }
  void set_level(DistortionLevel level) noexcept { level_ = level; }

 private:
  DistortionLevel level_;
};

/// Bytes needed to ship a tagged frame (1 byte/pixel + 1-byte tag) -- the
/// quantity behind the paper's bandwidth-reduction claims.
[[nodiscard]] std::size_t wire_bytes(const TaggedFrame& frame) noexcept;

/// Reconstruct a model-input frame on the server side: nearest-neighbour
/// up-sampling back to the model's input edge, so every dCNN shares the
/// teacher's architecture.
[[nodiscard]] vision::Image reconstruct(const TaggedFrame& frame,
                                        int model_input_size);

/// Distort then reconstruct a whole NCHW batch (training convenience).
[[nodiscard]] Tensor apply_distortion(const Tensor& frames,
                                      DistortionLevel level);

/// Train a student dCNN against a teacher (paper's four-step methodology):
/// teacher logits are recorded on the clean frames; the student sees only
/// the distorted/reconstructed frames and minimises the L2 distance to the
/// recorded outputs. Returns the final epoch's mean distillation loss.
double distill_dcnn(nn::Sequential& student, nn::Sequential& teacher,
                    const Tensor& clean_frames, DistortionLevel level,
                    nn::Optimizer& optimizer, const nn::TrainConfig& config);

/// Server-side classifier selection: "the analytics engine picks the
/// appropriate classifier for performing feature extraction on the
/// distorted video."
class PrivacyRouter {
 public:
  /// Register the classifier for one level. Models are borrowed.
  void register_model(DistortionLevel level, nn::Layer& model,
                      int model_input_size);

  /// Route a tagged frame to its classifier; returns class probabilities.
  [[nodiscard]] Tensor classify(const TaggedFrame& frame) const;

  [[nodiscard]] bool has_model(DistortionLevel level) const noexcept;

 private:
  struct Entry {
    nn::Layer* model;
    int input_size;
  };
  std::map<DistortionLevel, Entry> models_;
};

}  // namespace darnet::privacy
