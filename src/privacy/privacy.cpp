#include "privacy/privacy.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace darnet::privacy {

const char* distortion_name(DistortionLevel level) noexcept {
  switch (level) {
    case DistortionLevel::kNone:
      return "none";
    case DistortionLevel::kLow:
      return "low (dCNN-L)";
    case DistortionLevel::kMedium:
      return "medium (dCNN-M)";
    case DistortionLevel::kHigh:
      return "high (dCNN-H)";
  }
  return "?";
}

int distortion_factor(DistortionLevel level) noexcept {
  switch (level) {
    case DistortionLevel::kNone:
      return 1;
    case DistortionLevel::kLow:
      return 3;
    case DistortionLevel::kMedium:
      return 6;
    case DistortionLevel::kHigh:
      return 12;
  }
  return 1;
}

int distorted_size(DistortionLevel level, int original) {
  const int factor = distortion_factor(level);
  const int size = original / factor;
  if (size < 1) {
    throw std::invalid_argument("distorted_size: frame too small for level");
  }
  return size;
}

TaggedFrame DistortionModule::process(const vision::Image& frame) const {
  if (frame.empty()) {
    throw std::invalid_argument("DistortionModule::process: empty frame");
  }
  DARNET_TIMER("privacy/distort_ns");
  DARNET_COUNTER_ADD("privacy/frames_distorted_total", 1);
  const int target = distorted_size(level_, frame.width());
  TaggedFrame out;
  out.level = level_;
  out.image = (target == frame.width())
                  ? frame
                  : vision::resize_nearest(frame, target, target);
  return out;
}

std::size_t wire_bytes(const TaggedFrame& frame) noexcept {
  // 1 byte per pixel plus a 1-byte distortion-level tag.
  return static_cast<std::size_t>(frame.image.width()) *
             static_cast<std::size_t>(frame.image.height()) +
         1;
}

vision::Image reconstruct(const TaggedFrame& frame, int model_input_size) {
  if (frame.image.empty()) {
    throw std::invalid_argument("reconstruct: empty frame");
  }
  if (frame.image.width() == model_input_size &&
      frame.image.height() == model_input_size) {
    return frame.image;
  }
  return vision::resize_nearest(frame.image, model_input_size,
                                model_input_size);
}

Tensor apply_distortion(const Tensor& frames, DistortionLevel level) {
  if (frames.rank() != 4 || frames.dim(1) != 1) {
    throw std::invalid_argument("apply_distortion: [N, 1, H, W] required");
  }
  const int n = frames.dim(0);
  const int edge = frames.dim(3);
  Tensor out(frames.shape());
  DistortionModule module(level);
  const std::size_t stride = static_cast<std::size_t>(edge) * frames.dim(2);
  for (int i = 0; i < n; ++i) {
    const vision::Image clean = vision::from_batch_tensor(frames, i);
    const vision::Image rebuilt = reconstruct(module.process(clean), edge);
    std::copy(rebuilt.pixels().begin(), rebuilt.pixels().end(),
              out.data() + static_cast<std::size_t>(i) * stride);
  }
  return out;
}

double distill_dcnn(nn::Sequential& student, nn::Sequential& teacher,
                    const Tensor& clean_frames, DistortionLevel level,
                    nn::Optimizer& optimizer, const nn::TrainConfig& config) {
  DARNET_SPAN("privacy/distill");
  // Step 1: record the teacher's outputs on the clean frames. In the
  // deployment this happens on-device, so the original image never leaves
  // the vehicle.
  Tensor teacher_out = nn::predict_logits(teacher, clean_frames);
  // Steps 2-3: down-sample, tag, and ship; the server reconstructs.
  Tensor distorted = apply_distortion(clean_frames, level);
  // Step 4: minimise the L2 distance between the student's output on the
  // distorted frame and the teacher's recorded output.
  return nn::train_distillation(student, optimizer, distorted, teacher_out,
                                config);
}

void PrivacyRouter::register_model(DistortionLevel level, nn::Layer& model,
                                   int model_input_size) {
  if (model_input_size <= 0) {
    throw std::invalid_argument("PrivacyRouter: invalid input size");
  }
  models_[level] = Entry{&model, model_input_size};
}

bool PrivacyRouter::has_model(DistortionLevel level) const noexcept {
  return models_.contains(level);
}

Tensor PrivacyRouter::classify(const TaggedFrame& frame) const {
  const auto it = models_.find(frame.level);
  if (it == models_.end()) {
    throw std::out_of_range("PrivacyRouter: no model for level " +
                            std::string(distortion_name(frame.level)));
  }
  const vision::Image input = reconstruct(frame, it->second.input_size);
  const vision::Image batch[] = {input};
  return nn::predict_proba(*it->second.model, vision::to_batch_tensor(batch));
}

}  // namespace darnet::privacy
