// Runtime-dispatched SIMD microkernels for the GEMM/conv inference hot
// path.
//
// Dispatch policy (DESIGN.md "Kernel architecture"):
//  * The scalar kernels in tensor/ops.cpp are the bit-parity golden: the
//    determinism contract (ascending-k accumulation, disjoint output
//    rows) is stated against them and every hard-coded golden hash in the
//    test suite is pinned to them. ctest runs with DARNET_KERNELS=scalar.
//  * The vector kernels here (AVX2+FMA / AVX-512F, portable
//    __builtin-vector implementations compiled in per-file -m TUs) use
//    fused multiply-add and, for dot-product shapes, lane-split
//    accumulators -- so they are *deterministic for a fixed ISA* (thread
//    count still cannot change results) but only tolerance-comparable to
//    the scalar golden. test_kernels holds that parity bound.
//  * Selection: the DARNET_KERNELS environment variable (scalar | avx2 |
//    avx512 | auto; default auto) intersected with __builtin_cpu_supports
//    at first use; set_isa() overrides programmatically (tests, benches).
//    Requesting an ISA the CPU or build lacks falls back to the best
//    supported one -- never an illegal-instruction crash.
#pragma once

#include <cstdint>

namespace darnet::tensor::kernels {

enum class Isa : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Vectorized kernel entry points. All pointers are to row-major float
/// buffers; none may alias.
struct Kernels {
  /// C rows [i0, i1) += A * B -- same contract as gemm_rows_serial
  /// (A is MxK, B is KxN, C is MxN), ascending-k per element.
  void (*gemm_rows)(const float* a, const float* b, float* c,
                    std::int64_t i0, std::int64_t i1, int k, int n);
  /// C[r][:] = bias[r] + sum_k packedA[r][k] * B[k][:] for r in
  /// [row0, row1), where packedA is the pack_rows_mr4 layout over `rows`
  /// total rows. Overwrite semantics fuse the bias fill into the kernel
  /// (the im2col conv forward). Preconditions: row0 % 4 == 0 and
  /// (row1 % 4 == 0 or row1 == rows) -- callers shard on panel
  /// boundaries, never mid-panel.
  void (*gemm_bias_packed)(const float* packed, const float* bias,
                           const float* b, float* c, int row0, int row1,
                           int rows, int k, int n);
  /// y[i][j] = bias[j] + dot(x[i], wt[j]) for i in [m0, m1), j in [0, n)
  /// with wt row-major [n][k] (the packed Dense layout: W transposed).
  void (*gemv_bias_wt)(const float* x, const float* wt, const float* bias,
                       float* y, std::int64_t m0, std::int64_t m1, int k,
                       int n);
  /// Direct (im2col-free) single-image convolution for output channels
  /// [oc0, oc1): y[oc][r][c] = bias[oc] + sum over ascending (ic, kr, kc)
  /// of w[oc][ic][kr][kc] * xp[ic][r+kr][c+kc] -- the scalar direct
  /// kernel's accumulation order, FMA-rounded. `xp` is the input with its
  /// zero border already written (in_ch planes of ph x pw, where
  /// ph = h + 2*pad); for pad == 0 the raw input is already that layout.
  /// `wts` is the natural [out_ch][in_ch][k][k] weight layout (no
  /// pre-pack needed).
  void (*conv2d_direct)(const float* xp, const float* wts, const float* bias,
                        float* y, int oc0, int oc1, int in_ch, int k,
                        int ph, int pw, int oh, int ow);
  /// Minimum output width at which conv2d_direct beats the im2col GEMM
  /// for this ISA (one half-width vector per row). Callers fall back to
  /// the GEMM path below it; the kernel itself stays correct for any
  /// width.
  int conv_min_ow;
};

/// The active ISA: resolved once from DARNET_KERNELS + CPU detection,
/// overridable with set_isa(). Cheap after first call (one atomic load).
[[nodiscard]] Isa active() noexcept;

/// Programmatic override (wins over the environment). Falls back to the
/// best supported ISA when `isa` is unavailable; returns what was set.
Isa set_isa(Isa isa) noexcept;

/// True when both the build and the CPU can run `isa`.
[[nodiscard]] bool isa_supported(Isa isa) noexcept;

[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Kernel table for the active ISA, or nullptr when scalar -- callers
/// branch once and fall back to the scalar reference path.
[[nodiscard]] const Kernels* active_kernels() noexcept;

/// Panel-pack `rows` x `k` row-major A for gemm_bias_packed: full panels
/// of 4 rows interleaved k-major (packed[p*4*k + kk*4 + r]), remaining
/// rows appended row-major. `packed` must hold rows*k floats. The layout
/// is ISA-independent (both vector widths broadcast from it).
void pack_rows_mr4(const float* a, int rows, int k, float* packed);

}  // namespace darnet::tensor::kernels
