#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

namespace darnet::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(shape_numel(shape_), Storage::Init::kZeroed) {}

Tensor Tensor::uninit(Shape shape) {
  Tensor t;
  t.shape_ = shape;
  t.data_ = Storage(shape_numel(t.shape_), Storage::Init::kUninit);
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = Tensor::uninit(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::he_normal(Shape shape, int fan_in, util::Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("he_normal: fan_in must be > 0");
  Tensor t = Tensor::uninit(shape);
  const double stddev = std::sqrt(2.0 / fan_in);
  for (auto& v : t.data_) v = static_cast<float>(rng.gaussian(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, float limit, util::Rng& rng) {
  Tensor t = Tensor::uninit(shape);
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(-limit, limit));
  return t;
}

void Tensor::fill(float value) noexcept {
  for (auto& v : data_) v = value;
}

std::size_t Tensor::index2(int i0, int i1) const {
  if (shape_.size() != 2 || i0 < 0 || i0 >= shape_[0] || i1 < 0 ||
      i1 >= shape_[1]) {
    throw std::out_of_range("Tensor::at(i,j): bad index or rank");
  }
  return static_cast<std::size_t>(i0) * shape_[1] + i1;
}

std::size_t Tensor::index3(int i0, int i1, int i2) const {
  if (shape_.size() != 3 || i0 < 0 || i0 >= shape_[0] || i1 < 0 ||
      i1 >= shape_[1] || i2 < 0 || i2 >= shape_[2]) {
    throw std::out_of_range("Tensor::at(i,j,k): bad index or rank");
  }
  return (static_cast<std::size_t>(i0) * shape_[1] + i1) * shape_[2] + i2;
}

std::size_t Tensor::index4(int i0, int i1, int i2, int i3) const {
  if (shape_.size() != 4 || i0 < 0 || i0 >= shape_[0] || i1 < 0 ||
      i1 >= shape_[1] || i2 < 0 || i2 >= shape_[2] || i3 < 0 ||
      i3 >= shape_[3]) {
    throw std::out_of_range("Tensor::at(i,j,k,l): bad index or rank");
  }
  return ((static_cast<std::size_t>(i0) * shape_[1] + i1) * shape_[2] + i2) *
             shape_[3] +
         i3;
}

float& Tensor::at(int i0) {
  if (shape_.size() != 1 || i0 < 0 || i0 >= shape_[0]) {
    throw std::out_of_range("Tensor::at(i): bad index or rank");
  }
  return data_[static_cast<std::size_t>(i0)];
}
float& Tensor::at(int i0, int i1) { return data_[index2(i0, i1)]; }
float& Tensor::at(int i0, int i1, int i2) { return data_[index3(i0, i1, i2)]; }
float& Tensor::at(int i0, int i1, int i2, int i3) {
  return data_[index4(i0, i1, i2, i3)];
}

float Tensor::at(int i0) const {
  if (shape_.size() != 1 || i0 < 0 || i0 >= shape_[0]) {
    throw std::out_of_range("Tensor::at(i): bad index or rank");
  }
  return data_[static_cast<std::size_t>(i0)];
}
float Tensor::at(int i0, int i1) const { return data_[index2(i0, i1)]; }
float Tensor::at(int i0, int i1, int i2) const {
  return data_[index3(i0, i1, i2)];
}
float Tensor::at(int i0, int i1, int i2, int i3) const {
  return data_[index4(i0, i1, i2, i3)];
}

Tensor Tensor::reshaped(Shape new_shape) const& {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  }
  Tensor t;
  t.shape_ = new_shape;
  t.data_ = data_;
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) && {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  }
  Tensor t;
  t.shape_ = new_shape;
  t.data_ = std::move(data_);
  return t;
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << ", ";
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

void Tensor::serialize(util::BinaryWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(shape_.size()));
  for (int d : shape_) writer.write_u32(static_cast<std::uint32_t>(d));
  writer.write_f32_span(flat());
}

Tensor Tensor::deserialize(util::BinaryReader& reader) {
  const auto rank = reader.read_u32();
  Shape shape;
  for (std::uint32_t i = 0; i < rank; ++i) {
    shape.push_back(static_cast<int>(reader.read_u32()));
  }
  const std::uint64_t n = reader.read_u64();
  if (n != shape_numel(shape)) {
    throw std::invalid_argument("Tensor::deserialize: corrupt payload");
  }
  Tensor t;
  t.shape_ = shape;
  t.data_ = Storage(static_cast<std::size_t>(n), Storage::Init::kUninit);
  reader.read_f32_into(t.data_.data(), static_cast<std::size_t>(n));
  return t;
}

}  // namespace darnet::tensor
