#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

namespace darnet::tensor {

std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::he_normal(std::vector<int> shape, int fan_in, util::Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("he_normal: fan_in must be > 0");
  Tensor t(std::move(shape));
  const double stddev = std::sqrt(2.0 / fan_in);
  for (auto& v : t.data_) v = static_cast<float>(rng.gaussian(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(std::vector<int> shape, float limit, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(-limit, limit));
  return t;
}

void Tensor::fill(float value) noexcept {
  for (auto& v : data_) v = value;
}

std::size_t Tensor::index2(int i0, int i1) const {
  if (shape_.size() != 2 || i0 < 0 || i0 >= shape_[0] || i1 < 0 ||
      i1 >= shape_[1]) {
    throw std::out_of_range("Tensor::at(i,j): bad index or rank");
  }
  return static_cast<std::size_t>(i0) * shape_[1] + i1;
}

std::size_t Tensor::index3(int i0, int i1, int i2) const {
  if (shape_.size() != 3 || i0 < 0 || i0 >= shape_[0] || i1 < 0 ||
      i1 >= shape_[1] || i2 < 0 || i2 >= shape_[2]) {
    throw std::out_of_range("Tensor::at(i,j,k): bad index or rank");
  }
  return (static_cast<std::size_t>(i0) * shape_[1] + i1) * shape_[2] + i2;
}

std::size_t Tensor::index4(int i0, int i1, int i2, int i3) const {
  if (shape_.size() != 4 || i0 < 0 || i0 >= shape_[0] || i1 < 0 ||
      i1 >= shape_[1] || i2 < 0 || i2 >= shape_[2] || i3 < 0 ||
      i3 >= shape_[3]) {
    throw std::out_of_range("Tensor::at(i,j,k,l): bad index or rank");
  }
  return ((static_cast<std::size_t>(i0) * shape_[1] + i1) * shape_[2] + i2) *
             shape_[3] +
         i3;
}

float& Tensor::at(int i0) {
  if (shape_.size() != 1 || i0 < 0 || i0 >= shape_[0]) {
    throw std::out_of_range("Tensor::at(i): bad index or rank");
  }
  return data_[static_cast<std::size_t>(i0)];
}
float& Tensor::at(int i0, int i1) { return data_[index2(i0, i1)]; }
float& Tensor::at(int i0, int i1, int i2) { return data_[index3(i0, i1, i2)]; }
float& Tensor::at(int i0, int i1, int i2, int i3) {
  return data_[index4(i0, i1, i2, i3)];
}

float Tensor::at(int i0) const {
  if (shape_.size() != 1 || i0 < 0 || i0 >= shape_[0]) {
    throw std::out_of_range("Tensor::at(i): bad index or rank");
  }
  return data_[static_cast<std::size_t>(i0)];
}
float Tensor::at(int i0, int i1) const { return data_[index2(i0, i1)]; }
float Tensor::at(int i0, int i1, int i2) const {
  return data_[index3(i0, i1, i2)];
}
float Tensor::at(int i0, int i1, int i2, int i3) const {
  return data_[index4(i0, i1, i2, i3)];
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << ", ";
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

void Tensor::serialize(util::BinaryWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(shape_.size()));
  for (int d : shape_) writer.write_u32(static_cast<std::uint32_t>(d));
  writer.write_f32_span(data_);
}

Tensor Tensor::deserialize(util::BinaryReader& reader) {
  const auto rank = reader.read_u32();
  std::vector<int> shape(rank);
  for (auto& d : shape) d = static_cast<int>(reader.read_u32());
  Tensor t;
  t.data_ = reader.read_f32_vector();
  if (t.data_.size() != shape_numel(shape)) {
    throw std::invalid_argument("Tensor::deserialize: corrupt payload");
  }
  t.shape_ = std::move(shape);
  return t;
}

}  // namespace darnet::tensor
