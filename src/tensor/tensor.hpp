// Dense row-major float tensor -- the numeric substrate for the neural
// network library. Deliberately minimal: contiguous float32 storage, shape
// bookkeeping, and checked element access; all heavy math lives in
// tensor/ops.hpp as free functions over spans.
//
// Storage is arena-backed (tensor/arena.hpp): while an ArenaScope is
// active on the thread, payload blocks are recycled through a free list
// instead of malloc/free -- the basis of the zero-alloc inference path.
// Shape is a small-buffer type (tensor/shape.hpp), so constructing a
// Tensor performs at most one (pooled) allocation.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "tensor/arena.hpp"
#include "tensor/shape.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace darnet::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape) { return Tensor(shape); }
  /// Allocated but NOT initialised -- for outputs every element of which
  /// is overwritten before being read (kernels, layer outputs). Skipping
  /// the zero-fill matters on the inference hot path.
  static Tensor uninit(Shape shape);
  static Tensor full(Shape shape, float value);
  /// He/Kaiming-style Gaussian initialisation: stddev = sqrt(2 / fan_in).
  static Tensor he_normal(Shape shape, int fan_in, util::Rng& rng);
  /// Uniform in [-limit, limit].
  static Tensor uniform(Shape shape, float limit, util::Rng& rng);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] int dim(std::size_t axis) const {
    if (axis >= shape_.size()) {
      throw std::out_of_range("Tensor::dim: axis out of range");
    }
    return shape_[axis];
  }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<float> flat() noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const float> flat() const noexcept {
    return {data_.data(), data_.size()};
  }

  // Flat indexing. Unchecked in release builds; checked builds
  // (DARNET_CHECKED) assert the bound and abort with attribution on OOB.
  float& operator[](std::size_t i) noexcept {
    DARNET_CHECK_MSG(i < data_.size(), "Tensor flat index out of range");
    return data_[i];
  }
  float operator[](std::size_t i) const noexcept {
    DARNET_CHECK_MSG(i < data_.size(), "Tensor flat index out of range");
    return data_[i];
  }

  /// Checked multi-index access (2-4 dims cover everything in DarNet).
  float& at(int i0);
  float& at(int i0, int i1);
  float& at(int i0, int i1, int i2);
  float& at(int i0, int i1, int i2, int i3);
  [[nodiscard]] float at(int i0) const;
  [[nodiscard]] float at(int i0, int i1) const;
  [[nodiscard]] float at(int i0, int i1, int i2) const;
  [[nodiscard]] float at(int i0, int i1, int i2, int i3) const;

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// Reinterpret the same storage with a new shape (numel must match).
  /// The rvalue overload moves the payload instead of copying it -- the
  /// inference Flatten path.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const&;
  [[nodiscard]] Tensor reshaped(Shape new_shape) &&;

  /// Shape equality.
  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

  [[nodiscard]] std::string shape_string() const;

  void serialize(util::BinaryWriter& writer) const;
  static Tensor deserialize(util::BinaryReader& reader);

 private:
  [[nodiscard]] std::size_t index2(int i0, int i1) const;
  [[nodiscard]] std::size_t index3(int i0, int i1, int i2) const;
  [[nodiscard]] std::size_t index4(int i0, int i1, int i2, int i3) const;

  Shape shape_;
  Storage data_;
};

/// Total element count implied by a shape; throws on non-positive dims.
[[nodiscard]] std::size_t shape_numel(const Shape& shape);

}  // namespace darnet::tensor
