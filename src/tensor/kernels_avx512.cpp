// AVX-512F kernel TU. Compiled with -mavx512f -mfma -ffp-contract=fast
// via set_source_files_properties (src/tensor/CMakeLists.txt); reached
// only after __builtin_cpu_supports("avx512f"). Builds to a nullptr stub
// when the toolchain cannot target AVX-512.
#include <cstdint>

#include "tensor/kernels.hpp"

#if defined(__AVX512F__)

#define DARNET_KERNEL_NS impl_avx512
#define DARNET_KERNEL_WIDTH 16
#include "tensor/kernels_vec.inc"
#undef DARNET_KERNEL_NS
#undef DARNET_KERNEL_WIDTH

namespace darnet::tensor::kernels {

const Kernels* avx512_kernels() {
  static constexpr Kernels k{&impl_avx512::gemm_rows,
                             &impl_avx512::gemm_bias_packed,
                             &impl_avx512::gemv_bias_wt,
                             &impl_avx512::conv2d_direct, 8};
  return &k;
}

}  // namespace darnet::tensor::kernels

#else  // toolchain cannot target AVX-512: dispatcher sees "not compiled in"

namespace darnet::tensor::kernels {
const Kernels* avx512_kernels() { return nullptr; }
}  // namespace darnet::tensor::kernels

#endif
