#include "tensor/arena.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>

namespace darnet::tensor {

namespace {

// Round block sizes to a cache line so nearly-equal requests share a
// bucket instead of fragmenting the free lists.
constexpr std::size_t kRound = 64;

std::size_t round_bytes(std::size_t bytes) {
  return (bytes + kRound - 1) / kRound * kRound;
}

}  // namespace

namespace detail {

void* heap_alloc(std::size_t bytes) {
  // Always allocate the rounded size: a block allocated with no scope
  // active may later be put() into an arena, whose buckets assume every
  // block holds its full rounded size.
  void* p = std::malloc(round_bytes(bytes ? bytes : 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void heap_free(void* p) noexcept { std::free(p); }

}  // namespace detail

Arena::Bucket& Arena::bucket_for(std::size_t bytes) {
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), bytes,
      [](const Bucket& b, std::size_t want) { return b.bytes < want; });
  if (it == buckets_.end() || it->bytes != bytes) {
    it = buckets_.insert(it, Bucket{bytes, {}});
  }
  return *it;
}

void* Arena::take(std::size_t bytes) {
  const std::size_t rounded = round_bytes(bytes);
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), rounded,
      [](const Bucket& b, std::size_t want) { return b.bytes < want; });
  if (it != buckets_.end() && it->bytes == rounded && !it->blocks.empty()) {
    void* p = it->blocks.back();
    it->blocks.pop_back();
    bytes_cached_ -= rounded;
    return p;
  }
  ++heap_allocs_;
  return detail::heap_alloc(rounded);
}

void Arena::put(void* p, std::size_t bytes) {
  const std::size_t rounded = round_bytes(bytes);
  bucket_for(rounded).blocks.push_back(p);
  bytes_cached_ += rounded;
}

void Arena::release() noexcept {
  for (Bucket& b : buckets_) {
    for (void* p : b.blocks) detail::heap_free(p);
    b.blocks.clear();
  }
  buckets_.clear();
  bytes_cached_ = 0;
}

}  // namespace darnet::tensor
